"""Tuple-tracing overhead — the cost discipline behind "always on".

The tracing layer (:mod:`repro.monitor.tracing`) stays compiled into
the hot path permanently, so its *disabled* cost is the number that
matters.  With ``sample_every=0`` every queue/egress site pays one
``TRACER.active`` attribute test and every per-tuple site one
``t.trace is None`` slot load — nothing else.  There is no
guard-free build to diff against, so the <5% gate measures those two
guards directly (empty-loop cost subtracted) and relates them, at a
deliberately pessimistic sites-per-tuple count, to the measured
per-tuple cost of the dormant pipeline.

The shape benchmark also prices the *diagnosis* configurations on an
E1-style eddy workload (two drifting filters under lottery routing,
inside a Fjord so queue hops are exercised):

* **dormant**      — ``sample_every=0``, flight recorder off (the
  production default);
* **sampled/100**  — every 100th ingress tuple traced, flight recorder
  off;
* **full**         — every tuple traced plus the flight recorder: the
  worst case, bounded only by the rings.

Enabling tracing is honestly not free — with the tracer active every
queue transfer performs a real (guarded) hop check — but that price is
paid only while someone is looking; the gate protects everyone else.
"""

import time

import pytest

import repro.monitor.introspect as introspect
import repro.monitor.tracing as tracing
from repro.core.eddy import Eddy, FilterOperator
from repro.core.routing import LotteryPolicy
from repro.core.tuples import Schema
from repro.fjords.fjord import Fjord
from repro.fjords.module import CollectingSink
from repro.ingress.generators import DriftingSelectivityGenerator
from repro.query.predicates import Comparison

from benchmarks.conftest import print_table, record_result
from tests.conftest import ListFeed

N = 6000
PRED_A = Comparison("a", "==", 1)
PRED_B = Comparison("b", "==", 1)

#: Pessimistic per-tuple guard counts for the gate: a tuple crossing
#: the benchmark pipeline hits 4 queue transfers + source + egress
#: (``TRACER.active`` tests) and a handful of ``t.trace`` slot tests
#: inside the eddy.
ACTIVE_CHECKS_PER_TUPLE = 8
SLOT_CHECKS_PER_TUPLE = 8


def fresh_rows():
    return DriftingSelectivityGenerator(seed=17, flip_at=0,
                                        low_pass=0.1,
                                        high_pass=0.9).take(N)


def pipeline_run(rows):
    ops = [FilterOperator(PRED_A, name="fa"),
           FilterOperator(PRED_B, name="fb")]
    eddy = Eddy(ops, output_sources={"drift"},
                policy=LotteryPolicy(seed=1, explore=0.05))
    sink = CollectingSink("sink")
    f = Fjord()
    f.connect(ListFeed(rows, chunk=64), eddy)
    f.connect(eddy, sink)
    f.run_until_finished()
    return sink


def configured(sample_every, recorder):
    tracing.TRACER.configure(sample_every=sample_every, capacity=256)
    tracing.TRACER.reset()
    introspect.RECORDER.configure(capacity=512, enabled=recorder)
    introspect.RECORDER.clear()


def timed(sample_every, recorder, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        rows = fresh_rows()
        configured(sample_every, recorder)
        start = time.perf_counter()
        pipeline_run(rows)
        best = min(best, time.perf_counter() - start)
    configured(0, False)
    return best


def guard_costs(iters=200_000):
    """Per-check cost of the two dormant guards, empty loop subtracted."""
    t = Schema.of("S", "a").make(1)
    start = time.perf_counter()
    for _ in range(iters):
        pass
    empty = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(iters):
        if tracing.TRACER.active:
            pass
    active = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(iters):
        if t.trace is not None:
            pass
    slot = time.perf_counter() - start
    return (max(0.0, active - empty) / iters,
            max(0.0, slot - empty) / iters)


def test_trace_overhead_shape():
    t_dormant = timed(0, recorder=False)
    t_sampled = timed(100, recorder=False)
    t_full = timed(1, recorder=True)
    active_chk, slot_chk = guard_costs()
    dormant_guard = (ACTIVE_CHECKS_PER_TUPLE * active_chk +
                     SLOT_CHECKS_PER_TUPLE * slot_chk)
    per_tuple = t_dormant / N
    print_table(
        f"tuple-tracing overhead on the eddy fjord workload (n={N})",
        ["configuration", "seconds", "vs dormant"],
        [("dormant (sample=0)", f"{t_dormant:.4f}", 1.0),
         ("sampled/100", f"{t_sampled:.4f}", t_sampled / t_dormant),
         ("full (sample=1) + recorder", f"{t_full:.4f}",
          t_full / t_dormant)])
    print(f"  dormant guards: {active_chk * 1e9:.0f}ns active-check, "
          f"{slot_chk * 1e9:.0f}ns slot-check -> "
          f"{dormant_guard / per_tuple * 100:.2f}% of the "
          f"{per_tuple * 1e6:.2f}us per-tuple cost")
    record_result(
        "trace",
        params={"n": N, "workload": "eddy-fjord-lottery"},
        throughput=N / t_dormant,
        wall_clock_s=t_dormant,
        sampled_100_vs_dormant=round(t_sampled / t_dormant, 4),
        full_vs_dormant=round(t_full / t_dormant, 4),
        dormant_guard_fraction=round(dormant_guard / per_tuple, 5))
    # Loose shape bounds; the perf-marked gate below holds the 5% line.
    assert t_sampled < t_dormant * 2.0
    assert t_full < t_dormant * 5.0


@pytest.mark.perf
def test_trace_disabled_overhead_gate():
    """Perf gate: with sampling disabled, the tracing instrumentation's
    entire per-tuple cost — its guards, counted pessimistically — is
    <5% of the dormant pipeline's measured per-tuple cost."""
    t_dormant = timed(0, recorder=False)
    per_tuple = t_dormant / N
    active_chk, slot_chk = guard_costs()
    dormant_guard = (ACTIVE_CHECKS_PER_TUPLE * active_chk +
                     SLOT_CHECKS_PER_TUPLE * slot_chk)
    assert dormant_guard < 0.05 * per_tuple, (
        f"dormant tracing guards cost {dormant_guard * 1e9:.0f}ns/tuple "
        f"= {dormant_guard / per_tuple * 100:.2f}% of the "
        f"{per_tuple * 1e6:.2f}us per-tuple pipeline cost (gate: 5%)")
