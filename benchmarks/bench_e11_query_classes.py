"""E11 — §4.2.2: footprint-based query classes.

"The goal is to separate queries into classes that have significant
potential for sharing work ... we create query classes for disjoint
sets of footprints."

Setup: two disjoint stream groups (stocks, sensors) × N queries each.
Checked:

* grouping — queries land in exactly two Execution Objects / two shared
  CACQ engines; a bridging join merges them;
* the sharing payoff — grouped-filter probes per tuple stay flat as N
  grows within a class (that is *why* classes exist);
* isolation — pushing only stock data never touches the sensor class.
"""

import pytest

from repro.client import LocalConnection
from repro.core.tuples import Schema
from repro.ingress.generators import (CLOSING_STOCK_PRICES,
                                      SENSOR_READINGS,
                                      SensorStreamGenerator,
                                      StockStreamGenerator)

from benchmarks.conftest import print_table


def build_server(n_per_class):
    srv = LocalConnection().server
    srv.create_stream(CLOSING_STOCK_PRICES)
    srv.create_stream(SENSOR_READINGS)
    stock_cursors = [
        srv.submit("SELECT * FROM ClosingStockPrices "
                   f"WHERE closingPrice > {30 + i % 40}")
        for i in range(n_per_class)]
    sensor_cursors = [
        srv.submit(f"SELECT * FROM SensorReadings WHERE temperature > "
                   f"{15 + i % 20}")
        for i in range(n_per_class)]
    return srv, stock_cursors, sensor_cursors


def push_data(srv, n_days=20):
    for t in StockStreamGenerator(seed=8).take(n_days):
        srv.push_tuple("ClosingStockPrices", t)
    for t in SensorStreamGenerator(seed=8).take(n_days):
        srv.push_tuple("SensorReadings", t)


def probes_per_tuple(srv):
    total_probes = 0
    total_tuples = 0
    for engine in srv._cacq.values():
        total_probes += engine.filter_probes
        total_tuples += engine.tuples_in
    return total_probes / total_tuples if total_tuples else 0.0


def test_e11_shape():
    rows = []
    for n in (5, 50, 500):
        srv, _s, _e = build_server(n)
        push_data(srv)
        rows.append((n, srv.stats()["cacq_engines"],
                     len(srv.executor.footprints.peek(
                         ["ClosingStockPrices", "SensorReadings"])),
                     probes_per_tuple(srv)))
    print_table("E11: footprint classes as queries scale",
                ["queries/class", "shared engines", "classes",
                 "filter probes per tuple"], rows)
    # always exactly two disjoint classes, regardless of N
    assert all(r[1] == 2 and r[2] == 2 for r in rows)
    # sharing: probes per tuple do not grow with query count
    assert rows[-1][3] <= rows[0][3] * 1.5


def test_e11_bridging_join_merges_classes():
    srv, _s, _e = build_server(10)
    assert srv.stats()["cacq_engines"] == 2
    srv.submit("SELECT * FROM ClosingStockPrices, SensorReadings "
               "WHERE ClosingStockPrices.timestamp = SensorReadings.ts")
    assert srv.stats()["cacq_engines"] == 1
    push_data(srv, n_days=5)        # everything still delivers
    assert srv.stats()["ingested"] > 0


def test_e11_isolation_between_classes():
    srv, stock_cursors, sensor_cursors = build_server(10)
    for t in StockStreamGenerator(seed=9).take(10):
        srv.push_tuple("ClosingStockPrices", t)
    assert sum(c.delivered for c in stock_cursors) > 0
    assert sum(c.delivered for c in sensor_cursors) == 0
    # the sensor-class engine never saw a tuple
    for engine in srv._cacq.values():
        if "SensorReadings" in engine.schemas:
            assert engine.tuples_in == 0


@pytest.mark.benchmark(group="E11")
@pytest.mark.parametrize("n", [10, 100])
def test_e11_routing_timing(benchmark, n):
    def build_and_push():
        # fresh server per round: stream timestamps must stay monotone
        srv, _s, _e = build_server(n)
        push_data(srv, n_days=5)

    benchmark(build_and_push)
