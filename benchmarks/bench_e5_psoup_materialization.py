"""E5 — §3.2 / [CF02]: PSoup's Results Structure makes invocation cheap.

Workload: 100 standing queries over a stream; clients reconnect and
invoke every k tuples.  Compared:

* PSoup        — results materialised continuously; invoke = window the
  per-query answer list;
* on-demand    — no materialisation; invoke rescans the data window and
  re-evaluates the predicate.

Expected shape ([CF02]): invoke latency for PSoup depends only on the
answer size, while on-demand pays the whole window scan times the
number of invocations — so as invocation frequency or window size grows,
materialisation wins by a widening factor.  Answers are identical.
"""

import random
import time

import pytest

from repro.core.psoup import OnDemandPSoup, PSoup
from repro.core.tuples import Schema
from repro.query.predicates import Comparison

from benchmarks.conftest import print_table

SCHEMA = Schema.of("s", "v")
N_DATA = 4000
N_QUERIES = 100


def predicates(seed=9):
    rng = random.Random(seed)
    # selective predicates: answers are small relative to the window
    return [Comparison("v", "==", rng.randrange(200))
            for _ in range(N_QUERIES)]


def run(engine_cls, window, invoke_every, seed=10):
    rng = random.Random(seed)
    engine = engine_cls(SCHEMA)
    queries = [engine.register_query(p, window=window)
               for p in predicates()]
    answers = 0
    invoke_time = 0.0
    invokes = 0
    for i in range(1, N_DATA + 1):
        engine.push(rng.randrange(200), timestamp=i)
        if i % invoke_every == 0:
            start = time.perf_counter()
            for q in queries:
                answers += len(engine.invoke(q))
            invoke_time += time.perf_counter() - start
            invokes += N_QUERIES
    scanned = getattr(engine, "scan_cost", None)
    return answers, invoke_time, invokes, scanned


def test_e5_shape():
    rows = []
    for window, invoke_every in ((500, 400), (500, 100), (2000, 100)):
        ps_answers, ps_time, invokes, _ = run(PSoup, window, invoke_every)
        od_answers, od_time, _, od_scanned = run(OnDemandPSoup, window,
                                                 invoke_every)
        assert ps_answers == od_answers
        rows.append((window, invoke_every, invokes,
                     ps_time * 1000, od_time * 1000,
                     od_time / ps_time if ps_time else float("inf")))
    print_table("E5: total invoke cost, materialised vs recompute",
                ["window", "invoke every", "invocations",
                 "psoup ms", "on-demand ms", "speedup"], rows)
    # materialisation wins, and the gap grows with window size
    speedups = [r[-1] for r in rows]
    assert all(s > 2 for s in speedups)
    assert speedups[2] > speedups[1]          # bigger window -> bigger win


def test_e5_invoke_cost_flat_in_window():
    """PSoup invoke touches only the answer, not the window: widening
    the window 10x leaves materialised retrieval ~flat while on-demand
    scans ~10x more tuples."""
    _a, _t, _i, scanned_small = run(OnDemandPSoup, 300, 100)
    _a, _t, _i, scanned_big = run(OnDemandPSoup, 3000, 100)
    assert scanned_big > 5 * scanned_small


@pytest.mark.benchmark(group="E5")
def test_e5_psoup_invoke_timing(benchmark):
    engine = PSoup(SCHEMA)
    queries = [engine.register_query(p, window=1000)
               for p in predicates()]
    rng = random.Random(1)
    for i in range(1, 2001):
        engine.push(rng.randrange(200), timestamp=i)
    benchmark(lambda: [engine.invoke(q) for q in queries])


@pytest.mark.benchmark(group="E5")
def test_e5_on_demand_invoke_timing(benchmark):
    engine = OnDemandPSoup(SCHEMA)
    queries = [engine.register_query(p, window=1000)
               for p in predicates()]
    rng = random.Random(1)
    for i in range(1, 2001):
        engine.push(rng.randrange(200), timestamp=i)
    benchmark(lambda: [engine.invoke(q) for q in queries])
