"""E8 — §4.3 "Adapting Adaptivity": the batching and fixing knobs.

The paper: per-tuple routing "does come at some cost"; batching tuples
and fixing operator sequences reduce that overhead, at the price of
slower reaction when selectivities drift.  The benchmark turns both
knobs:

* overhead axis — routing decisions per tuple and wall-clock throughput
  on a *stable* stream, for batch sizes 1..512 (+ fixed sequences);
* adaptivity axis — extra predicate evaluations (vs the per-tuple eddy)
  on a *drifting* stream, for the same knob settings.

Expected shape: decisions/tuple fall ~1/batch; throughput rises; work on
the drifting stream degrades gracefully as batches grow — the two-knob
trade-off the paper describes.
"""

import time

import pytest

from repro.core.adaptivity import AdaptivityController
from repro.core.eddy import Eddy, FilterOperator
from repro.core.routing import BatchingDirective, LotteryPolicy
from repro.core.tuples import TupleBatch
from repro.ingress.generators import DriftingSelectivityGenerator
from repro.query.predicates import Comparison

from benchmarks.conftest import print_table

N = 6000
PRED_A = Comparison("a", "==", 1)
PRED_B = Comparison("b", "==", 1)
KNOBS = [("per-tuple", BatchingDirective(1)),
         ("batch=8", BatchingDirective(8)),
         ("batch=64", BatchingDirective(64)),
         ("batch=512", BatchingDirective(512)),
         ("batch=64+fixed", BatchingDirective(64, fix_sequence=True)),
         ("batch=64+vec", BatchingDirective(64, vectorize=True))]


def _count(outputs):
    return sum(len(o) if isinstance(o, TupleBatch) else 1 for o in outputs)


def run(batching, flip_at, auto=False):
    rows = DriftingSelectivityGenerator(seed=17, flip_at=flip_at,
                                        low_pass=0.1,
                                        high_pass=0.9).take(N)
    ops = [FilterOperator(PRED_A, name="fa"),
           FilterOperator(PRED_B, name="fb")]
    eddy = Eddy(ops, output_sources={"drift"},
                policy=LotteryPolicy(seed=2, explore=0.05),
                batching=batching)
    controller = AdaptivityController(eddy, check_every=150,
                                      max_batch=512) if auto else None
    out = 0
    start = time.perf_counter()
    if batching.vectorize:
        size = batching.batch_size
        for i in range(0, len(rows), size):
            batch = TupleBatch.from_tuples(rows[i:i + size])
            out += _count(eddy.process_batch(batch, 0))
    else:
        for t in rows:
            out += len(eddy.process(t, 0))
            if controller is not None:
                controller.after_tuple()
    elapsed = time.perf_counter() - start
    work = ops[0].seen + ops[1].seen
    return eddy.routing_decisions, work, out, elapsed


def test_e8_shape():
    stable = {}
    drifting = {}
    for label, knob in KNOBS:
        stable[label] = run(knob, flip_at=0)
        drifting[label] = run(knob, flip_at=N // 4)
    # §4.3's missing piece: the automatic knob controller
    stable["auto"] = run(BatchingDirective(1), flip_at=0, auto=True)
    drifting["auto"] = run(BatchingDirective(1), flip_at=N // 4,
                           auto=True)
    rows = []
    for label, _knob in list(KNOBS) + [("auto", None)]:
        decisions, _w, _o, elapsed = stable[label]
        _d, drift_work, _o2, _e = drifting[label]
        rows.append((label, decisions, decisions / N,
                     elapsed * 1000, drift_work))
    print_table(f"E8: the two adaptivity knobs (n={N})",
                ["knob", "decisions", "per tuple", "stable ms",
                 "drift work"], rows)
    decisions = {label: stable[label][0] for label, _ in KNOBS}
    # batching collapses routing decisions by ~the batch factor
    assert decisions["batch=64"] < decisions["per-tuple"] / 10
    assert decisions["batch=512"] < decisions["batch=8"]
    # answers never change with the knobs (including the controller)
    outputs = {entry[2] for entry in stable.values()}
    assert len(outputs) == 1
    # on the drifting stream, coarse batching costs some extra work but
    # degrades gracefully (bounded, not catastrophic)
    drift = {label: drifting[label][1]
             for label in list(stable) if label in drifting}
    assert drift["batch=512"] <= drift["per-tuple"] * 1.35
    # the vectorized knob keeps both E8 properties: routing amortized by
    # ~the batch factor, drift-time work within the graceful envelope
    assert decisions["batch=64+vec"] < decisions["per-tuple"] / 10
    assert drift["batch=64+vec"] <= drift["per-tuple"] * 1.35
    # the automatic controller lands between the extremes on both axes:
    # far fewer decisions than per-tuple on the stable stream, and
    # drift-time work no worse than the coarsest fixed batch
    assert stable["auto"][0] < stable["per-tuple"][0] / 3
    assert drift["auto"] <= drift["batch=512"] * 1.1


def test_e8_batched_results_identical_while_drifting():
    reference = None
    for _label, knob in KNOBS:
        _d, _w, out, _e = run(knob, flip_at=N // 3)
        if reference is None:
            reference = out
        assert out == reference


@pytest.mark.benchmark(group="E8")
@pytest.mark.parametrize("label,knob", KNOBS,
                         ids=[label for label, _ in KNOBS])
def test_e8_knob_timing(benchmark, label, knob):
    benchmark(run, knob, 0)
