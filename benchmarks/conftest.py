"""Shared helpers for the benchmark harness.

Every benchmark file regenerates one figure or prose claim of the paper
(see DESIGN.md section 4).  Conventions:

* ``test_*_shape`` functions check the *qualitative* claim (who wins, by
  roughly what factor) and print the series as rows — run with ``-s`` to
  see them;
* plain ``test_*`` functions carry pytest-benchmark timings of the hot
  path, so regressions are visible run to run.

Run everything:  pytest benchmarks/ --benchmark-only
Shapes only:     pytest benchmarks/ -k shape -s
"""

from __future__ import annotations

import pytest


def print_table(title: str, header: list, rows: list) -> None:
    """Render one experiment's series the way the paper would tabulate
    it.  Visible under ``pytest -s``."""
    widths = [max(len(str(h)), max((len(f"{r[i]:.4g}" if
                                        isinstance(r[i], float)
                                        else str(r[i]))
                                   for r in rows), default=0))
              for i, h in enumerate(header)]

    def fmt(row):
        cells = []
        for i, cell in enumerate(row):
            text = f"{cell:.4g}" if isinstance(cell, float) else str(cell)
            cells.append(text.rjust(widths[i]))
        return "  ".join(cells)

    print(f"\n== {title} ==")
    print(fmt(header))
    for row in rows:
        print(fmt(row))
