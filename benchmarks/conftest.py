"""Shared helpers for the benchmark harness.

Every benchmark file regenerates one figure or prose claim of the paper
(see DESIGN.md section 4).  Conventions:

* ``test_*_shape`` functions check the *qualitative* claim (who wins, by
  roughly what factor) and print the series as rows — run with ``-s`` to
  see them;
* plain ``test_*`` functions carry pytest-benchmark timings of the hot
  path, so regressions are visible run to run.

Run everything:  pytest benchmarks/ --benchmark-only
Shapes only:     pytest benchmarks/ -k shape -s
"""

from __future__ import annotations

import json
import os
import time

import pytest

#: Machine-readable results land next to the repo root as
#: ``BENCH_<name>.json`` so the perf trajectory is tracked across PRs.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def record_result(name: str, params: dict, throughput: float,
                  wall_clock_s: float, **extra) -> str:
    """Append one machine-readable benchmark result to
    ``BENCH_<name>.json``.

    Each entry records the benchmark name, its parameters, throughput
    (tuples/s unless the benchmark says otherwise), and wall clock; the
    file accumulates a list so successive PRs' runs diff cleanly.
    Returns the path written.
    """
    path = os.path.join(_REPO_ROOT, f"BENCH_{name}.json")
    entry = {
        "name": name,
        "params": params,
        "throughput": round(float(throughput), 2),
        "wall_clock_s": round(float(wall_clock_s), 6),
        "recorded_at": int(time.time()),
    }
    entry.update(extra)
    results = []
    if os.path.exists(path):
        try:
            with open(path) as fh:
                results = json.load(fh)
            if not isinstance(results, list):
                results = [results]
        except (OSError, ValueError):
            results = []
    results.append(entry)
    with open(path, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def print_table(title: str, header: list, rows: list) -> None:
    """Render one experiment's series the way the paper would tabulate
    it.  Visible under ``pytest -s``."""
    widths = [max(len(str(h)), max((len(f"{r[i]:.4g}" if
                                        isinstance(r[i], float)
                                        else str(r[i]))
                                   for r in rows), default=0))
              for i, h in enumerate(header)]

    def fmt(row):
        cells = []
        for i, cell in enumerate(row):
            text = f"{cell:.4g}" if isinstance(cell, float) else str(cell)
            cells.append(text.rjust(widths[i]))
        return "  ".join(cells)

    print(f"\n== {title} ==")
    print(fmt(header))
    for row in rows:
        print(fmt(row))
