"""Telemetry overhead — the collector design's central claim.

The unified registry (:mod:`repro.monitor.telemetry`) promises that hot
paths pay (almost) nothing for observability: per-tuple code touches
only the plain integer counters each component already kept, and a
weakly-held collector copies them into the registry *only when a
snapshot is taken*.

This microbenchmark measures that claim on the E1 eddy workload (two
drifting filters under lottery routing, the most routing-intensive
per-tuple path in the engine):

* **telemetry-off** — the process registry disabled entirely;
* **telemetry-on**  — registry enabled, plus one snapshot per run (the
  realistic scrape pattern: thousands of tuples per scrape);
* **telemetry-hot** — registry enabled with a snapshot every 500
  tuples, an aggressive scrape rate.

Expected shape: on/off within noise (<15% — this bound is also enforced
by the tier-1 test ``tests/test_telemetry.py``), and even the
aggressive scrape rate staying a small constant factor.
"""

import time

import pytest

from repro.core.eddy import Eddy, FilterOperator
from repro.core.routing import LotteryPolicy
from repro.ingress.generators import DriftingSelectivityGenerator
from repro.monitor.telemetry import get_registry
from repro.query.predicates import Comparison

from benchmarks.conftest import print_table

N = 6000
FLIP = N // 4
PRED_A = Comparison("a", "==", 1)
PRED_B = Comparison("b", "==", 1)


def fresh_rows():
    return DriftingSelectivityGenerator(seed=3, flip_at=FLIP,
                                        low_pass=0.1,
                                        high_pass=0.9).take(N)


def eddy_run(rows, snapshot_every=0):
    ops = [FilterOperator(PRED_A, name="fa"),
           FilterOperator(PRED_B, name="fb")]
    eddy = Eddy(ops, output_sources={"drift"},
                policy=LotteryPolicy(seed=1, explore=0.05))
    reg = get_registry()
    for i, t in enumerate(rows):
        eddy.process(t, 0)
        if snapshot_every and i % snapshot_every == 0:
            reg.snapshot()
    return eddy


def timed(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        rows = fresh_rows()
        start = time.perf_counter()
        fn(rows)
        best = min(best, time.perf_counter() - start)
    return best


def test_telemetry_overhead_shape():
    reg = get_registry()
    reg.disable()
    try:
        t_off = timed(lambda rows: eddy_run(rows))
    finally:
        reg.enable()
    t_on = timed(lambda rows: (eddy_run(rows), reg.snapshot()))
    t_hot = timed(lambda rows: eddy_run(rows, snapshot_every=500))

    print_table(
        f"telemetry overhead on the E1 eddy workload (n={N})",
        ["configuration", "seconds", "vs off"],
        [("telemetry-off", f"{t_off:.4f}", 1.0),
         ("telemetry-on (1 snapshot)", f"{t_on:.4f}", t_on / t_off),
         ("telemetry-hot (scrape/500)", f"{t_hot:.4f}", t_hot / t_off)])

    # Loose sanity bounds for the benchmark run; the tier-1 test holds
    # the tight (<15%) line with more careful repetition.
    assert t_on < t_off * 1.5
    assert t_hot < t_off * 3.0


@pytest.mark.benchmark(group="telemetry")
def test_telemetry_on_timing(benchmark):
    benchmark(lambda: eddy_run(fresh_rows()))


@pytest.mark.benchmark(group="telemetry")
def test_telemetry_off_timing(benchmark):
    reg = get_registry()

    def run():
        reg.disable()
        try:
            eddy_run(fresh_rows())
        finally:
            reg.enable()

    benchmark(run)
