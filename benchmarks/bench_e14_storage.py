"""E14 — §4.3: the storage manager under bursty appends + historical
scans.

"The buffer pool manager must be tuned to both accept new bursty
streaming data, as well as service queries that access historical data."

Workload: a stream spools through a small buffer pool while a standing
windowed query repeatedly scans a recent-history window.  Swept:

* burstiness of the append stream;
* replacement policy (LRU vs CLOCK) — the DESIGN.md ablation;
* working-set fit: window within vs beyond the pool.

Expected shape: hit rate collapses once the scanned window outgrows the
pool; LRU and CLOCK behave comparably (CLOCK a touch worse, much
cheaper bookkeeping); scan answers are always exact regardless of what
got spilled where.  Spill writes are sequential (log-structured), shown
as bytes appended vs vacuumed.
"""

import random

import pytest

from repro.core.tuples import Schema
from repro.storage.buffer_pool import BufferPool
from repro.storage.spooled_stream import SpooledStream

from benchmarks.conftest import print_table

S = Schema.of("s", "v")
N_TUPLES = 4000
PAGE_CAP = 32


def run(policy, n_frames, window, scan_every=200, seed=3):
    pool = BufferPool(n_frames=n_frames, policy=policy)
    stream = SpooledStream(S, pool, page_capacity=PAGE_CAP)
    rng = random.Random(seed)
    answers = 0
    for ts in range(1, N_TUPLES + 1):
        stream.append(S.make(rng.randrange(1000), timestamp=ts))
        if ts % scan_every == 0:
            got = stream.scan_window(max(1, ts - window + 1), ts)
            assert len(got) == min(ts, window)      # exactness, always
            answers += len(got)
    result = pool.stats()
    result["answers"] = answers
    result["spill_bytes"] = pool.spill.bytes_written
    return pool, result


def test_e14_shape():
    rows = []
    for policy in ("lru", "clock"):
        for n_frames, window in ((20, 300), (20, 3000), (80, 3000)):
            _pool, stats = run(policy, n_frames, window)
            fits = "fits" if window <= n_frames * PAGE_CAP else "exceeds"
            rows.append((policy, n_frames, window, fits,
                         stats["hit_rate"], stats["evictions"]))
    print_table("E14: buffer pool under append + historical scans",
                ["policy", "frames", "window", "working set", "hit rate",
                 "evictions"], rows)
    by_key = {(r[0], r[1], r[2]): r[4] for r in rows}
    # a window that fits the pool scans mostly from memory
    assert by_key[("lru", 20, 300)] > 0.9
    # blowing past the pool collapses the hit rate
    assert by_key[("lru", 20, 3000)] < 0.55
    # more frames restore it
    assert by_key[("lru", 80, 3000)] > by_key[("lru", 20, 3000)] + 0.2
    # CLOCK tracks LRU within a reasonable band on every point
    for frames, window in ((20, 300), (20, 3000), (80, 3000)):
        assert abs(by_key[("clock", frames, window)]
                   - by_key[("lru", frames, window)]) < 0.25


def test_e14_log_structured_spill_vacuum():
    """Retiring old pages leaves dead versions in the append-only log;
    vacuum compacts them away."""
    pool = BufferPool(n_frames=8)
    stream = SpooledStream(S, pool, page_capacity=PAGE_CAP)
    for ts in range(1, N_TUPLES + 1):
        stream.append(S.make(ts, timestamp=ts))
    stream.seal()
    stream.truncate_before(N_TUPLES - 200)      # retire most pages
    before = pool.spill.size_bytes()
    reclaimed = pool.spill.vacuum()
    after = pool.spill.size_bytes()
    print_table("E14b: log-structured spill compaction",
                ["bytes before", "reclaimed", "bytes after"],
                [(before, reclaimed, after)])
    assert reclaimed > 0
    assert after + reclaimed == before
    # the surviving window still scans exactly
    got = stream.scan_window(N_TUPLES - 100, N_TUPLES)
    assert len(got) == 101


def test_e14_truncation_bounds_storage():
    pool = BufferPool(n_frames=8)
    stream = SpooledStream(S, pool, page_capacity=PAGE_CAP)
    window = 200
    for ts in range(1, N_TUPLES + 1):
        stream.append(S.make(ts, timestamp=ts))
        if ts % 500 == 0:
            stream.truncate_before(ts - window)
    assert stream.page_count < 25          # bounded, not N/PAGE_CAP ~ 125


@pytest.mark.benchmark(group="E14")
@pytest.mark.parametrize("policy", ["lru", "clock"])
def test_e14_policy_timing(benchmark, policy):
    benchmark(run, policy, 20, 1000)
