"""X3 (extension) — §4.3's Egress Modules: result delivery at scale.

"To efficiently support result delivery to large numbers of clients, we
will need operators that provide aggregation and buffering services."

Measured:

* fan-out cost — delivering one result stream to N subscribers via the
  batching FanoutEgress vs N independent per-tuple pushes: the batched
  path makes ~results/batch_size delivery calls per client and handles
  each upstream tuple once;
* mobile-client replay — PullEgress serves disconnect/reconnect cycles
  with exact resumption, and reports precisely how much a client that
  overslept the retention window missed.
"""

import pytest

from repro.core.tuples import Schema
from repro.egress.egress import FanoutEgress, PullEgress, PushEgress
from repro.fjords.fjord import Fjord
from tests.conftest import ListFeed

from benchmarks.conftest import print_table

S = Schema.of("results", "v")
N_RESULTS = 2000
N_CLIENTS = 50


def rows(n=N_RESULTS):
    return [S.make(i, timestamp=i) for i in range(n)]


def run_fanout(batch_size):
    egress = FanoutEgress(batch_size=batch_size)
    calls = {"n": 0}
    for i in range(N_CLIENTS):
        egress.subscribe(f"c{i}", lambda b: calls.__setitem__(
            "n", calls["n"] + 1))
    f = Fjord()
    f.connect(ListFeed(rows(), chunk=64), egress)
    f.run_until_finished()
    return calls["n"], egress.tuples_seen


def run_per_tuple_push():
    egress = PushEgress()
    calls = {"n": 0}
    for i in range(N_CLIENTS):
        egress.subscribe(f"c{i}", lambda t: calls.__setitem__(
            "n", calls["n"] + 1))
    f = Fjord()
    f.connect(ListFeed(rows(), chunk=64), egress)
    f.run_until_finished()
    return calls["n"]


def test_x3_shape():
    push_calls = run_per_tuple_push()
    table = [("push (per tuple)", push_calls, "-")]
    for batch in (16, 64, 256):
        calls, seen = run_fanout(batch)
        assert seen == N_RESULTS          # upstream handled once
        table.append((f"fanout batch={batch}", calls,
                      f"{push_calls / calls:.0f}x"))
    print_table(f"X3: delivery calls for {N_RESULTS} results x "
                f"{N_CLIENTS} clients",
                ["strategy", "delivery calls", "vs per-tuple"], table)
    assert push_calls == N_RESULTS * N_CLIENTS
    calls_64, _ = run_fanout(64)
    # batching collapses delivery calls by ~the batch factor
    assert calls_64 <= push_calls / 32


def test_x3_mobile_client_replay():
    egress = PullEgress(retention=500)
    egress.register_client("laptop")       # attentive
    egress.register_client("phone")        # sleeps through most of it
    f = Fjord()
    f.connect(ListFeed(rows(), chunk=64), egress)
    fed = 0
    # interleave feeding with the laptop's periodic fetches
    while not all(m.finished for m in f.modules):
        f.step()
        batch, missed = egress.fetch("laptop")
        assert missed == 0
        if batch:
            egress.acknowledge("laptop", batch[-1][0])
            fed += len(batch)
    assert fed == N_RESULTS                # attentive client saw it all
    phone_batch, phone_missed = egress.fetch("phone")
    assert len(phone_batch) == 500         # retention window
    assert phone_missed == N_RESULTS - 500


@pytest.mark.benchmark(group="X3")
@pytest.mark.parametrize("batch", [1, 64])
def test_x3_fanout_timing(benchmark, batch):
    benchmark(run_fanout, batch)
