"""F5 — Figure 5: the TelegraphCQ server folds queries into a *running*
executor.

Claims checked:

1. queries can be added and cancelled while data is flowing, with no
   pause and no cross-talk — each cursor sees exactly the post-
   registration matches of its own predicate;
2. per-client output queues and the cursor proxy hold up under 100
   concurrent continuous queries.
"""

import pytest

from repro.client import LocalConnection
from repro.ingress.generators import (CLOSING_STOCK_PRICES,
                                      StockStreamGenerator)

from benchmarks.conftest import print_table

N_DAYS = 120
ADD_EVERY = 2          # register a new query every other day
CANCEL_AT = 60


def run_dynamic_workload():
    srv = LocalConnection().server
    srv.create_stream(CLOSING_STOCK_PRICES)
    feed = StockStreamGenerator(seed=13, start_price=50.0)
    cursors = []
    registered_on = []
    for day_rows in _by_day(feed.take(N_DAYS)):
        day = day_rows[0].timestamp
        if day % ADD_EVERY == 0:
            threshold = 40 + (day % 20)
            cursors.append(srv.submit(
                f"SELECT * FROM ClosingStockPrices "
                f"WHERE closingPrice > {threshold}",
                client=f"client{day % 7}"))
            registered_on.append(day)
        if day == CANCEL_AT:
            for cursor in cursors[:10]:
                srv.cancel(cursor)
        for t in day_rows:
            srv.push_tuple("ClosingStockPrices", t)
        srv.step()
    return srv, cursors, registered_on


def _by_day(rows):
    day = []
    for t in rows:
        if day and t.timestamp != day[0].timestamp:
            yield day
            day = []
        day.append(t)
    if day:
        yield day


def test_f5_shape():
    srv, cursors, registered_on = run_dynamic_workload()
    total = sum(c.delivered for c in cursors)
    live = sum(1 for c in cursors if not c.closed)
    print_table("F5: dynamic query add/cancel against a live stream",
                ["metric", "value"],
                [("queries registered", len(cursors)),
                 ("queries cancelled", len(cursors) - live),
                 ("results delivered", total),
                 ("client proxies", sum(
                     len(p) for p in srv._proxies.values()))])
    # no query saw data from before its registration
    for cursor, day in zip(cursors, registered_on):
        for t in cursor.fetch():
            assert t.timestamp >= day
    # cancelled queries received nothing after CANCEL_AT
    for cursor in cursors[:10]:
        assert cursor.closed
    assert live == len(cursors) - 10
    assert total > 0


@pytest.mark.benchmark(group="F5")
def test_f5_dynamic_workload_timing(benchmark):
    benchmark(run_dynamic_workload)
