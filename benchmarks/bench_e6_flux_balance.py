"""E6 — §2.4 / [SHCF03]: Flux's online repartitioning rebalances a
partitioned dataflow.

Workload: Zipf-skewed group-by over four simulated machines; imbalance
comes from (a) a slow machine and (b) key skew.  Compared: static
Exchange (no repartitioning) vs Flux with online repartitioning, over a
skew sweep.

Expected shape: completion time for static Exchange degrades sharply
with skew/heterogeneity; Flux's moves flatten the curve; answers are
identical in every configuration.
"""

import random

import pytest

from repro.core.tuples import Schema
from repro.flux.cluster import Cluster, GroupCountState
from repro.flux.flux import Flux

from benchmarks.conftest import print_table

PACKETS = Schema.of("pkts", "src")
N_TUPLES = 6000
N_KEYS = 64


def stream(zipf, seed=14):
    rng = random.Random(seed)
    weights = [1.0 / (k + 1) ** zipf for k in range(N_KEYS)]
    return [PACKETS.make(rng.choices(range(N_KEYS), weights=weights)[0],
                         timestamp=i) for i in range(N_TUPLES)]


def run(data, speeds, rebalance):
    cluster = Cluster()
    for i, speed in enumerate(speeds):
        cluster.add_machine(f"m{i}", speed=speed)
    flux = Flux(cluster, n_partitions=12, key_fn=lambda t: t["src"],
                state_factory=lambda: GroupCountState("src"),
                rebalance_every=5 if rebalance else 0,
                imbalance_threshold=1.5)
    ticks = 0
    i = 0
    while i < len(data) or flux.unacked_total():
        batch = data[i:i + 120]
        i += len(batch)
        flux.tick(batch)
        ticks += 1
        if ticks > 100_000:
            raise AssertionError("no progress")
    return ticks, flux


def truth(data):
    out = {}
    for t in data:
        out[t["src"]] = out.get(t["src"], 0) + 1
    return out


def test_e6_shape():
    rows = []
    for zipf, speeds in ((0.0, (15, 110, 110, 110)),
                         (1.5, (15, 110, 110, 110)),
                         (2.0, (90, 90, 90, 90))):
        data = stream(zipf)
        static_ticks, static_flux = run(data, speeds, rebalance=False)
        adaptive_ticks, adaptive_flux = run(data, speeds, rebalance=True)
        assert static_flux.merged_counts() == truth(data)
        assert adaptive_flux.merged_counts() == truth(data)
        rows.append((zipf, str(speeds), static_ticks, adaptive_ticks,
                     adaptive_flux.moves_completed,
                     static_ticks / adaptive_ticks))
    print_table("E6: ticks to drain, static Exchange vs Flux",
                ["zipf", "speeds", "static", "flux", "moves", "speedup"],
                rows)
    # under heterogeneity, online repartitioning wins clearly
    assert rows[0][-1] > 2.0
    assert rows[1][-1] > 2.0
    # repartitioning never makes things much worse even when balanced-ish
    assert rows[2][-1] > 0.8


def test_e6_backlog_flattens_after_moves():
    data = stream(1.5)
    _ticks, flux = run(data, (15, 110, 110, 110), rebalance=True)
    assert flux.moves_completed >= 1
    # Imbalance late in the run is lower than at its peak.
    def imbalance(snapshot):
        values = list(snapshot.values())
        mean = sum(values) / len(values)
        return max(values) / mean if mean else 1.0
    history = [imbalance(s) for s in flux.backlog_history if any(s.values())]
    peak = max(history[:len(history) // 2], default=1.0)
    tail = history[-5:] if len(history) >= 5 else history
    assert max(tail, default=1.0) <= peak


@pytest.mark.benchmark(group="E6")
@pytest.mark.parametrize("rebalance", [False, True],
                         ids=["static-exchange", "flux"])
def test_e6_drain_timing(benchmark, rebalance):
    data = stream(1.5)
    benchmark(run, list(data), (15, 110, 110, 110), rebalance)
