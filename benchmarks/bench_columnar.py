"""Columnar numpy execution + plan freezing vs the earlier tiers.

Four execution tiers over the E8 stable-filter workload (two ``==``
filters on the drifting-selectivity generator with the flip disabled):

* **per-tuple** — amortized routing, python predicate evaluation per row
  (the PR 1 baseline);
* **vectorized (lists)** — the PR 2 batch pipeline with numpy forced off
  (:func:`~repro.core.columnar.numpy_disabled`): per-column python
  lists, per-element kernels;
* **columnar** — numpy-backed columns, ufunc kernels, array masks;
* **columnar + frozen** — plan freezing on top: the settled route
  compiles to a fused kernel and the per-hop eddy machinery is
  bypassed.

The batched tiers ingest through the generator's columnar path
(``take_batches``): whole columns promote to arrays once and each batch
views a zero-copy slice, so no tier pays a per-batch list-to-array
conversion.  The list tier gets the identical treatment (list slices) —
the comparison isolates the execution strategy, not the ingress format.
Batches are sized for array execution (1024 rows); the per-tuple
baseline keeps the same routing-amortization window.

Acceptance targets (ISSUE 7): columnar+frozen >=10x over per-tuple and
>=2x over the list-vectorized tier on E8 stable filters.  A drifting
run proves freezing does not trade away adaptivity: the freeze engages
on the stable prefix, thaws at the selectivity flip, and the answers
stay identical to the per-tuple path.
"""

import time

import pytest

from repro.core.columnar import have_numpy, numpy_disabled
from repro.core.eddy import Eddy, FilterOperator, SteMOperator
from repro.core.routing import BatchingDirective, LotteryPolicy
from repro.core.stem import SteM
from repro.core.tuples import Schema, TupleBatch
from repro.ingress.generators import DriftingSelectivityGenerator
from repro.query.predicates import ColumnComparison, Comparison

from benchmarks.conftest import print_table, record_result

N = 24_000
BATCH = 1024
JOIN_BATCH = 64
PRED_A = Comparison("a", "==", 1)
PRED_B = Comparison("b", "==", 1)


def _count(outputs) -> int:
    return sum(len(o) if isinstance(o, TupleBatch) else 1 for o in outputs)


def make_filter_eddy(batching):
    ops = [FilterOperator(PRED_A, name="fa"),
           FilterOperator(PRED_B, name="fb")]
    return Eddy(ops, output_sources={"drift"},
                policy=LotteryPolicy(seed=2, explore=0.05),
                batching=batching), ops


def _generator(n=N, flip_at=0):
    return DriftingSelectivityGenerator(
        seed=17, flip_at=flip_at, low_pass=0.1, high_pass=0.9)


def run_per_tuple(n=N, flip_at=0):
    rows = _generator(n, flip_at).take(n)
    eddy, _ops = make_filter_eddy(BatchingDirective(BATCH))
    out = 0
    start = time.perf_counter()
    for t in rows:
        out += len(eddy.process(t, 0))
    return out, time.perf_counter() - start, eddy


def run_batched(n=N, flip_at=0, freeze=False, **freeze_kw):
    batches = _generator(n, flip_at).take_batches(n, BATCH)
    eddy, _ops = make_filter_eddy(
        BatchingDirective(BATCH, vectorize=True))
    if freeze:
        eddy.enable_freezing(**freeze_kw)
    out = 0
    start = time.perf_counter()
    for batch in batches:
        out += _count(eddy.process_batch(batch, 0))
    return out, time.perf_counter() - start, eddy


def _best_of(fn, repeats=3):
    best = None
    for _ in range(repeats):
        result = fn()
        if best is None or result[1] < best[1]:
            best = result
    return best


def _best_of_interleaved(tiers, repeats=5):
    """Best-of-``repeats`` per tier with the tiers interleaved round-robin,
    so host-speed drift (frequency scaling, neighbours) lands on every
    tier instead of biasing whichever ran last.  Returns {name: result}."""
    best = {}
    for _ in range(repeats):
        for name, fn in tiers:
            result = fn()
            if name not in best or result[1] < best[name][1]:
                best[name] = result
    return best


# ------------------------------------------------------------- equijoin

S = Schema.of("S", "a", "k")
T = Schema.of("T", "b", "k")
JOIN_PRED = ColumnComparison("S.k", "==", "T.k")


def make_join_eddy(batching):
    ops = [SteMOperator(SteM("S", index_columns=("S.k",)), [JOIN_PRED]),
           SteMOperator(SteM("T", index_columns=("T.k",)), [JOIN_PRED]),
           FilterOperator(Comparison("a", ">", 1), name="fa")]
    return Eddy(ops, output_sources={"S", "T"},
                policy=LotteryPolicy(seed=2, explore=0.05),
                batching=batching)


def run_join(n, vectorized):
    s_rows = [S.make(i % 7, i % 997, timestamp=i) for i in range(n)]
    t_rows = [T.make(i % 5, i % 997, timestamp=i) for i in range(n)]
    batching = BatchingDirective(JOIN_BATCH, vectorize=vectorized)
    eddy = make_join_eddy(batching)
    out = 0
    start = time.perf_counter()
    if vectorized:
        # Join batches stay row-backed (from_tuples): SteM builds store
        # the row objects, so their lineage must alias the batch.
        for rows in (s_rows, t_rows):
            for i in range(0, len(rows), JOIN_BATCH):
                out += _count(eddy.process_batch(
                    TupleBatch.from_tuples(rows[i:i + JOIN_BATCH]), 0))
    else:
        for rows in (s_rows, t_rows):
            for t in rows:
                out += len(eddy.process(t, 0))
    return out, time.perf_counter() - start


# ------------------------------------------------------------ the report

@pytest.mark.skipif(not have_numpy(), reason="columnar tier needs numpy")
def test_columnar_speedup_shape():
    def run_lists():
        with numpy_disabled():
            return run_batched()
    best = _best_of_interleaved([
        ("per-tuple", run_per_tuple),
        ("lists", run_lists),
        ("columnar", run_batched),
        ("frozen", lambda: run_batched(
            freeze=True, stable_routes=4, check_every=4096)),
    ])
    out_pt, t_pt, _ = best["per-tuple"]
    out_ls, t_ls, _ = best["lists"]
    out_col, t_col, _ = best["columnar"]
    out_fz, t_fz, eddy_fz = best["frozen"]
    assert out_ls == out_pt == out_col == out_fz, \
        "execution tier must not change answers"
    assert eddy_fz.freezer.freezes >= 1, "freeze never engaged"

    n_join = N // 8
    out_jpt, t_jpt = _best_of(lambda: run_join(n_join, False))
    out_jcol, t_jcol = _best_of(lambda: run_join(n_join, True))
    assert out_jcol == out_jpt

    speedup_col = t_pt / t_col
    speedup_fz = t_pt / t_fz
    over_lists = t_ls / t_fz
    print_table(
        f"Columnar execution tiers (n={N}, batch={BATCH})",
        ["tier", "ktup/s", "vs per-tuple"],
        [("per-tuple (amortized)", N / t_pt / 1e3, 1.0),
         ("vectorized (lists)", N / t_ls / 1e3, t_pt / t_ls),
         ("columnar", N / t_col / 1e3, speedup_col),
         ("columnar + frozen", N / t_fz / 1e3, speedup_fz),
         ("equijoin columnar", N / 4 / t_jcol / 1e3, t_jpt / t_jcol)])
    record_result("columnar",
                  {"n": N, "batch": BATCH, "workload": "e8-stable-filters"},
                  throughput=N / t_fz, wall_clock_s=t_fz,
                  per_tuple_throughput=round(N / t_pt, 2),
                  list_vectorized_throughput=round(N / t_ls, 2),
                  columnar_throughput=round(N / t_col, 2),
                  speedup_vs_per_tuple=round(speedup_fz, 2),
                  speedup_vs_list_vectorized=round(over_lists, 2),
                  freezes=eddy_fz.freezer.freezes)
    record_result("columnar",
                  {"n": N // 4, "batch": BATCH, "workload": "equijoin"},
                  throughput=N / 4 / t_jcol, wall_clock_s=t_jcol,
                  per_tuple_throughput=round(N / 4 / t_jpt, 2),
                  speedup_vs_per_tuple=round(t_jpt / t_jcol, 2))
    # ISSUE 7 acceptance: >=10x over per-tuple, >=2x over the
    # list-vectorized tier, on E8 stable filters.
    assert speedup_fz >= 10.0, \
        f"columnar+frozen only {speedup_fz:.1f}x over per-tuple"
    assert over_lists >= 2.0, \
        f"columnar+frozen only {over_lists:.2f}x over list-vectorized"


@pytest.mark.skipif(not have_numpy(), reason="columnar tier needs numpy")
def test_columnar_drift_freeze_thaw_keeps_adaptivity():
    """On the drifting stream the freeze must engage on the stable
    prefix, thaw at the flip, and produce the per-tuple answers."""
    out_pt, _t, _ = run_per_tuple(flip_at=N // 2)
    # stable_routes=2: the lottery's 5% exploration makes longer streaks
    # rare inside the ~12-batch stable prefix; two consecutive identical
    # complete routes freeze it early, the flip thaws, and the post-flip
    # regime refreezes.
    out_fz, t_fz, eddy = run_batched(
        flip_at=N // 2, freeze=True, stable_routes=2, check_every=1024,
        drift_threshold=0.15)
    fz = eddy.freezer
    assert out_fz == out_pt, "freeze/thaw changed answers under drift"
    assert fz.freezes >= 1, "freeze never engaged on the stable prefix"
    assert fz.thaws >= 1, "selectivity flip never thawed the plan"
    record_result("columnar",
                  {"n": N, "batch": BATCH, "workload": "drift-freeze-thaw"},
                  throughput=N / t_fz, wall_clock_s=t_fz,
                  freezes=fz.freezes, thaws=fz.thaws,
                  frozen_rows=fz.frozen_rows,
                  thaw_reasons=[t["reason"] for t in fz.thaw_log])


@pytest.mark.perf
@pytest.mark.skipif(not have_numpy(), reason="columnar tier needs numpy")
def test_perf_columnar_floor():
    """Tier-2 regression gate (``pytest benchmarks -m perf``): at
    reduced N the frozen columnar tier must stay >=6x over per-tuple —
    a floor with headroom under CI noise, not the 10x headline."""
    _out, t_pt, _ = _best_of(lambda: run_per_tuple(8000))
    _out, t_fz, _ = _best_of(lambda: run_batched(
        8000, freeze=True, stable_routes=4, check_every=4096))
    floor = t_pt / t_fz
    assert floor >= 6.0, f"columnar+frozen floor regressed: {floor:.1f}x"
