"""E9 — §4.1: the four window classes, through the full SQL path.

Runs the paper's example queries 1-4 (snapshot, landmark, sliding/
hopping average, temporal band-join) end to end on a deterministic
ClosingStockPrices stream and checks every window's *content* against
closed-form answers; the timing half measures per-window-class
throughput.

Deterministic prices: MSFT = 45 + day, IBM = 50, ORCL = 40 (so band-join
membership flips at known days).
"""

import pytest

from repro.client import LocalConnection
from repro.ingress.generators import CLOSING_STOCK_PRICES

from benchmarks.conftest import print_table

N_DAYS = 60


def price(sym, day):
    return {"MSFT": 45.0 + day, "IBM": 50.0, "ORCL": 40.0}[sym]


def loaded_server(days=N_DAYS):
    srv = LocalConnection().server
    srv.create_stream(CLOSING_STOCK_PRICES)
    for day in range(1, days + 1):
        for sym in ("MSFT", "IBM", "ORCL"):
            srv.push("ClosingStockPrices", day, sym, price(sym, day),
                     timestamp=day)
    return srv


QUERIES = {
    "snapshot": """
        SELECT closingPrice, timestamp FROM ClosingStockPrices
        WHERE stockSymbol = 'MSFT'
        for (; t == 0; t = -1) { WindowIs(ClosingStockPrices, 1, 5); }""",
    "landmark": """
        SELECT closingPrice, timestamp FROM ClosingStockPrices
        WHERE stockSymbol = 'MSFT' and closingPrice > 50.00
        for (t = 10; t <= 50; t += 10) {
            WindowIs(ClosingStockPrices, 10, t);
        }""",
    "sliding": """
        Select AVG(closingPrice) From ClosingStockPrices
        Where stockSymbol = 'MSFT'
        for (t = 5; t < 30; t += 5) {
            WindowIs(ClosingStockPrices, t - 4, t);
        }""",
    "band-join": """
        Select c2.* FROM ClosingStockPrices as c1,
                         ClosingStockPrices as c2
        WHERE c1.stockSymbol = 'MSFT' and c2.stockSymbol != 'MSFT'
          and c2.closingPrice > c1.closingPrice
          and c2.timestamp = c1.timestamp
        for (t = 5; t < 10; t++) {
            WindowIs(c1, t - 4, t); WindowIs(c2, t - 4, t);
        }""",
}


def run_all():
    srv = loaded_server()
    cursors = {name: srv.submit(sql) for name, sql in QUERIES.items()}
    srv.close_stream("ClosingStockPrices")
    srv.run_until_quiescent()
    return {name: cursor.fetch_windows()
            for name, cursor in cursors.items()}


def test_e9_shape():
    windows = run_all()
    rows = [(name, len(ws), sum(len(r) for _t, r in ws))
            for name, ws in windows.items()]
    print_table("E9: the four §4.1 window classes (SQL end-to-end)",
                ["query", "windows", "total rows"], rows)

    # snapshot: days 1..5 of MSFT, once
    (t0, snap) = windows["snapshot"][0]
    assert [r["timestamp"] for r in snap] == [1, 2, 3, 4, 5]
    assert len(windows["snapshot"]) == 1

    # landmark: MSFT > 50 from day 6; window [10, t] counts days 10..t
    for (t, rows_) in windows["landmark"]:
        assert len(rows_) == t - 10 + 1

    # sliding: 5-day average of 45+day over days t-4..t = 45 + t - 2
    for (t, rows_) in windows["sliding"]:
        assert rows_[0]["avg_closingPrice"] == pytest.approx(45 + t - 2)

    # band-join: IBM (50) > MSFT (45+day) iff day < 5; ORCL never.
    for (t, rows_) in windows["band-join"]:
        lo = t - 4
        expected = sum(1 for day in range(lo, t + 1) if 45 + day < 50)
        assert len(rows_) == expected
        assert all(r["c2.stockSymbol"] == "IBM" for r in rows_)


def test_e9_hopping_gap_never_double_counts():
    """Hop == width: consecutive windows partition the stream; total
    rows across windows equals the stream length once."""
    srv = loaded_server(days=40)
    cursor = srv.submit("""
        SELECT timestamp FROM ClosingStockPrices
        WHERE stockSymbol = 'MSFT'
        for (t = 10; t <= 40; t += 10) {
            WindowIs(ClosingStockPrices, t - 9, t);
        }""")
    srv.close_stream("ClosingStockPrices")
    srv.run_until_quiescent()
    seen = [r["timestamp"] for _t, rows in cursor.fetch_windows()
            for r in rows]
    assert sorted(seen) == list(range(1, 41))


@pytest.mark.benchmark(group="E9")
@pytest.mark.parametrize("name", list(QUERIES))
def test_e9_window_class_timing(benchmark, name):
    def once():
        srv = loaded_server(days=30)
        cursor = srv.submit(QUERIES[name])
        srv.close_stream("ClosingStockPrices")
        srv.run_until_quiescent()
        return cursor.fetch_windows()

    benchmark(once)
