"""F2 — Figure 2: an Eddy plus two SteMs *is* an adaptive symmetric
hash join.

Claims checked:

1. correctness — the eddy/SteM construction produces exactly the result
   set of the classic symmetric hash join module, for any interleaving;
2. cost parity — the SteM route does the same asymptotic work (one
   build + one indexed probe per tuple), so adaptivity is nearly free
   when there is nothing to adapt to.
"""

import random

import pytest

from repro.core.eddy import Eddy, SteMOperator
from repro.core.operators import SymmetricHashJoin
from repro.core.routing import LotteryPolicy
from repro.core.stem import SteM
from repro.core.tuples import Schema
from repro.fjords.fjord import Fjord
from repro.fjords.module import CollectingSink
from repro.query.predicates import ColumnComparison
from tests.conftest import ListFeed

from benchmarks.conftest import print_table

S = Schema.of("S", "k", "x")
T = Schema.of("T", "k", "y")
JOIN = ColumnComparison("S.k", "==", "T.k")


def interleaved_rows(n_each=1500, n_keys=100, seed=2):
    rng = random.Random(seed)
    rows = []
    for i in range(n_each):
        rows.append(S.make(rng.randrange(n_keys), i, timestamp=i))
        rows.append(T.make(rng.randrange(n_keys), i, timestamp=i))
    return rows


def run_eddy_join(rows):
    eddy = Eddy([SteMOperator(SteM("S", ["S.k"]), [JOIN]),
                 SteMOperator(SteM("T", ["T.k"]), [JOIN])],
                output_sources={"S", "T"}, policy=LotteryPolicy(seed=0))
    out = []
    for t in rows:
        out.extend(eddy.process(t, 0))
    return out


def run_classic_shj(rows):
    shj = SymmetricHashJoin("k", "k")
    fjord = Fjord()
    sink = CollectingSink()
    fjord.connect(ListFeed([r for r in rows if "S" in r.sources], "s"),
                  shj, in_port=0)
    fjord.connect(ListFeed([r for r in rows if "T" in r.sources], "t"),
                  shj, in_port=1)
    fjord.connect(shj, sink)
    fjord.run_until_finished()
    return sink.results


def test_f2_shape():
    rows = interleaved_rows()
    eddy_out = run_eddy_join(list(rows))
    classic_out = run_classic_shj(interleaved_rows())
    print_table("F2: eddy+SteMs vs classic symmetric hash join",
                ["implementation", "results"],
                [("eddy + 2 SteMs", len(eddy_out)),
                 ("classic SHJ", len(classic_out))])
    assert len(eddy_out) == len(classic_out)
    key = lambda t: tuple(sorted(t.as_dict().items()))
    assert sorted(map(key, eddy_out)) == sorted(map(key, classic_out))


@pytest.mark.benchmark(group="F2")
def test_f2_eddy_stem_join_timing(benchmark):
    benchmark(lambda: run_eddy_join(interleaved_rows()))


@pytest.mark.benchmark(group="F2")
def test_f2_classic_shj_timing(benchmark):
    benchmark(lambda: run_classic_shj(interleaved_rows()))
