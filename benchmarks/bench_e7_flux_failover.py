"""E7 — §2.4: Flux process-pair failover and the replication QoS knob.

A machine is killed halfway through the run.  Compared:

* replication=1 — each partition has a process-pair replica: the crash
  promotes replicas, in-flight data is never pending only on the dead
  machine, and the final answer is exact (zero loss);
* replication=0 — partitions restart empty: history applied on the dead
  machine is gone, and the loss is measured precisely.

The knob's price: replication roughly doubles processed work and slows
the no-failure run — "unneeded reliability [can] be traded for improved
performance".
"""

import random

import pytest

from repro.core.tuples import Schema
from repro.flux.cluster import Cluster, GroupCountState
from repro.flux.flux import Flux

from benchmarks.conftest import print_table

PACKETS = Schema.of("pkts", "src")
N_TUPLES = 5000


def stream(seed=21):
    rng = random.Random(seed)
    return [PACKETS.make(rng.randrange(32), timestamp=i)
            for i in range(N_TUPLES)]


def run(data, replication, fail_tick=None):
    cluster = Cluster()
    for i in range(4):
        cluster.add_machine(f"m{i}", speed=70)
    flux = Flux(cluster, n_partitions=8, key_fn=lambda t: t["src"],
                state_factory=lambda: GroupCountState("src"),
                replication=replication)
    ticks = 0
    i = 0
    while i < len(data) or flux.unacked_total():
        batch = data[i:i + 120]
        i += len(batch)
        flux.tick(batch)
        ticks += 1
        if fail_tick is not None and ticks == fail_tick:
            cluster.fail("m1")
            flux.on_machine_failure("m1")
        if ticks > 100_000:
            raise AssertionError("no progress")
    return ticks, flux


def truth(data):
    out = {}
    for t in data:
        out[t["src"]] = out.get(t["src"], 0) + 1
    return out


def test_e7_shape():
    data = stream()
    expected = truth(data)
    rows = []
    for replication in (1, 0):
        ticks, flux = run(list(data), replication, fail_tick=10)
        counted = sum(flux.merged_counts().values())
        exact = flux.merged_counts() == expected
        rows.append((replication, ticks, counted, flux.lost_tuples,
                     exact, flux.cluster.total_processed()))
    print_table("E7: crash at tick 10, by replication degree",
                ["replication", "ticks", "counted", "lost", "exact",
                 "work"], rows)
    # process pairs: zero loss, exact answer
    assert rows[0][3] == 0 and rows[0][4]
    # unreplicated: real loss, fully accounted
    assert rows[1][3] > 0
    assert rows[1][2] + rows[1][3] == N_TUPLES


def test_e7_replication_cost_without_failure():
    data = stream()
    _t0, plain = run(list(data), replication=0)
    _t1, mirrored = run(list(data), replication=1)
    ratio = mirrored.cluster.total_processed() / \
        plain.cluster.total_processed()
    print_table("E7b: the QoS knob's price (no failure)",
                ["replication", "processed work"],
                [(0, plain.cluster.total_processed()),
                 (1, mirrored.cluster.total_processed())])
    assert 1.8 < ratio < 2.2                  # ~2x, as process pairs imply
    assert plain.merged_counts() == mirrored.merged_counts()


def test_e7_recovery_replays_exactly_once():
    """In-flight tuples pending on the dead machine are replayed, and
    nothing is double counted."""
    data = stream(seed=30)
    _ticks, flux = run(list(data), replication=1, fail_tick=12)
    assert flux.merged_counts() == truth(data)


@pytest.mark.benchmark(group="E7")
@pytest.mark.parametrize("replication", [0, 1])
def test_e7_failover_timing(benchmark, replication):
    data = stream()
    benchmark(run, list(data), replication, 10)
