"""E3 — §3.1 / [MSHR02]: CACQ's shared processing scales with the
number of standing queries.

Workload: N range-predicate continuous queries (``price > constant``)
over one stock stream, N swept from 10 to 1000.  Engines compared:

* per-query  — every tuple evaluated against every query (no sharing);
* NiagaraCQ  — static grouped plans; equality groups hash, but range
  constants are scanned linearly (the published design);
* CACQ       — one shared eddy + grouped filters (bisection).

Cost unit: predicate/constant comparisons per input tuple.  Expected
shape ([MSHR02] Figures 7-9): per-query and NiagaraCQ grow linearly in
N; CACQ grows ~logarithmically, so the gap widens with N — CACQ
"matches or significantly exceeds" the static systems.
"""

import random

import pytest

from repro.baselines.niagara import NiagaraEngine
from repro.baselines.per_query import PerQueryEngine
from repro.core.cacq import CACQEngine
from repro.core.tuples import Schema
from repro.ingress.generators import StockStreamGenerator
from repro.query.predicates import Comparison

from benchmarks.conftest import print_table

N_TUPLES = 400
SWEEP = [10, 50, 200, 1000]


def make_queries(engine, n, seed=5):
    rng = random.Random(seed)
    return [engine.add_query(["ClosingStockPrices"],
                             Comparison("closingPrice", ">",
                                        rng.uniform(20.0, 80.0)))
            for _ in range(n)]


def drive(engine_cls, n_queries):
    """Returns (comparisons-ish cost metric, delivered count)."""
    engine = engine_cls()
    engine.register_stream(StockStreamGenerator().schema)
    queries = make_queries(engine, n_queries)
    rows = StockStreamGenerator(seed=6, start_price=50.0,
                                volatility=3.0).take(N_TUPLES // 5)
    for t in rows:
        engine.push_tuple("ClosingStockPrices",
                          t.schema.make(*t.values, timestamp=t.timestamp))
    delivered = sum(q.delivered if hasattr(q, "delivered")
                    else len(q.results) for q in queries)
    return engine, delivered


def cost_of(engine):
    if isinstance(engine, PerQueryEngine):
        return engine.predicate_evaluations
    if isinstance(engine, NiagaraEngine):
        # range-constant scans dominate; add one per group probe.
        return engine.stats()["range_scans"] + engine.group_probes
    # CACQ: grouped-filter probes cost ~log2(n) comparisons each.
    total = 0
    for gf in engine.filters.values():
        total += gf.probes * gf.probe_cost_estimate()
    return total


def test_e3_shape():
    rows = []
    curves = {}
    for cls, label in ((PerQueryEngine, "per-query"),
                       (NiagaraEngine, "niagara"),
                       (CACQEngine, "cacq")):
        curve = []
        reference = None
        for n in SWEEP:
            engine, delivered = drive(cls, n)
            cost = cost_of(engine)
            curve.append(cost)
            if reference is None:
                reference = delivered
        curves[label] = curve
    for i, n in enumerate(SWEEP):
        rows.append((n, curves["per-query"][i], curves["niagara"][i],
                     curves["cacq"][i]))
    print_table("E3: comparison cost vs number of standing queries "
                f"({N_TUPLES} tuples)",
                ["queries", "per-query", "niagara", "cacq"], rows)
    # linear vs logarithmic growth: scaling N by 100x scales the
    # baselines' cost by ~100x but CACQ's far less.
    growth = {label: curve[-1] / curve[0] for label, curve in curves.items()}
    assert growth["per-query"] > 50
    assert growth["niagara"] > 50
    assert growth["cacq"] < 10
    # at N=1000 CACQ does at least an order of magnitude less work
    assert curves["cacq"][-1] * 10 < curves["per-query"][-1]
    assert curves["cacq"][-1] * 10 < curves["niagara"][-1]


def test_e3_answers_agree():
    """Sharing must not change answers: all three engines deliver the
    same result multiset at N=50."""
    deliveries = []
    for cls in (PerQueryEngine, NiagaraEngine, CACQEngine):
        engine = cls()
        engine.register_stream(StockStreamGenerator().schema)
        queries = make_queries(engine, 50)
        for t in StockStreamGenerator(seed=6, start_price=50.0,
                                      volatility=3.0).take(40):
            engine.push_tuple(
                "ClosingStockPrices",
                t.schema.make(*t.values, timestamp=t.timestamp))
        deliveries.append([len(q.results) for q in queries])
    assert deliveries[0] == deliveries[1] == deliveries[2]


@pytest.mark.benchmark(group="E3")
@pytest.mark.parametrize("engine_cls", [PerQueryEngine, NiagaraEngine,
                                        CACQEngine],
                         ids=["per-query", "niagara", "cacq"])
def test_e3_throughput_at_200_queries(benchmark, engine_cls):
    benchmark(drive, engine_cls, 200)
