"""E10 — §4.1.2: window type determines aggregate state.

"For a landmark window, it is possible to compute the answer [MAX]
iteratively ... for a sliding window, computing the maximum requires the
maintenance of the entire window."

Measured: retained state (values held) and per-tuple cost for MAX over

* a landmark window (insert-only aggregate),
* a sliding window with the monotonic-deque aggregate,
* a sliding window with the naive keep-everything/rescan strawman,

on adversarial (descending) input where the sliding state bound is
tight.  Expected shape: landmark state stays at 1; both sliding
variants hold ~window values; the naive variant additionally pays a
rescan per result.
"""

import pytest

from repro.core.aggregates import (MaxAggregate, NaiveSlidingExtreme,
                                   SlidingMax)

from benchmarks.conftest import print_table

N = 20_000
WINDOW = 1000


def descending_stream(n=N):
    return list(range(n, 0, -1))


def run_landmark(values):
    agg = MaxAggregate()
    peak_state = 0
    for v in values:
        agg.add(v)
        peak_state = max(peak_state, agg.state_size())
    return agg.result(), peak_state


def run_sliding(values, agg):
    window = []
    peak_state = 0
    results = []
    for v in values:
        agg.add(v)
        window.append(v)
        if len(window) > WINDOW:
            agg.remove(window.pop(0))
        results.append(agg.result())
        peak_state = max(peak_state, agg.state_size())
    return results, peak_state


def test_e10_shape():
    values = descending_stream()
    _r, landmark_state = run_landmark(values)
    smart_results, smart_state = run_sliding(values, SlidingMax())
    naive_results, naive_state = run_sliding(
        values, NaiveSlidingExtreme(max, "MAX"))
    print_table(f"E10: MAX state by window type (descending stream, "
                f"window={WINDOW})",
                ["variant", "peak retained values"],
                [("landmark", landmark_state),
                 ("sliding (deque)", smart_state),
                 ("sliding (naive)", naive_state)])
    assert smart_results == naive_results          # same answers
    assert landmark_state == 1                     # the O(1) claim
    assert smart_state >= WINDOW                   # the entire window
    assert naive_state >= WINDOW


def test_e10_friendly_input_shrinks_deque_not_naive():
    """On ascending input the monotonic deque holds O(1) *candidates*
    (plus the FIFO for eviction); the naive window always holds
    everything — the deque's advantage is in rescan cost, not raw
    retention."""
    values = list(range(N))
    agg = SlidingMax()
    window = []
    for v in values:
        agg.add(v)
        window.append(v)
        if len(window) > WINDOW:
            agg.remove(window.pop(0))
    # candidates deque is tiny even though pending FIFO is window-sized
    assert len(agg._deque) <= 2


@pytest.mark.benchmark(group="E10")
def test_e10_landmark_timing(benchmark):
    values = descending_stream(5000)
    benchmark(run_landmark, values)


@pytest.mark.benchmark(group="E10")
def test_e10_sliding_deque_timing(benchmark):
    values = descending_stream(5000)
    benchmark(lambda: run_sliding(values, SlidingMax()))


@pytest.mark.benchmark(group="E10")
def test_e10_sliding_naive_timing(benchmark):
    values = descending_stream(5000)
    benchmark(lambda: run_sliding(values,
                                  NaiveSlidingExtreme(max, "MAX")))
