"""X6 (extension) — §2.2: nested eddies bound adaptivity overhead.

"Each individual Eddy provides a scope for adaptivity; modules at the
input or output of an Eddy are not considered in the Eddy's adaptive
decision-making, and thus, do not contribute to the overhead thereof."

Workload: a 2-way join plus k filters per source.  Compared:

* flat   — one eddy over 2 SteMs + 2k filters: the routing policy picks
  among up to 2k+2 candidates per step;
* nested — one eddy over 2 SteMs + 2 per-source filter scopes: the
  outer policy sees at most 4 candidates, the inner scopes each see k.

Expected shape: identical results; the *outer* decision count is
independent of k in the nested layout while the flat layout's candidate
set (and per-decision cost) grows with k.
"""

import pytest

from repro.core.eddy import Eddy, FilterOperator, SteMOperator
from repro.core.nested_eddy import nested_filter_scope
from repro.core.routing import LotteryPolicy
from repro.core.stem import SteM
from repro.core.tuples import Schema
from repro.fjords.fjord import Fjord
from repro.fjords.module import CollectingSink
from repro.query.predicates import ColumnComparison, Comparison
from tests.conftest import ListFeed, values_of

from benchmarks.conftest import print_table

S = Schema.of("S", "k", "x")
T = Schema.of("T", "k", "y")
JOIN = ColumnComparison("S.k", "==", "T.k")
N = 600


def rows():
    import random
    rng = random.Random(9)
    out = []
    for i in range(N):
        out.append(S.make(rng.randrange(5), rng.randrange(100),
                          timestamp=i))
        out.append(T.make(rng.randrange(5), rng.randrange(100),
                          timestamp=i))
    return out


def filters_for(source, column, k):
    # conjunctive range fence: x > 2, x > 4, ..., all mostly passing
    return [Comparison(f"{source}.{column}", ">", 2 * i) for i in range(k)]


def run_flat(k):
    ops = [SteMOperator(SteM("S", ["S.k"]), [JOIN]),
           SteMOperator(SteM("T", ["T.k"]), [JOIN])]
    ops += [FilterOperator(p, name=f"sf{i}")
            for i, p in enumerate(filters_for("S", "x", k))]
    ops += [FilterOperator(p, name=f"tf{i}")
            for i, p in enumerate(filters_for("T", "y", k))]
    eddy = Eddy(ops, output_sources={"S", "T"},
                policy=LotteryPolicy(seed=1))
    f = Fjord()
    sink = CollectingSink()
    f.connect(ListFeed(rows()), eddy)
    f.connect(eddy, sink)
    f.run_until_finished()
    return sink, eddy, eddy.routing_decisions


def run_nested(k):
    s_scope = nested_filter_scope(filters_for("S", "x", k), "S",
                                  policy=LotteryPolicy(seed=2))
    t_scope = nested_filter_scope(filters_for("T", "y", k), "T",
                                  policy=LotteryPolicy(seed=3))
    ops = [SteMOperator(SteM("S", ["S.k"]), [JOIN]),
           SteMOperator(SteM("T", ["T.k"]), [JOIN]),
           s_scope, t_scope]
    eddy = Eddy(ops, output_sources={"S", "T"},
                policy=LotteryPolicy(seed=1))
    f = Fjord()
    sink = CollectingSink()
    f.connect(ListFeed(rows()), eddy)
    f.connect(eddy, sink)
    f.run_until_finished()
    inner = (s_scope.inner.routing_decisions
             + t_scope.inner.routing_decisions)
    return sink, eddy, eddy.routing_decisions, inner


def test_x6_shape():
    table = []
    outer_by_k = {}
    for k in (2, 4, 8):
        flat_sink, _e, flat_decisions = run_flat(k)
        nested_sink, _e2, outer, inner = run_nested(k)
        assert values_of(nested_sink.results) == \
            values_of(flat_sink.results)
        outer_by_k[k] = outer
        table.append((k, flat_decisions, outer, inner))
    print_table("X6: routing decisions, flat vs scoped "
                f"({N} tuples/stream)",
                ["filters/source", "flat decisions", "nested outer",
                 "nested inner"], table)
    # the outer eddy's decision load does not grow with filter count
    assert outer_by_k[8] <= outer_by_k[2] * 1.2
    # while the flat eddy keeps making (more and costlier) decisions
    assert table[-1][1] > table[-1][2] * 2


@pytest.mark.benchmark(group="X6")
@pytest.mark.parametrize("layout", ["flat", "nested"])
def test_x6_layout_timing(benchmark, layout):
    fn = run_flat if layout == "flat" else run_nested
    benchmark(fn, 6)
