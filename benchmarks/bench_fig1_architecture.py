"""F1 — Figure 1: the full Telegraph module stack composes over Fjords.

The figure is an architecture diagram; its executable claim is that the
three module rows (ingress, query processing, adaptive routing) assemble
into one dataflow mixing push and pull sources.  The benchmark wires
pull table + push stream -> eddy(SteMs + filter) -> group-by -> sink and
measures end-to-end throughput.
"""

import pytest

from repro.core.eddy import Eddy, FilterOperator, SteMOperator
from repro.core.operators import AggregateSpec, GroupByAggregate
from repro.core.routing import LotteryPolicy
from repro.core.stem import SteM
from repro.core.tuples import Schema
from repro.fjords.fjord import Fjord
from repro.fjords.module import CollectingSink
from repro.ingress.sources import PullSource, PushSource
from repro.ingress.wrappers import WrapperSourceModule
from repro.query.predicates import ColumnComparison, Comparison

from benchmarks.conftest import print_table

REF = Schema.of("ref", "k", "grp")
LIVE = Schema.of("live", "k", "v")


def build_and_run(n_live=2000, n_ref=50):
    ref_rows = [REF.make(i % n_ref, f"g{i % 4}", timestamp=i)
                for i in range(n_ref)]
    live_rows = [LIVE.make(i % n_ref, i, timestamp=i)
                 for i in range(1, n_live + 1)]
    join = ColumnComparison("ref.k", "==", "live.k")
    eddy = Eddy([SteMOperator(SteM("ref", ["ref.k"]), [join]),
                 SteMOperator(SteM("live", ["live.k"]), [join]),
                 FilterOperator(Comparison("live.v", ">", 10))],
                output_sources={"ref", "live"},
                policy=LotteryPolicy(seed=0), arity_in=2)
    agg = GroupByAggregate(["grp"], [AggregateSpec("count", None)])
    fjord = Fjord("fig1")
    sink = CollectingSink()
    fjord.connect(WrapperSourceModule(PullSource("ref", ref_rows)),
                  eddy, in_port=0)
    fjord.connect(WrapperSourceModule(PushSource("live", live_rows)),
                  eddy, in_port=1)
    fjord.connect(eddy, agg)
    fjord.connect(agg, sink)
    fjord.run_until_finished()
    return sink


def test_f1_shape():
    sink = build_and_run()
    rows = [(t["grp"], t["count"]) for t in sink.results]
    total = sum(c for _g, c in rows)
    print_table("F1: Figure 1 stack, grouped join counts",
                ["group", "joined rows"], sorted(rows))
    # every live row with v > 10 joins exactly one ref row
    assert total == 2000 - 10
    assert len(rows) == 4


@pytest.mark.benchmark(group="F1")
def test_f1_throughput(benchmark):
    benchmark(build_and_run, 1000, 50)
