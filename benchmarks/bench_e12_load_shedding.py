"""E12 — §4.3: QoS load shedding keeps the engine from falling behind.

"deciding what work to drop when the system is in danger of falling
behind the incoming data stream" — with user preferences pushed into
the decision (the Juggle/[UF02] position).

Setup: arrival rate exceeds service rate by 1x / 2x / 4x.  Policies:

* none      — backlog (and so latency) grows without bound at >1x;
* random    — backlog stays bounded; completeness degrades to ~1/factor;
* preferred — same backlog bound, but the drop budget is spent on the
  low-value class, so high-value completeness stays near 1.

Expected shape: max backlog {unbounded, bounded, bounded};
gold-class completeness {1, ~1/factor, ~1}.
"""

import pytest

from repro.core.cacq import CACQEngine
from repro.core.tuples import Schema
from repro.ingress.generators import PacketStreamGenerator
from repro.monitor.qos import LoadShedder
from repro.query.predicates import Comparison

from benchmarks.conftest import print_table

N_PACKETS = 4000
SERVICE = 50
WATCHED = {"h0", "h1", "h2"}


def shedder_for(policy):
    if policy == "preferred":
        return LoadShedder(policy="preferred", seed=3,
                           classify=lambda t: t["src"] in WATCHED,
                           preferences={True: 10.0, False: 0.0},
                           target_utilisation=1.0)
    return LoadShedder(policy=policy, seed=3, target_utilisation=1.0)


def run(policy, overload_factor):
    packets = PacketStreamGenerator(n_hosts=40, seed=5).take(N_PACKETS)
    epoch = int(SERVICE * overload_factor)
    shedder = shedder_for(policy)
    engine = CACQEngine()
    engine.register_stream(PacketStreamGenerator().schema)
    watched_q = engine.add_query(
        ["PacketSummaries"],
        Comparison("src", "==", "h0") | Comparison("src", "==", "h1")
        | Comparison("src", "==", "h2"))
    backlog = 0
    max_backlog = 0
    watched_in = 0
    for start in range(0, len(packets), epoch):
        arriving = packets[start:start + epoch]
        watched_in += sum(1 for t in arriving if t["src"] in WATCHED)
        shedder.update(arrived=len(arriving), serviced=SERVICE)
        admitted = shedder.admit(arriving)
        backlog = max(0, backlog + len(admitted) - SERVICE)
        max_backlog = max(max_backlog, backlog)
        for t in admitted:
            engine.push_tuple("PacketSummaries", t)
    watched_completeness = (watched_q.delivered / watched_in
                            if watched_in else 1.0)
    return max_backlog, shedder.completeness(), watched_completeness


def test_e12_shape():
    rows = []
    results = {}
    for factor in (1, 2, 4):
        for policy in ("none", "random", "preferred"):
            max_backlog, completeness, watched = run(policy, factor)
            results[(policy, factor)] = (max_backlog, completeness,
                                         watched)
            rows.append((policy, factor, max_backlog, completeness,
                         watched))
    print_table("E12: overload behaviour by shedding policy",
                ["policy", "overload", "max backlog", "completeness",
                 "watched-class completeness"], rows)
    # at 1x nobody drops
    for policy in ("none", "random", "preferred"):
        assert results[(policy, 1)][1] == 1.0
    # at 4x: no-shedding backlog explodes; shedders stay bounded
    assert results[("none", 4)][0] > 20 * results[("random", 4)][0]
    assert results[("random", 4)][0] < 3 * SERVICE
    # random sacrifices the watched class proportionally...
    assert results[("random", 4)][2] < 0.5
    # ...preferred protects it while shedding the same overall volume
    assert results[("preferred", 4)][2] > 0.9
    assert abs(results[("preferred", 4)][1]
               - results[("random", 4)][1]) < 0.15


@pytest.mark.benchmark(group="E12")
@pytest.mark.parametrize("policy", ["none", "random", "preferred"])
def test_e12_policy_timing(benchmark, policy):
    benchmark(run, policy, 4)
