"""E6/E7 on the real multiprocess data plane (``pytest -m cluster``).

The simulated E6/E7 benchmarks measure balance and failover in *ticks*;
these port the same two workloads to
:class:`~repro.flux.procs.MultiprocessBackend` so the numbers become
wall-clock: per-worker throughput on real interpreters, recovery
milliseconds for a SIGKILL'd process pair, and the drain-time cost of
worker heterogeneity.  Both backends run the identical Flux code path —
the simulated run rides along as the in-file control.

Results land in ``BENCH_flux_mp.json``; ``cpus`` is recorded with every
entry because scale-out headroom (and the E6-style speedup) depends on
the cores actually available to this container.
"""

import os
import random

import pytest

from repro.core.tuples import Schema
from repro.flux.cluster import Cluster, GroupCountState
from repro.flux.flux import Flux
from repro.flux.procs import MultiprocessBackend
from repro.monitor.clock import now

from benchmarks.conftest import print_table, record_result

pytestmark = pytest.mark.cluster

PACKETS = Schema.of("pkts", "src")
N_TUPLES = 4000
N_KEYS = 32
CPUS = len(os.sched_getaffinity(0))


def stream(zipf=0.0, seed=14, n=N_TUPLES):
    rng = random.Random(seed)
    if zipf:
        weights = [1.0 / (k + 1) ** zipf for k in range(N_KEYS)]
        return [PACKETS.make(rng.choices(range(N_KEYS),
                                         weights=weights)[0],
                             timestamp=i) for i in range(n)]
    return [PACKETS.make(rng.randrange(N_KEYS), timestamp=i)
            for i in range(n)]


def truth(data):
    out = {}
    for t in data:
        out[t["src"]] = out.get(t["src"], 0) + 1
    return out


def group_factory():
    return GroupCountState("src")


def drive(backend, data, replication=0, fail_tick=None, batch=200):
    """Run the standard E6/E7 drive loop; returns (flux, wall_seconds)."""
    flux = Flux(backend, n_partitions=8, key_fn=lambda t: t["src"],
                state_factory=group_factory, replication=replication)
    started = now()
    ticks = 0
    i = 0
    while i < len(data) or flux.unacked_total():
        rows = data[i:i + batch]
        i += len(rows)
        flux.tick(rows)
        ticks += 1
        if fail_tick is not None and ticks == fail_tick:
            backend.fail("w1")
            flux.on_machine_failure("w1")
        if ticks > 100_000:
            raise AssertionError("no progress")
    return flux, now() - started


def sim_backend(n=3):
    cluster = Cluster()
    for i in range(n):
        cluster.add_machine(f"w{i}", speed=70)
    return cluster


def test_mp_e6_balance_wall_clock():
    """E6 on processes: a spun-down worker is genuinely slower; the run
    completes with exact answers and the imbalance is measured in
    wall-clock backlog, not simulated ticks."""
    data = stream(zipf=1.2)
    expected = truth(data)
    rows = []
    for label, spins in (("uniform", {}),
                         ("hetero", {"w0": 1500})):
        with MultiprocessBackend(workers=3, spins=spins) as backend:
            flux, wall = drive(backend, list(data))
            assert flux.merged_counts() == expected
            per_worker = {w: backend.processed_count(w)
                          for w in backend.machine_ids()}
            rows.append((label, round(wall, 3),
                         round(len(data) / wall),
                         str(per_worker)))
            record_result(
                "flux_mp", {
                    "experiment": "e6_balance",
                    "workers": 3,
                    "spins": spins,
                    "tuples": len(data),
                    "cpus": CPUS,
                },
                throughput=len(data) / wall,
                wall_clock_s=wall,
                per_worker_processed=per_worker,
                backend="multiprocess")
    print_table("E6-mp: wall-clock drain on real workers",
                ["workers", "wall_s", "tuples/s", "per-worker"], rows)


def test_mp_e7_failover_wall_clock():
    """E7 on processes: SIGKILL a worker mid-run.  Replicated runs lose
    nothing and the recovery time (snapshot + install + replay over
    real pipes) is recorded in milliseconds of wall clock."""
    data = stream(seed=21)
    expected = truth(data)
    rows = []
    for replication in (1, 0):
        with MultiprocessBackend(workers=3) as backend:
            flux, wall = drive(backend, list(data),
                               replication=replication, fail_tick=4)
            counted = sum(flux.merged_counts().values())
            recovery_ms = flux.recovery_times_ms[-1]
            exact = flux.merged_counts() == expected
            rows.append((replication, round(wall, 3), counted,
                         flux.lost_tuples, exact,
                         round(recovery_ms, 2)))
            record_result(
                "flux_mp", {
                    "experiment": "e7_failover",
                    "workers": 3,
                    "replication": replication,
                    "tuples": len(data),
                    "cpus": CPUS,
                },
                throughput=len(data) / wall,
                wall_clock_s=wall,
                recovery_ms=recovery_ms,
                lost_tuples=flux.lost_tuples,
                exact=exact,
                backend="multiprocess")
    print_table("E7-mp: SIGKILL at tick 4, by replication degree",
                ["replication", "wall_s", "counted", "lost", "exact",
                 "recovery_ms"], rows)
    # process pairs: zero loss, exact answer, measurable recovery
    assert rows[0][3] == 0 and rows[0][4]
    assert rows[0][5] > 0.0
    # unreplicated: loss fully accounted
    assert rows[1][2] + rows[1][3] == len(data)


def test_mp_vs_simulated_same_answers():
    """The control: identical workload through both substrates."""
    data = stream(zipf=1.2, seed=8)
    sim_flux, sim_wall = drive(sim_backend(3), list(data), replication=1)
    with MultiprocessBackend(workers=3) as backend:
        mp_flux, mp_wall = drive(backend, list(data), replication=1)
        assert mp_flux.merged_counts() == sim_flux.merged_counts() \
            == truth(data)
    record_result(
        "flux_mp", {
            "experiment": "parity",
            "workers": 3,
            "replication": 1,
            "tuples": len(data),
            "cpus": CPUS,
        },
        throughput=len(data) / mp_wall,
        wall_clock_s=mp_wall,
        simulated_wall_clock_s=round(sim_wall, 6),
        backend="multiprocess")
    print_table("parity: simulated vs multiprocess, replicated",
                ["backend", "wall_s"],
                [("simulated", round(sim_wall, 3)),
                 ("multiprocess", round(mp_wall, 3))])
