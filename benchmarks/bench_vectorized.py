"""Vectorized batch pipeline vs amortized-routing batching (§4.3).

``BatchingDirective(64)`` only amortizes the *routing decision*; every
tuple still pays the full Python call chain through ``Eddy.process``,
``Predicate.matches``, and per-item queue pushes.  The vectorized path
(``BatchingDirective(64, vectorize=True)``) makes the batch first-class
data: columnar :class:`TupleBatch` objects flow through compiled
predicate kernels and batch SteM probes.

Two workloads:

* **filters** — the E8 stable-stream workload (two ``==`` filters over
  the drifting-selectivity generator with the flip disabled): the
  acceptance target is >=2x throughput at batch=64 over the amortized
  path;
* **join** — a two-stream equijoin through two SteMs plus one filter,
  showing the batch build/probe kernels.

A drifting-stream run checks the adaptivity penalty keeps the E8 shape
(graceful degradation, identical answers).
"""

import time

import pytest

from repro.core.eddy import Eddy, FilterOperator, SteMOperator
from repro.core.routing import BatchingDirective, LotteryPolicy
from repro.core.stem import SteM
from repro.core.tuples import Schema, TupleBatch
from repro.ingress.generators import DriftingSelectivityGenerator
from repro.query.predicates import ColumnComparison, Comparison

from benchmarks.conftest import print_table, record_result

N = 24_000
BATCH = 64
PRED_A = Comparison("a", "==", 1)
PRED_B = Comparison("b", "==", 1)


def _count(outputs) -> int:
    return sum(len(o) if isinstance(o, TupleBatch) else 1 for o in outputs)


def make_filter_eddy(batching):
    ops = [FilterOperator(PRED_A, name="fa"),
           FilterOperator(PRED_B, name="fb")]
    return Eddy(ops, output_sources={"drift"},
                policy=LotteryPolicy(seed=2, explore=0.05),
                batching=batching), ops


def run_filters_per_tuple(make_rows, batching):
    # Routing mutates tuples in place (done bits, dead flags), so every
    # run gets a fresh stream; generation happens outside the timer.
    rows = make_rows()
    eddy, ops = make_filter_eddy(batching)
    out = 0
    start = time.perf_counter()
    for t in rows:
        out += len(eddy.process(t, 0))
    elapsed = time.perf_counter() - start
    return out, elapsed, ops[0].seen + ops[1].seen


def run_filters_vectorized(make_rows, batching):
    rows = make_rows()
    eddy, ops = make_filter_eddy(batching)
    out = 0
    start = time.perf_counter()
    for i in range(0, len(rows), batching.batch_size):
        batch = TupleBatch.from_tuples(rows[i:i + batching.batch_size])
        out += _count(eddy.process_batch(batch, 0))
    elapsed = time.perf_counter() - start
    return out, elapsed, ops[0].seen + ops[1].seen


def stable_stream(n=N):
    return lambda: DriftingSelectivityGenerator(
        seed=17, flip_at=0, low_pass=0.1, high_pass=0.9).take(n)


def drifting_stream(n=N, flip_at=N // 4):
    return lambda: DriftingSelectivityGenerator(
        seed=17, flip_at=flip_at, low_pass=0.1, high_pass=0.9).take(n)


S = Schema.of("S", "a", "k")
T = Schema.of("T", "b", "k")
JOIN_PRED = ColumnComparison("S.k", "==", "T.k")


def make_join_eddy(batching):
    stem_s = SteM("S", index_columns=("S.k",))
    stem_t = SteM("T", index_columns=("T.k",))
    ops = [SteMOperator(stem_s, [JOIN_PRED]),
           SteMOperator(stem_t, [JOIN_PRED]),
           FilterOperator(Comparison("a", ">", 1), name="fa")]
    return Eddy(ops, output_sources={"S", "T"},
                policy=LotteryPolicy(seed=2, explore=0.05),
                batching=batching)


def join_rows(n):
    # Sparse keys: the workload measures probe overhead, not the cost of
    # routing a combinatorial match explosion (which is per-tuple work in
    # both paths by construction).
    s_rows = [S.make(i % 7, i % 997, timestamp=i) for i in range(n)]
    t_rows = [T.make(i % 5, i % 997, timestamp=i) for i in range(n)]
    return s_rows, t_rows


def run_join(n, batching, vectorized):
    s_rows, t_rows = join_rows(n)
    eddy = make_join_eddy(batching)
    out = 0
    start = time.perf_counter()
    if vectorized:
        for rows in (s_rows, t_rows):
            for i in range(0, len(rows), batching.batch_size):
                batch = TupleBatch.from_tuples(
                    rows[i:i + batching.batch_size])
                out += _count(eddy.process_batch(batch, 0))
    else:
        for rows in (s_rows, t_rows):
            for t in rows:
                out += len(eddy.process(t, 0))
    elapsed = time.perf_counter() - start
    return out, elapsed


def _best_of(fn, repeats=3):
    best = None
    for _ in range(repeats):
        result = fn()
        if best is None or result[1] < best[1]:
            best = result
    return best


def test_vectorized_speedup_shape():
    make_rows = stable_stream()
    amortized = BatchingDirective(BATCH)
    vectorized = BatchingDirective(BATCH, vectorize=True)
    out_ref, t_ref, _ = _best_of(
        lambda: run_filters_per_tuple(make_rows, amortized))
    out_vec, t_vec, _ = _best_of(
        lambda: run_filters_vectorized(make_rows, vectorized))
    assert out_vec == out_ref, "vectorization must not change answers"

    out_jref, t_jref = _best_of(lambda: run_join(N // 8, amortized, False))
    out_jvec, t_jvec = _best_of(lambda: run_join(N // 8, vectorized, True))
    assert out_jvec == out_jref

    speedup = t_ref / t_vec
    join_speedup = t_jref / t_jvec
    print_table(
        f"Vectorized batch pipeline (n={N}, batch={BATCH})",
        ["workload", "amortized ktup/s", "vectorized ktup/s", "speedup"],
        [("filters (E8 stable)", N / t_ref / 1e3, N / t_vec / 1e3, speedup),
         ("equijoin + filter", N / 4 / t_jref / 1e3, N / 4 / t_jvec / 1e3,
          join_speedup)])
    record_result("vectorized",
                  {"n": N, "batch": BATCH, "workload": "e8-stable-filters"},
                  throughput=N / t_vec, wall_clock_s=t_vec,
                  baseline_throughput=round(N / t_ref, 2),
                  speedup=round(speedup, 2))
    record_result("vectorized",
                  {"n": N // 4, "batch": BATCH, "workload": "equijoin"},
                  throughput=N / 4 / t_jvec, wall_clock_s=t_jvec,
                  baseline_throughput=round(N / 4 / t_jref, 2),
                  speedup=round(join_speedup, 2))
    # The acceptance target: >=2x over the amortized-routing path.
    assert speedup >= 2.0, f"vectorized speedup only {speedup:.2f}x"
    assert join_speedup >= 1.2, \
        f"vectorized join speedup only {join_speedup:.2f}x"


def test_vectorized_drift_penalty_keeps_e8_shape():
    """On the drifting stream the batch path re-adapts per batch; extra
    predicate work must stay within E8's graceful-degradation envelope
    and answers must be identical."""
    make_rows = drifting_stream()
    out_pt, _t, work_pt = run_filters_per_tuple(
        make_rows, BatchingDirective(1))
    out_vec, _t, work_vec = run_filters_vectorized(
        make_rows, BatchingDirective(BATCH, vectorize=True))
    assert out_vec == out_pt
    assert work_vec <= work_pt * 1.35, \
        f"drift work {work_vec} vs per-tuple {work_pt}"


@pytest.mark.perf
def test_perf_vectorized_not_slower_smoke():
    """Tier-2 regression gate (``pytest benchmarks -m perf``): at reduced
    N the vectorized path must not be slower than amortized per-tuple
    routing.  Generous threshold — this guards against pathological
    regressions, not noise."""
    make_rows = stable_stream(4000)
    _out, t_ref, _ = _best_of(
        lambda: run_filters_per_tuple(make_rows, BatchingDirective(BATCH)))
    _out, t_vec, _ = _best_of(
        lambda: run_filters_vectorized(
            make_rows, BatchingDirective(BATCH, vectorize=True)))
    assert t_vec <= t_ref * 1.10, \
        f"vectorized path regressed: {t_vec:.4f}s vs {t_ref:.4f}s"


@pytest.mark.benchmark(group="vectorized")
@pytest.mark.parametrize("vectorize", [False, True],
                         ids=["amortized", "vectorized"])
def test_vectorized_filter_timing(benchmark, vectorize):
    make_rows = stable_stream(3000)
    directive = BatchingDirective(BATCH, vectorize=vectorize)
    if vectorize:
        benchmark(run_filters_vectorized, make_rows, directive)
    else:
        benchmark(run_filters_per_tuple, make_rows, directive)
