"""X7 (extension) — §4.3: the cluster-based TelegraphCQ.

"We are currently extending the Flux module to serve as the basis of
the cluster-based implementation of TelegraphCQ."  CACQ becomes the
consumer of a Flux-partitioned dataflow: every machine runs the full
query set over its hash partition of the streams (co-partitioned on the
join key).

Measured:

* **correctness** — merged per-query deliveries equal the single-engine
  CACQ reference, for selections and joins, on 1/2/4-machine clusters;
* **scaling** — ticks to drain fall as machines are added (per-machine
  service rate is the bottleneck);
* **failover** — a mid-run crash with process pairs changes nothing.
"""

import random

import pytest

from repro.core.cacq import CACQEngine
from repro.core.tuples import Schema
from repro.flux.cluster import Cluster
from repro.flux.parallel_cacq import ParallelCACQ
from repro.query.predicates import And, ColumnComparison, Comparison

from benchmarks.conftest import print_table

TRADES = Schema.of("trades", "sym", "price")
QUOTES = Schema.of("quotes", "sym", "bid")
SPECS = [
    (("trades",), Comparison("price", ">", 40)),
    (("trades", "quotes"),
     ColumnComparison("trades.sym", "==", "quotes.sym")),
    (("trades", "quotes"),
     And(ColumnComparison("trades.sym", "==", "quotes.sym"),
         Comparison("quotes.bid", ">", 60))),
]
N = 3000


def workload(seed=8):
    rng = random.Random(seed)
    syms = [f"s{i}" for i in range(24)]
    rows = []
    for i in range(N):
        if rng.random() < 0.5:
            rows.append(TRADES.make(rng.choice(syms),
                                    float(rng.randrange(100)),
                                    timestamp=i))
        else:
            rows.append(QUOTES.make(rng.choice(syms),
                                    float(rng.randrange(100)),
                                    timestamp=i))
    return rows


def reference_counts(rows):
    engine = CACQEngine()
    engine.register_stream(TRADES)
    engine.register_stream(QUOTES)
    queries = [engine.add_query(list(streams), predicate)
               for streams, predicate in SPECS]
    for t in rows:
        (stream,) = t.sources
        engine.push_tuple(stream,
                          t.schema.make(*t.values, timestamp=t.timestamp))
    return [q.delivered for q in queries]


def run_cluster(rows, n_machines, replication=0, fail_at=None):
    cluster = Cluster()
    for i in range(n_machines):
        cluster.add_machine(f"m{i}", speed=50)
    engine = ParallelCACQ(cluster, partition_column="sym",
                          n_partitions=max(8, 2 * n_machines),
                          replication=replication)
    engine.register_stream(TRADES)
    engine.register_stream(QUOTES)
    for streams, predicate in SPECS:
        engine.add_query(streams, predicate)
    i = 0
    ticks = 0
    while i < len(rows) or engine.flux.unacked_total():
        engine.tick(rows[i:i + 200])
        i = min(len(rows), i + 200)
        ticks += 1
        if fail_at is not None and ticks == fail_at:
            engine.fail_machine("m1")
        assert ticks < 50_000
    return engine, ticks


def test_x7_shape():
    reference = reference_counts(workload())
    rows_table = []
    ticks_by_n = {}
    for n_machines in (1, 2, 4):
        engine, ticks = run_cluster(workload(), n_machines)
        assert engine.delivered_counts() == reference
        ticks_by_n[n_machines] = ticks
        rows_table.append((n_machines, ticks,
                           ticks_by_n[1] / ticks))
    print_table(f"X7: parallel CACQ over Flux ({N} tuples, "
                f"{len(SPECS)} queries)",
                ["machines", "ticks to drain", "speedup vs 1"],
                rows_table)
    assert ticks_by_n[2] < ticks_by_n[1] * 0.7
    assert ticks_by_n[4] < ticks_by_n[2] * 0.8


def test_x7_failover_preserves_answers():
    reference = reference_counts(workload())
    engine, _ticks = run_cluster(workload(), 4, replication=1, fail_at=4)
    assert engine.delivered_counts() == reference
    assert engine.flux.lost_tuples == 0
    print_table("X7b: mid-run crash with process pairs",
                ["query", "delivered", "reference"],
                [(i, got, ref) for i, (got, ref) in
                 enumerate(zip(engine.delivered_counts(), reference))])


@pytest.mark.benchmark(group="X7")
@pytest.mark.parametrize("n_machines", [1, 4])
def test_x7_cluster_timing(benchmark, n_machines):
    benchmark(lambda: run_cluster(workload(), n_machines))
