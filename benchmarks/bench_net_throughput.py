"""The network door's price tag: frames/s and submit→first-row latency.

Measures the asyncio service over real loopback sockets at 1, 32, and
256 concurrent connections, against the in-process
:class:`LocalConnection` as the no-wire baseline:

* **push throughput** — wire frames per second through the PUSH path
  (each frame a batch of rows), engine folding included;
* **submit→first-row p99** — the latency from SUBMIT to the first
  matching row fetched back, the interactive-use number that suffers
  first when one pump thread serves many doors.

The point is not that TCP beats a function call (it cannot); the gate
is that the service stays in the same order of magnitude and that
latency degrades sub-linearly in connection count — the pump's
frame-budgeted round-robin is doing its job.
"""

import asyncio
import statistics
import time

import pytest

from repro.client import LocalConnection
from repro.net.aioclient import AsyncFrameClient
from repro.net.service import TelegraphCQService

from benchmarks.conftest import print_table, record_result

ROWS_PER_PUSH = 8
PUSHES_PER_CLIENT = {1: 400, 32: 25, 256: 4}
LATENCY_SAMPLES = {1: 100, 32: 4, 256: 1}


def in_process_baseline():
    """The same workload with no wire: one LocalConnection."""
    conn = LocalConnection()
    conn.create_stream("s", "a", "b")
    cur = conn.submit("SELECT * FROM s WHERE a >= 0")
    pushes = 400
    t0 = time.perf_counter()
    for i in range(pushes):
        conn.push_rows("s", [[i, j] for j in range(ROWS_PER_PUSH)])
    wall = time.perf_counter() - t0
    lat = []
    for i in range(100):
        t1 = time.perf_counter()
        c = conn.submit(f"SELECT * FROM s WHERE a = {-1 - i}")
        conn.push("s", -1 - i, 0)
        rows = c.fetch()
        lat.append(time.perf_counter() - t1)
        assert len(rows) == 1
        c.close()
    assert len(cur.fetch()) == pushes * ROWS_PER_PUSH
    conn.close()
    return pushes / wall, lat


async def drive_clients(port, n_clients):
    clients = [AsyncFrameClient("127.0.0.1", port) for _ in range(n_clients)]
    await asyncio.gather(*(c.connect(client=f"b{i}")
                           for i, c in enumerate(clients)))
    pushes = PUSHES_PER_CLIENT[n_clients]

    async def push_loop(c, base):
        for i in range(pushes):
            await c.request("PUSH", stream="s", rows=[
                [base * 1000 + i, j] for j in range(ROWS_PER_PUSH)])

    t0 = time.perf_counter()
    await asyncio.gather(*(push_loop(c, i) for i, c in enumerate(clients)))
    push_wall = time.perf_counter() - t0

    samples = LATENCY_SAMPLES[n_clients]

    async def first_row_lat(c, key):
        t1 = time.perf_counter()
        sub = await c.request("SUBMIT", query=f"SELECT * FROM s "
                                              f"WHERE a = {key}")
        await c.request("PUSH", stream="s", rows=[[key, 0]])
        rows = (await c.request("FETCH", cursor=sub["cursor"]))["rows"]
        elapsed = time.perf_counter() - t1
        assert len(rows) == 1
        await c.request("CANCEL", cursor=sub["cursor"])
        return elapsed

    lat = []
    for s in range(samples):
        round_lat = await asyncio.gather(*(
            first_row_lat(c, -(1 + s * n_clients + i))
            for i, c in enumerate(clients)))
        lat.extend(round_lat)
    await asyncio.gather(*(c.close() for c in clients))
    return n_clients * pushes / push_wall, lat


def run_networked(n_clients):
    async def scenario():
        service = TelegraphCQService(admin_port=None)
        await service.start()
        try:
            boot = AsyncFrameClient("127.0.0.1", service.port)
            await boot.connect(client="boot")
            await boot.request("DDL", action="create_stream", name="s",
                               columns=["a", "b"])
            result = await drive_clients(service.port, n_clients)
            await boot.close()
            return result
        finally:
            await service.stop()

    return asyncio.run(scenario())


def p99(samples):
    if len(samples) < 2:
        return samples[0]
    return statistics.quantiles(samples, n=100)[-1]


@pytest.mark.perf
@pytest.mark.net
def test_net_throughput_vs_in_process():
    base_fps, base_lat = in_process_baseline()
    rows_table = [("in-process", f"{base_fps:,.0f}",
                   f"{p99(base_lat) * 1e3:.2f}")]
    results = {}
    for n in (1, 32, 256):
        fps, lat = run_networked(n)
        results[n] = (fps, lat)
        rows_table.append((f"{n} conn", f"{fps:,.0f}",
                           f"{p99(lat) * 1e3:.2f}"))
    print_table(
        "NET: framed wire protocol vs in-process "
        f"({ROWS_PER_PUSH} rows/push frame)",
        ["clients", "push frames/s", "submit→first-row p99 (ms)"],
        rows_table)

    record_result(
        "net", {"rows_per_push": ROWS_PER_PUSH},
        throughput=results[1][0], wall_clock_s=0.0,
        frames_per_s={str(n): round(results[n][0], 2) for n in results},
        p99_submit_to_first_row_ms={
            str(n): round(p99(results[n][1]) * 1e3, 3) for n in results},
        in_process_pushes_per_s=round(base_fps, 2),
        in_process_p99_ms=round(p99(base_lat) * 1e3, 3))

    # Gates: the wire must stay within two orders of magnitude of a
    # function call, and 256 doors must not collapse the pump.
    assert results[1][0] > base_fps / 100
    assert p99(results[256][1]) < 100 * max(p99(results[1][1]), 1e-4)
