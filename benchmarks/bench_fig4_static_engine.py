"""F4 — Figure 4: the PostgreSQL-style one-shot execution path.

TelegraphCQ keeps the classic parse -> optimize -> iterate pipeline for
snapshot queries over static tables.  The benchmark drives it through
the full SQL front end (scan, filter, projection, hash join) and checks
the results against hand-computed answers.
"""

import pytest

from repro.client import LocalConnection
from repro.core.tuples import Schema

from benchmarks.conftest import print_table

N_EMPS = 2000
N_DEPTS = 40


def build_server():
    srv = LocalConnection().server
    srv.create_table(
        Schema.of("emps", "emp_id", "dept", "salary"),
        [(i, f"d{i % N_DEPTS}", 30_000 + (i * 137) % 90_000)
         for i in range(N_EMPS)])
    srv.create_table(
        Schema.of("depts", "dept", "building"),
        [(f"d{i}", f"b{i % 5}") for i in range(N_DEPTS)])
    return srv


def run_queries(srv):
    selection = srv.submit(
        "SELECT emp_id FROM emps WHERE salary > 100000")
    join = srv.submit(
        "SELECT * FROM emps, depts WHERE emps.dept = depts.dept "
        "and emps.salary > 100000 and depts.building = 'b0'")
    return selection.fetch(), join.fetch()


def test_f4_shape():
    srv = build_server()
    selection, join = run_queries(srv)
    expected_selection = sum(
        1 for i in range(N_EMPS) if 30_000 + (i * 137) % 90_000 > 100_000)
    expected_join = sum(
        1 for i in range(N_EMPS)
        if 30_000 + (i * 137) % 90_000 > 100_000 and (i % N_DEPTS) % 5 == 0)
    print_table("F4: snapshot path over static tables",
                ["query", "rows", "expected"],
                [("selection", len(selection), expected_selection),
                 ("join", len(join), expected_join)])
    assert len(selection) == expected_selection
    assert len(join) == expected_join


@pytest.mark.benchmark(group="F4")
def test_f4_snapshot_timing(benchmark):
    srv = build_server()
    benchmark(run_queries, srv)
