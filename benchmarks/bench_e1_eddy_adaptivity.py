"""E1 — §2.2 / [AH00]: eddies adapt to drifting selectivities.

Workload: two commutative filters over a stream whose column
distributions *flip* a quarter of the way in
(DriftingSelectivityGenerator).  Before the flip, filter A drops ~90% of
tuples and B ~10%; afterwards they swap — so the plan-time statistics
describe only 25% of the data a static optimizer commits to.

Plans compared (cost = predicate evaluations, the same unit for all):

* static-initial  — the order a conventional optimizer freezes from the
  initial statistics (optimal before the flip, wrong after);
* static-oracle   — the best *possible* fixed order for the whole run,
  found by brute force (the paper's offline-optimal yardstick);
* eddy-lottery    — per-tuple lottery routing;
* eddy-greedy     — deterministic lowest-observed-selectivity routing;
* eddy-random     — the naive adaptive strawman.

Expected shape (paper): the adaptive eddy tracks the oracle and clearly
beats the stale static plan after the drift; random sits in between.
"""

import pytest

from repro.baselines.static_plan import StaticFilterPlan, best_static_work
from repro.core.eddy import Eddy, FilterOperator
from repro.core.routing import (GreedySelectivityPolicy, LotteryPolicy,
                                RandomPolicy, RankPolicy)
from repro.ingress.generators import DriftingSelectivityGenerator
from repro.query.predicates import Comparison

from benchmarks.conftest import print_table

N = 6000
FLIP = N // 4   # asymmetric: the initial stats hold for only 25% of the run
PRED_A = Comparison("a", "==", 1)
PRED_B = Comparison("b", "==", 1)


def fresh_rows():
    return DriftingSelectivityGenerator(seed=3, flip_at=FLIP,
                                        low_pass=0.1,
                                        high_pass=0.9).take(N)


def eddy_work(policy):
    rows = fresh_rows()
    ops = [FilterOperator(PRED_A, name="fa"), FilterOperator(PRED_B,
                                                             name="fb")]
    eddy = Eddy(ops, output_sources={"drift"}, policy=policy)
    for t in rows:
        eddy.process(t, 0)
    return ops[0].seen + ops[1].seen


def static_work(order_by_initial=True):
    rows = fresh_rows()
    # "plan-time statistics": observed pass rates on the first 200 rows.
    sample = rows[:200]
    estimates = [sum(1 for t in sample if p.matches(t)) / len(sample)
                 for p in (PRED_A, PRED_B)]
    plan = StaticFilterPlan([PRED_A, PRED_B],
                            estimated_selectivities=estimates)
    plan.run(rows)
    return plan.evaluations


def test_e1_shape():
    oracle, _order = best_static_work(fresh_rows(), [PRED_A, PRED_B])
    results = [
        ("static-initial", static_work()),
        ("static-oracle", oracle),
        ("eddy-lottery", eddy_work(LotteryPolicy(seed=1, explore=0.05))),
        ("eddy-greedy", eddy_work(GreedySelectivityPolicy())),
        ("eddy-rank", eddy_work(RankPolicy())),
        ("eddy-random", eddy_work(RandomPolicy(seed=1))),
    ]
    rows = [(name, work, work / results[1][1]) for name, work in results]
    print_table("E1: predicate evaluations under mid-stream drift "
                f"(n={N}, flip at {FLIP})",
                ["plan", "evaluations", "vs oracle"], rows)
    work = dict(results)
    # The paper's shape: adaptive beats the stale static plan...
    assert work["eddy-lottery"] < work["static-initial"]
    assert work["eddy-greedy"] < work["static-initial"]
    # ...and tracks the offline-optimal fixed order within ~15%.
    assert work["eddy-greedy"] < oracle * 1.15
    assert work["eddy-lottery"] < oracle * 1.25
    # the naive random router is worse than the informed ones
    assert work["eddy-random"] > work["eddy-greedy"]


def test_e1_no_drift_static_is_fine():
    """Control: without drift, the initial static order stays near the
    oracle — adaptivity's win comes from change, not magic."""
    rows = DriftingSelectivityGenerator(seed=3, flip_at=0).take(N)
    sample = rows[:200]
    estimates = [sum(1 for t in sample if p.matches(t)) / len(sample)
                 for p in (PRED_A, PRED_B)]
    plan = StaticFilterPlan([PRED_A, PRED_B],
                            estimated_selectivities=estimates)
    plan.run(rows)
    oracle, _ = best_static_work(
        DriftingSelectivityGenerator(seed=3, flip_at=0).take(N),
        [PRED_A, PRED_B])
    assert plan.evaluations <= oracle * 1.05


@pytest.mark.benchmark(group="E1")
def test_e1_eddy_lottery_timing(benchmark):
    benchmark(eddy_work, LotteryPolicy(seed=1))


@pytest.mark.benchmark(group="E1")
def test_e1_static_timing(benchmark):
    benchmark(static_work)
