"""F3 — Figure 3: PSoup's symmetric join between data and queries.

The figure's executable claim is the *symmetry*: registering 1k queries
then streaming 10k tuples yields the same answers as streaming first and
registering later, and any interleaving in between.  The timing half
measures both arrival paths (data probing the Query SteM vs a query
probing the Data SteM).
"""

import random

import pytest

from repro.core.psoup import PSoup
from repro.core.tuples import Schema
from repro.query.predicates import Comparison

from benchmarks.conftest import print_table

SCHEMA = Schema.of("s", "v")
N_DATA = 5000
N_QUERIES = 500


def predicates(n=N_QUERIES, seed=1):
    rng = random.Random(seed)
    ops = [">", "<", ">=", "<=", "=="]
    return [Comparison("v", rng.choice(ops), rng.randrange(1000))
            for _ in range(n)]


def data_values(n=N_DATA, seed=2):
    rng = random.Random(seed)
    return [rng.randrange(1000) for _ in range(n)]


def run(order, preds, values):
    """order: 'queries-first' | 'data-first' | 'interleaved'."""
    ps = PSoup(SCHEMA)
    queries = []
    if order == "queries-first":
        queries = [ps.register_query(p, window=N_DATA + 1) for p in preds]
        for i, v in enumerate(values):
            ps.push(v, timestamp=i + 1)
    elif order == "data-first":
        for i, v in enumerate(values):
            ps.push(v, timestamp=i + 1)
        queries = [ps.register_query(p, window=N_DATA + 1) for p in preds]
    else:
        per_chunk = len(preds) // 10
        qi = 0
        for i, v in enumerate(values):
            ps.push(v, timestamp=i + 1)
            if i % (len(values) // 10) == 0 and qi < len(preds):
                for p in preds[qi:qi + per_chunk]:
                    queries.append(
                        ps.register_query(p, window=N_DATA + 1))
                qi += per_chunk
        for p in preds[qi:]:
            queries.append(ps.register_query(p, window=N_DATA + 1))
    return ps, queries


def answer_sizes(ps, queries):
    return [len(ps.invoke(q)) for q in queries]


def test_f3_shape():
    preds = predicates()
    values = data_values()
    sizes = {}
    for order in ("queries-first", "data-first", "interleaved"):
        ps, queries = run(order, preds, values)
        sizes[order] = answer_sizes(ps, queries)
    print_table("F3: PSoup symmetry — total answer tuples by arrival order",
                ["arrival order", "total answers"],
                [(order, sum(s)) for order, s in sizes.items()])
    assert sizes["queries-first"] == sizes["data-first"] == \
        sizes["interleaved"]


@pytest.mark.benchmark(group="F3")
def test_f3_new_data_probes_query_stem(benchmark):
    preds = predicates(200)
    values = data_values(500)

    def path():
        ps = PSoup(SCHEMA)
        for p in preds:
            ps.register_query(p, window=10_000)
        for i, v in enumerate(values):
            ps.push(v, timestamp=i + 1)

    benchmark(path)


@pytest.mark.benchmark(group="F3")
def test_f3_new_query_probes_data_stem(benchmark):
    preds = predicates(200)
    values = data_values(500)

    def path():
        ps = PSoup(SCHEMA)
        for i, v in enumerate(values):
            ps.push(v, timestamp=i + 1)
        for p in preds:
            ps.register_query(p, window=10_000)

    benchmark(path)
