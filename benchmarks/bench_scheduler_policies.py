"""Scheduler-policy shoot-out on a skewed multi-query load (§4.2.2).

Setup: one scheduler hosts a few *hot* units (steady tuple arrivals)
and many *cold* units (a ready tuple only every ~1000 cost units) — the
long-tail shape of a shared CQ system where most registered queries are
quiet at any instant.  Every poll costs simulated time (checking empty
queues is not free), so a policy that burns its budget polling idle
units services the hot ones less often.

Per policy we report:

* throughput — tuples processed per simulated cost unit (all policies
  are arrival-bound here, so this measures wasted polling);
* ready-wait tail — the worst simulated-time gap between a unit having
  a ready tuple and the scheduler servicing it.  This is the starvation
  metric: pass-count gaps are meaningless across policies whose passes
  cost wildly different amounts.

Expected shape: pressure_aware holds throughput parity with
round_robin (nobody drops work) while its ready-wait tail is
measurably smaller, because skipping not-ready units keeps passes
short and the starvation guard bounds how long a skip can last.
"""

import time

import pytest

from repro.sched import Scheduler, StepResult

from benchmarks.conftest import print_table, record_result

POLL_COST = 1.0        # sim cost of waking a unit (latches, empty pops)
TUPLE_COST = 0.25      # sim cost per tuple actually processed
IDLE_TICK = 1.0        # sim cost of a pass that ran no unit (driver nap)
BUDGET = 200_000.0     # sim cost units per policy run
HOT_UNITS = 3
COLD_UNITS = 40
HOT_RATE = 0.08        # tuples per sim cost unit
COLD_RATE = 0.001
QUANTUM = 16


class SimClock:
    def __init__(self):
        self.now = 0.0


class QueueUnit:
    """A schedulable fed by a deterministic arrival rate.

    Tracks the ready-wait tail: the longest stretch of simulated time a
    whole tuple sat in the queue before this unit got a quantum.
    """

    def __init__(self, name, clock, rate, phase=0.0):
        self.name = name
        self.clock = clock
        self.rate = rate
        #: phase staggers arrival cycles so the cold population does not
        #: become ready in lockstep (that would measure the workload's
        #: synchronization, not the policy's).
        self.pending = phase
        self.processed = 0
        self.polls = 0
        self.idle_polls = 0
        self.ready_since = None
        self.wait_tail = 0.0
        self.finished = False
        self._last_arrival = 0.0

    def arrive(self):
        """Advance arrivals to the current sim time (harness calls this
        before every pass, so every policy sees identical offered load)."""
        now = self.clock.now
        self.pending += self.rate * (now - self._last_arrival)
        self._last_arrival = now
        if self.pending >= 1.0 and self.ready_since is None:
            self.ready_since = now

    def ready(self):
        return self.pending >= 1.0

    def run_once(self, quantum=None):
        self.polls += 1
        self.clock.now += POLL_COST
        take = min(int(self.pending), quantum or QUANTUM)
        if take <= 0:
            self.idle_polls += 1
            return StepResult.IDLE
        if self.ready_since is not None:
            self.wait_tail = max(self.wait_tail,
                                 self.clock.now - self.ready_since)
        self.clock.now += take * TUPLE_COST
        self.pending -= take
        self.processed += take
        self.ready_since = self.clock.now if self.pending >= 1.0 else None
        return StepResult.BUSY


def run(policy):
    clock = SimClock()
    sched = Scheduler(policy=policy, name=f"bench-{policy}",
                      telemetry=False)
    units = []
    for i in range(HOT_UNITS):
        units.append(QueueUnit(f"hot{i}", clock, HOT_RATE))
        sched.add(units[-1], weight=2.0, query_class="hot")
    for i in range(COLD_UNITS):
        units.append(QueueUnit(f"cold{i}", clock, COLD_RATE,
                               phase=i / COLD_UNITS))
        sched.add(units[-1], weight=0.5, query_class="cold")
    wall_start = time.perf_counter()
    while clock.now < BUDGET:
        for unit in units:
            unit.arrive()
        before = clock.now
        sched.pass_once(QUANTUM)
        if clock.now == before:       # nobody ran: the driver naps
            clock.now += IDLE_TICK
    wall = time.perf_counter() - wall_start
    tuples = sum(u.processed for u in units)
    polls = sum(u.polls for u in units)
    tail = max(u.wait_tail for u in units)
    return {
        "policy": policy,
        "tuples": tuples,
        "polls": polls,
        "idle_polls": sum(u.idle_polls for u in units),
        "passes": sched.passes,
        "sim_throughput": tuples / clock.now,
        "ready_wait_tail": tail,
        "wall_clock_s": wall,
        "wall_throughput": tuples / wall if wall else 0.0,
    }


def test_scheduler_policies_shape():
    results = {}
    rows = []
    for policy in ("round_robin", "busy_first", "deficit_round_robin",
                   "pressure_aware"):
        r = run(policy)
        results[policy] = r
        rows.append((policy, r["tuples"], r["idle_polls"], r["passes"],
                     r["sim_throughput"], r["ready_wait_tail"]))
        record_result(
            "scheduler",
            params={"policy": policy, "hot_units": HOT_UNITS,
                    "cold_units": COLD_UNITS, "budget": BUDGET,
                    "quantum": QUANTUM},
            throughput=r["wall_throughput"],
            wall_clock_s=r["wall_clock_s"],
            tuples=r["tuples"], polls=r["polls"],
            idle_polls=r["idle_polls"], passes=r["passes"],
            sim_throughput=round(r["sim_throughput"], 4),
            ready_wait_tail=round(r["ready_wait_tail"], 2))
    print_table(
        "Scheduler policies on a skewed load "
        f"({HOT_UNITS} hot / {COLD_UNITS} cold units)",
        ["policy", "tuples", "idle polls", "passes", "tuples/cost",
         "ready-wait tail"], rows)
    rr = results["round_robin"]
    pa = results["pressure_aware"]
    # Arrival-bound: nobody may drop work (>= parity throughput) ...
    assert pa["tuples"] >= 0.95 * rr["tuples"]
    assert pa["sim_throughput"] >= 0.95 * rr["sim_throughput"]
    # ... and skipping idle units must shrink the starvation tail.
    assert pa["ready_wait_tail"] <= 0.7 * rr["ready_wait_tail"]
    # Skipping is the mechanism: the sim budget goes into short passes
    # that service ready units, not into polling idle ones.
    assert pa["idle_polls"] < 0.5 * rr["idle_polls"]
    assert pa["passes"] > 2 * rr["passes"]


@pytest.mark.benchmark(group="sched")
@pytest.mark.parametrize("policy", ["round_robin", "pressure_aware"])
def test_scheduler_policy_timing(benchmark, policy):
    benchmark(run, policy)
