"""E13 — §2.1 / [RRH99]: Juggle's online reordering delivers what the
user cares about first.

Setup: 20,000 tuples, 5% belonging to the user's preferred class,
scattered uniformly; the consumer drains slower than the producer (the
interactive regime online reordering targets).  Compared: FIFO delivery
vs Juggle, measured as *prefix quality* — the fraction of interesting
tuples among the first k delivered.

Expected shape ([RRH99] Figure 6-ish): Juggle's prefix quality is far
above FIFO's for small prefixes and both converge to the base rate at
the full stream; changing the preference mid-run redirects delivery
immediately.
"""

import random

import pytest

from repro.core.tuples import Punctuation, Schema
from repro.fjords.queues import PushQueue
from repro.juggle.juggle import Juggle, prefix_quality

from benchmarks.conftest import print_table

S = Schema.of("S", "cls", "v")
N = 20_000
INTERESTING_RATE = 0.05


def stream(seed=6):
    rng = random.Random(seed)
    return [S.make("hot" if rng.random() < INTERESTING_RATE else "cold",
                   i, timestamp=i) for i in range(N)]


def run_juggle(items, preferences, emit_quota=8, admit_chunk=64):
    juggle = Juggle(classify=lambda t: t["cls"], preferences=preferences,
                    buffer_capacity=4096, emit_quota=emit_quota)
    q_in, q_out = PushQueue(), PushQueue()
    juggle.bind_input(0, q_in)
    juggle.bind_output(0, q_out)
    delivered = []
    i = 0
    eos_sent = False
    while not juggle.finished:
        for t in items[i:i + admit_chunk]:
            q_in.push(t)
        i += admit_chunk
        if i >= len(items) and not eos_sent:
            q_in.push(Punctuation.eos())
            eos_sent = True
        juggle.run_once()
        while len(q_out):
            item = q_out.pop()
            if not isinstance(item, Punctuation):
                delivered.append(item)
    return delivered


def is_hot(t):
    return t["cls"] == "hot"


def test_e13_shape():
    items = stream()
    juggled = run_juggle(items, {"hot": 10.0})
    rows = []
    for prefix in (100, 500, 2000, N):
        fifo_q = prefix_quality(items, prefix, is_hot)
        juggle_q = prefix_quality(juggled, prefix, is_hot)
        rows.append((prefix, fifo_q, juggle_q,
                     juggle_q / fifo_q if fifo_q else float("inf")))
    print_table(f"E13: prefix quality, FIFO vs Juggle "
                f"({INTERESTING_RATE:.0%} interesting)",
                ["prefix", "fifo", "juggle", "gain"], rows)
    assert len(juggled) == N                      # nothing lost
    # small prefixes: Juggle is many times better than FIFO
    assert rows[0][2] > 5 * rows[0][1]
    assert rows[1][2] > 3 * rows[1][1]
    # full stream: both equal the base rate exactly
    assert rows[-1][1] == rows[-1][2]


def test_e13_mid_run_preference_change():
    """Flip the preference to a different class mid-run; the newly
    preferred class dominates subsequent deliveries."""
    rng = random.Random(7)
    items = [S.make(rng.choice(["red", "blue"]), i, timestamp=i)
             for i in range(4000)]
    juggle = Juggle(classify=lambda t: t["cls"],
                    preferences={"red": 10.0}, buffer_capacity=8192,
                    emit_quota=4)
    q_in, q_out = PushQueue(), PushQueue()
    juggle.bind_input(0, q_in)
    juggle.bind_output(0, q_out)
    for t in items:
        q_in.push(t)
    for _ in range(100):
        juggle.run_once()
    drained = [q_out.pop() for _ in range(len(q_out))]
    assert sum(1 for t in drained if t["cls"] == "red") > 0.9 * len(drained)
    juggle.set_preference("blue", 100.0)
    juggle.run_once()
    fresh = [q_out.pop() for _ in range(len(q_out))]
    assert all(t["cls"] == "blue" for t in fresh if hasattr(t, "values"))


@pytest.mark.benchmark(group="E13")
def test_e13_juggle_timing(benchmark):
    items = stream()[:5000]
    benchmark(run_juggle, items, {"hot": 10.0})
