"""X2 (extension) — §2.1 / [MF02]: the query-aware sensor proxy.

"A sensor proxy may send control messages to adjust the sample rate of a
sensor network based on the queries that are currently being
processed."  Sampling is the dominant mote energy cost, so samples taken
is the power proxy.

Scenario: a 20-mote field over 2 000 ticks.  A fast query (period 4)
over 5 motes runs for the first quarter; a slow fleet-wide query (period
50) runs throughout.  Compared against a field pinned at the fastest
rate for everyone, forever (what an engine without ingress feedback must
do to satisfy the same queries).

Expected shape: demand-driven sampling takes a small fraction of the
pinned field's samples, with a handful of control messages; both
satisfy every query's period requirement while it is registered.
"""

import pytest

from repro.ingress.sensor_proxy import SensorProxy

from benchmarks.conftest import print_table

TICKS = 2000
N_MOTES = 20


def demand_driven():
    proxy = SensorProxy(n_motes=N_MOTES, seed=2)
    fleet = proxy.register_interest(motes=None, period=50)
    fast = proxy.register_interest(motes=range(5), period=4)
    proxy.run(TICKS // 4)
    proxy.withdraw(fast)                  # the fast query finishes
    proxy.run(TICKS - TICKS // 4)
    proxy.withdraw(fleet)
    return proxy


def pinned_fast():
    proxy = SensorProxy(n_motes=N_MOTES, seed=2)
    proxy.register_interest(motes=None, period=4)
    proxy.run(TICKS)
    return proxy


def test_x2_shape():
    smart = demand_driven()
    pinned = pinned_fast()
    rows = [
        ("query-driven proxy", smart.total_samples(),
         smart.total_control_messages()),
        ("pinned at fastest", pinned.total_samples(),
         pinned.total_control_messages()),
    ]
    print_table(f"X2: samples taken over {TICKS} ticks, {N_MOTES} motes",
                ["strategy", "samples (power proxy)", "control msgs"],
                rows)
    # the power claim: a large constant-factor saving
    assert smart.total_samples() < 0.25 * pinned.total_samples()
    # and the control overhead is tiny
    assert smart.total_control_messages() < 4 * N_MOTES


def test_x2_period_satisfied_while_registered():
    proxy = SensorProxy(n_motes=4, seed=1)
    proxy.register_interest(motes=[2], period=7)
    readings = proxy.run(70)
    mote2 = [t.timestamp for t in readings if t["sensor_id"] == 2]
    gaps = [b - a for a, b in zip(mote2, mote2[1:])]
    assert gaps and all(g <= 7 for g in gaps)


@pytest.mark.benchmark(group="X2")
def test_x2_proxy_timing(benchmark):
    benchmark(demand_driven)
