"""E4 — §3.1: grouped-filter probe cost vs the naive filter bank.

Micro-benchmark of the shared index itself: N single-variable range
factors over one attribute, probe cost measured in comparisons (the
naive bank counts them exactly; the grouped filter's bisection cost is
O(log N + answers)).

Expected shape: naive comparisons grow linearly with N; grouped-filter
probe *time* grows far slower, and the two always return identical
query sets.  The match fraction sweep shows the output-sensitive term:
when most queries match, both degenerate towards O(answers).
"""

import random

import pytest

from repro.core.grouped_filter import GroupedFilter, NaiveFilterBank
from repro.query.predicates import Comparison

from benchmarks.conftest import print_table


def build(n_queries, structure, spread=10_000, seed=7):
    rng = random.Random(seed)
    index = structure("price")
    for qid in range(n_queries):
        op = rng.choice([">", "<", ">=", "<=", "=="])
        index.add(Comparison("price", op, rng.randrange(spread)), qid)
    return index


def probe_many(index, n_probes=200, spread=10_000, seed=8):
    rng = random.Random(seed)
    total = 0
    for _ in range(n_probes):
        total += len(index.matching(rng.randrange(spread)))
    return total


def test_e4_shape():
    import time
    rows = []
    for n in (10, 100, 1000, 10_000):
        gf = build(n, GroupedFilter)
        bank = build(n, NaiveFilterBank)
        start = time.perf_counter()
        matches_gf = probe_many(gf)
        gf_time = time.perf_counter() - start
        start = time.perf_counter()
        matches_bank = probe_many(bank)
        bank_time = time.perf_counter() - start
        assert matches_gf == matches_bank
        rows.append((n, bank.comparisons, matches_gf,
                     bank_time / gf_time if gf_time else float("inf")))
    print_table("E4: 200 probes against N registered factors",
                ["factors", "naive comparisons", "answers",
                 "naive/grouped time"], rows)
    # naive comparisons scale linearly with N
    assert rows[-1][1] > 500 * rows[0][1]


def test_e4_identical_answers_random_workload():
    gf = build(500, GroupedFilter, seed=11)
    bank = build(500, NaiveFilterBank, seed=11)
    rng = random.Random(12)
    for _ in range(500):
        value = rng.randrange(10_000)
        assert gf.matching(value) == bank.matching(value)


@pytest.mark.benchmark(group="E4")
@pytest.mark.parametrize("n", [100, 1000, 10_000])
def test_e4_grouped_probe_timing(benchmark, n):
    gf = build(n, GroupedFilter)
    benchmark(probe_many, gf, 50)


@pytest.mark.benchmark(group="E4")
@pytest.mark.parametrize("n", [100, 1000, 10_000])
def test_e4_naive_probe_timing(benchmark, n):
    bank = build(n, NaiveFilterBank)
    benchmark(probe_many, bank, 50)
