"""E2 — §2.2 / [RDH02]: SteM-based join hybridization.

The paper's index-join discussion: joining stream S against table T
reachable both through an expensive remote index (a TeSS-wrapped web
form) and as a slowly arriving stream.  SteMs let the eddy run both
plans at once and share their work:

* **index-only**  — every S tuple pays a remote lookup;
* **index+cache** — a CacheSteM on T remembers previous expensive
  lookups ([HN96]), so repeated keys (Zipf!) hit locally;
* **hybrid**      — additionally, T tuples arriving on the stream build
  into the same SteM, so even first-seen keys often avoid the remote
  round trip ("the tuples accessed by one plan are reused by the other,
  so there is minimal wasted effort").

Expected shape: remote lookups (and total charged work)
    index-only  >>  index+cache  >  hybrid,
with identical join answers from all three plans, across a latency sweep.
"""

import random

import pytest

from repro.core.stem import SteM
from repro.core.tuples import Schema
from repro.ingress.sources import RemoteIndexSource
from repro.query.predicates import ColumnComparison

from benchmarks.conftest import print_table

S = Schema.of("S", "k", "x")
T = Schema.of("T", "k", "y")
JOIN = ColumnComparison("S.k", "==", "T.k")
N_S = 2000
N_KEYS = 150


def workload(seed=4):
    rng = random.Random(seed)
    t_rows = [T.make(k, k * 10, timestamp=k) for k in range(N_KEYS)]
    weights = [1.0 / (k + 1) for k in range(N_KEYS)]
    s_rows = [S.make(rng.choices(range(N_KEYS), weights=weights)[0], i,
                     timestamp=i) for i in range(N_S)]
    return s_rows, t_rows


def run_plan(kind, latency=100, seed=4):
    """Returns (matches, remote_lookups, charged_work)."""
    s_rows, t_rows = workload(seed)
    index = RemoteIndexSource("T-form", t_rows, key_column="k",
                              latency_cost=latency)
    stem_t = SteM("T", index_columns=["T.k"])
    # In the hybrid plan, the T stream trickles in interleaved with S
    # (one T row per 10 S rows), building the shared SteM.
    stream_iter = iter(t_rows) if kind == "hybrid" else iter(())
    matches = 0
    seen_keys = set()
    for i, s in enumerate(s_rows):
        if kind == "hybrid" and i % 10 == 0:
            arrived = next(stream_iter, None)
            if arrived is not None and arrived.tid not in seen_keys:
                stem_t.build(arrived)
                seen_keys.add(arrived.tid)
        local = stem_t.probe(s, [JOIN], dedupe_by_arrival=False) \
            if kind != "index-only" else []
        if local:
            matches += len(local)
            continue
        remote = index.lookup(s["k"])
        for t in remote:
            if kind != "index-only" and t.tid not in seen_keys:
                stem_t.build(t)          # cache the expensive lookup
                seen_keys.add(t.tid)
        matches += len(remote)
    return matches, index.lookups, index.work_charged


@pytest.mark.parametrize("latency", [20, 200])
def test_e2_shape(latency):
    results = {kind: run_plan(kind, latency)
               for kind in ("index-only", "index+cache", "hybrid")}
    rows = [(kind, m, lookups, work)
            for kind, (m, lookups, work) in results.items()]
    print_table(f"E2: hybrid join, remote latency={latency}",
                ["plan", "matches", "remote lookups", "charged work"],
                rows)
    answers = {m for m, _l, _w in results.values()}
    assert len(answers) == 1                      # identical join results
    lookups = {k: l for k, (_m, l, _w) in results.items()}
    assert lookups["index-only"] == N_S           # pays every time
    assert lookups["index+cache"] <= N_KEYS       # at most one per key
    assert lookups["hybrid"] < lookups["index+cache"]   # stream builds help
    work = {k: w for k, (_m, _l, w) in results.items()}
    assert work["hybrid"] < 0.1 * work["index-only"]


@pytest.mark.benchmark(group="E2")
@pytest.mark.parametrize("kind", ["index-only", "index+cache", "hybrid"])
def test_e2_plan_timing(benchmark, kind):
    benchmark(run_plan, kind, 50)
