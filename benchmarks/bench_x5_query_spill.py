"""X5 (extension) — §4.3: flushing Query SteMs to disk, with
periodicity-driven prefetch.

"The Query SteMs ... may need to be flushed to disk.  In this case, the
periodic nature of the windows provides knowledge that can be exploited
for prefetching queries from the disk."

Workload: 200 periodic queries (each active 2 ticks out of every 100,
staggered phases) against a memory that holds only 20 query entries.
Measured: synchronous query faults (data stalled on a disk load) with
prefetch horizons 0 / 2 / 5, plus answer equivalence.

Expected shape: without prefetch, every activation of a spilled query
faults (~2 per query per cycle); the schedule-aware prefetcher converts
nearly all of them into background loads.
"""

import pytest

from repro.core.psoup_spill import SpillingQueryStore
from repro.core.tuples import Schema
from repro.query.predicates import Comparison

from benchmarks.conftest import print_table

S = Schema.of("s", "v")
N_QUERIES = 200
PERIOD = 100
MEMORY = 20
TICKS = 400


def run(prefetch_horizon):
    store = SpillingQueryStore(memory_capacity=MEMORY,
                               prefetch_horizon=prefetch_horizon)
    for i in range(N_QUERIES):
        store.register(Comparison("v", ">", 0), period=PERIOD,
                       active_for=2, phase=(i * PERIOD) // N_QUERIES)
    for ts in range(TICKS):
        store.route(S.make(1, timestamp=ts))
    return store


def test_x5_shape():
    rows = []
    results = {}
    for horizon in (0, 2, 5):
        store = run(horizon)
        results[horizon] = store
        rows.append((horizon, store.faults, store.prefetches,
                     store.evictions, store.total_matches()))
    print_table(f"X5: query faults vs prefetch horizon "
                f"({N_QUERIES} periodic queries, memory={MEMORY})",
                ["horizon", "faults", "prefetches", "evictions",
                 "matches"], rows)
    # identical answers regardless of paging
    matches = {store.total_matches() for store in results.values()}
    assert len(matches) == 1
    # prefetching eliminates the overwhelming majority of faults
    assert results[0].faults > 100
    assert results[2].faults < results[0].faults * 0.2
    assert results[5].faults <= results[2].faults


@pytest.mark.benchmark(group="X5")
@pytest.mark.parametrize("horizon", [0, 5])
def test_x5_spill_timing(benchmark, horizon):
    benchmark(run, horizon)
