"""X1 (extension) — §4.3's TAG integration: in-network aggregation.

The paper's roadmap item: "the integration of TelegraphCQ with the TAG
system for aggregation over ad hoc sensor networks".  TAG's own headline
result ([MFHH02]) is the radio message saving: each epoch, in-network
aggregation sends one partial state record per mote, while centralized
collection pays one message per *hop* per reading.

Measured: message counts over a network-size sweep; value equivalence
(lossless TAG == centralized for every decomposable aggregate); loss
behaviour (TAG degrades to underestimates, never overestimates).
"""

import pytest

from repro.ingress.tag import (CentralizedAggregator, RoutingTree,
                               TagAggregator)

from benchmarks.conftest import print_table

EPOCHS = 10


def test_x1_shape():
    rows = []
    for n in (20, 60, 150):
        tree = RoutingTree(n, radio=3, seed=6)
        tag = TagAggregator(tree, fn="AVG")
        central = CentralizedAggregator(tree, fn="AVG")
        tag_values = [r["value"] for r in tag.run(EPOCHS)]
        central_values = [r["value"] for r in central.run(EPOCHS)]
        assert tag_values == pytest.approx(central_values)
        rows.append((n, tree.depth, tag.messages_sent,
                     central.messages_sent,
                     central.messages_sent / tag.messages_sent))
    print_table(f"X1: radio messages over {EPOCHS} epochs, "
                "TAG vs centralized",
                ["motes", "tree depth", "tag msgs", "central msgs",
                 "saving"], rows)
    # one message per mote per epoch for TAG, regardless of depth
    for (n, _d, tag_msgs, central_msgs, saving) in rows:
        assert tag_msgs == EPOCHS * (n - 1)
        assert saving > 1.5
    # the saving grows with network size (deeper trees)
    assert rows[-1][4] > rows[0][4]


def test_x1_loss_underestimates_count():
    tree = RoutingTree(50, radio=4, seed=7)
    lossless = TagAggregator(tree, fn="COUNT")
    lossy = TagAggregator(tree, fn="COUNT", loss_rate=0.2, seed=8)
    full = [r["value"] for r in lossless.run(5)]
    degraded = [r["value"] for r in lossy.run(5)]
    assert all(v == 50 for v in full)
    assert all(v <= 50 for v in degraded)
    assert lossy.messages_lost > 0


@pytest.mark.benchmark(group="X1")
@pytest.mark.parametrize("kind", ["tag", "centralized"])
def test_x1_epoch_timing(benchmark, kind):
    tree = RoutingTree(100, radio=3, seed=6)
    agg = TagAggregator(tree) if kind == "tag" else \
        CentralizedAggregator(tree)
    benchmark(agg.run_epoch)
