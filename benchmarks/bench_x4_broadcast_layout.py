"""X4 (extension) — §4.3 / [AAFZ95]: broadcast-disk read layout.

"The read workload on the disk resembles that of periodic data
broadcasting systems" — so the storage subsystem should serve windowed
readers with Broadcast-Disks-style page scheduling: hot pages air more
often, and the right frequency assignment follows the square-root rule.

Measured: mean slot wait for a Zipf-skewed page access workload under a
flat one-airing-per-cycle layout vs 2- and 3-tier broadcast disks, both
analytically (expected_wait) and with a simulated reader; and the
no-free-lunch control on uniform access.
"""

import random

import pytest

from repro.storage.broadcast import (BroadcastReader, BroadcastSchedule,
                                     expected_wait)

from benchmarks.conftest import print_table

N_PAGES = 60
N_READS = 5000


def zipf_weights(s=1.5):
    return {p: 1.0 / (p + 1) ** s for p in range(N_PAGES)}


def simulate(schedule, weights, seed=4):
    rng = random.Random(seed)
    pages = list(weights)
    probs = [weights[p] for p in pages]
    reader = BroadcastReader(schedule)
    for _ in range(N_READS):
        reader.wait_for(rng.choices(pages, weights=probs)[0])
    return reader.mean_wait()


def test_x4_shape():
    weights = zipf_weights()
    rows = []
    waits = {}
    for disks in (1, 2, 3):
        schedule = BroadcastSchedule(weights, n_disks=disks)
        analytic = expected_wait(schedule, weights)
        simulated = simulate(schedule, weights)
        waits[disks] = simulated
        rows.append((disks, schedule.cycle_length, analytic, simulated))
    print_table("X4: mean wait (slots) under Zipf(1.5) access",
                ["disks", "cycle length", "analytic wait",
                 "simulated wait"], rows)
    # tiering helps, monotonically, by a real margin
    assert waits[2] < 0.85 * waits[1]
    assert waits[3] <= waits[2] * 1.05
    # analysis and simulation agree within 20% everywhere
    for disks, _cl, analytic, simulated in rows:
        assert simulated == pytest.approx(analytic, rel=0.2)


def test_x4_uniform_control():
    """With uniform access there is nothing to exploit; tiering must
    not hurt much."""
    weights = {p: 1.0 for p in range(N_PAGES)}
    flat = simulate(BroadcastSchedule(weights, n_disks=1), weights)
    tiered = simulate(BroadcastSchedule(weights, n_disks=3), weights)
    assert tiered <= flat * 1.3


@pytest.mark.benchmark(group="X4")
@pytest.mark.parametrize("disks", [1, 3])
def test_x4_layout_timing(benchmark, disks):
    weights = zipf_weights()
    schedule = BroadcastSchedule(weights, n_disks=disks)
    benchmark(simulate, schedule, weights)
