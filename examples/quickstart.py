#!/usr/bin/env python
"""Quickstart: the TelegraphCQ server in five minutes.

Creates a stream, registers a continuous query, a windowed query, and a
snapshot query over a static table, then pushes data and reads results —
the three query kinds of Section 4.2 in one script.  Everything goes
through the unified client API: swap ``connect()`` for
``connect("tcp://host:port")`` and the same code drives a remote
service.

Run:  python examples/quickstart.py
"""

from repro.client import connect


def main() -> None:
    conn = connect()

    # --- DDL: one stream, one static table -------------------------------
    conn.create_stream("trades", "sym", "price")
    conn.create_table("companies", "sym", "sector",
                      rows=[("MSFT", "tech"), ("IBM", "tech"),
                            ("XOM", "energy")])

    # --- a continuous query: standing filter over the stream -------------
    alerts = conn.submit("SELECT * FROM trades WHERE price > 100")

    # --- a windowed query: 3-tick sliding average, the paper's for-loop --
    averages = conn.submit("""
        SELECT AVG(price) FROM trades
        for (t = 3; t <= 9; t += 3) {
            WindowIs(trades, t - 2, t);
        }""")

    # --- a snapshot query over the table (classic one-shot execution) ----
    tech = conn.submit("SELECT sym FROM companies WHERE sector = 'tech'")
    print("snapshot:", [row["sym"] for row in tech.fetch()])

    # --- push data; the executor folds it into every live query ----------
    prices = [95.0, 101.5, 98.0, 120.0, 99.0, 97.0, 103.0, 96.0, 94.0, 131.0]
    for i, price in enumerate(prices, start=1):
        conn.push("trades", "MSFT", price, timestamp=i)
        conn.step()                        # one executor scheduling round
    conn.close_stream("trades")
    conn.run()

    print("alerts (price > 100):",
          [(row["price"], row.timestamp) for row in alerts.fetch()])
    for t, rows in averages.fetch_windows():
        print(f"window ending at t={t}: avg price = "
              f"{rows[0]['avg_price']:.2f}")

    stats = conn.stats()
    print("\nserver stats:", stats["executor"]["eos"],
          "execution object(s),",
          stats["continuous_queries"], "standing quer(ies)")


if __name__ == "__main__":
    main()
