#!/usr/bin/env python
"""Quickstart: the TelegraphCQ server in five minutes.

Creates a stream, registers a continuous query, a windowed query, and a
snapshot query over a static table, then pushes data and reads results —
the three query kinds of Section 4.2 in one script.

Run:  python examples/quickstart.py
"""

from repro import Schema, TelegraphCQServer


def main() -> None:
    server = TelegraphCQServer()

    # --- DDL: one stream, one static table -------------------------------
    server.create_stream(Schema.of("trades", "sym", "price"))
    server.create_table(
        Schema.of("companies", "sym", "sector"),
        [("MSFT", "tech"), ("IBM", "tech"), ("XOM", "energy")])

    # --- a continuous query: standing filter over the stream -------------
    alerts = server.submit("SELECT * FROM trades WHERE price > 100")

    # --- a windowed query: 3-tick sliding average, the paper's for-loop --
    averages = server.submit("""
        SELECT AVG(price) FROM trades
        for (t = 3; t <= 9; t += 3) {
            WindowIs(trades, t - 2, t);
        }""")

    # --- a snapshot query over the table (classic one-shot execution) ----
    tech = server.submit("SELECT sym FROM companies WHERE sector = 'tech'")
    print("snapshot:", [row["sym"] for row in tech.fetch()])

    # --- push data; the executor folds it into every live query ----------
    prices = [95.0, 101.5, 98.0, 120.0, 99.0, 97.0, 103.0, 96.0, 94.0, 131.0]
    for i, price in enumerate(prices, start=1):
        server.push("trades", "MSFT", price, timestamp=i)
        server.step()                      # one executor scheduling round
    server.close_stream("trades")
    server.run_until_quiescent()

    print("alerts (price > 100):",
          [(row["price"], row.timestamp) for row in alerts.fetch()])
    for t, rows in averages.fetch_windows():
        print(f"window ending at t={t}: avg price = "
              f"{rows[0]['avg_price']:.2f}")

    print("\nserver stats:", server.stats()["executor"]["eos"],
          "execution object(s),",
          server.stats()["continuous_queries"], "standing quer(ies)")


if __name__ == "__main__":
    main()
