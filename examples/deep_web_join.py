#!/usr/bin/env python
"""The Federated Facts & Figures scenario: joining a stream against the
deep web through TeSS.

Section 2.2's index-join discussion in action: a stream of book orders
joins against a catalog that is only reachable through a web form
(simulated) with a declared binding pattern, page-sized results, and
transient failures.  The wrapper scrapes, paginates, retries, and caches
([HN96]); a rendezvous buffer holds orders while lookups are in flight;
and an eddy-less driver shows the hybridization effect: once catalog
rows are cached, repeat lookups never touch the network.

Run:  python examples/deep_web_join.py
"""

import random

from repro import RendezvousBuffer, Schema
from repro.ingress.tess import SimulatedWebForm, TessWrapper

CATALOG = Schema.of("catalog", "author", "title", "price")
ORDERS = Schema.of("orders", "author", "qty")

AUTHORS = ["leguin", "borges", "lem", "butler", "calvino"]


def build_remote_catalog():
    rng = random.Random(7)
    rows = []
    for i in range(60):
        author = AUTHORS[i % len(AUTHORS)]
        rows.append(CATALOG.make(author, f"{author}-title-{i}",
                                 round(rng.uniform(8, 40), 2),
                                 timestamp=i))
    return SimulatedWebForm(
        "catalog-form", CATALOG, rows, bindable=["author"],
        page_size=5, latency_cost=200, failure_rate=0.15, seed=3)


def main() -> None:
    form = build_remote_catalog()
    wrapper = TessWrapper(form, max_retries=5)
    rendezvous = RendezvousBuffer("orders")

    rng = random.Random(11)
    orders = [ORDERS.make(rng.choice(AUTHORS), rng.randint(1, 5),
                          timestamp=i) for i in range(40)]

    joined = []
    for order in orders:
        rendezvous.hold(order)               # pending remote lookup
        books = wrapper.lookup({"author": order["author"]})
        for book in books:
            joined.append(order.concat(book))
        rendezvous.settle(order)

    stats = wrapper.stats()
    print(f"{len(orders)} orders joined against the deep-web catalog:")
    print(f"  join results        : {len(joined)}")
    print(f"  form submissions    : {stats['requests']} "
          f"(pagination: {form.page_size}/page)")
    print(f"  transient failures  : {form.failures_injected} "
          f"(retried {stats['retries']} times, none surfaced)")
    print(f"  cache hits          : {stats['cache_hits']} of "
          f"{stats['lookups']} lookups "
          f"— only {len(AUTHORS)} authors exist, so after one lookup "
          f"per author the network goes quiet")
    print(f"  rendezvous pending  : {rendezvous.pending_count()}")

    total = sum(t["orders.qty"] * t["catalog.price"] for t in joined)
    print(f"\norder book value: ${total:,.2f}")


if __name__ == "__main__":
    main()
