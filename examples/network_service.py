#!/usr/bin/env python
"""The network front door: one engine, many doors.

Starts a :class:`~repro.net.service.TelegraphCQService` on loopback and
drives the *same* engine three ways at once:

* the framed wire protocol, via ``connect("tcp://host:port")`` — DDL,
  a continuous query, a push, and a fetch, byte-for-byte the same
  client code that works in-process;
* a streaming cursor with credit backpressure — the service sends rows
  only while the client has credit outstanding;
* the HTTP admin plane — listing live queries and scraping the
  Prometheus metrics endpoint with nothing but ``urllib``.

Run:  python examples/network_service.py
"""

import json
import time
import urllib.request

from repro.client import connect
from repro.net.service import TelegraphCQService


def main() -> None:
    service = TelegraphCQService(admin_port=0)
    service.run_in_thread()
    print(f"service listening on tcp://127.0.0.1:{service.port} "
          f"(admin on http://127.0.0.1:{service.admin_port}/)")
    try:
        # --- the wire protocol, through the unified client API --------
        conn = connect(f"tcp://127.0.0.1:{service.port}", client="example")
        conn.create_stream("trades", "sym", "price")
        alerts = conn.submit("SELECT * FROM trades WHERE price > 100")
        conn.push_rows("trades", [["MSFT", 95.0], ["MSFT", 101.5],
                                  ["IBM", 120.0], ["ORCL", 99.0]])
        print("alerts over the wire:",
              [(row["sym"], row["price"]) for row in alerts.fetch()])

        # --- a streaming cursor under credit backpressure --------------
        ticker = conn.submit("SELECT * FROM trades WHERE price > 0",
                             stream=True, credit=2)
        conn.push_rows("trades", [["A", 1.0], ["B", 2.0],
                                  ["C", 3.0], ["D", 4.0]])
        time.sleep(0.2)
        first = ticker.fetch(limit=2)
        print("streamed with 2 credits:", [row["sym"] for row in first])
        ticker.grant(10)
        time.sleep(0.2)
        print("after granting more credit:",
              [row["sym"] for row in ticker.fetch()])

        # --- the admin plane, with plain urllib ------------------------
        base = f"http://127.0.0.1:{service.admin_port}"
        queries = json.load(urllib.request.urlopen(base + "/queries"))
        print("admin /queries:",
              [(q["cursor"], q["kind"]) for q in queries["queries"]])
        metrics = urllib.request.urlopen(base + "/metrics").read().decode()
        lines = [ln for ln in metrics.splitlines()
                 if ln.startswith("tcq_net_sessions")]
        print("admin /metrics (sessions):", *lines[:2], sep="\n  ")
        conn.close()
    finally:
        service.close()
    print("service shut down cleanly")


if __name__ == "__main__":
    main()
