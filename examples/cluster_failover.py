#!/usr/bin/env python
"""Flux on a simulated cluster: skew, rebalancing, and failover.

Partitions a Zipf-skewed group-by across four simulated machines (one
deliberately slow), then demonstrates the two Flux features of Section
2.4:

  1. online repartitioning — backlogs diverge, Flux moves partitions
     off the hot machine, throughput recovers;
  2. process-pair fault tolerance — a machine is killed mid-run; with
     replication the promoted replicas lose nothing, without it the
     dead machine's counts are gone (and accounted for).

Run:  python examples/cluster_failover.py
"""

import random

from repro import Cluster, Flux, GroupCountState, Schema

PACKETS = Schema.of("pkts", "src")
N_TUPLES = 8000
N_KEYS = 40


def make_stream(seed=0):
    rng = random.Random(seed)
    weights = [1.0 / (k + 1) ** 1.3 for k in range(N_KEYS)]
    return [PACKETS.make(rng.choices(range(N_KEYS), weights=weights)[0],
                         timestamp=i) for i in range(N_TUPLES)]


def build(speeds, **flux_kwargs):
    cluster = Cluster()
    for i, speed in enumerate(speeds):
        cluster.add_machine(f"m{i}", speed=speed)
    flux = Flux(cluster, n_partitions=12, key_fn=lambda t: t["src"],
                state_factory=lambda: GroupCountState("src"), **flux_kwargs)
    return cluster, flux


def drive(flux, data, fail_at=None, victim="m1"):
    ticks = 0
    i = 0
    while i < len(data) or flux.unacked_total():
        batch = data[i:i + 150]
        i += len(batch)
        flux.tick(batch)
        ticks += 1
        if fail_at is not None and ticks == fail_at:
            flux.cluster.fail(victim)
            report = flux.on_machine_failure(victim)
            print(f"    t={ticks}: {victim} crashed -> "
                  f"{report['promoted']} partitions promoted, "
                  f"{report['restarted']} restarted, "
                  f"{report['replayed']} in-flight tuples replayed")
    return ticks


def main() -> None:
    print("=== 1. Load balancing on a heterogeneous cluster ===")
    data = make_stream()
    _, static = build(speeds=(15, 120, 120, 120))
    static_ticks = drive(static, list(data))
    _, adaptive = build(speeds=(15, 120, 120, 120), rebalance_every=5,
                        imbalance_threshold=1.5)
    adaptive_ticks = drive(adaptive, list(data))
    print(f"  static Exchange      : {static_ticks} ticks to drain")
    print(f"  Flux w/ repartitioning: {adaptive_ticks} ticks "
          f"({adaptive.moves_completed} partition moves, "
          f"{adaptive.state_moved} state entries shipped)")
    assert adaptive.merged_counts() == static.merged_counts()
    print("  (identical group counts — balancing never changes answers)")

    print("\n=== 2. Failover: the replication QoS knob ===")
    truth = {}
    for t in data:
        truth[t["src"]] = truth.get(t["src"], 0) + 1
    for replication in (1, 0):
        _, flux = build(speeds=(80, 80, 80, 80), replication=replication)
        print(f"  replication={replication}:")
        drive(flux, list(data), fail_at=12)
        counted = sum(flux.merged_counts().values())
        ok = flux.merged_counts() == truth
        print(f"    counted {counted}/{len(data)} tuples; "
              f"lost {flux.lost_tuples}; exact answer: {ok}")
    print("\n  replication=1 pays ~2x processing for zero loss; "
          "replication=0 is cheaper but lossy — the paper's knob.")


if __name__ == "__main__":
    main()
