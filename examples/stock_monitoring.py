#!/usr/bin/env python
"""The paper's running example, executed verbatim.

Section 4.1 of the TelegraphCQ paper defines its window semantics with
four queries over a ClosingStockPrices stream: a snapshot, a landmark, a
hopping sliding-average, and a temporal band-join between two aliases of
the same stream.  This example submits all four through the SQL
front-end (including the for-loop WindowIs clause) against a synthetic
random-walk stock feed, and prints each query's sequence of result sets.

Run:  python examples/stock_monitoring.py
"""

from repro.client import connect
from repro.ingress.generators import (CLOSING_STOCK_PRICES,
                                      StockStreamGenerator)

N_DAYS = 40

EXAMPLE_1_SNAPSHOT = """
    SELECT closingPrice, timestamp
    FROM ClosingStockPrices
    WHERE stockSymbol = 'MSFT'
    for (; t == 0; t = -1) {
        WindowIs(ClosingStockPrices, 1, 5);
    }
"""

EXAMPLE_2_LANDMARK = """
    SELECT closingPrice, timestamp
    FROM ClosingStockPrices
    WHERE stockSymbol = 'MSFT' and closingPrice > 50.00
    for (t = 10; t <= 40; t += 10) {
        WindowIs(ClosingStockPrices, 10, t);
    }
"""

EXAMPLE_3_SLIDING = """
    Select AVG(closingPrice)
    From ClosingStockPrices
    Where stockSymbol = 'MSFT'
    for (t = ST; t < ST + 30; t += 5) {
        WindowIs(ClosingStockPrices, t - 4, t);
    }
"""

EXAMPLE_4_BAND_JOIN = """
    Select c2.*
    FROM ClosingStockPrices as c1, ClosingStockPrices as c2
    WHERE c1.stockSymbol = 'MSFT' and
          c2.stockSymbol != 'MSFT' and
          c2.closingPrice > c1.closingPrice and
          c2.timestamp = c1.timestamp
    for (t = ST; t < ST + 10; t++) {
        WindowIs(c1, t - 4, t);
        WindowIs(c2, t - 4, t);
    }
"""


def main() -> None:
    conn = connect()
    conn.create_stream(CLOSING_STOCK_PRICES)

    snapshot = conn.submit(EXAMPLE_1_SNAPSHOT)
    landmark = conn.submit(EXAMPLE_2_LANDMARK)
    # ST ("start time") binds to the submission instant; pin it so the
    # sliding windows land on populated days.
    sliding = conn.submit(EXAMPLE_3_SLIDING, env={"ST": 5})
    band = conn.submit(EXAMPLE_4_BAND_JOIN, env={"ST": 5})

    feed = StockStreamGenerator(
        symbols=("MSFT", "IBM", "ORCL", "INTC"), seed=7, start_price=55.0,
        volatility=1.5)
    for t in feed.take(N_DAYS):
        conn.push_tuple("ClosingStockPrices", t)
        conn.step()
    conn.close_stream("ClosingStockPrices")
    conn.run()

    print("=== Example 1: snapshot (first five days of MSFT) ===")
    for t, rows in snapshot.fetch_windows():
        for row in rows:
            print(f"  day {row['timestamp']}: {row['closingPrice']:.2f}")

    print("\n=== Example 2: landmark (days after 10 with MSFT > $50) ===")
    for t, rows in landmark.fetch_windows():
        print(f"  window [10, {t}]: {len(rows)} qualifying days")

    print("\n=== Example 3: sliding 5-day average, hop 5 ===")
    for t, rows in sliding.fetch_windows():
        print(f"  days {t - 4}-{t}: avg = {rows[0]['avg_closingPrice']:.2f}")

    print("\n=== Example 4: temporal band-join "
          "(stocks that closed above MSFT) ===")
    for t, rows in band.fetch_windows():
        beats = sorted({row["c2.stockSymbol"] for row in rows})
        print(f"  window ending {t}: {len(rows)} rows, symbols {beats}")


if __name__ == "__main__":
    main()
