#!/usr/bin/env python
"""Explicit dataflow graphs, the scripting way (Section 2).

"Dataflows are initiated by clients either via an ad hoc query language
... or via a scripting language for representing dataflow graphs
explicitly."  This example builds a sensor-monitoring dataflow from
script text alone — select, project, sort, limit — binds a synthetic
sensor source, runs it over the Fjord scheduler, and prints the sink.
A second script splices a Juggle node in front of the sink to show
preference-driven delivery without touching the rest of the graph.

Run:  python examples/scripted_dataflow.py
"""

from repro import SourceModule
from repro.ingress.generators import SensorStreamGenerator
from repro.query.dataflow_script import parse_script

PIPELINE = """
# hottest distinct readings, worst first
node readings = source
node hot      = select(temperature > 24)
node slim     = project(sensor_id, temperature)
node worst    = sort(temperature desc)
node top      = limit(8)
node out      = sink

edge readings -> hot [capacity=256]
edge hot -> slim
edge slim -> worst
edge worst -> top
edge top -> out
"""

JUGGLED = """
node readings = source
node hot      = select(temperature > 24)
node triage   = juggle(sensor_id)        # deliver watched motes first
node out      = sink

edge readings -> hot
edge hot -> triage
edge triage -> out
"""


class SensorFeed(SourceModule):
    """Replays a generated sensor trace as a push source."""

    def __init__(self, rows, name="readings"):
        super().__init__(name)
        self.rows = list(rows)
        self._i = 0

    def generate(self, batch):
        chunk = self.rows[self._i:self._i + batch]
        self._i += len(chunk)
        if self._i >= len(self.rows):
            self.exhausted = True
        return chunk


def main() -> None:
    trace = SensorStreamGenerator(n_sensors=6, seed=21, anomaly_rate=0.03,
                                  anomaly_delta=15.0).take(300)

    print("=== script 1: hottest distinct readings ===")
    script = parse_script(PIPELINE)
    fjord = script.build(bindings={"readings": SensorFeed(trace)})
    fjord.run_until_finished()
    for t in script.sinks(fjord)["out"].results:
        print(f"  mote {t['sensor_id']}: {t['temperature']:.1f} C")

    print("\n=== script 2: same stream, Juggle prioritising mote 2 ===")
    script2 = parse_script(JUGGLED)
    fjord2 = script2.build(bindings={"readings": SensorFeed(trace)})
    triage = fjord2.module("triage")
    triage.set_preference(2, 10.0)
    triage.emit_quota = 1          # a slow consumer: reordering matters
    fjord2.run_until_finished()
    delivered = script2.sinks(fjord2)["out"].results

    def mean_rank(rows):
        ranks = [i for i, t in enumerate(rows) if t["sensor_id"] == 2]
        return sum(ranks) / len(ranks) if ranks else float("nan")

    arrival_order = [t for t in trace if t["temperature"] > 24]
    print(f"  {len(delivered)} hot readings delivered")
    print(f"  mean position of mote 2's readings: "
          f"{mean_rank(delivered):.1f} juggled vs "
          f"{mean_rank(arrival_order):.1f} FIFO "
          f"(lower = delivered sooner)")


if __name__ == "__main__":
    main()
