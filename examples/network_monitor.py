#!/usr/bin/env python
"""Network monitoring under overload: QoS load shedding + Juggle.

A Tribeca-style packet-summary stream bursts past the engine's service
capacity.  The script runs the same standing queries three ways —

  1. no shedding (queue and latency grow without bound),
  2. random shedding sized to the overload factor,
  3. preference-aware shedding that protects traffic to the watched
     subnet while dropping bulk traffic first,

— and uses Juggle to deliver the security team's suspicious-port hits
ahead of routine rows.  This is Section 4.3's QoS story end to end.

Run:  python examples/network_monitor.py
"""

from repro import CACQEngine, Comparison, Juggle, LoadShedder
from repro.core.tuples import Punctuation
from repro.fjords.queues import PushQueue
from repro.ingress.generators import PacketStreamGenerator

N_PACKETS = 6000
SERVICE_CAPACITY = 60          # tuples the engine can absorb per epoch
EPOCH = 200                    # arrivals per epoch (overload factor ~3)
WATCHED_HOSTS = {"h0", "h1", "h2"}
SUSPICIOUS_PORT = 13


def build_engine():
    engine = CACQEngine()
    schema = PacketStreamGenerator().schema
    engine.register_stream(schema)
    big = engine.add_query([schema.name], Comparison("bytes", ">", 1400),
                           name="jumbo-frames")
    suspicious = engine.add_query([schema.name],
                                  Comparison("port", "==", SUSPICIOUS_PORT),
                                  name="suspicious-port")
    return engine, schema, big, suspicious


def run_with_shedder(shedder, packets):
    engine, schema, big, suspicious = build_engine()
    backlog = 0
    max_backlog = 0
    for start in range(0, len(packets), EPOCH):
        arriving = packets[start:start + EPOCH]
        shedder.update(arrived=len(arriving), serviced=SERVICE_CAPACITY)
        admitted = shedder.admit(arriving)
        backlog = max(0, backlog + len(admitted) - SERVICE_CAPACITY)
        max_backlog = max(max_backlog, backlog)
        for t in admitted:
            engine.push_tuple(schema.name, t)
    return {
        "policy": shedder.policy,
        "completeness": shedder.completeness(),
        "max_backlog": max_backlog,
        "suspicious_hits": suspicious.delivered,
        "jumbo_hits": big.delivered,
        "dropped_by_class": dict(
            sorted(shedder.dropped_by_class.items())[:3]),
    }


def main() -> None:
    packets = PacketStreamGenerator(n_hosts=50, zipf_s=1.2, seed=3,
                                    burst_every=7, burst_factor=8) \
        .take(N_PACKETS)

    shedders = [
        LoadShedder(policy="none"),
        LoadShedder(policy="random", seed=1),
        LoadShedder(policy="preferred", seed=1,
                    classify=lambda t: "watched" if t["src"] in
                    WATCHED_HOSTS else "bulk",
                    preferences={"watched": 10.0, "bulk": 0.0}),
    ]
    print(f"{N_PACKETS} packets at ~{EPOCH}/epoch vs capacity "
          f"{SERVICE_CAPACITY}/epoch (overload ~{EPOCH/SERVICE_CAPACITY:.1f}x)\n")
    for shedder in shedders:
        report = run_with_shedder(shedder, list(packets))
        print(f"policy={report['policy']:9s} "
              f"completeness={report['completeness']:.2f} "
              f"max_backlog={report['max_backlog']:5d} "
              f"suspicious={report['suspicious_hits']:3d} "
              f"jumbo={report['jumbo_hits']:3d}")
        if report["dropped_by_class"]:
            print(f"{'':10s}drops by class: {report['dropped_by_class']}")

    # --- Juggle: deliver suspicious-port rows first -----------------------
    juggle = Juggle(classify=lambda t: t["port"] == SUSPICIOUS_PORT,
                    preferences={True: 10.0}, buffer_capacity=512,
                    emit_quota=16)
    q_in, q_out = PushQueue(), PushQueue()
    juggle.bind_input(0, q_in)
    juggle.bind_output(0, q_out)
    for t in packets[:2000]:
        q_in.push(t)
    q_in.push(Punctuation.eos())
    while not juggle.finished:
        juggle.run_once()
    delivered = []
    while len(q_out):
        item = q_out.pop()
        if not isinstance(item, Punctuation):
            delivered.append(item)
    first_hit_fifo = next(i for i, t in enumerate(packets[:2000])
                          if t["port"] == SUSPICIOUS_PORT)
    first_hit_juggle = next(i for i, t in enumerate(delivered)
                            if t["port"] == SUSPICIOUS_PORT)
    print(f"\nJuggle: first suspicious packet delivered at position "
          f"{first_hit_juggle} (FIFO: {first_hit_fifo})")


if __name__ == "__main__":
    main()
