#!/usr/bin/env python
"""Sensor-network monitoring: shared CQs plus PSoup for field engineers.

The scenario the paper's introduction motivates: a fleet of motes push
temperature/voltage readings; dozens of standing queries watch for
anomalies (CACQ shares their predicates through grouped filters), while
intermittently-connected field engineers use PSoup — registering a query
once, disconnecting, and retrieving the latest windowed answer whenever
they come back online.

Run:  python examples/sensor_network.py
"""

from repro import CACQEngine, Comparison, PSoup
from repro.ingress.generators import SensorStreamGenerator

N_TICKS = 300
N_SENSORS = 8


def main() -> None:
    schema = SensorStreamGenerator().schema

    # --- CACQ: one shared engine for all standing alert queries ----------
    engine = CACQEngine()
    engine.register_stream(schema)
    # per-sensor overheating alerts, three severity tiers each
    alerts = {}
    for sensor in range(N_SENSORS):
        for severity, threshold in (("warn", 24.0), ("high", 30.0),
                                    ("critical", 40.0)):
            query = engine.add_query(
                [schema.name],
                Comparison("sensor_id", "==", sensor)
                & Comparison("temperature", ">", threshold),
                name=f"s{sensor}-{severity}")
            alerts[(sensor, severity)] = query
    # a fleet-wide battery watchdog
    battery = engine.add_query([schema.name],
                               Comparison("voltage", "<", 2.975),
                               name="battery-low")

    # --- PSoup: disconnected engineers -----------------------------------
    psoup = PSoup(schema)
    engineer_a = psoup.register_query(
        Comparison("temperature", ">", 26.0), window=50,
        name="engineer-a: recent hot readings")
    engineer_b = psoup.register_query(
        Comparison("sensor_id", "==", 3), window=25,
        name="engineer-b: everything from mote 3")

    # --- the stream --------------------------------------------------------
    feed = SensorStreamGenerator(n_sensors=N_SENSORS, seed=11,
                                 failure_rate=0.02, anomaly_rate=0.01,
                                 anomaly_delta=25.0)
    reconnects = {100: engineer_a, 200: engineer_b, 300: engineer_a}
    for reading in feed.ticks(N_TICKS):
        engine.push_tuple(schema.name, reading)
        psoup.push_tuple(
            schema.make(*reading.values, timestamp=reading.timestamp))
        if reading.timestamp in reconnects and reading["sensor_id"] == 0:
            query = reconnects[reading.timestamp]
            answer = psoup.invoke(query)
            print(f"[t={reading.timestamp:3d}] {query.name!r} reconnects: "
                  f"{len(answer)} matching readings in its window")

    # --- report -------------------------------------------------------------
    print("\nshared-alert summary "
          f"({len(engine.queries)} standing queries, "
          f"{len(engine.filters)} grouped filters):")
    for severity in ("warn", "high", "critical"):
        fired = sum(alerts[(s, severity)].delivered
                    for s in range(N_SENSORS))
        print(f"  {severity:9s}: {fired} alerts across the fleet")
    print(f"  battery  : {battery.delivered} low-voltage readings")

    stats = engine.stats()
    print(f"\nsharing at work: {stats['tuples_in']} readings triggered "
          f"only {stats['filter_probes']} grouped-filter probes for "
          f"{stats['queries']} queries")
    psoup.vacuum()
    print(f"PSoup retains {len(psoup.data_stem)} readings after vacuum "
          f"(max window = {psoup.query_stem.max_window()})")


if __name__ == "__main__":
    main()
