"""Tests for window semantics: the paper's four example queries (§4.1),
every ForLoopSpec constructor, HistoricalStore, and the runner."""

import pytest

from repro.core.windows import (ForLoopSpec, HistoricalStore,
                                WindowedQueryRunner, WindowInstance,
                                WindowIs)
from repro.core.tuples import Schema
from repro.errors import QueryError
from repro.ingress.generators import CLOSING_STOCK_PRICES

S = CLOSING_STOCK_PRICES


def stock_store(days=30, symbols=("MSFT", "IBM")):
    """Deterministic prices: MSFT climbs 46,47,..., IBM flat at 50."""
    store = HistoricalStore("ClosingStockPrices")
    for day in range(1, days + 1):
        for sym in symbols:
            price = 45.0 + day if sym == "MSFT" else 50.0
            store.append(S.make(day, sym, price, timestamp=day))
    return store


def msft_filter(rows):
    return [t for t in rows if t["stockSymbol"] == "MSFT"]


class TestForLoopConstructors:
    def test_snapshot_single_iteration(self):
        spec = ForLoopSpec.snapshot("s", 1, 5)
        instances = list(spec)
        assert len(instances) == 1
        assert instances[0].bounds_for("s") == (1, 5)

    def test_landmark_fixed_left_moving_right(self):
        spec = ForLoopSpec.landmark("s", anchor=101, start=101, stop=105)
        bounds = [i.bounds_for("s") for i in spec]
        assert bounds == [(101, 101), (101, 102), (101, 103),
                          (101, 104), (101, 105)]

    def test_sliding_unit_hop(self):
        spec = ForLoopSpec.sliding("s", width=3, start=3, stop=6)
        assert [i.bounds_for("s") for i in spec] == \
            [(1, 3), (2, 4), (3, 5)]

    def test_hopping_window(self):
        spec = ForLoopSpec.sliding("s", width=5, start=5, stop=20, hop=5)
        assert [i.bounds_for("s") for i in spec] == \
            [(1, 5), (6, 10), (11, 15)]

    def test_backward_window(self):
        spec = ForLoopSpec.backward("s", width=3, start=10, stop=6, hop=2)
        assert [i.bounds_for("s") for i in spec] == \
            [(8, 10), (6, 8), (4, 6)]

    def test_band_spans_streams_in_unison(self):
        spec = ForLoopSpec.band(["c1", "c2"], width=5, start=10, stop=12)
        first = next(iter(spec))
        assert first.bounds_for("c1") == first.bounds_for("c2") == (6, 10)

    def test_hop_exceeds_width_detection(self):
        gappy = ForLoopSpec.sliding("s", width=2, start=2, stop=20, hop=5)
        dense = ForLoopSpec.sliding("s", width=5, start=5, stop=20, hop=5)
        assert gappy.hop_exceeds_width()
        assert not dense.hop_exceeds_width()

    def test_duplicate_windowis_rejected(self):
        with pytest.raises(QueryError, match="duplicate"):
            ForLoopSpec(0, lambda t: t < 1, lambda t: t + 1,
                        [WindowIs("s", lambda t: t, lambda t: t),
                         WindowIs("s", lambda t: t, lambda t: t)])

    def test_empty_windows_rejected(self):
        with pytest.raises(QueryError):
            ForLoopSpec(0, lambda t: True, lambda t: t + 1, [])

    def test_max_iterations_caps_infinite_loops(self):
        spec = ForLoopSpec(0, lambda t: True, lambda t: t + 1,
                           [WindowIs("s", lambda t: t, lambda t: t)],
                           max_iterations=7)
        assert len(list(spec)) == 7

    def test_bad_width_rejected(self):
        with pytest.raises(QueryError):
            ForLoopSpec.sliding("s", width=0, start=1, stop=5)


class TestHistoricalStore:
    def test_scan_inclusive_bounds(self):
        store = stock_store(days=10, symbols=("MSFT",))
        assert [t.timestamp for t in store.scan(3, 5)] == [3, 4, 5]

    def test_scan_empty_range(self):
        store = stock_store(days=5, symbols=("MSFT",))
        assert store.scan(100, 200) == []

    def test_out_of_order_append_rejected(self):
        store = HistoricalStore("s")
        store.append(S.make(5, "MSFT", 1.0, timestamp=5))
        with pytest.raises(QueryError, match="out-of-order"):
            store.append(S.make(3, "MSFT", 1.0, timestamp=3))

    def test_missing_timestamp_rejected(self):
        store = HistoricalStore("s")
        with pytest.raises(QueryError):
            store.append(S.make(1, "MSFT", 1.0))

    def test_truncate_before(self):
        store = stock_store(days=10, symbols=("MSFT",))
        dropped = store.truncate_before(6)
        assert dropped == 5
        assert len(store) == 5
        assert store.scan(1, 100)[0].timestamp == 6

    def test_latest_timestamp(self):
        assert HistoricalStore("s").latest_timestamp() is None
        assert stock_store(days=3).latest_timestamp() == 3


class PaperExamples:
    """Namespace marker — the four §4.1 queries, executed literally."""


class TestPaperExample1Snapshot:
    def test_first_five_days_of_msft(self):
        """'Select the closing prices for MSFT on the first five days of
        trading' — for(; t==0; t=-1) WindowIs(CSP, 1, 5)."""
        store = stock_store()
        spec = ForLoopSpec(0, lambda t: t == 0, lambda t: -1,
                           [WindowIs("ClosingStockPrices",
                                     lambda t: 1, lambda t: 5)])
        runner = WindowedQueryRunner(
            spec, {"ClosingStockPrices": store},
            lambda data: msft_filter(data["ClosingStockPrices"]))
        results = runner.run()
        assert len(results) == 1
        _t, rows = results[0]
        assert [t.timestamp for t in rows] == [1, 2, 3, 4, 5]


class TestPaperExample2Landmark:
    def test_days_msft_above_50_after_anchor(self):
        """Landmark: fixed left end, right end sweeping; the answer for
        iteration t is a superset of iteration t-1 (monotone growth)."""
        store = stock_store(days=30)
        spec = ForLoopSpec.landmark("ClosingStockPrices", anchor=5,
                                    start=5, stop=30)

        def body(data):
            return [t for t in msft_filter(data["ClosingStockPrices"])
                    if t["closingPrice"] > 50.0]

        runner = WindowedQueryRunner(spec, {"ClosingStockPrices": store},
                                     body)
        sizes = [len(rows) for _t, rows in runner]
        assert sizes == sorted(sizes)           # landmark grows monotonically
        # MSFT price is 45+day: > 50 from day 6 on.
        assert sizes[-1] == 30 - 6 + 1


class TestPaperExample3SlidingAvg:
    def test_five_day_average_every_fifth_day(self):
        store = stock_store(days=30, symbols=("MSFT",))
        spec = ForLoopSpec.sliding("ClosingStockPrices", width=5,
                                   start=5, stop=30, hop=5)

        def body(data):
            rows = msft_filter(data["ClosingStockPrices"])
            return [sum(t["closingPrice"] for t in rows) / len(rows)]

        runner = WindowedQueryRunner(spec, {"ClosingStockPrices": store},
                                     body)
        averages = [rows[0] for _t, rows in runner]
        # days d-4..d with price 45+day: average = 45 + d - 2
        assert averages == [48.0, 53.0, 58.0, 63.0, 68.0]


class TestPaperExample4BandJoin:
    def test_stocks_closing_higher_than_msft(self):
        store = stock_store(days=10, symbols=("MSFT", "IBM"))
        spec = ForLoopSpec.band(["c1", "c2"], width=5, start=5, stop=8)
        alias_c1 = Schema(S.columns, name="c1")
        alias_c2 = Schema(S.columns, name="c2")

        def rebind(rows, schema):
            from repro.core.tuples import Tuple
            return [Tuple(schema, t.values, timestamp=t.timestamp)
                    for t in rows]

        def body(data):
            c1 = [t for t in rebind(data["c1"], alias_c1)
                  if t["stockSymbol"] == "MSFT"]
            c2 = [t for t in rebind(data["c2"], alias_c2)
                  if t["stockSymbol"] != "MSFT"]
            out = []
            for a in c1:
                for b in c2:
                    if b["timestamp"] == a["timestamp"] and \
                            b["closingPrice"] > a["closingPrice"]:
                        out.append(b)
            return out

        stores = {"c1": store, "c2": store}
        runner = WindowedQueryRunner(spec, stores, body)
        results = runner.run()
        # MSFT = 45+day passes IBM (50) after day 5, so early windows
        # have matches and later ones thin out.
        first_window = results[0][1]
        assert all(t["stockSymbol"] == "IBM" for t in first_window)
        assert len(first_window) == 4     # days 1..4 of window 1..5

    def test_runner_requires_stores(self):
        spec = ForLoopSpec.snapshot("missing", 1, 5)
        with pytest.raises(QueryError, match="no historical store"):
            WindowedQueryRunner(spec, {}, lambda d: [])
