"""Tests for the ClusterBackend protocol layer.

Three things are on trial here, all tier-1 (zero processes spawned):

* :class:`SimulatedBackend` implements the protocol faithfully over the
  virtual cluster — handoffs, applied counts, imbalance, heartbeats;
* :class:`LoopbackBackend` — real :class:`WorkerCore` logic plus the
  full ``repro.net.frames`` wire round-trip, in-process — produces
  *identical answers* to the simulated substrate under arbitrary
  workloads, failures included (the parity property that lets tier-1
  vouch for the multiprocess execution semantics);
* routing is placement-stable across interpreters:
  :meth:`Flux._stable_hash` must not depend on ``PYTHONHASHSEED``.
"""

import functools
import random
import zlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.tuples import Schema
from repro.errors import ClusterError
from repro.flux.backend import ClusterBackend, PartitionHandoff, \
    SimulatedBackend, as_backend
from repro.flux.cluster import Cluster, GroupCountState
from repro.flux.flux import Flux, FluxPump
from repro.flux.procs import LoopbackBackend, WorkerCore
from repro.sched import Scheduler

S = Schema.of("pkts", "key")


def make_data(n=400, n_keys=12, seed=0):
    rng = random.Random(seed)
    return [S.make(rng.randrange(n_keys), timestamp=i) for i in range(n)]


def ground_truth(data):
    out = {}
    for t in data:
        out[t["key"]] = out.get(t["key"], 0) + 1
    return out


def sim_backend(n=3):
    cluster = Cluster()
    for i in range(n):
        cluster.add_machine(f"w{i}")
    return SimulatedBackend(cluster)


def group_factory():
    return GroupCountState("key")


class TestSimulatedBackend:
    def test_as_backend_wraps_cluster(self):
        cluster = Cluster()
        cluster.add_machine("m0")
        backend = as_backend(cluster)
        assert isinstance(backend, SimulatedBackend)
        assert backend.cluster is cluster
        # idempotent for an existing backend
        assert as_backend(backend) is backend

    def test_as_backend_rejects_junk(self):
        with pytest.raises(ClusterError):
            as_backend(object())

    def test_create_requires_configure(self):
        backend = sim_backend(1)
        with pytest.raises(ClusterError):
            backend.create_partition("w0", 0)

    def test_handoff_roundtrip_preserves_state(self):
        backend = sim_backend(2)
        backend.configure(group_factory)
        backend.create_partition("w0", 0)
        for i in range(5):
            backend.enqueue("w0", 0, i, S.make(7))
        backend.step()
        handoff = backend.remove_partition("w0", 0)
        assert handoff.applied == 5
        assert backend.peek_partition("w0", 0) is None
        backend.install_partition("w1", 0, handoff)
        assert backend.peek_partition("w1", 0).counts == {7: 5}
        assert backend.applied_count("w1", 0) == 5

    def test_snapshot_does_not_detach(self):
        backend = sim_backend(1)
        backend.configure(group_factory)
        backend.create_partition("w0", 0)
        backend.enqueue("w0", 0, 0, S.make(1))
        backend.step()
        handoff = backend.snapshot_partition("w0", 0)
        assert handoff.applied == 1
        assert backend.peek_partition("w0", 0) is not None
        # snapshot handoffs reconstruct (no live-state shortcut)
        restored = GroupCountState.from_snapshot(handoff.snapshot)
        assert restored.counts == {1: 1}

    def test_applied_count_survives_machine_death(self):
        backend = sim_backend(2)
        backend.configure(group_factory)
        backend.create_partition("w0", 0)
        backend.enqueue("w0", 0, 0, S.make(3))
        backend.step()
        backend.fail("w0")
        assert not backend.is_alive("w0")
        assert backend.applied_count("w0", 0) == 1   # loss accounting

    def test_imbalance_and_heartbeat(self):
        backend = sim_backend(2)
        backend.configure(group_factory)
        backend.create_partition("w0", 0)
        backend.create_partition("w1", 1)
        assert backend.imbalance() == 1.0   # all-zero backlog = balanced
        for i in range(4):
            backend.enqueue("w0", 0, i, S.make(1))
        assert backend.imbalance() == 2.0   # 4 vs 0 -> max/mean = 4/2
        beat = backend.heartbeat()
        assert beat["w0"] == {"alive": True, "backlog": 4, "processed": 0}
        assert beat["w1"]["backlog"] == 0

    def test_context_manager_protocol(self):
        with sim_backend(1) as backend:
            assert isinstance(backend, ClusterBackend)


class TestStableHash:
    """Routing must agree across interpreters (satellite: spawn-safe
    partitioning).  Known-value pins catch any drift toward the
    process-randomized builtin hash."""

    def test_known_values(self):
        assert Flux._stable_hash(42) == 42
        assert Flux._stable_hash("aapl") == zlib.crc32(b"aapl")
        assert Flux._stable_hash(("a", 1)) == zlib.crc32(repr(("a", 1)).encode())

    def test_never_uses_builtin_hash(self):
        # crc32 of "abc" is a published constant; builtin hash("abc")
        # cannot produce it under any seed.
        assert Flux._stable_hash("abc") == 891568578

    def test_partition_of_uses_stable_hash(self):
        backend = sim_backend(1)
        flux = Flux(backend, n_partitions=8, key_fn=lambda t: t["key"],
                    state_factory=group_factory)
        t = S.make(13)
        assert flux.partition_of(t) == 13 % 8


class TestLoopbackBackend:
    """The worker-core data path, in-process."""

    def test_rows_cross_the_wire_codec(self):
        backend = LoopbackBackend(workers=2)
        backend.configure(group_factory)
        backend.create_partition("w0", 0)
        backend.enqueue("w0", 0, 0, S.make(5))
        acks = backend.step()
        assert acks == {"w0": [(0, 0)]}
        # values survived JSON framing
        handoff = backend.snapshot_partition("w0", 0)
        assert GroupCountState.from_snapshot(handoff.snapshot).counts == {5: 1}

    def test_worker_rejects_unknown_command(self):
        core = WorkerCore("w0")
        reply = core.on_control({"op": "execute_command", "id": 9,
                                 "cmd": "frobnicate"})
        assert reply["type"] == "execution_failed"
        assert reply["id"] == 9
        assert "frobnicate" in reply["error"]

    def test_worker_reports_configure_errors(self):
        core = WorkerCore("w0")
        reply = core.on_control({"op": "execute_command", "id": 1,
                                 "cmd": "create", "pid": 0})
        assert reply["type"] == "execution_failed"
        assert "factory" in reply["error"]

    def test_fail_kills_state_and_rejects_enqueue(self):
        backend = LoopbackBackend(workers=2)
        backend.configure(group_factory)
        backend.create_partition("w0", 0)
        backend.fail("w0")
        assert backend.alive_ids() == ["w1"]
        assert backend.snapshot_partition("w0", 0) is None
        with pytest.raises(ClusterError):
            backend.enqueue("w0", 0, 0, S.make(1))
        with pytest.raises(ClusterError):
            backend.fail("w0")


def run_flux(backend, data, batch=50, replication=0, fail_at=None):
    flux = Flux(backend, n_partitions=8, key_fn=lambda t: t["key"],
                state_factory=group_factory, replication=replication)
    i = 0
    tick = 0
    while i < len(data) or flux.unacked_total():
        rows = data[i:i + batch]
        i += len(rows)
        flux.tick(rows)
        tick += 1
        if fail_at is not None and tick == fail_at[1]:
            backend.fail(fail_at[0])
            flux.on_machine_failure(fail_at[0])
        assert tick < 50_000
    return flux


class TestSimulatedLoopbackParity:
    """The tier-1 stand-in for the multiprocess acceptance test: the
    simulated substrate and the worker-core substrate must agree on
    every answer."""

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=30),
                    min_size=1, max_size=120),
           st.integers(min_value=1, max_value=4),
           st.sampled_from([0, 1]))
    def test_merged_counts_identical(self, keys, n_workers, replication):
        if replication and n_workers < 2:
            n_workers = 2
        data = [S.make(k, timestamp=i) for i, k in enumerate(keys)]
        sim = sim_backend(n_workers)
        loop = LoopbackBackend(workers=n_workers)
        sim_flux = run_flux(sim, data, replication=replication)
        loop_flux = run_flux(loop, data, replication=replication)
        assert sim_flux.merged_counts() == loop_flux.merged_counts() \
            == ground_truth(data)

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=30),
                    min_size=40, max_size=120),
           st.integers(min_value=1, max_value=3))
    def test_replicated_failover_parity(self, keys, fail_tick):
        data = [S.make(k, timestamp=i) for i, k in enumerate(keys)]
        sim = sim_backend(3)
        loop = LoopbackBackend(workers=3)
        sim_flux = run_flux(sim, data, replication=1,
                            fail_at=("w0", fail_tick))
        loop_flux = run_flux(loop, data, replication=1,
                             fail_at=("w0", fail_tick))
        assert sim_flux.merged_counts() == loop_flux.merged_counts() \
            == ground_truth(data)
        assert sim_flux.lost_tuples == loop_flux.lost_tuples == 0


class TestFluxPump:
    """The conductor pump as a unified-scheduler citizen."""

    def test_pump_drives_flux_to_completion(self):
        data = make_data(300)
        backend = sim_backend(3)
        flux = Flux(backend, n_partitions=8, key_fn=lambda t: t["key"],
                    state_factory=group_factory, replication=1)
        batches = [data[i:i + 40] for i in range(0, len(data), 40)]
        pump = FluxPump(flux, feed=batches)
        sched = Scheduler(policy="round_robin", telemetry=False)
        sched.add(pump)
        sched.run_until_finished(max_passes=50_000)
        assert pump.finished
        assert flux.unacked_total() == 0
        assert flux.merged_counts() == ground_truth(data)

    def test_pump_without_feed_drains_inflight(self):
        backend = sim_backend(2)
        flux = Flux(backend, n_partitions=4, key_fn=lambda t: t["key"],
                    state_factory=group_factory)
        flux.route(make_data(50))
        pump = FluxPump(flux)
        assert pump.ready()
        sched = Scheduler(policy="round_robin", telemetry=False)
        sched.add(pump)
        sched.run_until_finished(max_passes=10_000)
        assert flux.unacked_total() == 0
        assert not pump.ready()

    def test_recovery_time_is_recorded(self):
        backend = sim_backend(3)
        flux = Flux(backend, n_partitions=6, key_fn=lambda t: t["key"],
                    state_factory=group_factory, replication=1)
        flux.tick(make_data(100))
        backend.fail("w1")
        flux.on_machine_failure("w1")
        assert len(flux.recovery_times_ms) == 1
        assert flux.recovery_times_ms[-1] >= 0.0
