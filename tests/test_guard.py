"""The TCQ7xx whole-program guard: corpus expectations, false-positive
regression on the real tree, and the CLI surface (--json, --rules)."""

import json
import os
import subprocess
import sys
import time

import pytest

from repro.analysis.guard import build_model, guard_paths, infer_contexts

HERE = os.path.dirname(os.path.abspath(__file__))
CORPUS = os.path.join(HERE, "guard_corpus")
REPO = os.path.dirname(HERE)
SRC = os.path.join(REPO, "src")
SRC_REPRO = os.path.join(SRC, "repro")

#: file basename -> exact expected finding codes (sorted by line).
#: Good twins are pinned to [] so a regression in either direction fails.
EXPECTED = {
    "t701_bad.py": ["TCQ701", "TCQ701"],
    "t701_good.py": [],
    "t701_suppressed.py": [],
    "t702_bad.py": ["TCQ702", "TCQ702", "TCQ702"],
    "t702_good.py": [],
    "t703_bad.py": ["TCQ703", "TCQ703"],
    "t703_good.py": [],
    "t704_bad.py": ["TCQ704"],
    "t704_good.py": [],
    "t705_bad.py": ["TCQ705", "TCQ705"],
    "t705_good.py": [],
    "telemetry.py": [],
}


def by_file(diagnostics):
    out = {}
    for d in diagnostics:
        out.setdefault(os.path.basename(d.file), []).append(d.code)
    return out


@pytest.fixture(scope="module")
def corpus_result():
    return guard_paths([CORPUS])


def test_every_rule_fires_on_its_bad_twin(corpus_result):
    got = by_file(corpus_result.diagnostics)
    for fname, codes in EXPECTED.items():
        assert got.get(fname, []) == codes, fname


def test_no_findings_outside_the_expected_set(corpus_result):
    got = by_file(corpus_result.diagnostics)
    assert set(got) <= {f for f, codes in EXPECTED.items() if codes}


def test_suppressed_violation_is_counted_not_reported(corpus_result):
    assert corpus_result.suppressed >= 1
    files = {os.path.basename(d.file) for d in corpus_result.diagnostics}
    assert "t701_suppressed.py" not in files


def test_finding_carries_span_and_chain(corpus_result):
    d = next(d for d in corpus_result.diagnostics
             if os.path.basename(d.file) == "t701_bad.py")
    assert d.span != (-1, -1)
    assert "async context" in d.message
    # the rendered block points a caret at the offending call
    assert "^" in d.render()


def test_call_chain_reaches_through_helpers(corpus_result):
    recv = [d for d in corpus_result.diagnostics
            if os.path.basename(d.file) == "t701_bad.py"
            and ".recv()" in d.message]
    assert recv, "the run_once -> _relay -> _pull chain finding is missing"
    assert "run_once" in recv[0].message


# -- false-positive regression on the real tree --------------------------------

def test_real_tree_is_guard_clean():
    res = guard_paths([SRC_REPRO])
    assert [d.render() for d in res.diagnostics] == []
    # the justified survivors in flux/procs.py are suppressions, not
    # silence: the pass must actually be exercising them
    assert res.suppressed >= 1


def test_real_tree_pass_is_fast_enough():
    t0 = time.perf_counter()
    guard_paths([SRC_REPRO])
    elapsed = time.perf_counter() - t0
    assert elapsed < 5.0, f"guard pass took {elapsed:.2f}s (budget 5s)"


def test_context_inference_finds_the_flux_chain():
    """The async-reachable set must cross module boundaries: the pump's
    run_once makes the multiprocess backend's step loop-thread work."""
    model = build_model([SRC_REPRO])
    ctx = infer_contexts(model)
    assert "repro.flux.procs.MultiprocessBackend.step" in ctx.async_reachable
    chain = ctx.chain(ctx.async_reachable,
                      "repro.flux.procs.MultiprocessBackend.step")
    assert chain[0].endswith("run_once")


def test_nonblocking_step_has_no_wait_call():
    """The previously-real violation stays fixed: step() must not reach
    multiprocessing.connection.wait (that lives in wait_for_acks now)."""
    model = build_model([SRC_REPRO])
    step = model.functions["repro.flux.procs.MultiprocessBackend.step"]
    externals = {c.external for c in step.calls}
    assert "multiprocessing.connection.wait" not in externals
    wfa = model.functions["repro.flux.procs.MultiprocessBackend.wait_for_acks"]
    assert "multiprocessing.connection.wait" in {c.external for c in wfa.calls}


# -- CLI surface ---------------------------------------------------------------

def _run_cli(*args):
    env = {"PYTHONPATH": SRC, "PATH": os.environ.get("PATH", "/usr/bin:/bin")}
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True, text=True, env=env, cwd=REPO, timeout=120)


def test_cli_exits_nonzero_on_corpus():
    proc = _run_cli(CORPUS)
    assert proc.returncode == 10, proc.stdout


def test_cli_json_output():
    proc = _run_cli(CORPUS, "--json")
    payload = json.loads(proc.stdout)
    assert payload["count"] == len(payload["findings"]) == proc.returncode
    assert payload["suppressed"] >= 1
    f = payload["findings"][0]
    assert set(f) >= {"rule", "path", "line", "span", "message"}
    assert f["rule"].startswith("TCQ7")
    assert isinstance(f["span"], list) and len(f["span"]) == 2


def test_cli_rules_filter():
    proc = _run_cli(CORPUS, "--json", "--rules", "TCQ703,TCQ704")
    payload = json.loads(proc.stdout)
    rules = {f["rule"] for f in payload["findings"]}
    assert rules == {"TCQ703", "TCQ704"}
    assert proc.returncode == payload["count"] == 3


def test_cli_self_json_is_clean():
    proc = _run_cli("--self", "--json")
    assert proc.returncode == 0, proc.stdout
    payload = json.loads(proc.stdout)
    assert payload["findings"] == []
    assert payload["suppressed"] >= 1
