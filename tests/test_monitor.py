"""Tests for the monitor layer: statistics trackers and QoS load
shedding."""

import pytest

from repro.core.tuples import Schema
from repro.errors import QosError
from repro.monitor.qos import LoadShedder
from repro.monitor.stats import (EngineMonitor, LatencyTracker,
                                 RateEstimator, SelectivityTracker)

S = Schema.of("S", "cls", "v")


def batch(classes):
    return [S.make(c, i, timestamp=i) for i, c in enumerate(classes)]


class TestSelectivityTracker:
    def test_windowed_reacts_to_drift(self):
        tr = SelectivityTracker(window=50)
        for _ in range(200):
            tr.observe(True)
        for _ in range(50):
            tr.observe(False)
        assert tr.windowed() == 0.0
        assert 0.7 < tr.lifetime() < 0.9

    def test_defaults_before_evidence(self):
        tr = SelectivityTracker()
        assert tr.windowed() == 1.0
        assert tr.lifetime() == 1.0


class TestRateEstimator:
    def test_rate_over_window(self):
        est = RateEstimator(window_ticks=4)
        for n in (10, 20, 30, 40):
            est.tick(n)
        assert est.rate() == 25.0
        assert est.peak() == 40

    def test_window_slides(self):
        est = RateEstimator(window_ticks=2)
        est.tick(100)
        est.tick(0)
        est.tick(0)
        assert est.rate() == 0.0


class TestLatencyTracker:
    def test_quantiles(self):
        tr = LatencyTracker()
        for v in range(1, 101):
            tr.observe(float(v))
        assert tr.quantile(0.5) == pytest.approx(51, abs=2)
        assert tr.quantile(0.95) == pytest.approx(96, abs=2)
        assert tr.mean() == pytest.approx(50.5)

    def test_reservoir_bounds_memory(self):
        tr = LatencyTracker(reservoir=16)
        for v in range(10_000):
            tr.observe(float(v))
        assert len(tr._samples) == 16
        assert tr.count == 10_000

    def test_empty(self):
        tr = LatencyTracker()
        assert tr.quantile(0.5) is None
        assert tr.mean() is None


class TestEngineMonitor:
    def test_overload_factor(self):
        mon = EngineMonitor()
        mon.arrival.tick(100)
        mon.service.tick(50)
        assert mon.overload_factor() == 2.0

    def test_overload_with_zero_service(self):
        mon = EngineMonitor()
        mon.arrival.tick(10)
        assert mon.overload_factor() == float("inf")

    def test_snapshot_shape(self):
        mon = EngineMonitor()
        mon.selectivity("f1").observe(True)
        snap = mon.snapshot()
        assert "f1" in snap["selectivities"]


class TestLoadShedder:
    def test_none_policy_never_drops(self):
        shedder = LoadShedder(policy="none")
        shedder.update(arrived=1000, serviced=10)
        kept = shedder.admit(batch(["a"] * 100))
        assert len(kept) == 100
        assert shedder.completeness() == 1.0

    def test_random_sheds_proportionally(self):
        shedder = LoadShedder(policy="random", seed=1,
                              target_utilisation=1.0)
        rate = shedder.update(arrived=200, serviced=100)
        assert rate == pytest.approx(0.5)
        kept = shedder.admit(batch(["a"] * 1000))
        assert 400 < len(kept) < 600

    def test_no_shedding_under_capacity(self):
        shedder = LoadShedder(policy="random")
        assert shedder.update(arrived=50, serviced=100) == 0.0
        assert len(shedder.admit(batch(["a"] * 10))) == 10

    def test_preferred_drops_low_priority_first(self):
        shedder = LoadShedder(policy="preferred",
                              classify=lambda t: t["cls"],
                              preferences={"gold": 10.0, "junk": 0.0},
                              target_utilisation=1.0)
        shedder.update(arrived=100, serviced=50)
        mixed = batch(["gold"] * 10 + ["junk"] * 10)
        kept = shedder.admit(mixed)
        kept_classes = [t["cls"] for t in kept]
        assert kept_classes.count("gold") == 10
        assert kept_classes.count("junk") < 10
        assert shedder.dropped_by_class.get("junk", 0) > 0
        assert shedder.dropped_by_class.get("gold", 0) == 0

    def test_preferred_requires_classifier(self):
        with pytest.raises(QosError):
            LoadShedder(policy="preferred")

    def test_unknown_policy(self):
        with pytest.raises(QosError):
            LoadShedder(policy="yolo")

    def test_shedding_adapts_to_lull(self):
        shedder = LoadShedder(policy="random", target_utilisation=1.0)
        shedder.update(arrived=200, serviced=100)
        assert shedder.drop_rate > 0
        for _ in range(40):                 # long lull
            shedder.update(arrived=10, serviced=100)
        assert shedder.drop_rate == 0.0

    def test_stats_shape(self):
        shedder = LoadShedder(policy="random")
        stats = shedder.stats()
        assert stats["policy"] == "random"
        assert stats["completeness"] == 1.0
