"""Unit + property tests for incremental aggregates, including the
landmark-vs-sliding state asymmetry of Section 4.1.2."""

import pytest
from hypothesis import given, strategies as st

from repro.core.aggregates import (AvgAggregate, CountAggregate,
                                   MaxAggregate, MinAggregate,
                                   NaiveSlidingExtreme, SlidingAvg,
                                   SlidingCount, SlidingMax, SlidingMin,
                                   SlidingSum, StdDevAggregate,
                                   SumAggregate, make_aggregate)
from repro.errors import QueryError


class TestLandmarkAggregates:
    def test_count(self):
        agg = CountAggregate()
        for _ in range(5):
            agg.add(1)
        assert agg.result() == 5

    def test_sum_empty_is_none(self):
        assert SumAggregate().result() is None

    def test_sum(self):
        agg = SumAggregate()
        for v in (1, 2, 3):
            agg.add(v)
        assert agg.result() == 6

    def test_avg(self):
        agg = AvgAggregate()
        for v in (1, 2, 3, 4):
            agg.add(v)
        assert agg.result() == 2.5

    def test_min_max(self):
        mn, mx = MinAggregate(), MaxAggregate()
        for v in (3, 1, 4, 1, 5):
            mn.add(v)
            mx.add(v)
        assert mn.result() == 1
        assert mx.result() == 5

    def test_landmark_max_state_is_constant(self):
        agg = MaxAggregate()
        for v in range(10_000):
            agg.add(v)
        assert agg.state_size() == 1   # the paper's O(1) claim

    def test_stddev(self):
        agg = StdDevAggregate()
        for v in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
            agg.add(v)
        assert agg.result() == pytest.approx(2.138, abs=1e-3)
        assert agg.mean() == pytest.approx(5.0)

    def test_stddev_degenerate(self):
        agg = StdDevAggregate()
        assert agg.result() is None
        agg.add(1.0)
        assert agg.result() == 0.0

    def test_fresh_returns_empty_instance(self):
        agg = SumAggregate()
        agg.add(5)
        assert agg.fresh().result() is None


class TestSlidingAggregates:
    def test_sliding_sum_with_retraction(self):
        agg = SlidingSum()
        agg.add(1)
        agg.add(2)
        agg.add(3)
        agg.remove(1)
        assert agg.result() == 5

    def test_sliding_count(self):
        agg = SlidingCount()
        agg.add(1)
        agg.add(2)
        agg.remove(1)
        assert agg.result() == 1

    def test_sliding_avg(self):
        agg = SlidingAvg()
        for v in (10, 20, 30):
            agg.add(v)
        agg.remove(10)
        assert agg.result() == 25.0

    def test_sliding_max_basic(self):
        agg = SlidingMax()
        for v in (3, 1, 4):
            agg.add(v)
        assert agg.result() == 4
        agg.remove(3)
        assert agg.result() == 4
        agg.remove(1)
        agg.remove(4)
        assert agg.result() is None

    def test_sliding_max_retracts_maximum(self):
        agg = SlidingMax()
        for v in (9, 2, 5):
            agg.add(v)
        agg.remove(9)
        assert agg.result() == 5

    def test_sliding_min(self):
        agg = SlidingMin()
        for v in (3, 1, 4):
            agg.add(v)
        agg.remove(3)
        assert agg.result() == 1
        agg.remove(1)
        assert agg.result() == 4

    def test_out_of_order_removal_rejected(self):
        agg = SlidingMax()
        agg.add(1)
        agg.add(2)
        with pytest.raises(QueryError, match="out of order"):
            agg.remove(2)

    def test_remove_from_empty_rejected(self):
        with pytest.raises(QueryError):
            SlidingMax().remove(1)

    def test_sliding_max_state_grows_with_window(self):
        """Section 4.1.2: sliding MAX needs window-sized state (for
        descending input every element is retained)."""
        agg = SlidingMax()
        for v in range(100, 0, -1):
            agg.add(v)
        assert agg.state_size() >= 100

    def test_naive_extreme_equivalence(self):
        naive = NaiveSlidingExtreme(max, "MAX")
        smart = SlidingMax()
        window = []
        for v in (5, 3, 8, 1, 8, 2):
            naive.add(v)
            smart.add(v)
            window.append(v)
            if len(window) > 3:
                evicted = window.pop(0)
                naive.remove(evicted)
                smart.remove(evicted)
            assert naive.result() == smart.result() == max(window)


class TestRegistry:
    def test_make_landmark(self):
        assert isinstance(make_aggregate("max"), MaxAggregate)

    def test_make_sliding(self):
        assert isinstance(make_aggregate("max", sliding=True), SlidingMax)

    def test_case_insensitive(self):
        assert isinstance(make_aggregate("Count"), CountAggregate)

    def test_unknown_rejected(self):
        with pytest.raises(QueryError, match="unknown aggregate"):
            make_aggregate("median")


@given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=200),
       st.integers(1, 20))
def test_sliding_max_matches_bruteforce(values, width):
    """Property: the monotonic-deque sliding MAX equals a rescan of the
    window at every step."""
    agg = SlidingMax()
    window = []
    for v in values:
        agg.add(v)
        window.append(v)
        if len(window) > width:
            agg.remove(window.pop(0))
        assert agg.result() == max(window)


@given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=200),
       st.integers(1, 20))
def test_sliding_min_matches_bruteforce(values, width):
    agg = SlidingMin()
    window = []
    for v in values:
        agg.add(v)
        window.append(v)
        if len(window) > width:
            agg.remove(window.pop(0))
        assert agg.result() == min(window)


@given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=100))
def test_landmark_extremes_match_builtins(values):
    mn, mx = MinAggregate(), MaxAggregate()
    for v in values:
        mn.add(v)
        mx.add(v)
    assert mn.result() == min(values)
    assert mx.result() == max(values)


@given(st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=2,
                max_size=100))
def test_welford_matches_two_pass(values):
    import math
    agg = StdDevAggregate()
    for v in values:
        agg.add(v)
    mean = sum(values) / len(values)
    var = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    assert agg.result() == pytest.approx(math.sqrt(var), rel=1e-6,
                                         abs=1e-6)
