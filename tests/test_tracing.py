"""Unit tests for sampled end-to-end tuple tracing
(:mod:`repro.monitor.tracing`): sampling discipline, trace propagation
through joins/batches/queues, idempotent finish, bounded storage,
latency watermark publication, and the JSONL / Chrome exporters.
"""

import json

import pytest

import repro.monitor.introspect as introspect
import repro.monitor.tracing as tracing
from repro.core.eddy import Eddy, FilterOperator
from repro.core.routing import BatchingDirective, FixedPolicy
from repro.core.tuples import Punctuation, Schema, TupleBatch
from repro.fjords.fjord import Fjord
from repro.fjords.module import CollectingSink
from repro.fjords.queues import FjordQueue
from repro.monitor.telemetry import MetricRegistry, set_registry
from repro.query.predicates import Comparison

from tests.conftest import ListFeed

S = Schema.of("S", "a", "k")


@pytest.fixture(autouse=True)
def _isolated_observability():
    """Tracer, flight recorder, and metric registry are process-wide;
    give every test a clean slate and restore defaults afterwards."""
    previous = set_registry(MetricRegistry())
    tracing.TRACER.configure(sample_every=0, capacity=256)
    tracing.TRACER.reset()
    introspect.RECORDER.configure(capacity=512, enabled=False)
    introspect.RECORDER.clear()
    yield
    tracing.TRACER.configure(sample_every=0, capacity=256)
    tracing.TRACER.reset()
    introspect.RECORDER.configure(capacity=512, enabled=False)
    introspect.RECORDER.clear()
    set_registry(previous)


def _rows(n):
    return [S.make(i, i % 3, timestamp=i) for i in range(n)]


# ------------------------------------------------------------- sampling

def test_disabled_tracer_attaches_nothing():
    t = S.make(1, 1)
    assert not tracing.TRACER.active
    assert tracing.TRACER.maybe_start(t, "S") is None
    assert t.trace is None
    assert tracing.TRACER.started == 0


def test_samples_every_nth_arrival():
    tracing.configure_tracing(3)
    rows = _rows(10)
    for t in rows:
        tracing.TRACER.maybe_start(t, "S")
    traced = [i for i, t in enumerate(rows) if t.trace is not None]
    assert traced == [2, 5, 8]          # 3rd, 6th, 9th arrivals
    assert tracing.TRACER.started == 3


def test_sample_every_one_traces_everything():
    tracing.configure_tracing(1)
    rows = _rows(7)
    for t in rows:
        tracing.TRACER.maybe_start(t, "S")
    assert all(t.trace is not None for t in rows)
    assert all(t.trace.source == "S" for t in rows)
    # Every trace opens with its ingress hop.
    assert all(t.trace.hops[0].kind == "ingress" for t in rows)


def test_configure_zero_switches_off():
    tracing.configure_tracing(4)
    assert tracing.TRACER.active
    tracing.configure_tracing(0)
    assert not tracing.TRACER.active


# ------------------------------------------------- lifecycle and bounds

def test_finish_is_idempotent():
    tracing.configure_tracing(1)
    tr = tracing.TRACER.start("S")
    tracing.TRACER.finish(tr, "q1")
    first = tr.finished_at
    tracing.TRACER.finish(tr, "q2")
    assert tr.finished_at == first
    assert tr.query == "q1"            # first delivery wins
    assert tracing.TRACER.completed == 1
    assert len(tracing.TRACER.recent()) == 1


def test_ring_is_bounded():
    tracing.TRACER.configure(sample_every=1, capacity=4)
    for _ in range(11):
        tracing.TRACER.finish(tracing.TRACER.start("S"), "q")
    assert tracing.TRACER.completed == 11
    assert len(tracing.TRACER.recent()) == 4
    assert tracing.TRACER.summary()["ring"] == 4


def test_recent_returns_newest_last():
    tracing.configure_tracing(1)
    for _ in range(5):
        tracing.TRACER.finish(tracing.TRACER.start("S"), "q")
    recent = tracing.TRACER.recent(2)
    assert len(recent) == 2
    assert recent[-1].trace_id == 5


# ---------------------------------------------------------- propagation

def test_concat_carries_probe_side_trace():
    tracing.configure_tracing(1)
    probe = S.make(1, 1)
    stored = Schema.of("T", "b", "k").make(2, 1)
    probe.trace = tracing.TRACER.start("S")
    out = probe.concat(stored)
    assert out.trace is probe.trace
    # Stored-side trace survives when the prober is untraced.
    probe2 = S.make(3, 2)
    stored2 = Schema.of("T", "b", "k").make(4, 2)
    stored2.trace = tracing.TRACER.start("T")
    assert probe2.concat(stored2).trace is stored2.trace


def test_batch_collects_row_traces():
    tracing.configure_tracing(2)
    rows = _rows(6)
    for t in rows:
        tracing.TRACER.maybe_start(t, "S")
    batch = TupleBatch.from_tuples(rows)
    assert len(batch.traces) == 3
    tracing.note_hop(batch, "queue", "q0", "in")
    assert all(tr.hops[-1].site == "q0" for tr in batch.traces)


def test_note_hop_ignores_punctuation():
    tracing.note_hop(Punctuation.eos("S"), "queue", "q0", "in")


def test_queue_records_in_and_out_hops():
    tracing.configure_tracing(1)
    q = FjordQueue(name="q0")
    t = S.make(1, 1)
    tracing.TRACER.maybe_start(t, "S")
    q.push(t)
    got = q.pop()
    kinds = [(h.kind, h.site, h.detail) for h in got.trace.hops]
    assert ("queue", "q0", "in") in kinds
    assert ("queue", "q0", "out") in kinds


def test_untraced_tuples_cost_no_hops():
    tracing.configure_tracing(10)   # active, but samples almost nothing
    q = FjordQueue(name="q0")
    t = S.make(1, 1)
    q.push(t)
    assert q.pop().trace is None


# ---------------------------------------------- end-to-end fjord traces

def _run_traced_pipeline(n=24):
    ops = [FilterOperator(Comparison("a", ">=", 0), name="f0")]
    eddy = Eddy(ops, output_sources={"S"}, policy=FixedPolicy(["f0"]),
                batching=BatchingDirective(4))
    sink = CollectingSink("sink")
    f = Fjord()
    f.connect(ListFeed(_rows(n)), eddy)
    f.connect(eddy, sink)
    f.run_until_finished()
    return sink


def test_fjord_pipeline_traces_ingress_to_egress():
    tracing.configure_tracing(1)
    sink = _run_traced_pipeline()
    assert tracing.TRACER.completed == 24
    tr = tracing.TRACER.recent(1)[0]
    kinds = [h.kind for h in tr.hops]
    assert kinds[0] == "ingress"
    assert kinds[-1] == "egress"
    assert "queue" in kinds
    assert "eddy" in kinds
    assert tr.finished_at is not None
    assert tr.latency() >= 0.0
    # The scheduler stamps the pass that drove each post-ingress hop.
    assert any(h.sched_pass for h in tr.hops)
    assert len(sink.results) == 24


def test_filtered_tuples_never_finish():
    tracing.configure_tracing(1)
    ops = [FilterOperator(Comparison("a", "<", 5), name="f0")]
    eddy = Eddy(ops, output_sources={"S"}, policy=FixedPolicy(["f0"]))
    sink = CollectingSink("sink")
    f = Fjord()
    f.connect(ListFeed(_rows(20)), eddy)
    f.connect(eddy, sink)
    f.run_until_finished()
    assert tracing.TRACER.started == 20
    assert tracing.TRACER.completed == 5   # a in 0..4 pass; rest dropped


# ------------------------------------------------------------ exporters

def test_export_jsonl_one_object_per_line():
    tracing.configure_tracing(1)
    _run_traced_pipeline(6)
    text = tracing.TRACER.export_jsonl()
    lines = text.splitlines()
    assert len(lines) == 6
    for line in lines:
        d = json.loads(line)
        assert d["finished"] is True
        assert d["hops"][0]["kind"] == "ingress"
        assert d["latency_s"] >= 0.0


def test_export_chrome_trace_events():
    tracing.configure_tracing(1)
    _run_traced_pipeline(4)
    doc = json.loads(tracing.TRACER.export_chrome())
    events = doc["traceEvents"]
    assert events and all(e["ph"] == "X" for e in events)
    assert all(e["dur"] >= 0.0 and e["ts"] >= 0.0 for e in events)
    # One summary span per finished trace.
    assert sum(1 for e in events if e["cat"] == "trace") == 4


def test_export_empty_ring():
    assert tracing.TRACER.export_jsonl() == ""
    assert json.loads(tracing.TRACER.export_chrome()) == {
        "traceEvents": [], "displayTimeUnit": "ms"}


# ------------------------------------------------------------ watermarks

def test_finish_publishes_latency_watermarks():
    tracing.configure_tracing(1)
    _run_traced_pipeline(8)
    from repro.monitor.telemetry import get_registry
    names = {s.name for s in get_registry().snapshot().samples}
    assert "tcq_trace_e2e_latency_seconds" in names
    assert "tcq_trace_traces_total" in names
    assert "tcq_trace_hop_seconds" in names
    assert "tcq_trace_hops_total" in names
    lat = tracing.latency_by_query()
    assert lat["sink"]["count"] == 8.0
    assert lat["sink"]["p95"] >= lat["sink"]["p50"] >= 0.0


def test_exact_percentiles_nearest_rank():
    values = [float(i) for i in range(1, 101)]
    pct = tracing.exact_percentiles(values)
    assert pct[0.5] == 50.0
    assert pct[0.95] == 95.0
    assert pct[0.99] == 99.0
    assert tracing.exact_percentiles([]) == {0.5: 0.0, 0.95: 0.0,
                                             0.99: 0.0}


def test_histogram_percentiles_interpolates():
    class FakeSample:
        count = 100
        buckets = [(0.1, 50), (1.0, 100), (float("inf"), 100)]
    pct = tracing.histogram_percentiles(FakeSample())
    assert pct[0.5] == pytest.approx(0.1)
    assert 0.1 < pct[0.95] <= 1.0
    empty = type("E", (), {"count": 0, "buckets": []})()
    assert tracing.histogram_percentiles(empty) == {0.5: 0.0, 0.95: 0.0,
                                                    0.99: 0.0}
