"""Tests for the automatic adaptivity controller (§4.3)."""

import pytest

from repro.core.adaptivity import AdaptivityController, ControlledEddy
from repro.core.eddy import Eddy, FilterOperator
from repro.core.routing import BatchingDirective, LotteryPolicy
from repro.core.tuples import Schema
from repro.errors import PlanError
from repro.ingress.generators import DriftingSelectivityGenerator
from repro.query.predicates import Comparison

S = Schema.of("drift", "a", "b")


def make_eddy(batch=1):
    ops = [FilterOperator(Comparison("a", "==", 1), name="fa"),
           FilterOperator(Comparison("b", "==", 1), name="fb")]
    return Eddy(ops, output_sources={"drift"},
                policy=LotteryPolicy(seed=1),
                batching=BatchingDirective(batch))


class TestController:
    def test_grows_batch_on_stable_stream(self):
        eddy = make_eddy(batch=1)
        controller = AdaptivityController(eddy, check_every=100,
                                          max_batch=64)
        rows = DriftingSelectivityGenerator(seed=2, flip_at=0).take(2000)
        for t in rows:
            eddy.process(t, 0)
            controller.after_tuple()
        assert controller.current_batch == 64

    def test_shrinks_batch_on_drift(self):
        eddy = make_eddy(batch=64)
        controller = AdaptivityController(eddy, check_every=100,
                                          min_batch=1, max_batch=64,
                                          drift_threshold=0.12)
        # stable prefix lets the controller settle, then a hard flip
        rows = DriftingSelectivityGenerator(seed=3, flip_at=600).take(1200)
        batches = []
        for t in rows:
            eddy.process(t, 0)
            adjusted = controller.after_tuple()
            if adjusted is not None:
                batches.append((eddy.tuples_routed, adjusted))
        # the flip (at tuple 600) must trigger shrinking; the EWMA
        # warm-up may cause one early transient adjustment, so look
        # specifically for post-flip shrinks
        post_flip_shrinks = [b for at, b in batches
                             if at > 600 and b < 64]
        assert post_flip_shrinks
        assert min(post_flip_shrinks) <= 16

    def test_recovers_after_drift_passes(self):
        eddy = make_eddy(batch=1)
        controller = AdaptivityController(eddy, check_every=100,
                                          max_batch=32,
                                          drift_threshold=0.12)
        rows = DriftingSelectivityGenerator(seed=4, flip_at=500).take(4000)
        min_seen = 32
        for t in rows:
            eddy.process(t, 0)
            controller.after_tuple()
            min_seen = min(min_seen, controller.current_batch)
        # the flip pushed the knob down; the long stable tail grew it
        # back up toward the cap
        assert min_seen <= 8
        assert controller.current_batch >= 16

    def test_adjustment_invalidates_route_cache(self):
        eddy = make_eddy(batch=8)
        eddy._route_cache[(0, frozenset({"drift"}))] = ({"fa"}, 5)
        controller = AdaptivityController(eddy, check_every=1,
                                          drift_threshold=0.0)
        controller.after_tuple()      # first check only samples
        eddy.operators[0]._ewma_selectivity = 0.0   # force "drift"
        controller.after_tuple()
        assert eddy._route_cache == {}

    def test_validation(self):
        eddy = make_eddy()
        with pytest.raises(PlanError):
            AdaptivityController(eddy, min_batch=0)
        with pytest.raises(PlanError):
            AdaptivityController(eddy, min_batch=8, max_batch=4)
        with pytest.raises(PlanError):
            AdaptivityController(eddy, grow_factor=1)

    def test_stats_shape(self):
        eddy = make_eddy()
        controller = AdaptivityController(eddy, check_every=1)
        controller.after_tuple()
        stats = controller.stats()
        assert stats["checks"] == 1
        assert stats["current_batch"] == eddy.batching.batch_size


class TestControlledEddy:
    def test_drives_like_a_plain_eddy_with_identical_answers(self):
        rows = DriftingSelectivityGenerator(seed=5, flip_at=700).take(2000)
        plain = make_eddy(batch=1)
        plain_out = sum(len(plain.process(t, 0)) for t in rows)
        rows2 = DriftingSelectivityGenerator(seed=5, flip_at=700).take(2000)
        controlled = ControlledEddy(make_eddy(batch=1), check_every=100)
        auto_out = sum(len(controlled.process(t)) for t in rows2)
        assert auto_out == plain_out
        assert controlled.controller.checks > 0

    def test_attribute_passthrough(self):
        controlled = ControlledEddy(make_eddy())
        assert controlled.tuples_routed == 0
        assert controlled.operators
