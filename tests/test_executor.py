"""Tests for the Executor: EOs, DUs, footprint classes, dynamic plan
fold-in, and EO merging when a query bridges classes."""

import pytest

from repro.core.executor import (DispatchUnit, ExecutionObject, Executor,
                                 FootprintClasses)
from repro.errors import ExecutionError


def counting_du(name, work=3, mode=DispatchUnit.MODE_SHARED_CQ):
    """A DU that reports progress ``work`` times, then finishes."""
    state = {"left": work}

    def step(batch):
        if state["left"] <= 0:
            return False
        state["left"] -= 1
        return True

    return DispatchUnit(name, mode, step,
                        is_finished=lambda: state["left"] <= 0), state


class TestDispatchUnit:
    def test_run_counts_quanta(self):
        du, _ = counting_du("x", work=2)
        assert du.run_once()
        assert du.run_once()
        assert not du.run_once()
        assert du.quanta == 3
        assert du.busy_quanta == 2

    def test_modes_exposed(self):
        assert DispatchUnit.MODE_TRADITIONAL == 1
        assert DispatchUnit.MODE_SINGLE_EDDY == 2
        assert DispatchUnit.MODE_SHARED_CQ == 3

    def test_from_fjord(self):
        from repro.core.tuples import Schema
        from repro.fjords.fjord import Fjord
        from repro.fjords.module import CollectingSink
        from tests.conftest import ListFeed
        S = Schema.of("S", "v")
        f = Fjord()
        f.connect(ListFeed([S.make(i) for i in range(5)]), CollectingSink())
        du = DispatchUnit.from_fjord(f)
        while not du.finished:
            du.run_once()
        assert du.finished


class TestExecutionObject:
    def test_round_robin_runs_all(self):
        eo = ExecutionObject(0)
        du1, s1 = counting_du("a", work=2)
        du2, s2 = counting_du("b", work=2)
        eo.add(du1)
        eo.add(du2)
        eo.step()
        assert s1["left"] == 1 and s2["left"] == 1

    def test_finished_dus_skipped(self):
        eo = ExecutionObject(0)
        du, state = counting_du("a", work=1)
        eo.add(du)
        eo.step()
        quanta = du.quanta
        eo.step()
        assert du.quanta == quanta       # not re-run after finishing
        assert eo.live_units == 0

    def test_remove(self):
        eo = ExecutionObject(0)
        du, _ = counting_du("a")
        eo.add(du)
        eo.remove("a")
        assert not eo.dispatch_units

    def test_unknown_policy_rejected(self):
        with pytest.raises(ExecutionError):
            ExecutionObject(0, policy="fifo")

    def test_busy_first_policy_runs(self):
        eo = ExecutionObject(0, policy="busy_first")
        du, _ = counting_du("a", work=3)
        eo.add(du)
        assert eo.step()


class TestFootprintClasses:
    def test_disjoint_footprints_distinct(self):
        fc = FootprintClasses()
        a = fc.class_of(["s1"])
        b = fc.class_of(["s2"])
        assert a != b

    def test_overlap_merges(self):
        fc = FootprintClasses()
        fc.class_of(["s1"])
        fc.class_of(["s2"])
        merged = fc.class_of(["s1", "s2"])
        assert fc.class_of(["s1"]) == fc.class_of(["s2"]) == merged

    def test_transitive_merge(self):
        fc = FootprintClasses()
        fc.class_of(["a", "b"])
        fc.class_of(["b", "c"])
        assert fc.class_of(["a"]) == fc.class_of(["c"])

    def test_empty_footprint_rejected(self):
        with pytest.raises(ExecutionError):
            FootprintClasses().class_of([])

    def test_peek_does_not_union(self):
        fc = FootprintClasses()
        fc.class_of(["a"])
        fc.class_of(["b"])
        assert len(fc.peek(["a", "b"])) == 2
        # still distinct afterwards
        assert fc.class_of(["a"]) != fc.class_of(["b"])

    def test_find_survives_deep_parent_chain(self):
        """Regression: the recursive _find blew the interpreter stack on
        chains deeper than the recursion limit.  Union-by-rank never
        builds such chains itself, so seed one directly and check the
        iterative find both resolves and fully compresses it."""
        import sys
        fc = FootprintClasses()
        depth = sys.getrecursionlimit() * 5
        fc._parent["s0"] = "s0"
        fc._rank["s0"] = 1
        for i in range(1, depth):
            fc._parent[f"s{i}"] = f"s{i - 1}"
            fc._rank[f"s{i}"] = 0
        assert fc.class_of([f"s{depth - 1}"]) == "s0"
        # Path compression: every stream on the chain now points at the
        # root, so the next find is O(1).
        assert fc._parent[f"s{depth - 1}"] == "s0"
        assert fc._parent[f"s{depth // 2}"] == "s0"


class TestExecutor:
    def test_fold_in_on_step(self):
        ex = Executor()
        du, state = counting_du("a", work=2)
        ex.enqueue_plan(["s1"], du)
        assert not ex.execution_objects
        ex.step()
        assert len(ex.execution_objects) == 1
        assert state["left"] == 1

    def test_disjoint_queries_get_separate_eos(self):
        ex = Executor()
        ex.enqueue_plan(["s1"], counting_du("a")[0])
        ex.enqueue_plan(["s2"], counting_du("b")[0])
        ex.step()
        assert len(ex.execution_objects) == 2

    def test_overlapping_queries_share_an_eo(self):
        ex = Executor()
        ex.enqueue_plan(["s1"], counting_du("a")[0])
        ex.enqueue_plan(["s1", "s2"], counting_du("b")[0])
        ex.step()
        assert len(ex.execution_objects) == 1
        assert len(ex.execution_objects[0].dispatch_units) == 2

    def test_bridging_query_merges_eos(self):
        ex = Executor()
        ex.enqueue_plan(["s1"], counting_du("a")[0])
        ex.enqueue_plan(["s2"], counting_du("b")[0])
        ex.step()
        assert len(ex.execution_objects) == 2
        ex.enqueue_plan(["s1", "s2"], counting_du("bridge")[0])
        ex.step()
        assert len(ex.execution_objects) == 1
        names = {du.name for du in ex.execution_objects[0].dispatch_units}
        assert names == {"a", "b", "bridge"}

    def test_bridging_query_merges_multiple_stale_classes(self):
        """eo_for with several stale class representatives: a footprint
        spanning three previously-disjoint classes must collapse all
        three EOs into one, migrating every DU and deregistering the
        absorbed EOs from the top-level scheduler."""
        ex = Executor()
        for stream in ("s1", "s2", "s3"):
            ex.enqueue_plan([stream], counting_du(f"du-{stream}", work=9)[0])
        ex.step()
        assert len(ex.execution_objects) == 3
        survivors = {eo.name for eo in ex.execution_objects}
        ex.enqueue_plan(["s1", "s2", "s3"], counting_du("bridge", work=9)[0])
        ex.step()
        assert len(ex.execution_objects) == 1
        merged = ex.execution_objects[0]
        assert merged.name in survivors      # reused, not recreated
        names = {du.name for du in merged.dispatch_units}
        assert names == {"du-s1", "du-s2", "du-s3", "bridge"}
        # The absorbed EOs are gone from the top-level scheduler: one
        # more step runs each surviving DU exactly once.
        quanta = {du.name: du.quanta for du in merged.dispatch_units}
        ex.step()
        for du in merged.dispatch_units:
            assert du.quanta == quanta[du.name] + 1

    def test_eo_for_is_stable_after_merge(self):
        """After a merge every constituent footprint resolves to the
        surviving EO, and repeated lookups do not allocate new EOs."""
        ex = Executor()
        ex.enqueue_plan(["s1"], counting_du("a", work=9)[0])
        ex.enqueue_plan(["s2"], counting_du("b", work=9)[0])
        ex.step()
        merged = ex.eo_for(["s1", "s2"])
        assert ex.eo_for(["s1"]) is merged
        assert ex.eo_for(["s2"]) is merged
        assert len(ex.execution_objects) == 1

    def test_run_until_quiescent(self):
        ex = Executor()
        du, state = counting_du("a", work=5)
        ex.enqueue_plan(["s1"], du)
        ex.run_until_quiescent()
        assert state["left"] == 0

    def test_stats(self):
        ex = Executor()
        ex.enqueue_plan(["s1"], counting_du("a")[0])
        ex.step()
        stats = ex.stats()
        assert stats["eos"] == 1
        assert stats["dus"] == 1
