"""The network service end to end, over real loopback sockets.

Covers the acceptance bar for the network front door: many concurrent
clients with zero cross-client leakage, slow-consumer eviction that
never stalls well-behaved sessions, credit-metered streaming, the HTTP
admin plane, and /metrics parity with the in-process registry.
"""

import asyncio
import json
import urllib.request

import pytest

from repro.errors import ConnectionClosedError, ProtocolError, QueryError
from repro.monitor.telemetry import TelemetrySnapshot, get_registry
from repro.net.aioclient import AsyncFrameClient
from repro.net.frames import encode_frame
from repro.net.service import TelegraphCQService


def run(coro):
    return asyncio.run(coro)


async def started(**kwargs):
    service = TelegraphCQService(**kwargs)
    await service.start()
    return service


# ---------------------------------------------------------------------------
# concurrency and isolation
# ---------------------------------------------------------------------------

@pytest.mark.net
def test_256_clients_zero_leakage():
    """256 concurrent sessions over one engine; every client sees
    exactly its own predicate's matches and nobody else's."""

    async def scenario():
        service = await started(admin_port=None)
        try:
            feeder = AsyncFrameClient("127.0.0.1", service.port)
            await feeder.connect(client="feeder")
            await feeder.request("DDL", action="create_stream",
                                 name="s", columns=["a"])

            clients = [AsyncFrameClient("127.0.0.1", service.port)
                       for _ in range(256)]
            await asyncio.gather(*(c.connect(client=f"c{i}")
                                   for i, c in enumerate(clients)))
            submits = await asyncio.gather(*(
                c.request("SUBMIT", query=f"SELECT * FROM s WHERE a >= {i}")
                for i, c in enumerate(clients)))
            cursors = [r["cursor"] for r in submits]
            assert len(set(cursors)) == 256

            await feeder.request(
                "PUSH", stream="s", rows=[[v] for v in range(10)],
                timestamp=1)

            fetches = await asyncio.gather(*(
                c.request("FETCH", cursor=cid)
                for c, cid in zip(clients, cursors)))
            for i, payload in enumerate(fetches):
                got = sorted(row["v"][0] for row in payload["rows"])
                assert got == list(range(i, 10)), f"client {i} leaked"

            stats = await feeder.request("STATS")
            assert stats["net"]["sessions_open"] == 257
            await asyncio.gather(*(c.close() for c in clients))
            await feeder.close()
        finally:
            await service.stop()

    run(scenario())


def test_cross_client_cursor_isolation():
    """A cursor id is scoped to the session that created it: another
    client probing the same id gets an error, not data."""

    async def scenario():
        service = await started(admin_port=None)
        try:
            a = AsyncFrameClient("127.0.0.1", service.port)
            b = AsyncFrameClient("127.0.0.1", service.port)
            await a.connect(client="a")
            await b.connect(client="b")
            await a.request("DDL", action="create_stream", name="s",
                            columns=["x"])
            sub = await a.request("SUBMIT", query="SELECT * FROM s")
            with pytest.raises(QueryError, match="no cursor"):
                await b.request("FETCH", cursor=sub["cursor"])
            # ... and the owner still works fine afterwards.
            await a.request("PUSH", stream="s", rows=[[1]])
            mine = await a.request("FETCH", cursor=sub["cursor"])
            assert len(mine["rows"]) == 1
            await a.close()
            await b.close()
        finally:
            await service.stop()

    run(scenario())


# ---------------------------------------------------------------------------
# backpressure and eviction
# ---------------------------------------------------------------------------

def test_slow_consumer_evicted_without_stalling_others():
    """A streaming client that stops spending credit gets evicted once
    its backlog passes max_backlog; a well-behaved session on the same
    service keeps flowing, and the eviction reaches the load shedder
    and the tcq_net_* telemetry."""

    async def scenario():
        service = await started(admin_port=None, max_backlog=8)
        try:
            slow = AsyncFrameClient("127.0.0.1", service.port)
            good = AsyncFrameClient("127.0.0.1", service.port)
            await slow.connect(client="slow")
            await good.connect(client="good")
            await good.request("DDL", action="create_stream", name="s",
                               columns=["x"])
            await slow.request("SUBMIT", query="SELECT * FROM s",
                               stream=True, credit=1)
            gsub = await good.request("SUBMIT", query="SELECT * FROM s")

            await good.request("PUSH", stream="s",
                               rows=[[v] for v in range(40)])
            for _ in range(100):
                if slow.evicted is not None:
                    break
                await asyncio.sleep(0.01)
            assert slow.evicted is not None, "slow consumer never evicted"
            assert "slow" in slow.evicted["message"]
            assert service.evictions.get("slow") == 1

            # The good client is untouched and still sees everything.
            got = await good.request("FETCH", cursor=gsub["cursor"])
            assert len(got["rows"]) == 40
            snap = get_registry().snapshot()
            text = snap.to_prometheus()
            assert 'tcq_net_evictions_total{reason="slow"} 1.0' in text
            await good.close()
        finally:
            await service.stop()

    run(scenario())


def test_idle_consumer_evicted():
    async def scenario():
        service = await started(admin_port=None, idle_timeout=0.05,
                                idle_poll=0.01)
        try:
            lazy = AsyncFrameClient("127.0.0.1", service.port)
            busy = AsyncFrameClient("127.0.0.1", service.port)
            await lazy.connect(client="lazy")
            await busy.connect(client="busy")
            for _ in range(200):
                if lazy.evicted is not None:
                    break
                # Keep the busy session active and the pump spinning.
                await busy.request("STATS")
                await asyncio.sleep(0.01)
            assert lazy.evicted is not None
            assert "idle" in lazy.evicted["message"]
            # Activity is a heartbeat: the busy session is still here.
            stats = await busy.request("STATS")
            assert stats["net"]["sessions_open"] == 1
            await busy.close()
        finally:
            await service.stop()

    run(scenario())


def test_streaming_respects_credit():
    """Rows flow only while credit is outstanding; CREDIT releases
    exactly the granted amount."""

    async def scenario():
        service = await started(admin_port=None)
        try:
            c = AsyncFrameClient("127.0.0.1", service.port)
            await c.connect(client="c")
            await c.request("DDL", action="create_stream", name="s",
                            columns=["x"])
            sub = await c.request("SUBMIT", query="SELECT * FROM s",
                                  stream=True, credit=3)
            cid = sub["cursor"]
            await c.request("PUSH", stream="s",
                            rows=[[v] for v in range(10)])
            await asyncio.sleep(0.05)
            assert len(c.stream_rows.get(cid, [])) == 3
            granted = await c.request("CREDIT", cursor=cid, n=4)
            await asyncio.sleep(0.05)
            assert len(c.stream_rows[cid]) == 7
            assert granted["credit"] >= 0
            await c.close()
        finally:
            await service.stop()

    run(scenario())


# ---------------------------------------------------------------------------
# protocol hygiene
# ---------------------------------------------------------------------------

def test_garbage_bytes_get_error_then_disconnect():
    async def scenario():
        service = await started(admin_port=None)
        try:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", service.port)
            writer.write(b"\x00\x00\x00\x05notjs")
            await writer.drain()
            data = await asyncio.wait_for(reader.read(4096), timeout=2)
            assert b"ERROR" in data and b"ProtocolError" in data
            assert await asyncio.wait_for(reader.read(), timeout=2) == b""
            writer.close()
        finally:
            await service.stop()

    run(scenario())


def test_unknown_op_is_an_error_not_a_disconnect():
    async def scenario():
        service = await started(admin_port=None)
        try:
            c = AsyncFrameClient("127.0.0.1", service.port)
            await c.connect(client="c")
            with pytest.raises(ProtocolError):
                await c.request("FROBNICATE")
            # Session survives the bad op.
            stats = await c.request("STATS")
            assert stats["net"]["sessions_open"] == 1
            await c.close()
        finally:
            await service.stop()

    run(scenario())


def test_oversized_frame_rejected_at_the_socket():
    async def scenario():
        service = await started(admin_port=None, max_frame=1024)
        try:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", service.port)
            writer.write(encode_frame({"op": "HELLO", "id": 1,
                                       "pad": "x" * 4096}))
            await writer.drain()
            data = await asyncio.wait_for(reader.read(4096), timeout=2)
            assert b"ERROR" in data
            writer.close()
        finally:
            await service.stop()

    run(scenario())


# ---------------------------------------------------------------------------
# admin plane
# ---------------------------------------------------------------------------

def _get(service, path):
    url = f"http://127.0.0.1:{service.admin_port}{path}"
    with urllib.request.urlopen(url) as resp:
        return resp.status, resp.read().decode()


@pytest.mark.net
def test_admin_plane_end_to_end():
    service = TelegraphCQService(admin_port=0)
    service.run_in_thread()
    try:
        from repro.client import connect
        conn = connect(f"tcp://127.0.0.1:{service.port}", client="adm")
        conn.create_stream("s", "a")
        cur = conn.submit("SELECT * FROM s WHERE a > 1")
        conn.push_rows("s", [[1], [2], [3]])

        status, body = _get(service, "/queries")
        queries = json.loads(body)["queries"]
        assert status == 200
        assert [q["cursor"] for q in queries] == [cur.cursor_id]
        assert queries[0]["client"] == "adm"

        base = f"http://127.0.0.1:{service.admin_port}"
        req = urllib.request.Request(
            base + "/queries", method="POST",
            data=json.dumps({"query": "SELECT * FROM s"}).encode(),
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(req) as resp:
            created = json.load(resp)
            assert resp.status == 201
        assert created["kind"] == "continuous"

        status, body = _get(service,
                            f"/queries/{created['cursor']}/explain")
        assert status == 200 and "operators" in json.loads(body)

        dreq = urllib.request.Request(
            base + f"/queries/{created['cursor']}", method="DELETE")
        with urllib.request.urlopen(dreq) as resp:
            assert json.load(resp)["cancelled"] == created["cursor"]

        # Unknown cursor -> 404 with a wire-format error body.
        try:
            urllib.request.urlopen(base + "/queries/999/explain")
            raise AssertionError("expected a 404")
        except urllib.error.HTTPError as err:
            assert err.code == 404
            assert json.load(err)["error"]["code"] == "QueryError"

        status, body = _get(service, "/stats")
        stats = json.loads(body)
        assert stats["engine"]["ingested"] == 3
        assert stats["net"]["sessions_open"] == 1
        conn.close()
    finally:
        service.close()


def test_admin_metrics_serves_the_process_registry():
    """GET /metrics is the same registry the in-process exporter
    publishes — identical series names, parseable by the same
    TelemetrySnapshot reader."""
    service = TelegraphCQService(admin_port=0)
    service.run_in_thread()
    try:
        from repro.client import connect
        conn = connect(f"tcp://127.0.0.1:{service.port}")
        conn.create_stream("s", "a")
        conn.push_rows("s", [[1]])

        _status, text = _get(service, "/metrics")
        scraped = {s.name for s in TelemetrySnapshot.from_prometheus(
            text).samples}
        local = {s.name for s in get_registry().snapshot().samples}
        assert scraped == local
        assert "tcq_net_sessions_open" in scraped
        assert "tcq_net_frames_total" in scraped
        conn.close()
    finally:
        service.close()


def test_evicted_blocking_client_raises_connection_closed():
    service = TelegraphCQService(admin_port=None, idle_timeout=0.05,
                                 idle_poll=0.01)
    service.run_in_thread()
    try:
        from repro.client import connect
        import time
        conn = connect(f"tcp://127.0.0.1:{service.port}")
        time.sleep(0.3)
        with pytest.raises(ConnectionClosedError):
            conn.stats()
    finally:
        service.close()
