"""Tests for the explicit dataflow scripting language (Section 2)."""

import pytest

from repro.core.tuples import Schema
from repro.errors import ParseError, PlanError
from repro.query.dataflow_script import DataflowScript, parse_script
from repro.query.parser import parse_predicate
from repro.query.predicates import And, Comparison
from tests.conftest import ListFeed

S = Schema.of("S", "sensor_id", "temperature")


def rows(values):
    return [S.make(i % 3, v, timestamp=i) for i, v in enumerate(values)]


class TestParsePredicate:
    def test_simple(self):
        pred = parse_predicate("temperature > 30")
        assert pred == Comparison("temperature", ">", 30)

    def test_conjunction(self):
        pred = parse_predicate("temperature > 30 and sensor_id = 1")
        assert isinstance(pred, And)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_predicate("temperature > 30 banana")


class TestScriptParsing:
    def test_nodes_and_edges(self):
        script = parse_script("""
            # a comment
            node src = source
            node hot = select(temperature > 30)
            node out = sink
            edge src -> hot
            edge hot -> out [capacity=8]
        """)
        assert set(script.nodes) == {"src", "hot", "out"}
        assert len(script.edges) == 2
        assert script.edges[1].capacity == 8

    def test_ports_in_edges(self):
        script = parse_script("""
            node a = source
            node b = source
            node u = union
            node out = sink
            edge a -> u.0
            edge b -> u.1
            edge u -> out
        """)
        ports = {(e.src, e.in_port) for e in script.edges}
        assert ("a", 0) in ports and ("b", 1) in ports

    def test_duplicate_node_rejected(self):
        with pytest.raises(ParseError, match="duplicate node"):
            parse_script("node a = source\nnode a = sink")

    def test_garbage_line_rejected(self):
        with pytest.raises(ParseError, match="cannot parse"):
            parse_script("node a = source\nwibble wobble")

    def test_unknown_edge_option_rejected(self):
        with pytest.raises(ParseError, match="unknown edge option"):
            parse_script("""
                node a = source
                node b = sink
                edge a -> b [turbo]
            """)

    def test_empty_script_rejected(self):
        with pytest.raises(ParseError, match="no nodes"):
            parse_script("# only a comment\n")


class TestScriptExecution:
    def build_and_run(self, text, data):
        script = parse_script(text)
        fjord = script.build(bindings={"src": ListFeed(data, "src")})
        fjord.run_until_finished()
        return script.sinks(fjord)["out"]

    def test_select_project_pipeline(self):
        sink = self.build_and_run("""
            node src = source
            node hot = select(temperature > 25)
            node slim = project(temperature)
            node out = sink
            edge src -> hot
            edge hot -> slim
            edge slim -> out
        """, rows([10, 30, 20, 40]))
        assert [t["temperature"] for t in sink.results] == [30, 40]
        assert sink.results[0].schema.column_names() == ["temperature"]

    def test_project_rename(self):
        sink = self.build_and_run("""
            node src = source
            node slim = project(temp=temperature)
            node out = sink
            edge src -> slim
            edge slim -> out
        """, rows([7]))
        assert sink.results[0]["temp"] == 7

    def test_dupelim_sort_limit(self):
        sink = self.build_and_run("""
            node src = source
            node d = dupelim
            node s = sort(temperature desc)
            node top = limit(2)
            node out = sink
            edge src -> d
            edge d -> s
            edge s -> top
            edge top -> out
        """, rows([5, 5, 9, 1, 9]))
        # dupelim on (sensor_id, temperature) pairs, then sort desc
        temps = [t["temperature"] for t in sink.results]
        assert temps == sorted(temps, reverse=True)
        assert len(temps) == 2

    def test_union_two_sources(self):
        script = parse_script("""
            node a = source
            node b = source
            node u = union
            node out = sink
            edge a -> u.0
            edge b -> u.1
            edge u -> out
        """)
        fjord = script.build(bindings={
            "a": ListFeed(rows([1, 2]), "a"),
            "b": ListFeed(rows([3]), "b"),
        })
        fjord.run_until_finished()
        assert len(script.sinks(fjord)["out"].results) == 3

    def test_juggle_node(self):
        script = parse_script("""
            node src = source
            node j = juggle(sensor_id)
            node out = sink
            edge src -> j
            edge j -> out
        """)
        fjord = script.build(bindings={"src": ListFeed(rows([1, 2, 3]),
                                                       "src")})
        fjord.module("j").set_preference(2, 10.0)
        fjord.run_until_finished()
        assert len(script.sinks(fjord)["out"].results) == 3

    def test_missing_source_binding(self):
        script = parse_script(
            "node src = source\nnode out = sink\nedge src -> out")
        with pytest.raises(PlanError, match="needs a binding"):
            script.build()

    def test_custom_sink_binding(self):
        from repro.fjords.module import CollectingSink
        script = parse_script(
            "node src = source\nnode out = sink\nedge src -> out")
        my_sink = CollectingSink("mine")
        fjord = script.build(bindings={"src": ListFeed(rows([1]), "src"),
                                       "out": my_sink})
        fjord.run_until_finished()
        assert len(my_sink.results) == 1

    def test_unknown_node_kind(self):
        script = parse_script("node x = blender(9)")
        with pytest.raises(PlanError, match="unknown node kind"):
            script.build()

    def test_edge_to_unknown_node(self):
        script = parse_script("""
            node src = source
            node out = sink
            edge src -> ghost
        """)
        with pytest.raises(PlanError, match="unknown"):
            script.build(bindings={"src": ListFeed([], "src")})

    def test_pull_edge_flavour(self):
        script = parse_script("""
            node src = source
            node out = sink
            edge src -> out [pull]
        """)
        feed = ListFeed(rows([1, 2]), "src")
        fjord = script.build(bindings={"src": feed})
        from repro.fjords.queues import PullQueue
        assert isinstance(fjord.queues[0], PullQueue)
        fjord.queues[0].producer = lambda: feed.run_once().worked
        fjord.run_until_finished()
        assert len(script.sinks(fjord)["out"].results) == 2
