"""One Ingress protocol, four doors.

Every way a tuple can enter the system — ``server.push_tuple``, a
:class:`SourceModule`, a :class:`Streamer`, and the network PUSH op —
now funnels through :class:`repro.ingress.ingress.IngressPoint`: same
admission counters, same shedding hook, same trace attachment.
"""

import asyncio

import pytest

from repro.core.tuples import Schema
from repro.ingress.ingress import IngressPoint, attach_trace
from repro.ingress.wrappers import Streamer
from repro.monitor.qos import LoadShedder
import repro.monitor.tracing as tracing


SCHEMA = Schema.of("s", "a")


def make_tuples(n):
    return [SCHEMA.make(i, timestamp=i + 1) for i in range(n)]


# ---------------------------------------------------------------------------
# the IngressPoint itself
# ---------------------------------------------------------------------------

def test_admit_one_delivers_and_counts():
    got = []
    point = IngressPoint("p", deliver=got.append)
    for t in make_tuples(3):
        assert point.admit_one(t)
    assert point.accepted == 3 and point.shed == 0
    assert [t["a"] for t in got] == [0, 1, 2]


def test_admit_batch_returns_accepted_count():
    got = []
    point = IngressPoint("p", deliver=got.append)
    assert point.admit(make_tuples(5)) == 5
    assert len(got) == 5


def test_store_sees_every_admitted_tuple():
    store = []
    point = IngressPoint("p", deliver=lambda t: None, store=store)
    point.admit(make_tuples(4))
    assert len(store) == 4


def test_assign_timestamps_fills_missing_only():
    got = []
    point = IngressPoint("p", deliver=got.append, assign_timestamps=True)
    fresh = SCHEMA.make(7)             # no timestamp
    pinned = SCHEMA.make(8, timestamp=99)
    point.admit([fresh, pinned])
    assert got[0].timestamp is not None
    assert got[1].timestamp == 99


def test_shedder_drops_are_counted_not_delivered():
    got = []
    shedder = LoadShedder(policy="random", seed=1)
    # Teach the shedder it is badly overloaded.
    for _ in range(5):
        shedder.update(arrived=100, serviced=10)
    point = IngressPoint("p", deliver=got.append, shedder=shedder)
    admitted = point.admit(make_tuples(100))
    assert admitted == len(got)
    assert point.shed == 100 - admitted
    assert 0 < admitted < 100


def test_trace_attachment_is_idempotent():
    tracer = tracing.TRACER
    old = tracer.sample_every
    tracer.configure(sample_every=1)
    try:
        t = SCHEMA.make(1, timestamp=1)
        attach_trace(t, "first-door")
        trace = t.trace
        assert trace is not None
        attach_trace(t, "second-door")
        assert t.trace is trace, "re-admission must not restart the trace"
    finally:
        tracer.configure(sample_every=old)


# ---------------------------------------------------------------------------
# the four doors
# ---------------------------------------------------------------------------

def test_server_push_goes_through_an_ingress_point():
    from repro.client import LocalConnection
    conn = LocalConnection()
    conn.create_stream("s", "a")
    cur = conn.submit("SELECT * FROM s")
    conn.push("s", 1)
    conn.push("s", 2)
    point = conn.server.ingress["s"]
    assert isinstance(point, IngressPoint)
    assert point.accepted == 2
    assert len(cur.fetch()) == 2
    conn.close()


def test_streamer_is_an_ingress_point():
    from repro.fjords.queues import PushQueue
    streamer = Streamer("s")
    q = PushQueue()
    streamer.attach_queue(q)
    streamer.deliver(make_tuples(3))
    assert isinstance(streamer.point, IngressPoint)
    assert streamer.delivered == 3
    assert streamer.point.accepted == 3
    assert len(q) == 3


def test_source_module_is_an_ingress_point():
    from repro.fjords.fjord import Fjord
    from repro.fjords.module import CollectingSink
    from tests.conftest import ListFeed

    feed = ListFeed(make_tuples(4))
    sink = CollectingSink()
    fjord = Fjord()
    fjord.connect(feed, sink)
    fjord.run_until_finished()
    assert isinstance(feed.point, IngressPoint)
    assert feed.point.accepted == 4
    from repro.core.tuples import Tuple
    assert len([i for i in sink.log if isinstance(i, Tuple)]) == 4


def test_network_push_is_the_fourth_door():
    from repro.net.aioclient import AsyncFrameClient
    from repro.net.service import TelegraphCQService

    async def scenario():
        service = TelegraphCQService(admin_port=None)
        await service.start()
        try:
            c = AsyncFrameClient("127.0.0.1", service.port)
            await c.connect(client="c")
            await c.request("DDL", action="create_stream", name="s",
                            columns=["a"])
            await c.request("PUSH", stream="s", rows=[[1], [2], [3]])
            point = service._net_ingress["s"]
            assert isinstance(point, IngressPoint)
            assert point.accepted == 3
            # ... which composes into the engine's own door.
            assert service.server.ingress["s"].accepted == 3
            await c.close()
        finally:
            await service.stop()

    asyncio.run(scenario())
