"""Unit tests for Fjord queues (push / pull / exchange semantics)."""

import pytest

from repro.errors import PlanError
from repro.fjords.queues import (EMPTY, ExchangeQueue, FjordQueue, PullQueue,
                                 PushQueue)


class TestPushQueue:
    def test_fifo(self):
        q = PushQueue()
        q.push(1)
        q.push(2)
        assert q.pop() == 1
        assert q.pop() == 2

    def test_pop_empty_returns_sentinel(self):
        q = PushQueue()
        assert q.pop() is EMPTY

    def test_none_is_a_legal_value(self):
        q = PushQueue()
        q.push(None)
        assert q.pop() is None

    def test_peek_does_not_consume(self):
        q = PushQueue()
        q.push(1)
        assert q.peek() == 1
        assert len(q) == 1

    def test_capacity_refuse(self):
        q = PushQueue(capacity=2, overflow="refuse")
        assert q.push(1) and q.push(2)
        assert not q.push(3)
        assert len(q) == 2

    def test_capacity_drop_newest(self):
        q = PushQueue(capacity=1, overflow="drop_newest")
        q.push(1)
        assert not q.push(2)
        assert q.pop() == 1
        assert q.stats.dropped == 1

    def test_capacity_drop_oldest(self):
        q = PushQueue(capacity=1, overflow="drop_oldest")
        q.push(1)
        assert q.push(2)
        assert q.pop() == 2
        assert q.stats.dropped == 1

    def test_unknown_overflow_policy(self):
        with pytest.raises(PlanError):
            PushQueue(capacity=1, overflow="explode")

    def test_stats_counters(self):
        q = PushQueue()
        q.push_all([1, 2, 3])
        q.pop()
        snap = q.stats.snapshot()
        assert snap["enqueued"] == 3
        assert snap["dequeued"] == 1
        assert snap["high_water"] == 3

    def test_fill_fraction_bounded(self):
        q = PushQueue(capacity=4)
        q.push_all([1, 2])
        assert q.fill_fraction() == 0.5
        assert not q.is_full
        q.push_all([3, 4])
        assert q.is_full

    def test_fill_fraction_unbounded_uses_high_water(self):
        q = PushQueue()
        assert q.fill_fraction() == 0.0
        q.push_all([1, 2, 3, 4])
        q.pop()
        q.pop()
        assert q.fill_fraction() == 0.5

    def test_truthiness_is_not_emptiness(self):
        q = PushQueue()
        assert q         # a queue object is always truthy
        assert len(q) == 0


class TestPullQueue:
    def test_pump_produces_on_demand(self):
        produced = []

        def producer():
            produced.append(len(produced))
            q.push(produced[-1])
            return True

        q = PullQueue(producer=producer)
        assert q.pop() == 0
        assert q.pop() == 1
        assert produced == [0, 1]

    def test_pump_stops_when_producer_dead(self):
        q = PullQueue(producer=lambda: False)
        assert q.pop() is EMPTY

    def test_pump_respects_max_pump(self):
        calls = []

        def quiet_producer():
            calls.append(1)
            return True

        q = PullQueue(producer=quiet_producer, max_pump=5)
        assert q.pop() is EMPTY
        assert len(calls) == 5

    def test_no_pump_when_data_buffered(self):
        q = PullQueue(producer=lambda: pytest.fail("should not pump"))
        q.push("x")
        assert q.pop() == "x"

    def test_exchange_queue_is_pull_flavour(self):
        q = ExchangeQueue()
        assert isinstance(q, PullQueue)


class TestBulkTransfer:
    """push_many / pop_many: batch-granularity transfer with the same
    semantics as the per-item calls."""

    def test_push_many_unbounded_fast_path(self):
        q = PushQueue()
        assert q.push_many([1, 2, 3]) == 3
        assert q.stats.enqueued == 3
        assert q.stats.high_water == 3
        assert [q.pop(), q.pop(), q.pop()] == [1, 2, 3]

    def test_push_many_accepts_generators(self):
        q = PushQueue()
        assert q.push_many(x * 2 for x in range(4)) == 4
        assert len(q) == 4

    def test_push_many_empty_is_noop(self):
        q = PushQueue()
        assert q.push_many([]) == 0
        assert q.stats.enqueued == 0

    def test_push_many_bounded_keeps_overflow_semantics(self):
        q = PushQueue(capacity=2, overflow="refuse")
        assert q.push_many([1, 2, 3, 4]) == 2
        assert len(q) == 2
        dropper = PushQueue(capacity=2, overflow="drop_oldest")
        dropper.push_many([1, 2, 3])
        assert dropper.pop() == 2      # 1 was evicted to admit 3
        assert dropper.stats.dropped == 1

    def test_pop_many_drains_up_to_limit(self):
        q = PushQueue()
        q.push_many([1, 2, 3, 4, 5])
        assert q.pop_many(3) == [1, 2, 3]
        assert q.stats.dequeued == 3
        assert q.pop_many(10) == [4, 5]
        assert q.pop_many(10) == []

    def test_pop_many_counts_global_totals(self):
        from repro.fjords.queues import TOTALS
        q = PushQueue()
        q.push_many([1, 2])
        before = TOTALS.dequeued
        q.pop_many(2)
        assert TOTALS.dequeued == before + 2

    def test_pull_queue_pop_many_pumps_producer(self):
        fed = []

        def producer():
            if len(fed) >= 3:
                return False
            fed.append(len(fed))
            q.push(fed[-1])
            return True

        q = PullQueue(producer=producer)
        assert q.pop_many(8) == [0]    # one pump per blocking pop
        assert q.pop_many(8) == [1]

    def test_pull_queue_pop_many_prefers_buffered(self):
        q = PullQueue(producer=lambda: False)
        q.push_many([7, 8, 9])
        assert q.pop_many(2) == [7, 8]
