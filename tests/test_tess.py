"""Tests for the TeSS screen-scraper wrapper: binding patterns,
pagination, retries, and lookup caching."""

import pytest

from repro.core.tuples import Schema
from repro.errors import ExecutionError
from repro.ingress.tess import SimulatedWebForm, TessWrapper, WebFormError

BOOKS = Schema.of("books", "isbn", "author", "price")


def book_rows(n=35):
    return [BOOKS.make(f"isbn{i}", f"author{i % 5}", 10.0 + i,
                       timestamp=i) for i in range(n)]


def make_form(**kwargs):
    defaults = dict(bindable=["author", "isbn"], page_size=10,
                    latency_cost=5)
    defaults.update(kwargs)
    return SimulatedWebForm("bookform", BOOKS, book_rows(), **defaults)


class TestSimulatedWebForm:
    def test_binding_pattern_enforced(self):
        form = make_form(bindable=["author"])
        with pytest.raises(WebFormError, match="no input field"):
            form.submit({"price": 10.0})

    def test_bindable_columns_validated_at_construction(self):
        with pytest.raises(Exception):
            make_form(bindable=["nonexistent"])

    def test_pagination(self):
        form = make_form()
        page0, more0 = form.submit({"author": "author0"})
        assert len(page0) == 7        # 35 rows / 5 authors
        assert not more0
        all_pages, more = form.submit({}, page=0)
        assert len(all_pages) == 10 and more

    def test_failure_injection(self):
        form = make_form(failure_rate=1.0)
        with pytest.raises(ExecutionError, match="transient"):
            form.submit({"author": "author0"})


class TestTessWrapper:
    def test_lookup_parses_rows_into_tuples(self):
        wrapper = TessWrapper(make_form())
        rows = wrapper.lookup({"author": "author2"})
        assert len(rows) == 7
        assert all(t["author"] == "author2" for t in rows)
        assert rows[0].schema is BOOKS

    def test_lookup_paginates_to_completion(self):
        wrapper = TessWrapper(make_form(page_size=3))
        rows = wrapper.lookup({"author": "author0"})
        assert len(rows) == 7
        # 7 results at page size 3 -> 3 round trips
        assert wrapper.form.requests == 3

    def test_cache_avoids_repeat_requests(self):
        wrapper = TessWrapper(make_form())
        first = wrapper.lookup({"author": "author1"})
        requests_after_first = wrapper.form.requests
        second = wrapper.lookup({"author": "author1"})
        assert wrapper.form.requests == requests_after_first
        assert wrapper.cache_hits == 1
        assert sorted(t.values for t in first) == \
            sorted(t.values for t in second)

    def test_transient_failures_retried(self):
        # fails roughly half the time; retries shoulder through
        wrapper = TessWrapper(make_form(failure_rate=0.5, seed=3),
                              max_retries=10)
        rows = wrapper.lookup({"author": "author3"})
        assert len(rows) == 7
        assert wrapper.retries > 0

    def test_permanent_failure_after_retries(self):
        wrapper = TessWrapper(make_form(failure_rate=1.0), max_retries=2)
        with pytest.raises(WebFormError, match="after 2 retries"):
            wrapper.lookup({"author": "author0"})

    def test_bad_binding_not_retried(self):
        wrapper = TessWrapper(make_form(bindable=["author"]))
        with pytest.raises(WebFormError, match="no input field"):
            wrapper.lookup({"price": 1.0})
        assert wrapper.retries == 0

    def test_multi_column_binding(self):
        wrapper = TessWrapper(make_form())
        rows = wrapper.lookup({"author": "author0", "isbn": "isbn5"})
        assert len(rows) == 1
        assert rows[0]["price"] == 15.0

    def test_stats(self):
        wrapper = TessWrapper(make_form())
        wrapper.lookup({"author": "author0"})
        stats = wrapper.stats()
        assert stats["lookups"] == 1
        assert stats["requests"] >= 1


class TestIndexJoinIntegration:
    def test_stream_joins_through_tess(self):
        """The Section 2.2 index join: S probes a TeSS-wrapped form,
        with a rendezvous buffer holding probes and the cache SteM
        saving repeat lookups."""
        from repro.core.stem import RendezvousBuffer
        orders = Schema.of("orders", "author", "qty")
        wrapper = TessWrapper(make_form(bindable=["author"]))
        buffer = RendezvousBuffer("orders")
        results = []
        stream = [orders.make(f"author{i % 3}", i, timestamp=i)
                  for i in range(12)]
        for order in stream:
            buffer.hold(order)
            matches = wrapper.lookup({"author": order["author"]})
            for book in matches:
                results.append(order.concat(book))
            buffer.settle(order)
        assert buffer.pending_count() == 0
        assert len(results) == 12 * 7
        # only 3 distinct authors -> only 3 rounds of real requests
        assert wrapper.cache_hits == 9
