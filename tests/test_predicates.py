"""Unit tests for the predicate algebra and CACQ decomposition."""

import pytest
from hypothesis import given, strategies as st

from repro.core.tuples import Schema
from repro.errors import QueryError
from repro.query.predicates import (ALWAYS_TRUE, And, ColumnComparison,
                                    Comparison, Not, Or, TruePredicate,
                                    decompose, rewrite_columns)

S = Schema.of("S", "a", "b", "name")


def row(a=0, b=0, name="x"):
    return S.make(a, b, name)


class TestComparison:
    @pytest.mark.parametrize("op,value,passing,failing", [
        ("==", 5, 5, 6),
        ("!=", 5, 6, 5),
        ("<", 5, 4, 5),
        ("<=", 5, 5, 6),
        (">", 5, 6, 5),
        (">=", 5, 5, 4),
    ])
    def test_operators(self, op, value, passing, failing):
        pred = Comparison("a", op, value)
        assert pred.matches(row(a=passing))
        assert not pred.matches(row(a=failing))

    def test_sql_style_aliases(self):
        assert Comparison("a", "=", 5).matches(row(a=5))
        assert Comparison("a", "<>", 5).matches(row(a=6))

    def test_unknown_op_rejected(self):
        with pytest.raises(QueryError):
            Comparison("a", "~~", 5)

    def test_missing_column_never_matches(self):
        assert not Comparison("zzz", "==", 5).matches(row())

    def test_type_mismatch_never_matches(self):
        assert not Comparison("name", ">", 5).matches(row(name="abc"))

    def test_negate(self):
        assert Comparison("a", "<", 5).negate() == Comparison("a", ">=", 5)

    def test_evaluate_raw_value(self):
        assert Comparison("a", ">", 5).evaluate(6)
        assert not Comparison("a", ">", 5).evaluate("bad type")

    def test_hash_and_equality(self):
        assert Comparison("a", ">", 5) == Comparison("a", ">", 5)
        assert len({Comparison("a", ">", 5), Comparison("a", ">", 5)}) == 1

    def test_strings_compare(self):
        assert Comparison("name", "==", "x").matches(row(name="x"))
        assert Comparison("name", ">", "a").matches(row(name="x"))


class TestColumnComparison:
    def test_same_tuple_columns(self):
        assert ColumnComparison("a", "<", "b").matches(row(a=1, b=2))
        assert not ColumnComparison("a", ">", "b").matches(row(a=1, b=2))

    def test_is_equijoin_requires_two_sources(self):
        assert ColumnComparison("S.a", "==", "T.a").is_equijoin()
        assert not ColumnComparison("S.a", "==", "S.b").is_equijoin()
        assert not ColumnComparison("S.a", ">", "T.a").is_equijoin()

    def test_sources(self):
        pred = ColumnComparison("S.a", "==", "T.b")
        assert pred.sources() == frozenset({"S", "T"})

    def test_missing_column_never_matches(self):
        assert not ColumnComparison("a", "==", "zzz").matches(row())


class TestCombinators:
    def test_and_flattens(self):
        p = And(And(Comparison("a", ">", 1), Comparison("a", "<", 5)),
                Comparison("b", "==", 0))
        assert len(p.parts) == 3
        assert len(p.conjuncts()) == 3

    def test_and_matches(self):
        p = Comparison("a", ">", 1) & Comparison("b", "<", 5)
        assert p.matches(row(a=2, b=3))
        assert not p.matches(row(a=0, b=3))

    def test_or_matches(self):
        p = Comparison("a", ">", 10) | Comparison("b", "<", 0)
        assert p.matches(row(a=11, b=5))
        assert p.matches(row(a=0, b=-1))
        assert not p.matches(row(a=0, b=0))

    def test_not_comparison_normalises(self):
        p = Not(Comparison("a", "<", 5))
        assert isinstance(p, Comparison)
        assert p.op == ">="

    def test_not_or_demorganish(self):
        p = Not(Comparison("a", ">", 1) | Comparison("b", ">", 1))
        assert not p.matches(row(a=2))
        assert p.matches(row(a=0, b=0))

    def test_double_negation(self):
        inner = Comparison("a", ">", 1) | Comparison("b", ">", 1)
        assert Not(Not(inner)) is inner

    def test_true_predicate(self):
        assert ALWAYS_TRUE.matches(row())
        assert ALWAYS_TRUE.conjuncts() == []
        assert And(ALWAYS_TRUE, Comparison("a", ">", 0)).parts == \
            (Comparison("a", ">", 0),)

    def test_invert_operator(self):
        p = ~Comparison("a", "==", 1)
        assert p == Comparison("a", "!=", 1)

    def test_columns_aggregation(self):
        p = And(Comparison("a", ">", 1), ColumnComparison("b", "<", "name"))
        assert p.columns() == {"a", "b", "name"}


class TestDecompose:
    def test_splits_factor_classes(self):
        p = And(Comparison("S.a", ">", 1),
                ColumnComparison("S.a", "==", "T.a"),
                ColumnComparison("S.b", ">", "T.b"),
                Or(Comparison("S.a", "==", 0), Comparison("S.b", "==", 0)))
        d = decompose(p)
        assert d.single_variable == [Comparison("S.a", ">", 1)]
        assert d.equijoins == [ColumnComparison("S.a", "==", "T.a")]
        assert len(d.residual) == 2

    def test_residual_predicate_reassembles(self):
        p = Or(Comparison("a", "==", 1), Comparison("b", "==", 1))
        d = decompose(p)
        assert d.residual_predicate() is p

    def test_empty_residual_is_true(self):
        d = decompose(Comparison("a", ">", 1))
        assert d.residual_predicate() is ALWAYS_TRUE

    def test_decompose_true(self):
        d = decompose(ALWAYS_TRUE)
        assert not d.single_variable and not d.equijoins and not d.residual


class TestRewrite:
    def test_rewrites_all_node_types(self):
        p = And(Comparison("a", ">", 1),
                Or(ColumnComparison("a", "==", "b"),
                   Not(Or(Comparison("b", "<", 2)))))
        rewritten = rewrite_columns(p, lambda c: f"S.{c}")
        assert "S.a" in repr(rewritten) and "S.b" in repr(rewritten)
        assert "(a" not in repr(rewritten).replace("S.a", "")

    def test_rewrite_preserves_semantics(self):
        p = Comparison("a", ">", 1)
        q = rewrite_columns(p, lambda c: f"S.{c}")
        # Qualified access falls back on single-source schemas.
        assert q.matches(row(a=2))
        assert not q.matches(row(a=0))

    def test_rewrite_true(self):
        assert rewrite_columns(ALWAYS_TRUE, lambda c: c) is ALWAYS_TRUE


@given(st.integers(-20, 20), st.integers(-20, 20))
def test_negation_is_complement(a_value, threshold):
    pred = Comparison("a", "<", threshold)
    t = row(a=a_value)
    assert pred.matches(t) != pred.negate().matches(t)


@given(st.lists(st.integers(-5, 5), min_size=1, max_size=5),
       st.integers(-5, 5))
def test_and_or_duality(thresholds, value):
    t = row(a=value)
    comparisons = [Comparison("a", ">", th) for th in thresholds]
    conj = And(*comparisons)
    disj = Or(*(c.negate() for c in comparisons))
    assert conj.matches(t) != disj.matches(t)


class TestCompiledKernels:
    """compile() must agree with matches() row by row — including the
    awkward cases (missing columns, None values, mixed types)."""

    def _batch(self, rows_):
        from repro.core.tuples import TupleBatch
        return TupleBatch.from_tuples(rows_)

    def _parity(self, pred, rows_):
        from repro.core.columnar import mask_to_list
        # Kernels return a bool list OR a numpy bool array; both must
        # agree with matches() row by row.
        got = mask_to_list(pred.compile()(self._batch(rows_)))
        want = [pred.matches(t) for t in rows_]
        assert got == want
        return got

    @pytest.mark.parametrize("op", ["==", "!=", "<", "<=", ">", ">="])
    def test_comparison_parity(self, op):
        rows_ = [row(a=v) for v in (-2, 0, 1, 2, 5)]
        self._parity(Comparison("a", op, 1), rows_)

    def test_none_values_never_match(self):
        rows_ = [row(a=None), row(a=1)]
        assert self._parity(Comparison("a", ">", 0), rows_) == [False, True]

    def test_missing_column_never_matches(self):
        rows_ = [row(), row()]
        assert self._parity(Comparison("zzz", "==", 1), rows_) == \
            [False, False]

    def test_mixed_types_fall_back_per_element(self):
        rows_ = [row(a="text"), row(a=3), row(a="text")]
        assert self._parity(Comparison("a", ">", 1), rows_) == \
            [False, True, False]

    def test_column_comparison_parity(self):
        rows_ = [row(a=1, b=1), row(a=2, b=1), row(a=0, b=5)]
        self._parity(ColumnComparison("a", "==", "b"), rows_)
        self._parity(ColumnComparison("a", ">", "b"), rows_)

    def test_and_or_not_parity(self):
        rows_ = [row(a=v, b=w) for v in range(-2, 3) for w in range(-2, 3)]
        gt = Comparison("a", ">", 0)
        lt = Comparison("b", "<", 1)
        self._parity(And(gt, lt), rows_)
        self._parity(Or(gt, lt), rows_)
        self._parity(Not(gt), rows_)
        self._parity(And(), rows_)
        self._parity(Or(), rows_)

    def test_true_predicate_kernel(self):
        rows_ = [row(), row(), row()]
        assert self._parity(ALWAYS_TRUE, rows_) == [True, True, True]

    def test_kernel_totals_count_evals_and_rows(self):
        from repro.query.predicates import KERNEL_TOTALS
        kernel = Comparison("a", "==", 1).compile()
        before = (KERNEL_TOTALS.evals, KERNEL_TOTALS.rows)
        kernel(self._batch([row(a=1), row(a=2), row(a=3)]))
        kernel(self._batch([row(a=1)]))
        assert KERNEL_TOTALS.evals == before[0] + 2
        assert KERNEL_TOTALS.rows == before[1] + 4

    def test_comparison_fn_resolved_once(self):
        """Operator dispatch happens in __init__, not per evaluate()."""
        import operator
        pred = Comparison("a", "<>", 5)
        assert pred._fn is operator.ne
        assert Comparison("a", "=", 5)._fn is operator.eq
