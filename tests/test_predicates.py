"""Unit tests for the predicate algebra and CACQ decomposition."""

import pytest
from hypothesis import given, strategies as st

from repro.core.tuples import Schema
from repro.errors import QueryError
from repro.query.predicates import (ALWAYS_TRUE, And, ColumnComparison,
                                    Comparison, Not, Or, TruePredicate,
                                    decompose, rewrite_columns)

S = Schema.of("S", "a", "b", "name")


def row(a=0, b=0, name="x"):
    return S.make(a, b, name)


class TestComparison:
    @pytest.mark.parametrize("op,value,passing,failing", [
        ("==", 5, 5, 6),
        ("!=", 5, 6, 5),
        ("<", 5, 4, 5),
        ("<=", 5, 5, 6),
        (">", 5, 6, 5),
        (">=", 5, 5, 4),
    ])
    def test_operators(self, op, value, passing, failing):
        pred = Comparison("a", op, value)
        assert pred.matches(row(a=passing))
        assert not pred.matches(row(a=failing))

    def test_sql_style_aliases(self):
        assert Comparison("a", "=", 5).matches(row(a=5))
        assert Comparison("a", "<>", 5).matches(row(a=6))

    def test_unknown_op_rejected(self):
        with pytest.raises(QueryError):
            Comparison("a", "~~", 5)

    def test_missing_column_never_matches(self):
        assert not Comparison("zzz", "==", 5).matches(row())

    def test_type_mismatch_never_matches(self):
        assert not Comparison("name", ">", 5).matches(row(name="abc"))

    def test_negate(self):
        assert Comparison("a", "<", 5).negate() == Comparison("a", ">=", 5)

    def test_evaluate_raw_value(self):
        assert Comparison("a", ">", 5).evaluate(6)
        assert not Comparison("a", ">", 5).evaluate("bad type")

    def test_hash_and_equality(self):
        assert Comparison("a", ">", 5) == Comparison("a", ">", 5)
        assert len({Comparison("a", ">", 5), Comparison("a", ">", 5)}) == 1

    def test_strings_compare(self):
        assert Comparison("name", "==", "x").matches(row(name="x"))
        assert Comparison("name", ">", "a").matches(row(name="x"))


class TestColumnComparison:
    def test_same_tuple_columns(self):
        assert ColumnComparison("a", "<", "b").matches(row(a=1, b=2))
        assert not ColumnComparison("a", ">", "b").matches(row(a=1, b=2))

    def test_is_equijoin_requires_two_sources(self):
        assert ColumnComparison("S.a", "==", "T.a").is_equijoin()
        assert not ColumnComparison("S.a", "==", "S.b").is_equijoin()
        assert not ColumnComparison("S.a", ">", "T.a").is_equijoin()

    def test_sources(self):
        pred = ColumnComparison("S.a", "==", "T.b")
        assert pred.sources() == frozenset({"S", "T"})

    def test_missing_column_never_matches(self):
        assert not ColumnComparison("a", "==", "zzz").matches(row())


class TestCombinators:
    def test_and_flattens(self):
        p = And(And(Comparison("a", ">", 1), Comparison("a", "<", 5)),
                Comparison("b", "==", 0))
        assert len(p.parts) == 3
        assert len(p.conjuncts()) == 3

    def test_and_matches(self):
        p = Comparison("a", ">", 1) & Comparison("b", "<", 5)
        assert p.matches(row(a=2, b=3))
        assert not p.matches(row(a=0, b=3))

    def test_or_matches(self):
        p = Comparison("a", ">", 10) | Comparison("b", "<", 0)
        assert p.matches(row(a=11, b=5))
        assert p.matches(row(a=0, b=-1))
        assert not p.matches(row(a=0, b=0))

    def test_not_comparison_normalises(self):
        p = Not(Comparison("a", "<", 5))
        assert isinstance(p, Comparison)
        assert p.op == ">="

    def test_not_or_demorganish(self):
        p = Not(Comparison("a", ">", 1) | Comparison("b", ">", 1))
        assert not p.matches(row(a=2))
        assert p.matches(row(a=0, b=0))

    def test_double_negation(self):
        inner = Comparison("a", ">", 1) | Comparison("b", ">", 1)
        assert Not(Not(inner)) is inner

    def test_true_predicate(self):
        assert ALWAYS_TRUE.matches(row())
        assert ALWAYS_TRUE.conjuncts() == []
        assert And(ALWAYS_TRUE, Comparison("a", ">", 0)).parts == \
            (Comparison("a", ">", 0),)

    def test_invert_operator(self):
        p = ~Comparison("a", "==", 1)
        assert p == Comparison("a", "!=", 1)

    def test_columns_aggregation(self):
        p = And(Comparison("a", ">", 1), ColumnComparison("b", "<", "name"))
        assert p.columns() == {"a", "b", "name"}


class TestDecompose:
    def test_splits_factor_classes(self):
        p = And(Comparison("S.a", ">", 1),
                ColumnComparison("S.a", "==", "T.a"),
                ColumnComparison("S.b", ">", "T.b"),
                Or(Comparison("S.a", "==", 0), Comparison("S.b", "==", 0)))
        d = decompose(p)
        assert d.single_variable == [Comparison("S.a", ">", 1)]
        assert d.equijoins == [ColumnComparison("S.a", "==", "T.a")]
        assert len(d.residual) == 2

    def test_residual_predicate_reassembles(self):
        p = Or(Comparison("a", "==", 1), Comparison("b", "==", 1))
        d = decompose(p)
        assert d.residual_predicate() is p

    def test_empty_residual_is_true(self):
        d = decompose(Comparison("a", ">", 1))
        assert d.residual_predicate() is ALWAYS_TRUE

    def test_decompose_true(self):
        d = decompose(ALWAYS_TRUE)
        assert not d.single_variable and not d.equijoins and not d.residual


class TestRewrite:
    def test_rewrites_all_node_types(self):
        p = And(Comparison("a", ">", 1),
                Or(ColumnComparison("a", "==", "b"),
                   Not(Or(Comparison("b", "<", 2)))))
        rewritten = rewrite_columns(p, lambda c: f"S.{c}")
        assert "S.a" in repr(rewritten) and "S.b" in repr(rewritten)
        assert "(a" not in repr(rewritten).replace("S.a", "")

    def test_rewrite_preserves_semantics(self):
        p = Comparison("a", ">", 1)
        q = rewrite_columns(p, lambda c: f"S.{c}")
        # Qualified access falls back on single-source schemas.
        assert q.matches(row(a=2))
        assert not q.matches(row(a=0))

    def test_rewrite_true(self):
        assert rewrite_columns(ALWAYS_TRUE, lambda c: c) is ALWAYS_TRUE


@given(st.integers(-20, 20), st.integers(-20, 20))
def test_negation_is_complement(a_value, threshold):
    pred = Comparison("a", "<", threshold)
    t = row(a=a_value)
    assert pred.matches(t) != pred.negate().matches(t)


@given(st.lists(st.integers(-5, 5), min_size=1, max_size=5),
       st.integers(-5, 5))
def test_and_or_duality(thresholds, value):
    t = row(a=value)
    comparisons = [Comparison("a", ">", th) for th in thresholds]
    conj = And(*comparisons)
    disj = Or(*(c.negate() for c in comparisons))
    assert conj.matches(t) != disj.matches(t)
