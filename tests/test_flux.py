"""Tests for Flux and the simulated cluster: partitioned routing,
online repartitioning, process-pair failover, and the replication knob.
The load-stress invariant everywhere: the merged group counts after a
run must equal ground truth — balancing and recovery change latency,
never answers (except unreplicated loss, which is measured)."""

import random

import pytest

from repro.core.tuples import Schema
from repro.errors import ClusterError
from repro.flux.cluster import Cluster, GroupCountState, Machine
from repro.flux.flux import Flux

S = Schema.of("pkts", "key")


def make_data(n=2000, n_keys=20, zipf=1.0, seed=0):
    rng = random.Random(seed)
    weights = [1.0 / (k + 1) ** zipf for k in range(n_keys)]
    return [S.make(rng.choices(range(n_keys), weights=weights)[0],
                   timestamp=i) for i in range(n)]


def make_flux(speeds=(50, 50, 50, 50), **kwargs):
    cluster = Cluster()
    for i, speed in enumerate(speeds):
        cluster.add_machine(f"m{i}", speed=speed)
    flux = Flux(cluster, n_partitions=8, key_fn=lambda t: t["key"],
                state_factory=lambda: GroupCountState("key"), **kwargs)
    return cluster, flux


def run_to_completion(flux, data, batch=100, fail=None, max_ticks=50_000):
    """Feed data in batches; optionally fail a machine at a tick.
    Returns ticks taken."""
    i = 0
    tick = 0
    while i < len(data) or flux.unacked_total():
        batch_rows = data[i:i + batch]
        i += len(batch_rows)
        flux.tick(batch_rows)
        tick += 1
        if fail is not None and tick == fail[1]:
            flux.cluster.fail(fail[0])
            flux.on_machine_failure(fail[0])
        if tick > max_ticks:
            raise AssertionError("flux made no progress")
    return tick


def ground_truth(data):
    out = {}
    for t in data:
        out[t["key"]] = out.get(t["key"], 0) + 1
    return out


class TestCluster:
    def test_machine_processes_at_speed(self):
        m = Machine("m0", speed=3)
        m.partitions[0] = GroupCountState("key")
        for i in range(10):
            m.enqueue(0, i, S.make(1, timestamp=i))
        acks = m.step()
        assert len(acks) == 3
        assert m.backlog() == 7

    def test_dead_machine_rejects_enqueue(self):
        m = Machine("m0")
        m.fail()
        with pytest.raises(ClusterError):
            m.enqueue(0, 0, S.make(1))

    def test_fail_stashes_lost_state(self):
        m = Machine("m0")
        state = GroupCountState("key")
        state.apply(S.make(1))
        m.partitions[0] = state
        m.fail()
        assert m.lost_partitions[0].applied == 1
        assert not m.partitions

    def test_duplicate_machine_rejected(self):
        c = Cluster()
        c.add_machine("m0")
        with pytest.raises(ClusterError):
            c.add_machine("m0")

    def test_double_failure_rejected(self):
        c = Cluster()
        c.add_machine("m0")
        c.fail("m0")
        with pytest.raises(ClusterError, match="already dead"):
            c.fail("m0")

    def test_imbalance_metric(self):
        c = Cluster()
        a = c.add_machine("a")
        b = c.add_machine("b")
        a.partitions[0] = GroupCountState("key")
        for i in range(10):
            a.enqueue(0, i, S.make(1))
        assert c.imbalance() == 2.0      # 10 vs 0 -> max/mean = 10/5


class TestRoutingCorrectness:
    def test_counts_exact_without_failures(self):
        data = make_data()
        _c, flux = make_flux()
        run_to_completion(flux, data)
        assert flux.merged_counts() == ground_truth(data)

    def test_partitioning_is_by_key(self):
        _c, flux = make_flux()
        t1 = S.make(5, timestamp=1)
        t2 = S.make(5, timestamp=2)
        assert flux.partition_of(t1) == flux.partition_of(t2)

    def test_replication_validates_machine_count(self):
        c = Cluster()
        c.add_machine("only")
        with pytest.raises(ClusterError, match="two machines"):
            Flux(c, 4, lambda t: 0, lambda: GroupCountState("key"),
                 replication=1)

    def test_bad_replication_degree(self):
        c = Cluster()
        c.add_machine("m0")
        with pytest.raises(ClusterError):
            Flux(c, 4, lambda t: 0, lambda: GroupCountState("key"),
                 replication=2)

    def test_replica_never_colocated_with_primary(self):
        _c, flux = make_flux(replication=1)
        for pid in range(flux.n_partitions):
            assert flux.primary[pid] != flux.replica[pid]


class TestLoadBalancing:
    def test_rebalancing_beats_static_on_slow_machine(self):
        data = make_data(n=4000)
        _c, static = make_flux(speeds=(10, 100, 100, 100))
        static_ticks = run_to_completion(static, data)
        data2 = make_data(n=4000)
        _c, adaptive = make_flux(speeds=(10, 100, 100, 100),
                                 rebalance_every=5,
                                 imbalance_threshold=1.5)
        adaptive_ticks = run_to_completion(adaptive, data2)
        assert adaptive.moves_completed > 0
        assert adaptive_ticks < static_ticks * 0.6
        assert adaptive.merged_counts() == ground_truth(data2)

    def test_no_rebalance_when_balanced(self):
        data = make_data(n=1000)
        _c, flux = make_flux(rebalance_every=5, imbalance_threshold=2.0)
        run_to_completion(flux, data)
        # homogeneous machines + 8 partitions: no pressure to move
        assert flux.moves_completed <= 1

    def test_state_moves_accounted(self):
        data = make_data(n=4000)
        _c, flux = make_flux(speeds=(5, 100, 100, 100),
                             rebalance_every=5, imbalance_threshold=1.5)
        run_to_completion(flux, data)
        if flux.moves_completed:
            assert flux.state_moved > 0

    def test_results_correct_while_moving(self):
        """Tuples arriving during a state movement buffer and replay."""
        data = make_data(n=6000, zipf=2.0)    # heavy skew forces moves
        _c, flux = make_flux(speeds=(10, 80, 80, 80), rebalance_every=3,
                             imbalance_threshold=1.2)
        run_to_completion(flux, data, batch=200)
        assert flux.merged_counts() == ground_truth(data)


class TestFailover:
    def test_process_pair_zero_loss(self):
        data = make_data(n=3000)
        _c, flux = make_flux(replication=1)
        run_to_completion(flux, data, fail=("m1", 10))
        assert flux.merged_counts() == ground_truth(data)
        assert flux.lost_tuples == 0

    def test_unreplicated_failure_loses_applied_work(self):
        data = make_data(n=3000)
        _c, flux = make_flux(replication=0)
        run_to_completion(flux, data, fail=("m1", 10))
        total = sum(flux.merged_counts().values())
        assert total + flux.lost_tuples == len(data)
        assert flux.lost_tuples > 0

    def test_replica_failure_is_transparent(self):
        data = make_data(n=2000)
        _c, flux = make_flux(replication=1)
        # pick a machine that is a replica for some partition
        victim = flux.replica[0]
        run_to_completion(flux, data, fail=(victim, 8))
        assert flux.merged_counts() == ground_truth(data)

    def test_replication_reestablished_after_failover(self):
        data = make_data(n=2000)
        _c, flux = make_flux(replication=1)
        run_to_completion(flux, data, fail=("m1", 8))
        for pid in range(flux.n_partitions):
            assert pid in flux.replica
            assert flux.primary[pid] != flux.replica[pid]

    def test_failure_without_cluster_fail_rejected(self):
        _c, flux = make_flux()
        with pytest.raises(ClusterError, match="has not failed"):
            flux.on_machine_failure("m0")

    def test_replication_duplicates_work(self):
        """The QoS knob: replication costs ~2x processed work."""
        data = make_data(n=2000)
        _c0, plain = make_flux(replication=0)
        run_to_completion(plain, data)
        data2 = make_data(n=2000)
        _c1, mirrored = make_flux(replication=1)
        run_to_completion(mirrored, data2)
        plain_work = plain.cluster.total_processed()
        mirrored_work = mirrored.cluster.total_processed()
        assert mirrored_work > 1.8 * plain_work

    def test_failure_during_rebalance(self):
        data = make_data(n=5000, zipf=2.0)
        _c, flux = make_flux(speeds=(10, 80, 80, 80), replication=1,
                             rebalance_every=3, imbalance_threshold=1.2)
        run_to_completion(flux, data, batch=200, fail=("m2", 12))
        assert flux.merged_counts() == ground_truth(data)
