"""Tests for the spilling Query SteM with periodicity-driven prefetch
(§4.3)."""

import pytest

from repro.core.psoup_spill import PeriodicQuery, SpillingQueryStore
from repro.core.tuples import Schema
from repro.errors import QueryError, StorageError
from repro.query.predicates import Comparison

S = Schema.of("s", "v")


class TestPeriodicQuery:
    def test_activation_windows(self):
        q = PeriodicQuery(0, Comparison("v", ">", 0), period=10,
                          active_for=3)
        assert q.is_active(0) and q.is_active(2)
        assert not q.is_active(3)
        assert q.is_active(10)

    def test_phase_shift(self):
        q = PeriodicQuery(0, Comparison("v", ">", 0), period=10,
                          active_for=2, phase=5)
        assert not q.is_active(0)
        assert q.is_active(5) and q.is_active(6)
        assert not q.is_active(7)

    def test_next_activation(self):
        q = PeriodicQuery(0, Comparison("v", ">", 0), period=10,
                          active_for=2)
        assert q.next_activation(0) == 0       # already active
        assert q.next_activation(3) == 10
        assert q.next_activation(10) == 10

    def test_validation(self):
        with pytest.raises(QueryError):
            PeriodicQuery(0, Comparison("v", ">", 0), period=0,
                          active_for=1)
        with pytest.raises(QueryError):
            PeriodicQuery(0, Comparison("v", ">", 0), period=5,
                          active_for=6)


class TestSpillingStore:
    def test_overflow_spills_to_disk(self):
        store = SpillingQueryStore(memory_capacity=2)
        for i in range(5):
            store.register(Comparison("v", ">", i), period=100,
                           active_for=1, phase=10 * i + 50)
        assert store.resident_count == 2
        assert store.spilled_count == 3
        assert store.evictions == 3

    def test_active_spilled_query_faults_in_and_matches(self):
        store = SpillingQueryStore(memory_capacity=1)
        q_now = store.register(Comparison("v", ">", 0), period=10,
                               active_for=10)          # always active
        q_later = store.register(Comparison("v", ">", 0), period=100,
                                 active_for=100)       # also always active
        # one of them is spilled; the push must fault it back
        matched = store.route(S.make(5, timestamp=1))
        assert set(matched) == {q_now, q_later}
        assert store.faults >= 1

    def test_matches_survive_spill_roundtrip(self):
        store = SpillingQueryStore(memory_capacity=1)
        a = store.register(Comparison("v", ">", 0), period=4,
                           active_for=2, phase=0)
        b = store.register(Comparison("v", ">", 0), period=4,
                           active_for=2, phase=2)
        for ts in range(1, 9):
            store.route(S.make(1, timestamp=ts))
        # each query active half the time: 4 matches each over 8 ticks
        assert store.total_matches() == 8

    def test_schedule_aware_eviction(self):
        """The victim is the resident query that activates furthest in
        the future, never one active now."""
        store = SpillingQueryStore(memory_capacity=2)
        active_now = store.register(Comparison("v", ">", 0), period=10,
                                    active_for=10)
        soon = store.register(Comparison("v", ">", 0), period=10,
                              active_for=1, phase=1)
        store.route(S.make(1, timestamp=0))    # establish now=0
        # admitting a third forces an eviction: "soon" (phase 1) beats
        # "late" for residency over a query activating at phase 9
        late = store.register(Comparison("v", ">", 0), period=10,
                              active_for=1, phase=9)
        assert store.spilled_count == 1

    def test_overcommit_thrashes_but_stays_exact(self):
        """More always-active queries than memory: the store thrashes
        (spilling active entries) yet every match is still counted."""
        store = SpillingQueryStore(memory_capacity=1)
        a = store.register(Comparison("v", ">", 0), period=2, active_for=2)
        b = store.register(Comparison("v", ">", 0), period=2, active_for=2)
        for ts in range(5):
            matched = store.route(S.make(1, timestamp=ts))
            assert set(matched) == {a, b}
        assert store.faults > 0               # the thrash cost is visible
        assert store.total_matches() == 10

    def test_capacity_validated(self):
        with pytest.raises(StorageError):
            SpillingQueryStore(memory_capacity=0)


class TestPrefetch:
    def periodic_workload(self, prefetch_horizon):
        """50 queries with staggered 1-in-50 activation phases; memory
        holds only 10."""
        store = SpillingQueryStore(memory_capacity=10,
                                   prefetch_horizon=prefetch_horizon)
        for i in range(50):
            store.register(Comparison("v", ">", 0), period=50,
                           active_for=2, phase=i)
        for ts in range(200):
            store.route(S.make(1, timestamp=ts))
        return store

    def test_without_prefetch_faults_pile_up(self):
        store = self.periodic_workload(prefetch_horizon=0)
        assert store.faults > 50

    def test_prefetch_hides_almost_all_faults(self):
        cold = self.periodic_workload(prefetch_horizon=0)
        warm = self.periodic_workload(prefetch_horizon=3)
        assert warm.prefetches > 0
        assert warm.faults < cold.faults * 0.2

    def test_prefetch_preserves_answers(self):
        cold = self.periodic_workload(prefetch_horizon=0)
        warm = self.periodic_workload(prefetch_horizon=3)
        assert cold.total_matches() == warm.total_matches()
