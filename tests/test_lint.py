"""Lint gate: run ruff against the baseline in pyproject when the tool
is installed; environments without it (the CI container bakes only the
test toolchain) skip rather than fail."""

import importlib.util
import pathlib
import shutil
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _ruff_command():
    if importlib.util.find_spec("ruff") is not None:
        return [sys.executable, "-m", "ruff"]
    exe = shutil.which("ruff")
    return [exe] if exe else None


RUFF = _ruff_command()


@pytest.mark.skipif(RUFF is None, reason="ruff is not installed")
def test_ruff_baseline_is_clean():
    proc = subprocess.run(
        RUFF + ["check", "src", "tests", "benchmarks"],
        cwd=REPO_ROOT, capture_output=True, text=True)
    assert proc.returncode == 0, proc.stdout + proc.stderr
