"""Wire codec: framing, reassembly, limits, and tuple round trips.

The frame layer must survive arbitrary fragmentation (TCP gives no
message boundaries), reject oversized frames on both sides, and carry
tuples through ``tuple_to_wire``/``tuple_from_wire`` without loss.
"""

import json
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tuples import Schema
from repro.errors import ProtocolError
from repro.net.frames import (MAX_FRAME, FrameDecoder, encode_frame,
                              rows_from_wire, rows_to_wire, tuple_from_wire,
                              tuple_to_wire, windows_from_wire,
                              windows_to_wire)

json_scalars = st.one_of(
    st.none(), st.booleans(), st.integers(min_value=-2**31, max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=40))

frames = st.dictionaries(
    st.text(min_size=1, max_size=20), st.one_of(
        json_scalars,
        st.lists(json_scalars, max_size=8),
        st.dictionaries(st.text(max_size=8), json_scalars, max_size=4)),
    max_size=8)


@settings(max_examples=200, deadline=None)
@given(frames)
def test_codec_round_trip(frame):
    decoded = FrameDecoder().feed(encode_frame(frame))
    assert decoded == [frame]


@settings(max_examples=50, deadline=None)
@given(st.lists(frames, min_size=1, max_size=5), st.integers(1, 7))
def test_split_frame_reassembly(batch, chunk):
    """Frames survive arbitrary fragmentation and coalescing."""
    wire = b"".join(encode_frame(f) for f in batch)
    decoder = FrameDecoder()
    out = []
    for i in range(0, len(wire), chunk):
        out.extend(decoder.feed(wire[i:i + chunk]))
    assert out == batch


def test_byte_at_a_time_reassembly():
    frame = {"op": "SUBMIT", "id": 7, "query": "SELECT * FROM s"}
    decoder = FrameDecoder()
    out = []
    for byte in encode_frame(frame):
        out.extend(decoder.feed(bytes([byte])))
    assert out == [frame]


def test_encode_rejects_oversized_frame():
    with pytest.raises(ProtocolError, match="exceeds"):
        encode_frame({"blob": "x" * MAX_FRAME})


def test_decoder_rejects_oversized_frame_from_header_alone():
    """The decoder must refuse before buffering the body: a hostile
    header alone (no payload bytes yet) is enough."""
    decoder = FrameDecoder()
    with pytest.raises(ProtocolError, match="limit"):
        decoder.feed(struct.pack(">I", MAX_FRAME + 1))


def test_decoder_rejects_garbage_json():
    decoder = FrameDecoder()
    body = b"not json at all"
    with pytest.raises(ProtocolError):
        decoder.feed(struct.pack(">I", len(body)) + body)


def test_decoder_rejects_non_object_frame():
    decoder = FrameDecoder()
    body = json.dumps([1, 2, 3]).encode()
    with pytest.raises(ProtocolError):
        decoder.feed(struct.pack(">I", len(body)) + body)


def test_tuple_round_trip_preserves_schema_and_timestamp():
    schema = Schema.of("trades", "sym", "price")
    t = schema.make("MSFT", 101.5, timestamp=42)
    back = tuple_from_wire(tuple_to_wire(t), {})
    assert back.schema.name == "trades"
    assert list(back.schema.column_names()) == ["sym", "price"]
    assert back["sym"] == "MSFT" and back["price"] == 101.5
    assert back.timestamp == 42


def test_schema_interning_across_rows():
    schema = Schema.of("s", "a")
    rows = [schema.make(i, timestamp=i) for i in range(3)]
    cache = {}
    back = rows_from_wire(rows_to_wire(rows), cache)
    assert len({id(t.schema) for t in back}) == 1
    assert [t["a"] for t in back] == [0, 1, 2]


def test_windows_round_trip():
    schema = Schema.of("s", "a")
    windows = [(5, [schema.make(1, timestamp=5)]),
               (10, [schema.make(2, timestamp=9), schema.make(3,
                                                              timestamp=10)])]
    back = windows_from_wire(windows_to_wire(windows), {})
    assert [(t, [r["a"] for r in rows]) for t, rows in back] == \
        [(5, [1]), (10, [2, 3])]
