"""The redesigned server/cursor API: context managers, unified fetch,
and the _queue deprecation."""

import pytest

from repro.core.engine import TelegraphCQServer
from repro.core.tuples import Schema
from repro.errors import ExecutionError


def make_server():
    server = TelegraphCQServer()
    server.create_stream(Schema.of("trades", "sym", "price"))
    return server


class TestServerLifecycle:
    def test_context_manager_closes_everything(self):
        with make_server() as server:
            cursor = server.submit("SELECT * FROM trades WHERE price > 1")
            server.push("trades", "A", 2.0)
            assert not server.closed
        assert server.closed
        assert cursor.closed
        with pytest.raises(ExecutionError):
            server.push("trades", "B", 3.0)

    def test_close_is_idempotent(self):
        server = make_server()
        server.close()
        server.close()
        assert server.closed

    def test_close_cancels_continuous_queries(self):
        server = make_server()
        server.submit("SELECT * FROM trades WHERE price > 1")
        assert sum(len(e.queries) for e in server._cacq.values()) == 1
        server.close()
        assert sum(len(e.queries) for e in server._cacq.values()) == 0

    def test_open_cursors_tracks_closes(self):
        server = make_server()
        c1 = server.submit("SELECT * FROM trades WHERE price > 1")
        c2 = server.submit("SELECT * FROM trades WHERE price > 2")
        assert {c.cursor_id for c in server.open_cursors()} == \
            {c1.cursor_id, c2.cursor_id}
        c1.close()
        assert [c.cursor_id for c in server.open_cursors()] == \
            [c2.cursor_id]


class TestCursorLifecycle:
    def test_cursor_context_manager_cancels(self):
        server = make_server()
        with server.submit("SELECT * FROM trades WHERE price > 1") as cur:
            server.push("trades", "A", 2.0)
            assert cur.fetch() != []
        assert cur.closed
        assert cur.continuous_query is None
        # After close, deliveries stop reaching the cursor.
        server.push("trades", "B", 9.0)
        assert cur.fetch() == []

    def test_closed_cursor_keeps_buffered_results(self):
        server = make_server()
        cur = server.submit("SELECT * FROM trades WHERE price > 1")
        server.push("trades", "A", 2.0)
        cur.close()
        rows = cur.fetch()
        assert [t["sym"] for t in rows] == ["A"]

    def test_windowed_cursor_close_stops_evaluation(self):
        server = TelegraphCQServer()
        server.create_stream(Schema.of("s", "v"))
        cur = server.submit(
            "SELECT v FROM s for (t = 1; t <= 100; t++) "
            "{ WindowIs(s, t, t); }")
        for i in range(1, 6):
            server.push("s", i, timestamp=i)
        server.step()
        cur.close()
        produced = cur.pending()
        for i in range(6, 11):
            server.push("s", i, timestamp=i)
        server.run_until_quiescent()
        assert cur.pending() == produced  # no new windows evaluated


class TestUnifiedFetch:
    def submit_windowed(self, server):
        return server.submit(
            "SELECT v FROM s for (t = 1; t <= 100; t++) "
            "{ WindowIs(s, t, t); }")

    def test_fetch_flattens_windows(self):
        server = TelegraphCQServer()
        server.create_stream(Schema.of("s", "v"))
        cur = self.submit_windowed(server)
        for i in range(1, 5):
            server.push("s", i * 10, timestamp=i)
        server.run_until_quiescent()
        rows = cur.fetch()
        # windows [1,1]..[3,3] are complete (t=4 still open)
        assert [t["v"] for t in rows] == [10, 20, 30]
        assert cur.fetch() == []

    def test_fetch_respects_limit_across_windows(self):
        server = TelegraphCQServer()
        server.create_stream(Schema.of("s", "v"))
        cur = self.submit_windowed(server)
        for i in range(1, 6):
            server.push("s", i, timestamp=i)
        server.run_until_quiescent()
        first = cur.fetch(limit=2)
        rest = cur.fetch()
        assert len(first) == 2
        assert [t["v"] for t in first + rest] == [1, 2, 3, 4]

    def test_fetch_windows_still_gives_sequence_of_sets(self):
        server = TelegraphCQServer()
        server.create_stream(Schema.of("s", "v"))
        cur = self.submit_windowed(server)
        for i in range(1, 4):
            server.push("s", i, timestamp=i)
        server.run_until_quiescent()
        windows = cur.fetch_windows()
        assert [t for t, _rows in windows] == [1, 2]
        assert all(len(rows) == 1 for _t, rows in windows)

    def test_queue_attribute_is_gone(self):
        # The deprecated ``_queue`` escape hatch is removed: fetch /
        # fetchall / iteration are the only read surface, identical on
        # local and network cursors.
        server = make_server()
        cur = server.submit("SELECT * FROM trades WHERE price > 1")
        with pytest.raises(AttributeError):
            cur._queue
