"""Tier-2 cluster gate: Flux on real spawned worker processes.

Run with ``pytest -m cluster`` (deselected by default so tier-1 spawns
zero processes).  Every test here exercises the same Flux logic the
simulated tier-1 suite covers — the assertion set mirrors
``test_flux.py`` — but the substrate is
:class:`~repro.flux.procs.MultiprocessBackend`: real interpreters,
framed pipes, SIGKILL failures, wall-clock recovery.
"""

import functools
import multiprocessing
import os
import random
import subprocess
import sys

import pytest

from repro.core.tuples import Schema
from repro.errors import ClusterError
from repro.flux.cluster import Cluster, GroupCountState
from repro.flux.flux import Flux
from repro.flux.parallel_cacq import ParallelCACQ
from repro.flux.procs import MultiprocessBackend, live_worker_pids
from repro.monitor.clock import now
from repro.query.predicates import ColumnComparison, Comparison

pytestmark = pytest.mark.cluster

S = Schema.of("pkts", "key")


def make_data(n=400, n_keys=12, seed=0):
    rng = random.Random(seed)
    return [S.make(rng.randrange(n_keys), timestamp=i) for i in range(n)]


def ground_truth(data):
    out = {}
    for t in data:
        out[t["key"]] = out.get(t["key"], 0) + 1
    return out


def group_factory():
    return GroupCountState("key")


def run_flux(backend, data, batch=50, replication=0, fail_at=None,
             **kwargs):
    flux = Flux(backend, n_partitions=8, key_fn=lambda t: t["key"],
                state_factory=group_factory, replication=replication,
                **kwargs)
    i = 0
    tick = 0
    while i < len(data) or flux.unacked_total():
        rows = data[i:i + batch]
        i += len(rows)
        flux.tick(rows)
        tick += 1
        if fail_at is not None and tick == fail_at[1]:
            backend.fail(fail_at[0])
            flux.on_machine_failure(fail_at[0])
        assert tick < 50_000, "flux made no progress on real workers"
    return flux


class TestMultiprocessRouting:
    def test_counts_match_ground_truth(self):
        data = make_data(300)
        with MultiprocessBackend(workers=2) as backend:
            flux = run_flux(backend, data)
            assert flux.merged_counts() == ground_truth(data)

    def test_parity_with_simulated_backend(self):
        """The acceptance property: same suite, same answers, real
        processes."""
        data = make_data(400, seed=3)
        cluster = Cluster()
        for i in range(3):
            cluster.add_machine(f"w{i}")
        sim_flux = run_flux(cluster, data, replication=1)
        with MultiprocessBackend(workers=3) as backend:
            mp_flux = run_flux(backend, data, replication=1)
            assert mp_flux.merged_counts() == sim_flux.merged_counts() \
                == ground_truth(data)

    def test_heterogeneous_workers_diverge_backlogs(self):
        """The spin knob makes one worker genuinely slower; the fast
        worker acks sooner, so routing imbalance becomes observable."""
        data = make_data(600, seed=5)
        with MultiprocessBackend(workers=2,
                                 spins={"w0": 4000, "w1": 0}) as backend:
            flux = run_flux(backend, data, batch=200)
            assert flux.merged_counts() == ground_truth(data)
            assert backend.processed_count("w0") + \
                backend.processed_count("w1") == len(data)


class TestMultiprocessFailover:
    def test_replicated_crash_loses_nothing(self):
        data = make_data(500, seed=7)
        with MultiprocessBackend(workers=3) as backend:
            flux = run_flux(backend, data, replication=1,
                            fail_at=("w1", 4))
            assert flux.merged_counts() == ground_truth(data)
            assert flux.lost_tuples == 0
            assert not backend.is_alive("w1")

    def test_recovery_time_is_wall_clock(self):
        data = make_data(300, seed=9)
        with MultiprocessBackend(workers=3) as backend:
            flux = run_flux(backend, data, replication=1,
                            fail_at=("w0", 3))
            assert len(flux.recovery_times_ms) == 1
            # A real snapshot+install over pipes cannot be instantaneous.
            assert flux.recovery_times_ms[-1] > 0.0

    def test_unreplicated_crash_counts_losses(self):
        data = make_data(400, seed=11)
        with MultiprocessBackend(workers=2) as backend:
            flux = run_flux(backend, data, fail_at=("w0", 3))
            merged = flux.merged_counts()
            lost = len(data) - sum(merged.values())
            assert lost == flux.lost_tuples
            # the run completed; survivors hold everything not lost
            assert lost >= 0

    def test_dead_worker_rejects_enqueue(self):
        with MultiprocessBackend(workers=2) as backend:
            backend.configure(group_factory)
            backend.fail("w0")
            with pytest.raises(ClusterError):
                backend.enqueue("w0", 0, 0, S.make(1))
            with pytest.raises(ClusterError):
                backend.fail("w0")


class TestWorkerLifecycle:
    """Satellite: graceful teardown and the orphan leak check."""

    def test_context_exit_leaves_no_orphans(self):
        with MultiprocessBackend(workers=2) as backend:
            pids = {h.process.pid for h in backend._workers.values()}
            assert pids <= live_worker_pids()
        assert not live_worker_pids()
        assert not multiprocessing.active_children()

    def test_close_is_idempotent(self):
        backend = MultiprocessBackend(workers=2)
        backend.close()
        backend.close()
        assert not live_worker_pids()

    def test_sigterm_escalation_reaps_stuck_worker(self):
        """A worker that never sees the shutdown command (ctrl pipe
        closed under it) must still be reaped by terminate/kill."""
        backend = MultiprocessBackend(workers=2)
        backend._workers["w0"].ctrl.close()
        backend.close()
        assert not live_worker_pids()
        assert not multiprocessing.active_children()

    def test_unpicklable_factory_is_rejected_clearly(self):
        with MultiprocessBackend(workers=1) as backend:
            with pytest.raises(ClusterError, match="pickle"):
                backend.configure(lambda: GroupCountState("key"))


class TestSpawnDeterminism:
    """Satellite: partition placement must agree across interpreters
    with different hash seeds (spawned workers inherit a fresh seed)."""

    PROBE = ("import repro.flux.flux as f; "
             "print([f.Flux._stable_hash(v) for v in "
             "['abc', 'aapl', 17, ('x', 1), 3.5]])")

    def _hashes_under_seed(self, seed):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = seed
        env["PYTHONPATH"] = os.pathsep.join(sys.path)
        out = subprocess.run([sys.executable, "-c", self.PROBE],
                             capture_output=True, text=True, env=env,
                             check=True)
        return out.stdout.strip()

    def test_stable_hash_ignores_hash_seed(self):
        a = self._hashes_under_seed("0")
        b = self._hashes_under_seed("12345")
        c = self._hashes_under_seed("random")
        assert a == b == c

    def test_routing_agrees_across_spawned_workers(self):
        """End-to-end: a replicated run (which re-routes on failover)
        lands every tuple where the ledger expects it; any conductor/
        worker hash disagreement would surface as lost or misrouted
        acks and hang run_flux."""
        data = [S.make(k) for k in range(50)]
        with MultiprocessBackend(workers=2) as backend:
            flux = run_flux(backend, data, replication=1)
            assert sum(flux.merged_counts().values()) == len(data)


class TestParallelCACQOnProcesses:
    def test_cacq_shards_and_failover(self):
        trades = Schema.of("trades", "sym", "price")
        quotes = Schema.of("quotes", "sym", "bid")
        with MultiprocessBackend(workers=3) as backend:
            engine = ParallelCACQ(backend, partition_column="sym",
                                  n_partitions=6, replication=1)
            engine.register_stream(trades)
            engine.register_stream(quotes)
            engine.add_query(["trades"], Comparison("price", ">", 10.0))
            engine.add_query(["trades", "quotes"],
                             ColumnComparison("trades.sym", "==",
                                              "quotes.sym"))
            syms = ["aa", "bb", "cc", "dd"]
            batch = []
            for i in range(100):
                batch.append(trades.make(syms[i % 4], float(i % 25)))
                batch.append(quotes.make(syms[i % 4], float(i)))
            engine.tick(batch)
            engine.drain()
            before = engine.delivered_counts()
            assert before[0] > 0 and before[1] > 0
            engine.fail_machine("w1")
            engine.drain()
            assert engine.delivered_counts() == before


@pytest.mark.skipif(len(os.sched_getaffinity(0)) < 2,
                    reason="speedup needs >= 2 usable CPUs")
class TestScaleOut:
    """The headline acceptance number: a CPU-bound partitioned workload
    on two workers beats one worker by >= 1.5x wall clock."""

    SPIN = 20_000
    N = 600

    def _timed_run(self, n_workers):
        data = make_data(self.N, seed=13)
        spins = {f"w{i}": self.SPIN for i in range(n_workers)}
        with MultiprocessBackend(workers=n_workers, spins=spins) as backend:
            started = now()
            flux = run_flux(backend, data, batch=200)
            elapsed = now() - started
            assert flux.merged_counts() == ground_truth(data)
        return elapsed

    def test_two_workers_beat_one(self):
        one = min(self._timed_run(1) for _ in range(2))
        two = min(self._timed_run(2) for _ in range(2))
        assert one / two >= 1.5, (
            f"expected >=1.5x speedup, got {one / two:.2f}x "
            f"({one:.3f}s -> {two:.3f}s)")
