"""Tests for ingress: generators (determinism, knobs), sources
(push/pull timing), the wrapper host, streamers, and the window-driven
scanner."""

import pytest

from repro.core.tuples import Punctuation, Schema
from repro.core.windows import ForLoopSpec, HistoricalStore
from repro.errors import ExecutionError
from repro.fjords.fjord import Fjord
from repro.fjords.module import CollectingSink
from repro.fjords.queues import PushQueue
from repro.ingress.generators import (CLOSING_STOCK_PRICES,
                                      DriftingSelectivityGenerator,
                                      PacketStreamGenerator,
                                      SensorStreamGenerator,
                                      StockStreamGenerator,
                                      replicate_for_alias)
from repro.ingress.sources import (BurstySource, FileSource, PullSource,
                                   PushSource, RemoteIndexSource)
from repro.ingress.wrappers import (StreamScanner, Streamer,
                                    WrapperHost, WrapperSourceModule)


class TestGenerators:
    def test_stock_deterministic_under_seed(self):
        a = StockStreamGenerator(seed=5).take(10)
        b = StockStreamGenerator(seed=5).take(10)
        assert [t.values for t in a] == [t.values for t in b]

    def test_stock_one_row_per_day_per_symbol(self):
        rows = StockStreamGenerator(symbols=("A", "B"), seed=0).take(5)
        assert len(rows) == 10
        assert rows[0].timestamp == 1

    def test_stock_drift_moves_prices(self):
        gen = StockStreamGenerator(symbols=("A",), seed=0, volatility=0.01,
                                   drift_at=50, drift_by=1000.0)
        rows = gen.take(60)
        assert rows[48]["closingPrice"] < 100
        assert rows[51]["closingPrice"] > 900

    def test_sensor_failure_rate_drops_readings(self):
        full = SensorStreamGenerator(n_sensors=4, seed=1).take(100)
        lossy = SensorStreamGenerator(n_sensors=4, seed=1,
                                      failure_rate=0.5).take(100)
        assert len(lossy) < len(full)

    def test_sensor_anomalies_injected(self):
        calm = SensorStreamGenerator(seed=2).take(50)
        spiky = SensorStreamGenerator(seed=2, anomaly_rate=0.2,
                                      anomaly_delta=100.0).take(50)
        assert max(t["temperature"] for t in spiky) > \
            max(t["temperature"] for t in calm) + 50

    def test_packet_zipf_skew(self):
        from collections import Counter
        uniform = Counter(t["src"] for t in
                          PacketStreamGenerator(n_hosts=20, seed=3)
                          .take(2000))
        skewed = Counter(t["src"] for t in
                         PacketStreamGenerator(n_hosts=20, zipf_s=1.5,
                                               seed=3).take(2000))
        assert max(skewed.values()) > 2 * max(uniform.values())

    def test_packet_bursts_share_timestamps(self):
        rows = PacketStreamGenerator(seed=0, burst_every=5,
                                     burst_factor=10).take(200)
        from collections import Counter
        per_ts = Counter(t["ts"] for t in rows)
        assert max(per_ts.values()) >= 10

    def test_drifting_selectivity_flips(self):
        rows = DriftingSelectivityGenerator(seed=1, flip_at=500).take(1000)
        a_before = sum(t["a"] for t in rows[:500]) / 500
        a_after = sum(t["a"] for t in rows[500:]) / 500
        assert a_before < 0.3 < 0.7 < a_after

    def test_replicate_for_alias(self):
        rows = StockStreamGenerator(seed=0).take(2)
        aliased = replicate_for_alias(rows, "c2")
        assert aliased[0].sources == frozenset({"c2"})
        assert aliased[0].values == rows[0].values


class TestSources:
    def make_rows(self, n):
        s = Schema.of("s", "v")
        return [s.make(i, timestamp=i) for i in range(1, n + 1)]

    def test_pull_source_on_demand(self):
        src = PullSource("p", self.make_rows(5))
        assert len(src.poll(now=0, budget=3)) == 3
        assert len(src.poll(now=0, budget=3)) == 2
        assert src.exhausted

    def test_push_source_respects_arrival_times(self):
        src = PushSource("p", self.make_rows(5))   # arrivals = ts 1..5
        assert src.poll(now=0, budget=10) == []
        assert len(src.poll(now=3, budget=10)) == 3
        assert len(src.poll(now=10, budget=10)) == 2
        assert src.exhausted

    def test_push_source_pending(self):
        src = PushSource("p", self.make_rows(5))
        assert src.pending_at(2) == 2

    def test_push_source_schedule_mismatch(self):
        with pytest.raises(ExecutionError):
            PushSource("p", self.make_rows(3), arrival_times=[1])

    def test_bursty_source_clusters_arrivals(self):
        rows = self.make_rows(100)
        steady = PushSource("a", rows)
        bursty = BurstySource("b", self.make_rows(100), rate=1.0,
                              burst_every=10, burst_len=3, burst_factor=10)
        # At some instant, the bursty source releases far more at once.
        biggest = max(len(bursty.poll(now, 1000)) for now in range(1, 120))
        assert biggest > 3

    def test_remote_index_charges_latency(self):
        s = Schema.of("t", "k", "v")
        src = RemoteIndexSource("idx", [s.make(1, "a"), s.make(1, "b")],
                                key_column="k", latency_cost=10)
        assert len(src.lookup(1)) == 2
        assert src.lookup(99) == []
        assert src.lookups == 2
        assert src.work_charged == 20

    def test_file_source_roundtrip(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("sym,price\nMSFT,50.5\nIBM,60\n")
        schema = Schema.of("csv", "sym", "price")
        src = FileSource("f", str(path), schema)
        rows = src.poll(0, 10)
        assert rows[0]["sym"] == "MSFT"
        assert rows[0]["price"] == 50.5
        assert rows[1]["price"] == 60       # parsed as int


class TestWrapperHost:
    def test_polls_all_sources_non_blocking(self):
        s = Schema.of("s", "v")
        rows = [s.make(i, timestamp=i) for i in range(1, 6)]
        host = WrapperHost()
        store = HistoricalStore("s")
        quiet = PushSource("quiet", [s.make(99, timestamp=1000)])
        live = PullSource("live", rows)
        host.register(quiet, Streamer("s2"))
        host.register(live, Streamer("s", store))
        moved = host.step()
        assert moved == 5            # live delivered, quiet yielded nothing
        assert len(store) == 5

    def test_duplicate_source_rejected(self):
        host = WrapperHost()
        s = Schema.of("s", "v")
        host.register(PullSource("x", []), Streamer("s"))
        with pytest.raises(ExecutionError, match="duplicate"):
            host.register(PullSource("x", []), Streamer("s"))

    def test_run_until_exhausted_and_eos(self):
        s = Schema.of("s", "v")
        host = WrapperHost()
        streamer = Streamer("s")
        q = PushQueue()
        streamer.attach_queue(q)
        host.register(PullSource("x", [s.make(1, timestamp=1)]), streamer)
        total = host.run_until_exhausted()
        assert total == 1
        drained = []
        while len(q):
            drained.append(q.pop())
        assert isinstance(drained[-1], Punctuation)

    def test_streamer_assigns_timestamps(self):
        s = Schema.of("s", "v")
        streamer = Streamer("s")
        t = s.make(5)
        assert t.timestamp is None
        streamer.deliver([t])
        assert t.timestamp == 1


class TestScanner:
    def test_window_scanner_emits_boundaries(self):
        store = HistoricalStore("s")
        s = Schema.of("s", "v")
        for ts in range(1, 11):
            store.append(s.make(ts, timestamp=ts))
        spec = ForLoopSpec.sliding("s", width=3, start=3, stop=6)
        scanner = StreamScanner(store, spec)
        sink = CollectingSink()
        f = Fjord()
        f.connect(scanner, sink)
        f.run_until_finished()
        assert [len(w) for w in sink.windows()] == [3, 3, 3]

    def test_wrapper_source_module(self):
        s = Schema.of("s", "v")
        src = PullSource("p", [s.make(i, timestamp=i) for i in range(3)])
        sink = CollectingSink()
        f = Fjord()
        f.connect(WrapperSourceModule(src), sink)
        f.run_until_finished()
        assert len(sink.results) == 3
