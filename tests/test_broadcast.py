"""Tests for the broadcast-disk page scheduler (§4.3 / [AAFZ95])."""

import random

import pytest

from repro.errors import StorageError
from repro.storage.broadcast import (BroadcastReader, BroadcastSchedule,
                                     expected_wait)


def zipf_weights(n_pages, s=1.2):
    return {p: 1.0 / (p + 1) ** s for p in range(n_pages)}


class TestSchedule:
    def test_flat_program_covers_every_page_once(self):
        schedule = BroadcastSchedule({p: 1.0 for p in range(10)})
        assert sorted(schedule.program) == list(range(10))
        assert schedule.cycle_length == 10

    def test_multi_disk_repeats_hot_pages(self):
        schedule = BroadcastSchedule(zipf_weights(30), n_disks=3)
        hot_airs = len(schedule.air_slots[0])
        cold_airs = len(schedule.air_slots[29])
        assert hot_airs > cold_airs
        # every page still airs at least once per major cycle
        assert set(schedule.air_slots) == set(range(30))

    def test_spacing_inverse_to_frequency(self):
        schedule = BroadcastSchedule(zipf_weights(30), n_disks=3)
        assert schedule.spacing(0) < schedule.spacing(29)

    def test_validation(self):
        with pytest.raises(StorageError):
            BroadcastSchedule({})
        with pytest.raises(StorageError):
            BroadcastSchedule({0: -1.0})
        with pytest.raises(StorageError):
            BroadcastSchedule({0: 1.0}, n_disks=0)

    def test_disks_capped_at_page_count(self):
        schedule = BroadcastSchedule({0: 1.0, 1: 0.5}, n_disks=10)
        assert schedule.n_disks == 2


class TestReader:
    def test_wait_counts_slots_until_airing(self):
        schedule = BroadcastSchedule({p: 1.0 for p in range(5)})
        # flat program is [0,1,2,3,4]
        reader = BroadcastReader(schedule, position=0)
        assert reader.wait_for(0) == 0
        assert reader.wait_for(3) == 2       # position advanced past 0
        assert reader.wait_for(0) == 1       # wraps around

    def test_unknown_page(self):
        schedule = BroadcastSchedule({0: 1.0})
        with pytest.raises(StorageError):
            BroadcastReader(schedule).wait_for(9)

    def test_mean_wait_tracks_total(self):
        schedule = BroadcastSchedule({p: 1.0 for p in range(8)})
        reader = BroadcastReader(schedule)
        rng = random.Random(0)
        for _ in range(100):
            reader.wait_for(rng.randrange(8))
        assert reader.mean_wait() == reader.total_wait / 100


class TestSquareRootRule:
    def test_multi_disk_beats_flat_on_skew(self):
        weights = zipf_weights(40, s=1.5)
        flat = BroadcastSchedule(weights, n_disks=1)
        tiered = BroadcastSchedule(weights, n_disks=3)
        assert expected_wait(tiered, weights) < \
            0.8 * expected_wait(flat, weights)

    def test_flat_is_fine_on_uniform(self):
        weights = {p: 1.0 for p in range(40)}
        flat = BroadcastSchedule(weights, n_disks=1)
        tiered = BroadcastSchedule(weights, n_disks=3)
        # tiering uniform data buys nothing (and shouldn't cost much)
        assert expected_wait(tiered, weights) <= \
            1.3 * expected_wait(flat, weights)

    def test_simulated_reader_agrees_with_analysis(self):
        weights = zipf_weights(40, s=1.5)
        rng = random.Random(1)
        pages = list(weights)
        probs = [weights[p] for p in pages]

        def simulate(schedule):
            reader = BroadcastReader(schedule, position=0)
            for _ in range(3000):
                reader.wait_for(rng.choices(pages, weights=probs)[0])
            return reader.mean_wait()

        flat_wait = simulate(BroadcastSchedule(weights, n_disks=1))
        tiered_wait = simulate(BroadcastSchedule(weights, n_disks=3))
        assert tiered_wait < flat_wait
