"""Unit tests for the pipelined relational operators."""

import pytest

from repro.core.operators import (AggregateSpec, DupElim, GroupByAggregate,
                                  Limit, Map, Project, Select, Sort,
                                  SymmetricHashJoin, TransitiveClosure,
                                  Union)
from repro.core.tuples import Column, Punctuation, Schema, Tuple
from repro.fjords.fjord import Fjord
from repro.fjords.module import CollectingSink
from repro.query.predicates import ColumnComparison, Comparison
from tests.conftest import ListFeed, reference_join, values_of

S = Schema.of("S", "a", "b")


def run_unary(module, items):
    f = Fjord()
    sink = CollectingSink()
    f.connect(ListFeed(items), module)
    f.connect(module, sink)
    f.run_until_finished()
    return sink


def rows(pairs):
    return [S.make(a, b, timestamp=i) for i, (a, b) in enumerate(pairs)]


class TestSelect:
    def test_filters(self):
        sink = run_unary(Select(Comparison("a", ">", 1)),
                         rows([(0, 0), (2, 0), (5, 0)]))
        assert [t["a"] for t in sink.results] == [2, 5]

    def test_selectivity_observed(self):
        sel = Select(Comparison("a", ">", 1))
        run_unary(sel, rows([(0, 0), (2, 0)]))
        assert sel.selectivity == 0.5
        assert sel.seen == 2

    def test_selectivity_default_before_evidence(self):
        assert Select(Comparison("a", ">", 1)).selectivity == 1.0


class TestProjectAndMap:
    def test_project_keeps_columns(self):
        sink = run_unary(Project(["b"]), rows([(1, 10), (2, 20)]))
        assert [t.values for t in sink.results] == [(10,), (20,)]
        assert sink.results[0].schema.column_names() == ["b"]

    def test_project_renames(self):
        sink = run_unary(Project({"beta": "b"}), rows([(1, 10)]))
        assert sink.results[0]["beta"] == 10

    def test_project_preserves_lineage(self):
        p = Project(["a"])
        t = S.make(1, 2)
        t.queries = 0b101
        (out,) = p.process(t, 0)
        assert out.queries == 0b101

    def test_map_computes(self):
        out_schema = Schema([Column("total")], sources={"S"})
        m = Map(lambda t: (t["a"] + t["b"],), out_schema)
        sink = run_unary(m, rows([(1, 10), (2, 20)]))
        assert [t["total"] for t in sink.results] == [11, 22]


class TestDupElim:
    def test_distinct(self):
        sink = run_unary(DupElim(), rows([(1, 1), (1, 1), (2, 2)]))
        assert len(sink.results) == 2

    def test_window_boundary_resets(self):
        d = DupElim()
        items = rows([(1, 1)]) + [Punctuation.window_boundary()] + \
            rows([(1, 1)])
        sink = run_unary(d, items)
        assert len(sink.results) == 2   # same value allowed across windows


class TestSort:
    def test_sorts_on_eos(self):
        sink = run_unary(Sort("a"), rows([(3, 0), (1, 0), (2, 0)]))
        assert [t["a"] for t in sink.results] == [1, 2, 3]

    def test_descending(self):
        sink = run_unary(Sort("a", descending=True),
                         rows([(3, 0), (1, 0), (2, 0)]))
        assert [t["a"] for t in sink.results] == [3, 2, 1]

    def test_sorts_per_window(self):
        items = rows([(3, 0), (1, 0)]) + [Punctuation.window_boundary()] + \
            rows([(9, 0), (5, 0)])
        sink = run_unary(Sort("a"), items)
        assert [[t["a"] for t in w] for w in sink.windows()] == \
            [[1, 3], [5, 9]]

    def test_callable_key(self):
        sink = run_unary(Sort(lambda t: -t["a"]), rows([(1, 0), (3, 0)]))
        assert [t["a"] for t in sink.results] == [3, 1]


class TestGroupByAggregate:
    def test_flushes_at_eos(self):
        g = GroupByAggregate(["a"], [AggregateSpec("count", None),
                                     AggregateSpec("sum", "b")])
        sink = run_unary(g, rows([(1, 10), (1, 20), (2, 5)]))
        by_key = {t["a"]: t for t in sink.results}
        assert by_key[1]["count"] == 2
        assert by_key[1]["sum_b"] == 30
        assert by_key[2]["count"] == 1

    def test_flushes_per_window(self):
        g = GroupByAggregate(["a"], [AggregateSpec("count", None)])
        items = rows([(1, 0), (1, 0)]) + [Punctuation.window_boundary()] + \
            rows([(1, 0)])
        sink = run_unary(g, items)
        counts = [[t["count"] for t in w] for w in sink.windows()]
        assert counts == [[2], [1]]

    def test_incremental_mode_emits_per_tuple(self):
        g = GroupByAggregate(["a"], [AggregateSpec("count", None)],
                             emit_incremental=True)
        sink = run_unary(g, rows([(1, 0), (1, 0), (1, 0)]))
        assert [t["count"] for t in sink.results] == [1, 2, 3]

    def test_avg_alias(self):
        g = GroupByAggregate([], [AggregateSpec("avg", "b", alias="mean_b")])
        sink = run_unary(g, rows([(0, 10), (0, 20)]))
        assert sink.results[0]["mean_b"] == 15.0


class TestSymmetricHashJoin:
    def test_matches_reference(self):
        left_schema = Schema.of("L", "k", "x")
        right_schema = Schema.of("R", "k", "y")
        left = [left_schema.make(i % 3, i, timestamp=i) for i in range(9)]
        right = [right_schema.make(i % 3, i * 10, timestamp=i)
                 for i in range(6)]
        shj = SymmetricHashJoin("k", "k")
        f = Fjord()
        sink = CollectingSink()
        f.connect(ListFeed(left, "lfeed"), shj, in_port=0)
        f.connect(ListFeed(right, "rfeed"), shj, in_port=1)
        f.connect(shj, sink)
        f.run_until_finished()
        expected = reference_join(left, right,
                                  ColumnComparison("L.k", "==", "R.k"))
        got = values_of(sink.results)
        # SHJ emits (left, right) ordered values regardless of arrival.
        assert sorted(got) == sorted(expected)

    def test_residual_predicate(self):
        left_schema = Schema.of("L", "k", "x")
        right_schema = Schema.of("R", "k", "y")
        shj = SymmetricHashJoin("k", "k",
                                residual=ColumnComparison("L.x", "<", "R.y"))
        f = Fjord()
        sink = CollectingSink()
        f.connect(ListFeed([left_schema.make(1, 5)], "lf"), shj, in_port=0)
        f.connect(ListFeed([right_schema.make(1, 3),
                            right_schema.make(1, 9)], "rf"), shj, in_port=1)
        f.connect(shj, sink)
        f.run_until_finished()
        assert len(sink.results) == 1
        assert sink.results[0]["R.y"] == 9

    def test_state_size(self):
        shj = SymmetricHashJoin("k", "k")
        schema = Schema.of("L", "k")
        shj.process(schema.make(1), 0)
        shj.process(schema.make(2), 0)
        assert shj.state_size() == 2


class TestTransitiveClosure:
    def test_chain(self):
        schema = Schema.of("E", "src", "dst")
        edges = [schema.make("a", "b", timestamp=0),
                 schema.make("b", "c", timestamp=1),
                 schema.make("c", "d", timestamp=2)]
        tc = TransitiveClosure()
        sink = run_unary(tc, edges)
        pairs = {t.values for t in sink.results}
        assert ("a", "d") in pairs
        assert len(pairs) == 6    # ab ac ad bc bd cd

    def test_no_duplicates_and_no_self_loops(self):
        schema = Schema.of("E", "src", "dst")
        edges = [schema.make("a", "b", timestamp=0),
                 schema.make("b", "a", timestamp=1),
                 schema.make("a", "b", timestamp=2)]
        tc = TransitiveClosure()
        sink = run_unary(tc, edges)
        pairs = [t.values for t in sink.results]
        assert len(pairs) == len(set(pairs))
        assert ("a", "a") not in pairs

    def test_reachable(self):
        schema = Schema.of("E", "src", "dst")
        tc = TransitiveClosure()
        run_unary(tc, [schema.make("a", "b", timestamp=0),
                       schema.make("b", "c", timestamp=1)])
        assert tc.reachable("a") == {"b", "c"}


class TestLimitUnion:
    def test_limit(self):
        sink = run_unary(Limit(2), rows([(1, 0), (2, 0), (3, 0)]))
        assert len(sink.results) == 2

    def test_union_merges(self):
        u = Union()
        f = Fjord()
        sink = CollectingSink()
        f.connect(ListFeed(rows([(1, 0)]), "f1"), u, in_port=0)
        f.connect(ListFeed(rows([(2, 0)]), "f2"), u, in_port=1)
        f.connect(u, sink)
        f.run_until_finished()
        assert sorted(t["a"] for t in sink.results) == [1, 2]


class TestSelectBatch:
    def test_process_batch_equals_per_tuple(self):
        from repro.core.tuples import TupleBatch
        pred = Comparison("a", ">", 1)
        ref = Select(pred)
        data = [(0, 0), (2, 1), (3, 2), (1, 3), (5, 4)]
        expected = []
        for t in rows(data):
            expected.extend(ref.process(t, 0))
        vec = Select(pred)
        out = list(vec.process_batch(TupleBatch.from_tuples(rows(data)), 0))
        got = [t for batch in out for t in batch.materialize()]
        assert values_of(got) == values_of(expected)
        assert (vec.seen, vec.passed) == (ref.seen, ref.passed)
        assert vec.selectivity == ref.selectivity

    def test_process_batch_empty_result(self):
        from repro.core.tuples import TupleBatch
        sel = Select(Comparison("a", ">", 100))
        out = list(sel.process_batch(
            TupleBatch.from_tuples(rows([(1, 0), (2, 0)])), 0))
        assert out == []
        assert sel.seen == 2 and sel.passed == 0

    def test_batch_through_fjord_matches_tuple_feed(self):
        """A TupleBatch pushed down a queue is consumed transparently by
        Module.run_once and produces the same sink contents."""
        from repro.core.tuples import TupleBatch
        data = [(0, 0), (2, 1), (3, 2), (1, 3)]
        sink_ref = run_unary(Select(Comparison("a", ">", 1)), rows(data))
        batch = TupleBatch.from_tuples(rows(data))
        sink_vec = run_unary(Select(Comparison("a", ">", 1)), [batch])
        assert values_of(sink_vec.results) == values_of(sink_ref.results)

    def test_default_process_batch_loops_for_plain_modules(self):
        """Modules without a kernel (Project here) accept batches via
        the default row loop."""
        from repro.core.tuples import TupleBatch
        data = [(1, 10), (2, 20)]
        sink = run_unary(Project(["a"]), [TupleBatch.from_tuples(rows(data))])
        assert sorted(t["a"] for t in sink.results) == [1, 2]
