"""Tests for the CACQ shared continuous-query engine: correctness of
shared selections and joins, lineage isolation, dynamic add/remove, and
equivalence with the unshared per-query baseline."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.per_query import PerQueryEngine
from repro.core.cacq import CACQEngine
from repro.core.tuples import Schema
from repro.errors import QueryError
from repro.query.predicates import (And, ColumnComparison, Comparison, Or)
from tests.conftest import values_of

TRADES = Schema.of("trades", "sym", "price")
QUOTES = Schema.of("quotes", "sym", "bid")


def fresh_engine():
    engine = CACQEngine()
    engine.register_stream(TRADES)
    engine.register_stream(QUOTES)
    return engine


class TestSelections:
    def test_single_query(self):
        engine = fresh_engine()
        q = engine.add_query(["trades"], Comparison("price", ">", 50))
        engine.push("trades", sym="A", price=60, timestamp=1)
        engine.push("trades", sym="A", price=40, timestamp=2)
        assert [t["price"] for t in q.results] == [60]

    def test_unknown_stream_rejected(self):
        engine = fresh_engine()
        with pytest.raises(QueryError):
            engine.add_query(["nope"], Comparison("price", ">", 0))

    def test_many_queries_isolated_lineage(self):
        engine = fresh_engine()
        queries = [engine.add_query(["trades"],
                                    Comparison("price", ">", th))
                   for th in range(0, 100, 10)]
        for price in (5, 35, 95):
            engine.push("trades", sym="A", price=price)
        for i, q in enumerate(queries):
            threshold = i * 10
            expected = sum(1 for p in (5, 35, 95) if p > threshold)
            assert q.delivered == expected

    def test_conjunction_multiple_attributes(self):
        engine = fresh_engine()
        q = engine.add_query(["trades"],
                             And(Comparison("price", ">", 10),
                                 Comparison("sym", "==", "A")))
        engine.push("trades", sym="A", price=20)
        engine.push("trades", sym="B", price=20)
        engine.push("trades", sym="A", price=5)
        assert q.delivered == 1

    def test_disjunction_as_residual(self):
        engine = fresh_engine()
        q = engine.add_query(["trades"],
                             Or(Comparison("price", ">", 90),
                                Comparison("sym", "==", "Z")))
        engine.push("trades", sym="Z", price=1)
        engine.push("trades", sym="A", price=95)
        engine.push("trades", sym="A", price=10)
        assert q.delivered == 2

    def test_callback_delivery(self):
        engine = fresh_engine()
        received = []
        engine.add_query(["trades"], Comparison("price", ">", 0),
                         callback=received.append)
        engine.push("trades", sym="A", price=5)
        assert len(received) == 1

    def test_filter_sharing_one_probe_for_many_queries(self):
        engine = fresh_engine()
        for th in range(64):
            engine.add_query(["trades"], Comparison("price", ">", th))
        engine.push("trades", sym="A", price=50)
        # one grouped-filter probe, not 64 evaluations
        assert engine.filter_probes == 1

    def test_more_than_64_queries(self):
        """Query bitmaps are Python ints: no 64-query ceiling."""
        engine = fresh_engine()
        queries = [engine.add_query(["trades"],
                                    Comparison("price", ">", i))
                   for i in range(100)]
        engine.push("trades", sym="A", price=1000)
        assert all(q.delivered == 1 for q in queries)


class TestDynamicQueries:
    def test_add_mid_stream(self):
        engine = fresh_engine()
        q1 = engine.add_query(["trades"], Comparison("price", ">", 0))
        engine.push("trades", sym="A", price=1)
        q2 = engine.add_query(["trades"], Comparison("price", ">", 0))
        engine.push("trades", sym="A", price=2)
        assert q1.delivered == 2
        assert q2.delivered == 1    # only data after registration

    def test_remove_mid_stream(self):
        engine = fresh_engine()
        q1 = engine.add_query(["trades"], Comparison("price", ">", 0))
        q2 = engine.add_query(["trades"], Comparison("price", ">", 0))
        engine.push("trades", sym="A", price=1)
        engine.remove_query(q1)
        engine.push("trades", sym="A", price=2)
        assert q1.delivered == 1
        assert q2.delivered == 2

    def test_remove_unknown_rejected(self):
        engine = fresh_engine()
        q = engine.add_query(["trades"], Comparison("price", ">", 0))
        engine.remove_query(q)
        with pytest.raises(QueryError):
            engine.remove_query(q)

    def test_remove_prunes_pair_registry(self):
        engine = fresh_engine()
        q = engine.add_query(
            ["trades", "quotes"],
            ColumnComparison("trades.sym", "==", "quotes.sym"))
        assert engine._pair_factors
        engine.remove_query(q)
        assert not engine._pair_factors


class TestJoins:
    def test_two_stream_join(self):
        engine = fresh_engine()
        q = engine.add_query(
            ["trades", "quotes"],
            ColumnComparison("trades.sym", "==", "quotes.sym"))
        engine.push("trades", sym="A", price=10, timestamp=1)
        engine.push("quotes", sym="A", bid=9, timestamp=2)
        engine.push("quotes", sym="B", bid=1, timestamp=3)
        engine.push("trades", sym="B", price=2, timestamp=4)
        assert q.delivered == 2

    def test_join_with_selections(self):
        engine = fresh_engine()
        q = engine.add_query(
            ["trades", "quotes"],
            And(ColumnComparison("trades.sym", "==", "quotes.sym"),
                Comparison("trades.price", ">", 5)))
        engine.push("trades", sym="A", price=1, timestamp=1)   # fails filter
        engine.push("trades", sym="A", price=10, timestamp=2)
        engine.push("quotes", sym="A", bid=0, timestamp=3)
        assert q.delivered == 1
        assert q.results[0]["trades.price"] == 10

    def test_join_and_selection_queries_coexist(self):
        engine = fresh_engine()
        join_q = engine.add_query(
            ["trades", "quotes"],
            ColumnComparison("trades.sym", "==", "quotes.sym"))
        sel_q = engine.add_query(["trades"], Comparison("price", ">", 0))
        engine.push("trades", sym="A", price=10, timestamp=1)
        engine.push("quotes", sym="A", bid=9, timestamp=2)
        assert sel_q.delivered == 1
        assert join_q.delivered == 1
        # the selection query never receives composite tuples
        assert all(t.sources == frozenset({"trades"})
                   for t in sel_q.results)

    def test_join_band_residual(self):
        engine = fresh_engine()
        q = engine.add_query(
            ["trades", "quotes"],
            And(ColumnComparison("trades.sym", "==", "quotes.sym"),
                ColumnComparison("quotes.bid", "<", "trades.price")))
        engine.push("trades", sym="A", price=10, timestamp=1)
        engine.push("quotes", sym="A", bid=5, timestamp=2)    # bid < price
        engine.push("quotes", sym="A", bid=50, timestamp=3)   # bid > price
        assert q.delivered == 1

    def test_queries_with_different_join_columns(self):
        schema_x = Schema.of("x", "k1", "k2")
        schema_y = Schema.of("y", "k1", "k2")
        engine = CACQEngine()
        engine.register_stream(schema_x)
        engine.register_stream(schema_y)
        q1 = engine.add_query(["x", "y"],
                              ColumnComparison("x.k1", "==", "y.k1"))
        q2 = engine.add_query(["x", "y"],
                              ColumnComparison("x.k2", "==", "y.k2"))
        engine.push("x", k1=1, k2=100, timestamp=1)
        engine.push("y", k1=1, k2=200, timestamp=2)   # matches q1 only
        engine.push("y", k1=9, k2=100, timestamp=3)   # matches q2 only
        assert q1.delivered == 1
        assert q2.delivered == 1

    def test_shared_stems_across_join_queries(self):
        engine = fresh_engine()
        engine.add_query(["trades", "quotes"],
                         ColumnComparison("trades.sym", "==", "quotes.sym"))
        engine.add_query(
            ["trades", "quotes"],
            And(ColumnComparison("trades.sym", "==", "quotes.sym"),
                Comparison("trades.price", ">", 100)))
        # one physical SteM per stream, not per query
        assert set(engine.stems) == {"trades", "quotes"}

    def test_stats_shape(self):
        engine = fresh_engine()
        engine.add_query(["trades"], Comparison("price", ">", 0))
        engine.push("trades", sym="A", price=1)
        stats = engine.stats()
        assert stats["queries"] == 1
        assert stats["tuples_in"] == 1


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.sampled_from([">", "<", "==", ">="]),
                          st.integers(0, 50)),
                min_size=1, max_size=12),
       st.lists(st.integers(0, 60), min_size=1, max_size=40),
       st.integers(0, 100))
def test_cacq_equals_per_query_baseline(preds, prices, seed):
    """Property: CACQ's shared execution delivers exactly what the
    unshared per-query engine delivers, for random selection workloads."""
    cacq = CACQEngine()
    cacq.register_stream(TRADES)
    per = PerQueryEngine()
    per.register_stream(TRADES)
    cacq_queries = []
    per_queries = []
    for op, value in preds:
        pred = Comparison("price", op, value)
        cacq_queries.append(cacq.add_query(["trades"], pred))
        per_queries.append(per.add_query(["trades"], pred))
    rng = random.Random(seed)
    syms = ["A", "B", "C"]
    for i, price in enumerate(prices):
        sym = rng.choice(syms)
        cacq.push("trades", sym=sym, price=price, timestamp=i)
        per.push("trades", sym=sym, price=price, timestamp=i)
    for cq, pq in zip(cacq_queries, per_queries):
        assert values_of(cq.results) == values_of(pq.results)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.tuples(st.booleans(), st.integers(0, 3),
                          st.integers(0, 30)),
                min_size=2, max_size=30),
       st.integers(0, 40))
def test_cacq_join_equals_per_query_baseline(arrivals, threshold):
    """Property: shared SteM joins deliver the same results as per-query
    symmetric joins."""
    pred = And(ColumnComparison("trades.sym", "==", "quotes.sym"),
               Comparison("trades.price", ">", threshold))
    cacq = CACQEngine()
    cacq.register_stream(TRADES)
    cacq.register_stream(QUOTES)
    per = PerQueryEngine()
    per.register_stream(TRADES)
    per.register_stream(QUOTES)
    cq = cacq.add_query(["trades", "quotes"], pred)
    pq = per.add_query(["trades", "quotes"], pred)
    for i, (is_trade, key, value) in enumerate(arrivals):
        if is_trade:
            cacq.push("trades", sym=key, price=value, timestamp=i)
            per.push("trades", sym=key, price=value, timestamp=i)
        else:
            cacq.push("quotes", sym=key, bid=value, timestamp=i)
            per.push("quotes", sym=key, bid=value, timestamp=i)
    assert values_of(cq.results) == values_of(pq.results)
