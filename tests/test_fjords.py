"""Unit tests for the Module contract and the Fjord graph/scheduler."""

import pytest

from repro.core.tuples import Punctuation, Schema, Tuple
from repro.errors import PlanError
from repro.fjords.fjord import Fjord
from repro.fjords.module import (CollectingSink, Module, SinkModule,
                                 SourceModule, StepResult)
from repro.fjords.queues import PullQueue, PushQueue
from tests.conftest import ListFeed

S = Schema.of("S", "v")


def rows(n):
    return [S.make(i, timestamp=i) for i in range(n)]


class Doubler(Module):
    def process(self, item, port):
        out = Tuple(item.schema, tuple(v * 2 for v in item.values),
                    timestamp=item.timestamp)
        return (out,)


class TestModuleContract:
    def test_process_pipeline(self):
        f = Fjord()
        sink = CollectingSink()
        f.connect(ListFeed(rows(5)), Doubler())
        f.connect(f.module("Doubler"), sink)
        f.run_until_finished()
        assert [t["v"] for t in sink.results] == [0, 2, 4, 6, 8]

    def test_eos_propagates(self):
        f = Fjord()
        sink = CollectingSink()
        f.connect(ListFeed(rows(1)), sink)
        f.run_until_finished()
        assert sink.finished

    def test_unbound_port_rejected(self):
        f = Fjord()
        f.add(Doubler())
        with pytest.raises(PlanError, match="unbound"):
            f.run()

    def test_bind_out_of_range_port(self):
        m = Doubler()
        with pytest.raises(PlanError):
            m.bind_input(3, PushQueue())
        with pytest.raises(PlanError):
            m.bind_output(3, PushQueue())

    def test_duplicate_module_names_rejected(self):
        f = Fjord()
        f.add(Doubler())
        with pytest.raises(PlanError, match="duplicate"):
            f.add(Doubler())

    def test_module_lookup(self):
        f = Fjord()
        d = Doubler()
        f.add(d)
        assert f.module("Doubler") is d
        with pytest.raises(PlanError):
            f.module("nope")

    def test_tuples_in_out_counters(self):
        f = Fjord()
        d = Doubler()
        f.connect(ListFeed(rows(4)), d)
        f.connect(d, CollectingSink())
        f.run_until_finished()
        assert d.tuples_in == 4
        assert d.tuples_out == 4

    def test_on_end_of_stream_flush(self):
        class Buffering(Module):
            def __init__(self):
                super().__init__("buf")
                self._held = []

            def process(self, item, port):
                self._held.append(item)
                return ()

            def on_end_of_stream(self):
                return self._held

        f = Fjord()
        sink = CollectingSink()
        buf = Buffering()
        f.connect(ListFeed(rows(3)), buf)
        f.connect(buf, sink)
        f.run_until_finished()
        assert len(sink.results) == 3

    def test_punctuation_forwards_by_default(self):
        f = Fjord()
        sink = CollectingSink()
        d = Doubler()
        feed = ListFeed(rows(2) + [Punctuation.window_boundary()] + rows(1))
        f.connect(feed, d)
        f.connect(d, sink)
        f.run_until_finished()
        kinds = [type(x).__name__ for x in sink.log]
        assert "Punctuation" in kinds


class TestSinks:
    def test_collecting_sink_windows(self):
        sink = CollectingSink()
        f = Fjord()
        feed = ListFeed(rows(2) + [Punctuation.window_boundary()] +
                        rows(3) + [Punctuation.window_boundary()])
        f.connect(feed, sink)
        f.run_until_finished()
        assert [len(w) for w in sink.windows()] == [2, 3]

    def test_collecting_sink_trailing_open_window(self):
        sink = CollectingSink()
        f = Fjord()
        f.connect(ListFeed(rows(2) + [Punctuation.window_boundary()] +
                           rows(1)), sink)
        f.run_until_finished()
        assert [len(w) for w in sink.windows()] == [2, 1]

    def test_sink_module_results(self):
        sink = SinkModule()
        f = Fjord()
        f.connect(ListFeed(rows(3)), sink)
        f.run_until_finished()
        assert len(sink.results) == 3


class TestScheduler:
    def test_run_returns_pass_count(self):
        f = Fjord()
        f.connect(ListFeed(rows(10), chunk=2), CollectingSink())
        passes = f.run()
        assert passes >= 2

    def test_run_until_finished_raises_on_stall(self):
        class Stuck(SourceModule):
            def generate(self, batch):
                return ()        # never exhausts, never produces

        f = Fjord()
        f.connect(Stuck("stuck"), CollectingSink())
        with pytest.raises(PlanError, match="did not finish"):
            f.run_until_finished(max_steps=10)

    def test_queue_stats_exposed(self):
        f = Fjord()
        f.connect(ListFeed(rows(3)), CollectingSink())
        f.run_until_finished()
        stats = f.queue_stats()
        assert len(stats) == 1
        (entry,) = stats.values()
        assert entry["enqueued"] >= 3   # 3 tuples + EOS

    def test_pull_queue_wiring(self):
        # A consumer on a pull queue drives the producer via the pump.
        f = Fjord()
        feed = ListFeed(rows(3))
        sink = CollectingSink()
        q = f.connect(feed, sink, queue_cls=PullQueue)
        q.producer = lambda: feed.run_once().worked
        f.run_until_finished()
        assert len(sink.results) == 3

    def test_step_result_constants(self):
        assert StepResult.DONE.finished
        assert StepResult.BUSY.worked and not StepResult.BUSY.finished
        assert not StepResult.IDLE.worked
