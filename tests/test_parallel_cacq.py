"""Tests for cluster-parallel CACQ over Flux (§4.3's cluster roadmap)."""

import random

import pytest

from repro.core.cacq import CACQEngine
from repro.core.tuples import Schema
from repro.errors import QueryError
from repro.flux.cluster import Cluster
from repro.flux.parallel_cacq import CACQPartitionState, ParallelCACQ
from repro.query.predicates import And, ColumnComparison, Comparison

TRADES = Schema.of("trades", "sym", "price")
QUOTES = Schema.of("quotes", "sym", "bid")


def make_cluster(n=4, speed=60):
    cluster = Cluster()
    for i in range(n):
        cluster.add_machine(f"m{i}", speed=speed)
    return cluster


def workload(n=1200, seed=5):
    rng = random.Random(seed)
    syms = [f"s{i}" for i in range(16)]
    rows = []
    for i in range(n):
        if rng.random() < 0.6:
            rows.append(TRADES.make(rng.choice(syms),
                                    float(rng.randrange(100)),
                                    timestamp=i))
        else:
            rows.append(QUOTES.make(rng.choice(syms),
                                    float(rng.randrange(100)),
                                    timestamp=i))
    return rows


def single_engine_reference(rows, specs):
    engine = CACQEngine()
    engine.register_stream(TRADES)
    engine.register_stream(QUOTES)
    queries = [engine.add_query(list(streams), predicate)
               for streams, predicate in specs]
    for t in rows:
        (stream,) = t.sources
        clone = t.schema.make(*t.values, timestamp=t.timestamp)
        engine.push_tuple(stream, clone)
    return [q.delivered for q in queries]


SPECS = [
    (("trades",), Comparison("price", ">", 50)),
    (("trades",), And(Comparison("price", ">", 20),
                      Comparison("price", "<", 60))),
    (("trades", "quotes"),
     ColumnComparison("trades.sym", "==", "quotes.sym")),
    (("trades", "quotes"),
     And(ColumnComparison("trades.sym", "==", "quotes.sym"),
         Comparison("trades.price", ">", 70))),
]


def build_parallel(rows, **kwargs):
    engine = ParallelCACQ(make_cluster(), partition_column="sym",
                          **kwargs)
    engine.register_stream(TRADES)
    engine.register_stream(QUOTES)
    for streams, predicate in SPECS:
        engine.add_query(streams, predicate)
    i = 0
    while i < len(rows):
        engine.tick(rows[i:i + 100])
        i += 100
    engine.drain()
    return engine


class TestCorrectness:
    def test_matches_single_engine_selections_and_joins(self):
        rows = workload()
        reference = single_engine_reference(workload(), SPECS)
        engine = build_parallel(rows)
        assert engine.delivered_counts() == reference

    def test_partition_column_required_on_every_stream(self):
        engine = ParallelCACQ(make_cluster(), partition_column="sym")
        with pytest.raises(QueryError, match="partition column"):
            engine.register_stream(Schema.of("weird", "other"))

    def test_unknown_stream_in_query(self):
        engine = ParallelCACQ(make_cluster(), partition_column="sym")
        engine.register_stream(TRADES)
        with pytest.raises(QueryError, match="unknown stream"):
            engine.add_query(["ghost"], Comparison("price", ">", 0))

    def test_registration_frozen_after_start(self):
        rows = workload(100)
        engine = build_parallel(rows)
        with pytest.raises(QueryError, match="already running"):
            engine.add_query(["trades"], Comparison("price", ">", 0))
        with pytest.raises(QueryError, match="already running"):
            engine.register_stream(Schema.of("late", "sym", "v"))


class TestFailover:
    def test_replicated_crash_preserves_all_deliveries(self):
        rows = workload()
        reference = single_engine_reference(workload(), SPECS)
        engine = ParallelCACQ(make_cluster(), partition_column="sym",
                              replication=1)
        engine.register_stream(TRADES)
        engine.register_stream(QUOTES)
        for streams, predicate in SPECS:
            engine.add_query(streams, predicate)
        i = 0
        tick = 0
        while i < len(rows):
            engine.tick(rows[i:i + 100])
            i += 100
            tick += 1
            if tick == 4:
                engine.fail_machine("m1")
        engine.drain()
        assert engine.delivered_counts() == reference
        assert engine.flux.lost_tuples == 0

    def test_snapshot_roundtrip_preserves_join_state(self):
        state = CACQPartitionState([TRADES, QUOTES], SPECS)
        state.apply(TRADES.make("a", 80.0, timestamp=1))
        state.apply(TRADES.make("a", 30.0, timestamp=2))
        clone = CACQPartitionState.from_snapshot(state.snapshot())
        # a quote arriving at the clone still joins the earlier trades
        clone.apply(QUOTES.make("a", 10.0, timestamp=3))
        # q2 (plain join): both trades match; q3 needs price>70: one
        assert clone.delivered()[2] == 2
        assert clone.delivered()[3] == 1
        # selection deliveries carried over from before the snapshot
        assert clone.delivered()[0] == 1
        # 2 applied pre-snapshot + 1 applied on the clone
        assert clone.applied == 3

    def test_rebalancing_keeps_answers(self):
        rows = workload(2000)
        reference = single_engine_reference(workload(2000), SPECS)
        cluster = Cluster()
        for i, speed in enumerate((10, 80, 80, 80)):
            cluster.add_machine(f"m{i}", speed=speed)
        engine = ParallelCACQ(cluster, partition_column="sym",
                              rebalance_every=5)
        engine.register_stream(TRADES)
        engine.register_stream(QUOTES)
        for streams, predicate in SPECS:
            engine.add_query(streams, predicate)
        i = 0
        while i < len(rows):
            engine.tick(rows[i:i + 150])
            i += 150
        engine.drain()
        assert engine.delivered_counts() == reference
