"""Tests for the Eddy: routing correctness under every policy, join
equivalence with ground truth, lineage consistency, and the batching
knobs.  The key invariant everywhere: *an eddy's result set must not
depend on the routing policy* — adaptivity changes cost, never answers.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.eddy import Eddy, FilterOperator, SteMOperator
from repro.core.routing import (BatchingDirective, FixedPolicy,
                                GreedySelectivityPolicy, LotteryPolicy,
                                RandomPolicy)
from repro.core.stem import SteM
from repro.core.tuples import Schema
from repro.errors import PlanError
from repro.fjords.fjord import Fjord
from repro.fjords.module import CollectingSink
from repro.query.predicates import ColumnComparison, Comparison
from tests.conftest import ListFeed, reference_join, values_of

S = Schema.of("S", "k", "x")
T = Schema.of("T", "k", "y")
U = Schema.of("U", "k", "z")
JOIN_ST = ColumnComparison("S.k", "==", "T.k")
JOIN_TU = ColumnComparison("T.k", "==", "U.k")
JOIN_SU = ColumnComparison("S.k", "==", "U.k")


def run_eddy(operators, rows, output_sources, policy=None, batching=None,
             dedupe=None):
    eddy = Eddy(operators, output_sources=output_sources, policy=policy,
                batching=batching or BatchingDirective(1),
                dedupe_output=dedupe)
    f = Fjord()
    sink = CollectingSink()
    f.connect(ListFeed(rows), eddy)
    f.connect(eddy, sink)
    f.run_until_finished()
    return sink, eddy


def two_stream_rows(n=12, seed=1):
    import random
    rng = random.Random(seed)
    rows = []
    for i in range(n):
        rows.append(S.make(rng.randrange(4), i, timestamp=i))
        rows.append(T.make(rng.randrange(4), i * 10, timestamp=i))
    return rows


ALL_POLICIES = [
    RandomPolicy(seed=7),
    FixedPolicy(["stem[S]", "stem[T]"]),
    LotteryPolicy(seed=7),
    GreedySelectivityPolicy(),
]


class TestFilterOnlyEddy:
    def test_single_filter(self):
        rows = [S.make(i, i, timestamp=i) for i in range(10)]
        sink, _ = run_eddy([FilterOperator(Comparison("k", ">", 5))],
                           rows, {"S"})
        assert len(sink.results) == 4

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_conjunction_policy_independent(self, policy):
        rows = [S.make(i % 4, i % 3, timestamp=i) for i in range(60)]
        ops = [FilterOperator(Comparison("k", ">", 0), name="f1"),
               FilterOperator(Comparison("x", ">", 0), name="f2")]
        sink, _ = run_eddy(ops, rows, {"S"}, policy=policy)
        expected = sum(1 for i in range(60) if i % 4 > 0 and i % 3 > 0)
        assert len(sink.results) == expected

    def test_filter_marks_dead(self):
        op = FilterOperator(Comparison("k", ">", 5))
        t = S.make(1, 1)
        op.handle(t)
        assert t.dead

    def test_selectivity_ewma_reacts_to_drift(self):
        op = FilterOperator(Comparison("k", ">", 0))
        for _ in range(200):
            op.handle(S.make(1, 0))      # all pass
        high = op.observed_selectivity()
        for _ in range(200):
            op.handle(S.make(0, 0))      # all fail
        assert high > 0.9
        assert op.observed_selectivity() < 0.1


class TestTwoWayJoin:
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_join_matches_reference_all_policies(self, policy):
        rows = two_stream_rows()
        stems = [SteM("S", ["S.k"]), SteM("T", ["T.k"])]
        ops = [SteMOperator(stems[0], [JOIN_ST]),
               SteMOperator(stems[1], [JOIN_ST])]
        sink, _ = run_eddy(ops, rows, {"S", "T"}, policy=policy)
        s_rows = [r for r in rows if "S" in r.sources]
        t_rows = [r for r in rows if "T" in r.sources]
        expected = len(reference_join(s_rows, t_rows, JOIN_ST))
        assert len(sink.results) == expected

    @pytest.mark.parametrize("seed", range(6))
    def test_join_with_filter_any_order(self, seed):
        rows = two_stream_rows(seed=seed)
        stems = [SteM("S", ["S.k"]), SteM("T", ["T.k"])]
        ops = [SteMOperator(stems[0], [JOIN_ST]),
               SteMOperator(stems[1], [JOIN_ST]),
               FilterOperator(Comparison("S.x", ">", 3))]
        sink, _ = run_eddy(ops, rows, {"S", "T"},
                           policy=RandomPolicy(seed=seed))
        s_rows = [r for r in rows if "S" in r.sources]
        t_rows = [r for r in rows if "T" in r.sources]
        expected = reference_join(s_rows, t_rows, JOIN_ST,
                                  extra=Comparison("S.x", ">", 3))
        assert values_of(sink.results) == expected

    def test_base_tuples_never_emitted(self):
        rows = two_stream_rows()
        stems = [SteM("S"), SteM("T")]
        ops = [SteMOperator(stems[0], [JOIN_ST]),
               SteMOperator(stems[1], [JOIN_ST])]
        sink, _ = run_eddy(ops, rows, {"S", "T"})
        assert all(t.sources == frozenset({"S", "T"})
                   for t in sink.results)

    def test_build_constraint_runs_first(self):
        stem_op = SteMOperator(SteM("S"), [JOIN_ST])
        assert stem_op.must_run_first(S.make(1, 2))
        assert not stem_op.must_run_first(T.make(1, 2))


class TestThreeWayJoin:
    @pytest.mark.parametrize("policy", [RandomPolicy(seed=3),
                                        LotteryPolicy(seed=3)])
    def test_three_way_equals_reference(self, policy):
        import random
        rng = random.Random(5)
        rows = []
        for i in range(8):
            rows.append(S.make(rng.randrange(3), i, timestamp=i))
            rows.append(T.make(rng.randrange(3), i, timestamp=i))
            rows.append(U.make(rng.randrange(3), i, timestamp=i))
        stems = [SteM("S", ["S.k"]), SteM("T", ["T.k"]), SteM("U", ["U.k"])]
        ops = [SteMOperator(stems[0], [JOIN_ST, JOIN_SU]),
               SteMOperator(stems[1], [JOIN_ST, JOIN_TU]),
               SteMOperator(stems[2], [JOIN_TU, JOIN_SU])]
        sink, eddy = run_eddy(ops, rows, {"S", "T", "U"}, policy=policy)
        # Ground truth: nested loops.
        s_rows = [r for r in rows if "S" in r.sources]
        t_rows = [r for r in rows if "T" in r.sources]
        u_rows = [r for r in rows if "U" in r.sources]
        expected = 0
        for a in s_rows:
            for b in t_rows:
                for c in u_rows:
                    if a["k"] == b["k"] == c["k"]:
                        expected += 1
        assert len(sink.results) == expected
        # every result spans all three sources exactly once
        seen = {tuple(sorted(t.base_id_set())) for t in sink.results}
        assert len(seen) == len(sink.results)

    def test_output_dedup_enabled_automatically_for_three_stems(self):
        stems = [SteM("S"), SteM("T"), SteM("U")]
        ops = [SteMOperator(stems[0], [JOIN_ST, JOIN_SU]),
               SteMOperator(stems[1], [JOIN_ST, JOIN_TU]),
               SteMOperator(stems[2], [JOIN_TU, JOIN_SU])]
        eddy = Eddy(ops, output_sources={"S", "T", "U"})
        assert eddy.dedupe_output
        two = Eddy(ops[:2], output_sources={"S", "T"})
        assert not two.dedupe_output


class TestBatchingKnobs:
    def test_batching_reduces_routing_decisions(self):
        rows = [S.make(i % 4, i % 3, timestamp=i) for i in range(400)]
        ops_a = [FilterOperator(Comparison("k", ">", 0), name="f1"),
                 FilterOperator(Comparison("x", ">", 0), name="f2")]
        _, per_tuple = run_eddy(ops_a, rows, {"S"},
                                policy=LotteryPolicy(seed=1),
                                batching=BatchingDirective(1))
        ops_b = [FilterOperator(Comparison("k", ">", 0), name="f1"),
                 FilterOperator(Comparison("x", ">", 0), name="f2")]
        _, batched = run_eddy(ops_b, rows, {"S"},
                              policy=LotteryPolicy(seed=1),
                              batching=BatchingDirective(64))
        assert batched.routing_decisions < per_tuple.routing_decisions / 4

    def test_batching_preserves_results(self):
        rows = [S.make(i % 4, i % 3, timestamp=i) for i in range(200)]
        results = []
        for batch in (1, 16, 128):
            ops = [FilterOperator(Comparison("k", ">", 0), name="f1"),
                   FilterOperator(Comparison("x", ">", 0), name="f2")]
            sink, _ = run_eddy(ops, rows, {"S"},
                               policy=LotteryPolicy(seed=2),
                               batching=BatchingDirective(batch))
            results.append(len(sink.results))
        assert results[0] == results[1] == results[2]

    def test_fix_sequence_mode(self):
        rows = [S.make(i % 4, i % 3, timestamp=i) for i in range(200)]
        ops = [FilterOperator(Comparison("k", ">", 0), name="f1"),
               FilterOperator(Comparison("x", ">", 0), name="f2")]
        sink, eddy = run_eddy(
            ops, rows, {"S"}, policy=LotteryPolicy(seed=2),
            batching=BatchingDirective(32, fix_sequence=True))
        expected = sum(1 for i in range(200) if i % 4 > 0 and i % 3 > 0)
        assert len(sink.results) == expected

    def test_bad_batch_size_rejected(self):
        with pytest.raises(PlanError):
            BatchingDirective(0)


class TestEddyConstruction:
    def test_needs_operators(self):
        with pytest.raises(PlanError):
            Eddy([], output_sources={"S"})

    def test_bitmap_width_cap(self):
        ops = [FilterOperator(Comparison("k", ">", i), name=f"f{i}")
               for i in range(63)]
        with pytest.raises(PlanError, match="62"):
            Eddy(ops, output_sources={"S"})

    def test_operator_lookup(self):
        op = FilterOperator(Comparison("k", ">", 1), name="f1")
        eddy = Eddy([op], output_sources={"S"})
        assert eddy.operator("f1") is op
        with pytest.raises(PlanError):
            eddy.operator("nope")

    def test_stats_shape(self):
        rows = [S.make(i, i, timestamp=i) for i in range(5)]
        sink, eddy = run_eddy([FilterOperator(Comparison("k", ">", 2))],
                              rows, {"S"})
        stats = eddy.stats()
        assert stats["tuples_routed"] == 5
        assert "policy" in stats

    def test_evict_stems_before(self):
        stem = SteM("S")
        op = SteMOperator(stem, [JOIN_ST])
        eddy = Eddy([op], output_sources={"S", "T"})
        for ts in range(6):
            stem.build(S.make(1, ts, timestamp=ts))
        assert eddy.evict_stems_before(3) == 3
        assert len(stem) == 3


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.booleans(), st.integers(0, 3),
                          st.integers(0, 3)),
                min_size=1, max_size=40),
       st.integers(0, 5))
def test_eddy_join_policy_invariance(arrivals, seed):
    """Property: eddy join output under a random policy equals the
    nested-loop reference for arbitrary interleavings."""
    rows = []
    for i, (is_s, k, v) in enumerate(arrivals):
        if is_s:
            rows.append(S.make(k, v, timestamp=i))
        else:
            rows.append(T.make(k, v * 10, timestamp=i))
    stems = [SteM("S", ["S.k"]), SteM("T", ["T.k"])]
    ops = [SteMOperator(stems[0], [JOIN_ST]),
           SteMOperator(stems[1], [JOIN_ST])]
    sink, _ = run_eddy(ops, rows, {"S", "T"}, policy=RandomPolicy(seed=seed))
    s_rows = [r for r in rows if "S" in r.sources]
    t_rows = [r for r in rows if "T" in r.sources]
    expected = len(reference_join(s_rows, t_rows, JOIN_ST))
    assert len(sink.results) == expected
