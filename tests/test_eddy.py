"""Tests for the Eddy: routing correctness under every policy, join
equivalence with ground truth, lineage consistency, and the batching
knobs.  The key invariant everywhere: *an eddy's result set must not
depend on the routing policy* — adaptivity changes cost, never answers.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.eddy import Eddy, FilterOperator, SteMOperator
from repro.core.routing import (BatchingDirective, FixedPolicy,
                                GreedySelectivityPolicy, LotteryPolicy,
                                RandomPolicy)
from repro.core.stem import SteM
from repro.core.tuples import Schema
from repro.errors import PlanError
from repro.fjords.fjord import Fjord
from repro.fjords.module import CollectingSink
from repro.query.predicates import ColumnComparison, Comparison
from tests.conftest import ListFeed, reference_join, values_of

S = Schema.of("S", "k", "x")
T = Schema.of("T", "k", "y")
U = Schema.of("U", "k", "z")
JOIN_ST = ColumnComparison("S.k", "==", "T.k")
JOIN_TU = ColumnComparison("T.k", "==", "U.k")
JOIN_SU = ColumnComparison("S.k", "==", "U.k")


def run_eddy(operators, rows, output_sources, policy=None, batching=None,
             dedupe=None):
    eddy = Eddy(operators, output_sources=output_sources, policy=policy,
                batching=batching or BatchingDirective(1),
                dedupe_output=dedupe)
    f = Fjord()
    sink = CollectingSink()
    f.connect(ListFeed(rows), eddy)
    f.connect(eddy, sink)
    f.run_until_finished()
    return sink, eddy


def two_stream_rows(n=12, seed=1):
    import random
    rng = random.Random(seed)
    rows = []
    for i in range(n):
        rows.append(S.make(rng.randrange(4), i, timestamp=i))
        rows.append(T.make(rng.randrange(4), i * 10, timestamp=i))
    return rows


ALL_POLICIES = [
    RandomPolicy(seed=7),
    FixedPolicy(["stem[S]", "stem[T]"]),
    LotteryPolicy(seed=7),
    GreedySelectivityPolicy(),
]


class TestFilterOnlyEddy:
    def test_single_filter(self):
        rows = [S.make(i, i, timestamp=i) for i in range(10)]
        sink, _ = run_eddy([FilterOperator(Comparison("k", ">", 5))],
                           rows, {"S"})
        assert len(sink.results) == 4

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_conjunction_policy_independent(self, policy):
        rows = [S.make(i % 4, i % 3, timestamp=i) for i in range(60)]
        ops = [FilterOperator(Comparison("k", ">", 0), name="f1"),
               FilterOperator(Comparison("x", ">", 0), name="f2")]
        sink, _ = run_eddy(ops, rows, {"S"}, policy=policy)
        expected = sum(1 for i in range(60) if i % 4 > 0 and i % 3 > 0)
        assert len(sink.results) == expected

    def test_filter_marks_dead(self):
        op = FilterOperator(Comparison("k", ">", 5))
        t = S.make(1, 1)
        op.handle(t)
        assert t.dead

    def test_selectivity_ewma_reacts_to_drift(self):
        op = FilterOperator(Comparison("k", ">", 0))
        for _ in range(200):
            op.handle(S.make(1, 0))      # all pass
        high = op.observed_selectivity()
        for _ in range(200):
            op.handle(S.make(0, 0))      # all fail
        assert high > 0.9
        assert op.observed_selectivity() < 0.1


class TestTwoWayJoin:
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_join_matches_reference_all_policies(self, policy):
        rows = two_stream_rows()
        stems = [SteM("S", ["S.k"]), SteM("T", ["T.k"])]
        ops = [SteMOperator(stems[0], [JOIN_ST]),
               SteMOperator(stems[1], [JOIN_ST])]
        sink, _ = run_eddy(ops, rows, {"S", "T"}, policy=policy)
        s_rows = [r for r in rows if "S" in r.sources]
        t_rows = [r for r in rows if "T" in r.sources]
        expected = len(reference_join(s_rows, t_rows, JOIN_ST))
        assert len(sink.results) == expected

    @pytest.mark.parametrize("seed", range(6))
    def test_join_with_filter_any_order(self, seed):
        rows = two_stream_rows(seed=seed)
        stems = [SteM("S", ["S.k"]), SteM("T", ["T.k"])]
        ops = [SteMOperator(stems[0], [JOIN_ST]),
               SteMOperator(stems[1], [JOIN_ST]),
               FilterOperator(Comparison("S.x", ">", 3))]
        sink, _ = run_eddy(ops, rows, {"S", "T"},
                           policy=RandomPolicy(seed=seed))
        s_rows = [r for r in rows if "S" in r.sources]
        t_rows = [r for r in rows if "T" in r.sources]
        expected = reference_join(s_rows, t_rows, JOIN_ST,
                                  extra=Comparison("S.x", ">", 3))
        assert values_of(sink.results) == expected

    def test_base_tuples_never_emitted(self):
        rows = two_stream_rows()
        stems = [SteM("S"), SteM("T")]
        ops = [SteMOperator(stems[0], [JOIN_ST]),
               SteMOperator(stems[1], [JOIN_ST])]
        sink, _ = run_eddy(ops, rows, {"S", "T"})
        assert all(t.sources == frozenset({"S", "T"})
                   for t in sink.results)

    def test_build_constraint_runs_first(self):
        stem_op = SteMOperator(SteM("S"), [JOIN_ST])
        assert stem_op.must_run_first(S.make(1, 2))
        assert not stem_op.must_run_first(T.make(1, 2))


class TestThreeWayJoin:
    @pytest.mark.parametrize("policy", [RandomPolicy(seed=3),
                                        LotteryPolicy(seed=3)])
    def test_three_way_equals_reference(self, policy):
        import random
        rng = random.Random(5)
        rows = []
        for i in range(8):
            rows.append(S.make(rng.randrange(3), i, timestamp=i))
            rows.append(T.make(rng.randrange(3), i, timestamp=i))
            rows.append(U.make(rng.randrange(3), i, timestamp=i))
        stems = [SteM("S", ["S.k"]), SteM("T", ["T.k"]), SteM("U", ["U.k"])]
        ops = [SteMOperator(stems[0], [JOIN_ST, JOIN_SU]),
               SteMOperator(stems[1], [JOIN_ST, JOIN_TU]),
               SteMOperator(stems[2], [JOIN_TU, JOIN_SU])]
        sink, eddy = run_eddy(ops, rows, {"S", "T", "U"}, policy=policy)
        # Ground truth: nested loops.
        s_rows = [r for r in rows if "S" in r.sources]
        t_rows = [r for r in rows if "T" in r.sources]
        u_rows = [r for r in rows if "U" in r.sources]
        expected = 0
        for a in s_rows:
            for b in t_rows:
                for c in u_rows:
                    if a["k"] == b["k"] == c["k"]:
                        expected += 1
        assert len(sink.results) == expected
        # every result spans all three sources exactly once
        seen = {tuple(sorted(t.base_id_set())) for t in sink.results}
        assert len(seen) == len(sink.results)

    def test_output_dedup_enabled_automatically_for_three_stems(self):
        stems = [SteM("S"), SteM("T"), SteM("U")]
        ops = [SteMOperator(stems[0], [JOIN_ST, JOIN_SU]),
               SteMOperator(stems[1], [JOIN_ST, JOIN_TU]),
               SteMOperator(stems[2], [JOIN_TU, JOIN_SU])]
        eddy = Eddy(ops, output_sources={"S", "T", "U"})
        assert eddy.dedupe_output
        two = Eddy(ops[:2], output_sources={"S", "T"})
        assert not two.dedupe_output


class TestBatchingKnobs:
    def test_batching_reduces_routing_decisions(self):
        rows = [S.make(i % 4, i % 3, timestamp=i) for i in range(400)]
        ops_a = [FilterOperator(Comparison("k", ">", 0), name="f1"),
                 FilterOperator(Comparison("x", ">", 0), name="f2")]
        _, per_tuple = run_eddy(ops_a, rows, {"S"},
                                policy=LotteryPolicy(seed=1),
                                batching=BatchingDirective(1))
        ops_b = [FilterOperator(Comparison("k", ">", 0), name="f1"),
                 FilterOperator(Comparison("x", ">", 0), name="f2")]
        _, batched = run_eddy(ops_b, rows, {"S"},
                              policy=LotteryPolicy(seed=1),
                              batching=BatchingDirective(64))
        assert batched.routing_decisions < per_tuple.routing_decisions / 4

    def test_batching_preserves_results(self):
        rows = [S.make(i % 4, i % 3, timestamp=i) for i in range(200)]
        results = []
        for batch in (1, 16, 128):
            ops = [FilterOperator(Comparison("k", ">", 0), name="f1"),
                   FilterOperator(Comparison("x", ">", 0), name="f2")]
            sink, _ = run_eddy(ops, rows, {"S"},
                               policy=LotteryPolicy(seed=2),
                               batching=BatchingDirective(batch))
            results.append(len(sink.results))
        assert results[0] == results[1] == results[2]

    def test_fix_sequence_mode(self):
        rows = [S.make(i % 4, i % 3, timestamp=i) for i in range(200)]
        ops = [FilterOperator(Comparison("k", ">", 0), name="f1"),
               FilterOperator(Comparison("x", ">", 0), name="f2")]
        sink, eddy = run_eddy(
            ops, rows, {"S"}, policy=LotteryPolicy(seed=2),
            batching=BatchingDirective(32, fix_sequence=True))
        expected = sum(1 for i in range(200) if i % 4 > 0 and i % 3 > 0)
        assert len(sink.results) == expected

    def test_bad_batch_size_rejected(self):
        with pytest.raises(PlanError):
            BatchingDirective(0)


class TestEddyConstruction:
    def test_needs_operators(self):
        with pytest.raises(PlanError):
            Eddy([], output_sources={"S"})

    def test_bitmap_width_cap(self):
        ops = [FilterOperator(Comparison("k", ">", i), name=f"f{i}")
               for i in range(63)]
        with pytest.raises(PlanError, match="62"):
            Eddy(ops, output_sources={"S"})

    def test_operator_lookup(self):
        op = FilterOperator(Comparison("k", ">", 1), name="f1")
        eddy = Eddy([op], output_sources={"S"})
        assert eddy.operator("f1") is op
        with pytest.raises(PlanError):
            eddy.operator("nope")

    def test_stats_shape(self):
        rows = [S.make(i, i, timestamp=i) for i in range(5)]
        sink, eddy = run_eddy([FilterOperator(Comparison("k", ">", 2))],
                              rows, {"S"})
        stats = eddy.stats()
        assert stats["tuples_routed"] == 5
        assert "policy" in stats

    def test_evict_stems_before(self):
        stem = SteM("S")
        op = SteMOperator(stem, [JOIN_ST])
        eddy = Eddy([op], output_sources={"S", "T"})
        for ts in range(6):
            stem.build(S.make(1, ts, timestamp=ts))
        assert eddy.evict_stems_before(3) == 3
        assert len(stem) == 3


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.booleans(), st.integers(0, 3),
                          st.integers(0, 3)),
                min_size=1, max_size=40),
       st.integers(0, 5))
def test_eddy_join_policy_invariance(arrivals, seed):
    """Property: eddy join output under a random policy equals the
    nested-loop reference for arbitrary interleavings."""
    rows = []
    for i, (is_s, k, v) in enumerate(arrivals):
        if is_s:
            rows.append(S.make(k, v, timestamp=i))
        else:
            rows.append(T.make(k, v * 10, timestamp=i))
    stems = [SteM("S", ["S.k"]), SteM("T", ["T.k"])]
    ops = [SteMOperator(stems[0], [JOIN_ST]),
           SteMOperator(stems[1], [JOIN_ST])]
    sink, _ = run_eddy(ops, rows, {"S", "T"}, policy=RandomPolicy(seed=seed))
    s_rows = [r for r in rows if "S" in r.sources]
    t_rows = [r for r in rows if "T" in r.sources]
    expected = len(reference_join(s_rows, t_rows, JOIN_ST))
    assert len(sink.results) == expected


class TestVectorizedRouting:
    """process_batch and the vectorized run_once must be answer- and
    counter-equivalent to per-tuple routing."""

    def _filters(self):
        return [FilterOperator(Comparison("k", ">", 0), name="f1"),
                FilterOperator(Comparison("x", ">", 0), name="f2")]

    def test_process_batch_filters_equal_per_tuple(self):
        from repro.core.tuples import TupleBatch
        make_rows = lambda: [S.make(i % 4, i % 3, timestamp=i)
                             for i in range(60)]
        ref_ops = self._filters()
        ref = Eddy(ref_ops, output_sources={"S"},
                   policy=FixedPolicy(["f1", "f2"]))
        ref_out = []
        for t in make_rows():
            ref_out.extend(ref.process(t, 0))

        vec_ops = self._filters()
        vec = Eddy(vec_ops, output_sources={"S"},
                   policy=FixedPolicy(["f1", "f2"]),
                   batching=BatchingDirective(16, vectorize=True))
        rows = make_rows()
        vec_out = []
        for i in range(0, len(rows), 16):
            for item in vec.process_batch(
                    TupleBatch.from_tuples(rows[i:i + 16]), 0):
                vec_out.extend(item.materialize()
                               if isinstance(item, TupleBatch) else [item])
        assert values_of(vec_out) == values_of(ref_out)
        for a, b in zip(ref_ops, vec_ops):
            assert (a.seen, a.passed_count) == (b.seen, b.passed_count)
        assert vec.tuples_routed == ref.tuples_routed
        assert vec.outputs_emitted == ref.outputs_emitted
        assert vec.batches_routed == 4
        assert ref.batches_routed == 0

    def test_process_batch_join_equals_reference(self):
        from repro.core.tuples import TupleBatch
        # All of S created (and fed) before all of T, so the arrival-
        # order dedupe sees a tid order consistent with the batch order.
        s_rows = [S.make(i % 4, i, timestamp=i) for i in range(16)]
        t_rows = [T.make(i % 4, i * 10, timestamp=16 + i)
                  for i in range(16)]
        ops = [SteMOperator(SteM("S", ["S.k"]), [JOIN_ST]),
               SteMOperator(SteM("T", ["T.k"]), [JOIN_ST])]
        eddy = Eddy(ops, output_sources={"S", "T"},
                    policy=FixedPolicy(["stem[S]", "stem[T]"]),
                    batching=BatchingDirective(8, vectorize=True))
        out = []
        for group in (s_rows, t_rows):
            for i in range(0, len(group), 8):
                for item in eddy.process_batch(
                        TupleBatch.from_tuples(group[i:i + 8]), 0):
                    out.extend(item.materialize()
                               if isinstance(item, TupleBatch) else [item])
        assert values_of(out) == reference_join(s_rows, t_rows, JOIN_ST)

    def test_vectorized_run_once_through_fjord(self):
        """The vectorize knob changes scheduling, not answers, when the
        eddy runs as a Fjord module fed from queues."""
        # Routing mutates tuples in place: each run gets fresh rows.
        make_rows = lambda: [S.make(i % 4, i % 3, timestamp=i)
                             for i in range(60)]
        sink_ref, _ = run_eddy(self._filters(), make_rows(), {"S"},
                               policy=FixedPolicy(["f1", "f2"]))
        sink_vec, eddy = run_eddy(
            self._filters(), make_rows(), {"S"},
            policy=FixedPolicy(["f1", "f2"]),
            batching=BatchingDirective(16, vectorize=True))
        assert values_of(sink_vec.results) == values_of(sink_ref.results)
        assert eddy.batches_routed > 0

    def test_vectorized_run_once_join_through_fjord(self):
        stems = lambda: [SteMOperator(SteM("S", ["S.k"]), [JOIN_ST]),
                         SteMOperator(SteM("T", ["T.k"]), [JOIN_ST])]
        sink_ref, _ = run_eddy(stems(), two_stream_rows(n=12, seed=5),
                               {"S", "T"},
                               policy=FixedPolicy(["stem[S]", "stem[T]"]))
        sink_vec, _ = run_eddy(
            stems(), two_stream_rows(n=12, seed=5), {"S", "T"},
            policy=FixedPolicy(["stem[S]", "stem[T]"]),
            batching=BatchingDirective(8, vectorize=True))
        assert values_of(sink_vec.results) == values_of(sink_ref.results)

    def test_default_handle_batch_loops_over_handle(self):
        from repro.core.eddy import EddyOperator, HandleResult
        from repro.core.tuples import TupleBatch

        class DropOdd(EddyOperator):
            def applies_to(self, t):
                return True

            def handle(self, t):
                ok = t["k"] % 2 == 0
                self._observe(ok)
                return HandleResult(passed=ok)

        rows = [S.make(i, i, timestamp=i) for i in range(7)]
        op = DropOdd("dropodd")
        survivors, outputs = op.handle_batch(TupleBatch.from_tuples(rows))
        assert outputs == []
        assert [t["k"] for t in survivors.materialize()] == [0, 2, 4, 6]
        assert op.seen == 7 and op.passed_count == 4

    def test_observe_batch_equals_sequential_observe(self):
        mask = [True, False, True, True, False, True, False]
        a = FilterOperator(Comparison("k", ">", 0), name="a")
        b = FilterOperator(Comparison("k", ">", 0), name="b")
        for ok in mask:
            a._observe(ok)
        b._observe_batch(mask)
        assert (a.seen, a.passed_count) == (b.seen, b.passed_count)
        assert abs(a.observed_selectivity()
                   - b.observed_selectivity()) < 1e-12
