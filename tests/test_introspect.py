"""Tests for the routing flight recorder and live EXPLAIN [ANALYZE]
(:mod:`repro.monitor.introspect`): decision capture with evidence
snapshots, the three ordering-reconstruction tiers, the server-level
CACQ EXPLAIN, and the CLI statements that expose them.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro.monitor.introspect as introspect
import repro.monitor.tracing as tracing
from repro.cli import TelegraphShell
from repro.core.eddy import Eddy, FilterOperator, SteMOperator
from repro.core.engine import TelegraphCQServer
from repro.core.routing import (BatchingDirective, FixedPolicy,
                                LotteryPolicy)
from repro.core.stem import SteM
from repro.core.tuples import Schema
from repro.monitor.telemetry import MetricRegistry, set_registry
from repro.query.predicates import ColumnComparison, Comparison

S = Schema.of("S", "a", "k")
T = Schema.of("T", "b", "k")


def _reset_observability():
    tracing.TRACER.configure(sample_every=0, capacity=256)
    tracing.TRACER.reset()
    introspect.RECORDER.configure(capacity=512, enabled=False)
    introspect.RECORDER.clear()


@pytest.fixture(autouse=True)
def _isolated_observability():
    previous = set_registry(MetricRegistry())
    _reset_observability()
    yield
    _reset_observability()
    set_registry(previous)


def _filter_eddy(policy=None, specs=((">", 2), ("<", 90))):
    ops = [FilterOperator(Comparison("a", op, v), name=f"f{i}")
           for i, (op, v) in enumerate(specs)]
    policy = policy or FixedPolicy([op.name for op in ops])
    return Eddy(ops, output_sources={"S"}, policy=policy), ops


def _drive(eddy, n=40):
    out = []
    for i in range(n):
        out.extend(eddy.process(S.make(i, i % 3, timestamp=i), 0))
    return out


# ------------------------------------------------------ flight recorder

def test_recorder_disabled_by_default():
    eddy, _ = _filter_eddy()
    _drive(eddy)
    assert len(introspect.RECORDER) == 0
    assert introspect.RECORDER.recorded == 0


def test_recorder_captures_decisions_with_evidence():
    introspect.RECORDER.enable()
    eddy, ops = _filter_eddy()
    _drive(eddy)
    decisions = introspect.RECORDER.recent()
    assert decisions
    d = decisions[0]
    assert d.eddy == eddy._telemetry_id
    assert d.chosen in d.ready
    assert len(d.selectivity) == len(d.ready) == len(d.cost)
    assert all(0.0 <= s <= 1.0 for s in d.selectivity)
    assert d.policy == eddy.policy.describe()
    assert d.rows == 1
    doc = d.to_dict()
    assert doc["chosen"] == d.chosen and doc["ready"] == list(d.ready)


def test_recorder_snapshots_lottery_tickets():
    introspect.RECORDER.enable()
    eddy, _ = _filter_eddy(policy=LotteryPolicy(seed=7))
    _drive(eddy)
    with_tickets = [d for d in introspect.RECORDER.recent() if d.tickets]
    assert with_tickets
    d = with_tickets[0]
    assert len(d.tickets) == len(d.ready)
    assert "tickets" in d.to_dict()


def test_recorder_ring_is_bounded():
    introspect.RECORDER.configure(capacity=8, enabled=True)
    eddy, _ = _filter_eddy()
    _drive(eddy, 50)
    assert introspect.RECORDER.recorded > 8
    assert len(introspect.RECORDER) == 8


# ----------------------------------------------------- explain_eddy tiers

def test_explain_estimated_when_no_evidence():
    eddy, ops = _filter_eddy()
    report = introspect.explain_eddy(eddy)
    assert report["ordering_source"] == "estimated"
    assert len(report["orderings"]) == 1
    assert report["orderings"][0]["frequency"] == 1.0
    assert sorted(report["orderings"][0]["order"]) == \
        sorted(op.name for op in ops)


def test_explain_uses_flight_recorder_without_traces():
    introspect.RECORDER.enable()
    eddy, ops = _filter_eddy()
    _drive(eddy)
    report = introspect.explain_eddy(eddy)
    assert report["ordering_source"] == "flight-recorder"
    assert report["decisions_recorded"] == len(
        [d for d in introspect.RECORDER.recent()
         if d.eddy == eddy._telemetry_id])
    (ordering,) = report["orderings"]
    assert ordering["frequency"] == 1.0
    # FixedPolicy routes f0 before f1 every time.
    assert ordering["order"][:2] == ["f0", "f1"]


def test_explain_prefers_traces():
    tracing.configure_tracing(1)
    introspect.RECORDER.enable()
    eddy, ops = _filter_eddy()
    rows = [S.make(i, i % 3, timestamp=i) for i in range(30)]
    for t in rows:
        tracing.TRACER.maybe_start(t, "S")
        for out in eddy.process(t, 0):
            tracing.finish_item(out, "q")
    report = introspect.explain_eddy(eddy, analyze=True)
    assert report["ordering_source"] == "traces"
    total = sum(o["frequency"] for o in report["orderings"])
    assert total == pytest.approx(1.0, abs=1e-9)
    assert report["latency"]["count"] > 0
    assert report["latency"]["p95"] > 0.0


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(st.lists(st.tuples(st.sampled_from([">", "<", ">=", "<=", "!="]),
                          st.integers(0, 50)),
                min_size=1, max_size=4),
       st.integers(5, 60),
       st.booleans())
def test_explain_visits_match_data_plane_counters(specs, n_rows, traced):
    """Property: for any random filter pipeline, traced or untraced, the
    per-operator visit/passed counts EXPLAIN reports are exactly the
    data-plane counters, and ordering frequencies sum to 1."""
    _reset_observability()
    if traced:
        tracing.configure_tracing(1)
        introspect.RECORDER.enable()
    eddy, ops = _filter_eddy(specs=specs)
    for i in range(n_rows):
        t = S.make(i, i % 3, timestamp=i)
        if traced:
            tracing.TRACER.maybe_start(t, "S")
        eddy.process(t, 0)
    report = introspect.explain_eddy(eddy)
    by_name = {op.name: op for op in ops}
    assert len(report["operators"]) == len(ops)
    for entry in report["operators"]:
        op = by_name[entry["name"]]
        assert entry["visits"] == op.seen
        assert entry["passed"] == op.passed_count
        assert entry["selectivity"] == pytest.approx(
            op.observed_selectivity())
    assert sum(o["frequency"] for o in report["orderings"]) == \
        pytest.approx(1.0, abs=1e-9)
    _reset_observability()


def test_explain_join_eddy_reports_stems():
    tracing.configure_tracing(1)
    join = ColumnComparison("S.k", "==", "T.k")
    ops = [SteMOperator(SteM("S", index_columns=("S.k",)), [join],
                        name="stem_s"),
           SteMOperator(SteM("T", index_columns=("T.k",)), [join],
                        name="stem_t")]
    eddy = Eddy(ops, output_sources={"S", "T"},
                policy=FixedPolicy(["stem_s", "stem_t"]),
                batching=BatchingDirective(4))
    rows = [S.make(i, i % 4, timestamp=i) for i in range(12)]
    rows += [T.make(i, i % 4, timestamp=12 + i) for i in range(12)]
    for t in rows:
        tracing.TRACER.maybe_start(t, "S" if t.schema is S else "T")
        for out in eddy.process(t, 0):
            tracing.finish_item(out, "join")
    report = introspect.explain_eddy(eddy)
    kinds = {o["name"]: o["kind"] for o in report["operators"]}
    assert kinds == {"stem_s": "SteMOperator", "stem_t": "SteMOperator"}
    assert report["ordering_source"] == "traces"
    # Build-first constraint: every S tuple visits its home SteM first.
    for o in report["orderings"]:
        assert o["order"][0] in ("stem_s", "stem_t")


# ------------------------------------------------------------- rendering

def test_render_explain_full_report():
    tracing.configure_tracing(1)
    introspect.RECORDER.enable()
    eddy, _ = _filter_eddy()
    rows = [S.make(i, 0, timestamp=i) for i in range(20)]
    for t in rows:
        tracing.TRACER.maybe_start(t, "S")
        for out in eddy.process(t, 0):
            tracing.finish_item(out, "q")
    text = introspect.render_explain(
        introspect.explain_eddy(eddy, analyze=True))
    assert "EXPLAIN eddy (kind=eddy)" in text
    assert "dominant orderings (source=traces):" in text
    assert "operators:" in text
    assert "selectivity" in text
    assert "latency (ingress->egress, sampled):" in text
    assert "flight recorder:" in text


def test_format_seconds_scales():
    assert introspect.format_seconds(0.0) == "0"
    assert introspect.format_seconds(2.5e-6) == "2.5us"
    assert introspect.format_seconds(3.2e-3) == "3.20ms"
    assert introspect.format_seconds(1.5) == "1.500s"


# ----------------------------------------------------- server EXPLAIN

def _two_join_server():
    srv = TelegraphCQServer()
    srv.create_stream(Schema.of("a", "x", "v"))
    srv.create_stream(Schema.of("b", "x", "w"))
    srv.create_stream(Schema.of("c", "x", "y"))
    cursor = srv.submit(
        "SELECT * FROM a, b, c "
        "WHERE a.x = b.x AND b.x = c.x AND a.v > 10")
    for i in range(30):
        srv.push("a", i % 5, 5 + i, timestamp=3 * i + 1)
        srv.push("b", i % 5, i, timestamp=3 * i + 2)
        srv.push("c", i % 5, i, timestamp=3 * i + 3)
    return srv, cursor


def test_server_explain_analyze_two_join_cacq():
    """The acceptance scenario: a live 2-join CACQ query explains with
    frequencies summing to 1, selectivities equal to the shared
    structures' own observations, and a nonzero latency p95."""
    tracing.configure_tracing(1)
    srv, cursor = _two_join_server()
    report = srv.explain(cursor.cursor_id, analyze=True)

    assert report["kind"] == "continuous"
    assert report["queries_sharing"] == 1
    assert report["streams"] == {"a": 30, "b": 30, "c": 30}

    total = sum(o["frequency"] for o in report["orderings"])
    assert total == pytest.approx(1.0, abs=1e-9)
    assert len(report["orderings"]) == 3       # one per footprint stream

    engine = next(iter(srv._cacq.values()))
    by_name = {o["name"]: o for o in report["operators"]}
    gf = engine.filters[("a", "v")]
    assert abs(by_name["gf[a.v]"]["selectivity"] -
               gf.observed_selectivity()) < 1e-6
    # a.v = 5+i > 10 holds for i in 6..29: 24 of 30 arrivals.
    assert gf.observed_selectivity() == pytest.approx(0.8)
    for s in ("a", "b", "c"):
        stem = engine.stems[s]
        assert abs(by_name[f"stem[{s}]"]["selectivity"] -
                   stem.observed_hit_rate()) < 1e-6

    # Stream a's route: filter, then build, then probe its join
    # partner (the join graph is the chain a-b-c, so a probes only b
    # while b probes both neighbours).
    route_a = next(o["order"] for o in report["orderings"]
                   if "gf[a.v]" in o["order"])
    assert route_a == ["gf[a.v]", "build[a]", "probe[stem[b]]"]
    route_b = next(o["order"] for o in report["orderings"]
                   if "build[b]" in o["order"])
    assert route_b == ["build[b]", "probe[stem[a]]", "probe[stem[c]]"]

    assert report["latency"]["count"] > 0
    assert report["latency"]["p95"] > 0.0

    # The report renders without error and names the shared route.
    text = introspect.render_explain(report)
    assert "CACQ shared route" in text


def test_server_explain_closed_query():
    srv, cursor = _two_join_server()
    srv.cancel(cursor)
    report = srv.explain(cursor.cursor_id)
    assert report["operators"] == []
    assert "query is closed; no live plan" in report["notes"]


def test_server_explain_snapshot_cursor():
    srv = TelegraphCQServer()
    srv.create_table(Schema.of("emps", "name", "salary"),
                     rows=[("ada", 100), ("bob", 40)])
    cursor = srv.submit("SELECT * FROM emps WHERE salary > 50")
    report = srv.explain(cursor)
    assert report["kind"] == cursor.kind
    assert report["orderings"] == []
    assert any("predicate" in note for note in report["notes"])


def test_server_find_cursor_unknown_id():
    from repro.errors import QueryError
    srv = TelegraphCQServer()
    with pytest.raises(QueryError):
        srv.explain(999)


# ------------------------------------------------------------------ CLI

def test_cli_trace_explain_stats_session(tmp_path):
    shell = TelegraphShell()
    out = shell.run_script("""
        CREATE STREAM trades (sym, price);
        CREATE STREAM quotes (sym, bid);
        TRACE ON 1;
        SELECT * FROM trades, quotes WHERE trades.sym = quotes.sym;
        PUSH trades 'A', 10;
        PUSH quotes 'A', 9;
        PUSH quotes 'B', 1;
        EXPLAIN ANALYZE 1;
        STATS;
        TRACE OFF;
    """)
    assert "flight recorder on" in out[2]
    assert "cursor 1 open" in out[3]
    explain = out[7]
    assert "EXPLAIN cursor1 (kind=continuous)" in explain
    assert "gf" not in explain or "selectivity" in explain
    assert "dominant orderings" in explain
    assert "latency (ingress->egress, sampled):" in explain
    stats = out[8]
    assert "LATENCY (ingress->egress, sampled traces)" in stats
    assert "cursor1:" in stats
    assert out[9] == "tracing off; flight recorder off"


def test_cli_trace_dump_formats(tmp_path):
    shell = TelegraphShell()
    shell.run_script("""
        CREATE STREAM trades (sym, price);
        TRACE ON 1;
        SELECT * FROM trades WHERE price > 0;
        PUSH trades 'A', 10;
        PUSH trades 'B', 20;
    """)
    dump = shell.execute("TRACE DUMP 1;")
    assert len(dump.splitlines()) == 1
    assert json.loads(dump)["finished"] is True
    path = tmp_path / "traces.jsonl"
    assert shell.execute(f"TRACE DUMP {path};") == \
        f"wrote 2 trace(s) to {path}"
    lines = path.read_text().strip().splitlines()
    assert len(lines) == 2
    assert all(json.loads(line)["hops"] for line in lines)


def test_cli_explain_select_submits_query():
    shell = TelegraphShell()
    out = shell.run_script("""
        CREATE STREAM trades (sym, price);
        EXPLAIN SELECT * FROM trades WHERE price > 5;
    """)
    assert "kind=continuous" in out[1]
    # The submitted cursor is registered and can be explained again.
    assert "kind=continuous" in shell.execute("EXPLAIN 1;")


def test_cli_explain_errors():
    shell = TelegraphShell()
    assert shell.execute("EXPLAIN 42;") == "error: no cursor 42"
    assert shell.execute("EXPLAIN nonsense;").startswith("error:")
    assert shell.execute("TRACE SIDEWAYS;").startswith("error:")


def test_cli_trace_dump_empty():
    shell = TelegraphShell()
    assert shell.execute("TRACE DUMP;") == "(no traces)"
