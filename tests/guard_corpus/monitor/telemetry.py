"""Stub telemetry registry for the corpus: gives TCQ705's import
resolution a module ending in ``telemetry`` that defines the series
kinds and the sanctioned helpers."""


class Counter:
    def __init__(self, name, help=""):
        self.name = name


class Gauge:
    def __init__(self, name, help=""):
        self.name = name


class Histogram:
    def __init__(self, name, help=""):
        self.name = name


class Registry:
    def counter(self, name, help=""):
        return Counter(name, help)


_REGISTRY = Registry()


def get_registry():
    return _REGISTRY
