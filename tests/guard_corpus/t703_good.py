"""TCQ703 good twin: engine-path state lives on the instance."""

LOOKUP = {"a": 1, "b": 2}   # read-only at run time: never mutated


class Collector:
    def __init__(self):
        self.pending = []
        self.finished = False

    def ready(self):
        return True

    def run_once(self, quantum=None):
        self.pending.append(quantum)
        return LOOKUP.get("a")
