"""TCQ703 bad twin: a module-level container mutated on an engine path.

Two findings: a direct append from ``run_once`` and a mutation through
a local alias of the global.
"""

PENDING = []
STATS = {}


class Collector:
    def __init__(self):
        self.finished = False

    def ready(self):
        return True

    def run_once(self, quantum=None):
        PENDING.append(quantum)            # finding 1: direct mutation
        stats = STATS
        stats["passes"] = len(PENDING)     # finding 2: via local alias
        return True
