"""TCQ702 good twin: module-level callables and plain data pickle fine."""

import pickle


def ship(payload):
    return pickle.dumps(payload)


def extract_key(row):
    return row["key"]


def configure_worker():
    return ship(extract_key)


def snapshot_state(state):
    return ship({"rows": list(state)})
