"""TCQ702 bad twin: unpicklable values headed across the process boundary.

Three findings: a lambda passed into a pickling sink, a nested function
likewise, and a lambda pickled directly.
"""

import pickle


def ship(payload):
    return pickle.dumps(payload)


def configure_worker():
    return ship(lambda row: row["key"])        # finding 1


def install_handler():
    def local_handler(row):
        return row

    return ship(local_handler)                  # finding 2


def snapshot_closure():
    return pickle.dumps(lambda: 42)             # finding 3
