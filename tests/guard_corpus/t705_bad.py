"""TCQ705 bad twin: series constructed directly, invisible to scrapes.

Two findings: a from-import construction and a module-alias one.
"""

from guard_corpus.monitor import telemetry
from guard_corpus.monitor.telemetry import Counter

EVENTS = Counter("tcq_events_total")               # finding 1


def make_gauge():
    return telemetry.Gauge("tcq_depth")            # finding 2
