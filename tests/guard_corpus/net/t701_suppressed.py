"""TCQ701 suppressed: a justified inline allow silences the finding."""

import time


async def teardown(worker):
    time.sleep(0.01)  # tcq: allow[TCQ701] teardown path, loop already stopping
    return worker
