"""TCQ701 good twin: awaited primitives and non-blocking probes."""

import asyncio


async def handle_frame(frame):
    await asyncio.sleep(0)   # awaited: yields, never parks
    return frame


class Pump:
    def __init__(self, conn):
        self.conn = conn
        self.finished = False

    def ready(self):
        return True

    def run_once(self, quantum=None):
        if self.conn.poll(0):       # poll(0) is an immediate probe
            return True
        return False
