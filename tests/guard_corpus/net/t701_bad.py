"""TCQ701 bad twin: blocking calls reachable from async context.

Two findings: a direct ``time.sleep`` inside an ``async def``, and a
``.recv()`` two hops down a ``run_once`` chain (exercises the call
graph, not just the seed function).
"""

import time


async def handle_frame(frame):
    time.sleep(0.1)          # finding 1: parks the event loop
    return frame


def _pull(conn):
    return conn.recv()       # finding 2: sync IO, reachable from run_once


def _relay(conn):
    return _pull(conn)


class Pump:
    def __init__(self, conn):
        self.conn = conn
        self.finished = False

    def ready(self):
        return True

    def run_once(self, quantum=None):
        return _relay(self.conn)
