"""TCQ704 good twin: asyncio inside a ``net`` package is the front door."""

import asyncio


async def serve(handler):
    server = await asyncio.start_server(handler, "127.0.0.1", 0)
    return server
