"""TCQ704 bad twin: asyncio leaks outside the net front door."""

import asyncio


def drain(tasks):
    return asyncio.gather(*tasks)
