"""TCQ705 good twin: series come from the registry helpers."""

from guard_corpus.monitor.telemetry import get_registry

EVENTS = get_registry().counter("tcq_events_total", "corpus events")


def make_counter():
    return get_registry().counter("tcq_made_total", "made here")
