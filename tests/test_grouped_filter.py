"""Tests for grouped filters, including equivalence with the naive
per-query bank over random predicate workloads."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.grouped_filter import GroupedFilter, NaiveFilterBank
from repro.errors import QueryError
from repro.query.predicates import Comparison


class TestGroupedFilter:
    def test_wrong_attribute_rejected(self):
        gf = GroupedFilter("price")
        with pytest.raises(QueryError):
            gf.add(Comparison("volume", ">", 1), 0)

    def test_equality(self):
        gf = GroupedFilter("sym")
        gf.add(Comparison("sym", "==", "MSFT"), 0)
        gf.add(Comparison("sym", "==", "IBM"), 1)
        assert gf.matching("MSFT") == {0}
        assert gf.matching("IBM") == {1}
        assert gf.matching("AAPL") == set()

    def test_inequality(self):
        gf = GroupedFilter("sym")
        gf.add(Comparison("sym", "!=", "MSFT"), 0)
        assert gf.matching("IBM") == {0}
        assert gf.matching("MSFT") == set()

    def test_greater_than_prefix(self):
        gf = GroupedFilter("p")
        for i, threshold in enumerate([10, 20, 30]):
            gf.add(Comparison("p", ">", threshold), i)
        assert gf.matching(25) == {0, 1}
        assert gf.matching(5) == set()
        assert gf.matching(31) == {0, 1, 2}
        assert gf.matching(20) == {0}      # strict

    def test_ge_includes_boundary(self):
        gf = GroupedFilter("p")
        gf.add(Comparison("p", ">=", 20), 0)
        assert gf.matching(20) == {0}
        assert gf.matching(19.99) == set()

    def test_less_than_suffix(self):
        gf = GroupedFilter("p")
        gf.add(Comparison("p", "<", 10), 0)
        gf.add(Comparison("p", "<", 20), 1)
        assert gf.matching(15) == {1}
        assert gf.matching(5) == {0, 1}
        assert gf.matching(10) == {1}      # strict

    def test_le_includes_boundary(self):
        gf = GroupedFilter("p")
        gf.add(Comparison("p", "<=", 10), 0)
        assert gf.matching(10) == {0}
        assert gf.matching(10.01) == set()

    def test_multi_factor_range_per_query(self):
        """A query registering 10 < p < 20 matches only when BOTH factors
        hold."""
        gf = GroupedFilter("p")
        gf.add(Comparison("p", ">", 10), 0)
        gf.add(Comparison("p", "<", 20), 0)
        assert gf.matching(15) == {0}
        assert gf.matching(25) == set()
        assert gf.matching(5) == set()

    def test_remove_query(self):
        gf = GroupedFilter("p")
        gf.add(Comparison("p", ">", 10), 0)
        gf.add(Comparison("p", "==", 5), 1)
        gf.remove_query(0)
        assert gf.matching(50) == set()
        assert gf.matching(5) == {1}
        assert gf.registered_queries == {1}
        assert gf.registered_mask == 0b10

    def test_remove_unknown_is_noop(self):
        gf = GroupedFilter("p")
        gf.remove_query(99)

    def test_len_counts_factors(self):
        gf = GroupedFilter("p")
        gf.add(Comparison("p", ">", 10), 0)
        gf.add(Comparison("p", "<", 20), 0)
        assert len(gf) == 2

    def test_registered_mask_incremental(self):
        gf = GroupedFilter("p")
        gf.add(Comparison("p", ">", 1), 3)
        assert gf.registered_mask == 1 << 3

    def test_string_thresholds(self):
        gf = GroupedFilter("sym")
        gf.add(Comparison("sym", ">", "M"), 0)
        assert gf.matching("N") == {0}
        assert gf.matching("A") == set()


class TestNaiveBank:
    def test_same_answers_as_grouped(self):
        gf = GroupedFilter("p")
        bank = NaiveFilterBank("p")
        preds = [(">", 10, 0), ("<", 50, 0), ("==", 30, 1), (">=", 5, 2)]
        for op, value, qid in preds:
            gf.add(Comparison("p", op, value), qid)
            bank.add(Comparison("p", op, value), qid)
        for probe in (0, 5, 10, 29, 30, 31, 50, 100):
            assert gf.matching(probe) == bank.matching(probe)

    def test_comparison_counter(self):
        bank = NaiveFilterBank("p")
        for qid in range(10):
            bank.add(Comparison("p", ">", qid), qid)
        bank.matching(100)
        assert bank.comparisons == 10


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["==", "!=", "<", "<=", ">", ">="]),
                          st.integers(-50, 50)),
                min_size=1, max_size=30),
       st.lists(st.integers(-60, 60), min_size=1, max_size=20))
def test_grouped_filter_matches_naive_bank(factors, probes):
    """Property: for any predicate set (one factor per query) and any
    probe values, the indexed filter and the naive bank agree."""
    gf = GroupedFilter("p")
    bank = NaiveFilterBank("p")
    for qid, (op, value) in enumerate(factors):
        gf.add(Comparison("p", op, value), qid)
        bank.add(Comparison("p", op, value), qid)
    for probe in probes:
        assert gf.matching(probe) == bank.matching(probe)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 9),
                          st.sampled_from(["<", ">", "==", ">=", "<="]),
                          st.integers(-20, 20)),
                min_size=1, max_size=40),
       st.integers(-25, 25))
def test_multi_factor_queries_match_direct_evaluation(entries, probe):
    """Property: queries registering multiple factors match iff every
    factor holds."""
    from collections import defaultdict
    gf = GroupedFilter("p")
    by_query = defaultdict(list)
    for qid, op, value in entries:
        factor = Comparison("p", op, value)
        gf.add(factor, qid)
        by_query[qid].append(factor)
    expected = {qid for qid, fs in by_query.items()
                if all(f.evaluate(probe) for f in fs)}
    assert gf.matching(probe) == expected


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 9),
                          st.sampled_from(["<", ">", "==", "!=", ">=", "<="]),
                          st.integers(-20, 20)),
                min_size=1, max_size=30),
       st.lists(st.integers(-25, 25), min_size=0, max_size=20))
def test_matching_batch_equals_per_value(entries, probes):
    """Property: the vectorized probe is exactly
    ``[matching(v) for v in values]`` — including the probes counter."""
    gf = GroupedFilter("p")
    for qid, op, value in entries:
        gf.add(Comparison("p", op, value), qid)
    reference = [gf.matching(v) for v in probes]
    counted = gf.probes
    assert gf.matching_batch(probes) == reference
    assert gf.probes == counted + len(probes)
