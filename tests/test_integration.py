"""Integration tests: multi-subsystem scenarios that exercise the
paper's architecture end to end — wrappers feeding eddies through
Fjords, windowed queries over spooled storage, QoS in front of CACQ,
and the full server under a mixed workload."""

import pytest

from repro.core.cacq import CACQEngine
from repro.core.eddy import Eddy, FilterOperator, SteMOperator
from repro.core.engine import TelegraphCQServer
from repro.core.routing import LotteryPolicy
from repro.core.stem import SteM
from repro.core.tuples import Schema
from repro.core.windows import ForLoopSpec, HistoricalStore
from repro.fjords.fjord import Fjord
from repro.fjords.module import CollectingSink
from repro.ingress.generators import (CLOSING_STOCK_PRICES,
                                      SensorStreamGenerator,
                                      StockStreamGenerator)
from repro.ingress.sources import PullSource, PushSource
from repro.ingress.wrappers import (StreamScanner, Streamer, WrapperHost,
                                    WrapperSourceModule)
from repro.monitor.qos import LoadShedder
from repro.query.predicates import ColumnComparison, Comparison
from repro.storage.buffer_pool import BufferPool
from repro.storage.spooled_stream import SpooledStream


class TestWrapperToEddy:
    """Figure 1 assembled: ingress wrapper -> Fjord -> eddy -> sink."""

    def test_mixed_push_pull_join(self):
        S = Schema.of("S", "k", "x")
        T = Schema.of("T", "k", "y")
        s_rows = [S.make(i % 3, i, timestamp=i) for i in range(1, 10)]
        t_rows = [T.make(i % 3, i * 10, timestamp=i) for i in range(1, 10)]
        join = ColumnComparison("S.k", "==", "T.k")
        eddy = Eddy([SteMOperator(SteM("S", ["S.k"]), [join]),
                     SteMOperator(SteM("T", ["T.k"]), [join])],
                    output_sources={"S", "T"}, policy=LotteryPolicy(seed=0),
                    arity_in=2)
        f = Fjord()
        sink = CollectingSink()
        # S is pulled (static-ish), T pushes on its own schedule.
        f.connect(WrapperSourceModule(PullSource("s", s_rows)), eddy,
                  in_port=0)
        f.connect(WrapperSourceModule(PushSource("t", t_rows)), eddy,
                  in_port=1)
        f.connect(eddy, sink)
        f.run_until_finished()
        expected = sum(1 for a in range(1, 10) for b in range(1, 10)
                       if a % 3 == b % 3)
        assert len(sink.results) == expected


class TestWindowedOverSpooledStorage:
    """Out-of-core historical windows: the CACQ/PSoup limitation the
    TelegraphCQ storage manager removes."""

    def test_windowed_scan_through_tiny_buffer_pool(self):
        pool = BufferPool(n_frames=3)
        spooled = SpooledStream(CLOSING_STOCK_PRICES, pool,
                                page_capacity=16)
        rows = StockStreamGenerator(symbols=("MSFT",), seed=4).take(200)
        spooled.extend(rows)
        spooled.seal()
        assert pool.evictions > 0
        spec = ForLoopSpec.sliding("ClosingStockPrices", width=20,
                                   start=20, stop=200, hop=20)
        sums = []
        for instance in spec:
            lo, hi = instance.bounds_for("ClosingStockPrices")
            window = spooled.scan_window(lo, hi)
            assert len(window) == 20
            sums.append(sum(t["closingPrice"] for t in window))
        assert len(sums) == 9

    def test_truncation_follows_sliding_window(self):
        pool = BufferPool(n_frames=4)
        spooled = SpooledStream(CLOSING_STOCK_PRICES, pool,
                                page_capacity=8)
        rows = StockStreamGenerator(symbols=("MSFT",), seed=4).take(100)
        width = 10
        for t in rows:
            spooled.append(t)
            spooled.truncate_before(t.timestamp - 2 * width)
        assert spooled.page_count < 6      # old pages retired


class TestQosInFrontOfCacq:
    def test_shedding_bounds_work_and_degrades_completeness(self):
        engine = CACQEngine()
        engine.register_stream(CLOSING_STOCK_PRICES)
        q = engine.add_query(["ClosingStockPrices"],
                             Comparison("closingPrice", ">", 0))
        shedder = LoadShedder(policy="random", seed=2,
                              target_utilisation=1.0)
        rows = StockStreamGenerator(seed=9).take(100)   # 500 tuples
        capacity_per_epoch = 20
        processed = 0
        for epoch_start in range(0, len(rows), 40):
            arriving = rows[epoch_start:epoch_start + 40]
            shedder.update(arrived=len(arriving),
                           serviced=capacity_per_epoch)
            admitted = shedder.admit(arriving)
            for t in admitted:
                engine.push_tuple("ClosingStockPrices", t)
                processed += 1
        assert shedder.dropped > 0
        assert q.delivered == processed         # answers only over admitted
        assert 0.3 < shedder.completeness() < 1.0


class TestFullServerMixedWorkload:
    def test_sensors_and_stocks_coexist(self):
        srv = TelegraphCQServer()
        srv.create_stream(CLOSING_STOCK_PRICES)
        srv.create_stream(Schema.of("SensorReadings", "ts", "sensor_id",
                                    "temperature", "voltage"))
        hot = srv.submit(
            "SELECT * FROM SensorReadings WHERE temperature > 40")
        expensive = srv.submit(
            "SELECT * FROM ClosingStockPrices WHERE closingPrice > 55")
        windowed = srv.submit("""
            SELECT AVG(temperature) FROM SensorReadings
            for (t = 10; t <= 30; t += 10) {
                WindowIs(SensorReadings, t - 9, t);
            }""")
        for t in SensorStreamGenerator(n_sensors=2, seed=1,
                                       anomaly_rate=0.05,
                                       anomaly_delta=50.0).take(40):
            srv.push_tuple("SensorReadings", t)
            srv.step()
        for t in StockStreamGenerator(seed=2).take(40):
            srv.push_tuple("ClosingStockPrices", t)
            srv.step()
        srv.close_stream("SensorReadings")
        srv.run_until_quiescent()
        # two disjoint footprint classes -> two executor-visible classes
        assert srv.stats()["cacq_engines"] == 2
        assert len(windowed.fetch_windows()) == 3
        assert hot.fetch()          # anomalies exist at 5% over 80 readings
        assert expensive.pending() == 0 or expensive.fetch()

    def test_scanner_replays_history_to_new_dataflow(self):
        """New queries see old data: the server's historical store feeds
        a window scanner into a fresh dataflow (PSoup's promise at the
        system level)."""
        srv = TelegraphCQServer()
        srv.create_stream(CLOSING_STOCK_PRICES)
        for t in StockStreamGenerator(symbols=("MSFT",), seed=3).take(50):
            srv.push_tuple("ClosingStockPrices", t)
        store = srv.stores["ClosingStockPrices"]
        spec = ForLoopSpec.landmark("ClosingStockPrices", anchor=1,
                                    start=10, stop=50, step=10)
        scanner = StreamScanner(store, spec)
        sink = CollectingSink()
        f = Fjord()
        f.connect(scanner, sink)
        f.run_until_finished()
        assert [len(w) for w in sink.windows()] == [10, 20, 30, 40, 50]


class TestWrapperHostIntoServer:
    def test_host_drives_streams_into_live_queries(self):
        srv = TelegraphCQServer()
        srv.create_stream(CLOSING_STOCK_PRICES)
        cur = srv.submit(
            "SELECT * FROM ClosingStockPrices WHERE stockSymbol = 'MSFT'")
        rows = StockStreamGenerator(seed=6).take(10)   # 50 tuples
        host = WrapperHost()

        class ServerStreamer(Streamer):
            # The IngressPoint handles admission/counting; only the
            # delivery target changes (fjord queues -> the server).
            def _push_all(self, t):
                srv.push_tuple(self.stream, t)

            def close(self):
                srv.close_stream(self.stream)

        host.register(PushSource("stock", rows),
                      ServerStreamer("ClosingStockPrices"))
        while not host.all_exhausted:
            host.step()
            srv.step()
        srv.run_until_quiescent()
        assert len(cur.fetch()) == 10       # one MSFT row per day
