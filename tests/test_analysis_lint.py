"""The codebase invariant linter: one positive and one negative case per
rule, exemption comments, and the cross-module hierarchy map."""

import textwrap

from repro.analysis.lint import lint_paths, lint_source

# A minimal stand-in for core/eddy.py so the hierarchy map can resolve
# EddyOperator without importing anything.
EDDY_BASE = textwrap.dedent("""\
    class EddyOperator:
        def handle(self, t): ...
        def handle_batch(self, batch): ...
""")


def codes(src, **kw):
    return [d.code for d in lint_source(textwrap.dedent(src), **kw)]


# -- TCQ301 batch parity -------------------------------------------------------

def test_batch_parity_flags_missing_handle_batch():
    src = EDDY_BASE + textwrap.dedent("""\
        class MyOp(EddyOperator):
            def handle(self, t):
                return None
    """)
    assert codes(src) == ["TCQ301"]


def test_batch_parity_satisfied_by_override():
    src = EDDY_BASE + textwrap.dedent("""\
        class MyOp(EddyOperator):
            def handle(self, t):
                return None

            def handle_batch(self, batch):
                return batch, ()
    """)
    assert codes(src) == []


def test_batch_parity_cross_module_hierarchy():
    # The subclass lives in another "file"; the base arrives via
    # extra_sources, exactly how lint_paths resolves across modules.
    src = textwrap.dedent("""\
        class MyOp(Intermediate):
            def handle(self, t):
                return None
    """)
    extra = {"base.py": EDDY_BASE + "class Intermediate(EddyOperator): ..."}
    assert codes(src, extra_sources=extra) == ["TCQ301"]


def test_batch_parity_exemption_comment():
    src = EDDY_BASE + textwrap.dedent("""\
        class MyOp(EddyOperator):   # tcqcheck: allow-no-batch
            def handle(self, t):
                return None
    """)
    assert codes(src) == []


def test_non_eddy_class_not_flagged():
    src = "class Unrelated:\n    def handle(self, t): ...\n"
    assert codes(src) == []


# -- TCQ302 telemetry naming ---------------------------------------------------

def test_metric_prefix_enforced():
    src = 'reg.counter("my_events_total", "help")\n'
    assert codes(src) == ["TCQ302"]


def test_metric_prefix_ok():
    src = 'reg.counter("tcq_events_total", "help")\n'
    assert codes(src) == []


def test_metric_kind_conflict():
    src = ('reg.counter("tcq_x", "a")\n'
           'reg.gauge("tcq_x", "b")\n')
    assert codes(src) == ["TCQ302"]


def test_metric_same_kind_reregistration_ok():
    src = ('reg.counter("tcq_x", "a")\n'
           'reg.counter("tcq_x", "a")\n')
    assert codes(src) == []


def test_metric_exemption():
    src = 'reg.counter("legacy_total", "h")  # tcqcheck: allow-metric-name\n'
    assert codes(src) == []


# -- TCQ303 clock discipline ---------------------------------------------------

def test_clock_attribute_flagged():
    assert codes("import time\nt0 = time.monotonic()\n") == ["TCQ303"]


def test_clock_from_import_flagged():
    assert codes("from time import perf_counter\n") == ["TCQ303"]


def test_clock_sleep_is_fine():
    assert codes("import time\ntime.sleep(0.1)\n") == []


def test_clock_allowed_in_clock_module():
    src = "import time\nnow = time.perf_counter\n"
    assert lint_source(src, file="src/repro/monitor/clock.py") == []


def test_clock_exemption_comment():
    src = "import time\nt = time.time()  # tcqcheck: allow-clock\n"
    assert codes(src) == []


# -- TCQ304 Schedulable conformance --------------------------------------------

def test_run_once_without_protocol_flagged():
    src = textwrap.dedent("""\
        class Half:
            def run_once(self, quantum=None):
                return None
    """)
    assert codes(src) == ["TCQ304"]


def test_run_once_with_methods_ok():
    src = textwrap.dedent("""\
        class Full:
            def run_once(self, quantum=None): ...
            def ready(self): ...
            @property
            def finished(self): ...
    """)
    assert codes(src) == []


def test_run_once_with_instance_attr_ok():
    src = textwrap.dedent("""\
        class Full:
            def __init__(self):
                self.finished = False
            def ready(self): ...
            def run_once(self, quantum=None): ...
    """)
    assert codes(src) == []


def test_run_once_inherited_protocol_ok():
    src = textwrap.dedent("""\
        class Unit(Schedulable):
            def run_once(self, quantum=None): ...
    """)
    extra = {"protocol.py": textwrap.dedent("""\
        class Schedulable:
            def ready(self): ...
            @property
            def finished(self): ...
    """)}
    assert codes(src, extra_sources=extra) == []


def test_run_once_exemption():
    src = textwrap.dedent("""\
        class Half:   # tcqcheck: allow-not-schedulable
            def run_once(self, quantum=None): ...
    """)
    assert codes(src) == []


# -- TCQ305 bounded-ring discipline --------------------------------------------

def test_bounded_class_with_pure_append_flagged():
    src = textwrap.dedent("""\
        class Ring:
            \"\"\"A bounded history buffer.\"\"\"
            def __init__(self):
                self.items = []
            def push(self, x):
                self.items.append(x)
    """)
    assert codes(src) == ["TCQ305"]


def test_bounded_class_with_trim_ok():
    src = textwrap.dedent("""\
        class Ring:
            \"\"\"A bounded history buffer.\"\"\"
            def __init__(self):
                self.items = []
            def push(self, x):
                self.items.append(x)
                if len(self.items) > 64:
                    self.items.pop(0)
    """)
    assert codes(src) == []


def test_unbounded_docstring_not_flagged():
    src = textwrap.dedent("""\
        class Log:
            \"\"\"An unbounded append-only log.\"\"\"
            def __init__(self):
                self.items = []
            def push(self, x):
                self.items.append(x)
    """)
    assert codes(src) == []


def test_bounded_exemption():
    src = textwrap.dedent("""\
        class Ring:
            \"\"\"Bounded by construction upstream.\"\"\"
            def __init__(self):
                self.items = []
            def push(self, x):
                self.items.append(x)  # tcqcheck: allow-unbounded
    """)
    assert codes(src) == []


# -- whole-tree invariants -----------------------------------------------------

def test_shipped_tree_is_clean():
    assert lint_paths(["src/repro"]) == []


def test_lint_paths_reports_file_and_line(tmp_path):
    mod = tmp_path / "bad.py"
    mod.write_text("import time\nx = time.time()\n")
    diags = lint_paths([str(tmp_path)])
    assert [d.code for d in diags] == ["TCQ303"]
    assert diags[0].file.endswith("bad.py")
    assert diags[0].line == 2


# -- TCQ401 server door --------------------------------------------------------

def test_direct_server_construction_flagged():
    src = """\
        from repro.core.engine import TelegraphCQServer
        server = TelegraphCQServer()
    """
    assert codes(src, file="src/repro/somewhere.py") == ["TCQ401"]


def test_server_door_allows_client_package():
    src = """\
        from repro.core.engine import TelegraphCQServer
        server = TelegraphCQServer()
    """
    assert codes(src, file="src/repro/client/connection.py") == []


def test_server_door_allows_engine_module_itself():
    src = """\
        def clone():
            return TelegraphCQServer()
    """
    assert codes(src, file="src/repro/core/engine.py") == []


def test_server_door_allows_tests():
    src = """\
        from repro.core.engine import TelegraphCQServer
        server = TelegraphCQServer()
    """
    assert codes(src, file="tests/test_server_api.py") == []


def test_server_door_exemption_comment():
    src = """\
        srv = TelegraphCQServer()  # tcqcheck: allow-direct-server
    """
    assert codes(src, file="src/repro/somewhere.py") == []


def test_server_door_mentions_the_front_door():
    src = """\
        srv = TelegraphCQServer()
    """
    (diag,) = [d for d in __import__("repro.analysis.lint",
                                     fromlist=["lint_source"]).lint_source(
        textwrap.dedent(src), file="src/repro/x.py")]
    assert "client" in diag.hint or "connect" in diag.hint


# -- TCQ501 columnar discipline ------------------------------------------------

def test_columnar_discipline_flags_materialize_in_hot_path():
    src = """\
        def handle_batch(batch):
            return [t for t in batch.materialize()]
    """
    assert codes(src, file="src/repro/core/myop.py") == ["TCQ501"]
    assert codes(src, file="src/repro/query/rewrite.py") == ["TCQ501"]


def test_columnar_discipline_flags_foreign_rows_access():
    src = """\
        def peek(batch):
            return batch._rows
    """
    assert codes(src, file="src/repro/core/myop.py") == ["TCQ501"]


def test_columnar_discipline_allows_self_rows_and_cold_paths():
    impl = """\
        class TupleBatch:
            def materialize(self):
                return self._rows
    """
    # self._rows is the backing store: clean even in the implementation
    # file, which no longer enjoys a by-name exemption.
    assert codes(impl, file="src/repro/core/tuples.py") == []
    hot = """\
        rows = batch.materialize()
    """
    assert codes(hot, file="src/repro/fjords/module.py") == []
    assert codes(hot, file="tests/test_something.py") == []


def test_columnar_discipline_exemption_comment():
    src = """\
        rows = batch.materialize()  # tcqcheck: allow-row-iteration
    """
    assert codes(src, file="src/repro/core/myop.py") == []


def test_columnar_discipline_hot_paths_are_clean():
    """The real hot-path modules must hold the invariant (same check the
    ``--self`` gate runs, narrowed to TCQ501)."""
    diags = [d for d in lint_paths(["src/repro/core", "src/repro/query"])
             if d.code == "TCQ501"]
    assert diags == []


# -- TCQ601 process confinement ------------------------------------------------

def test_process_confinement_flags_multiprocessing_import():
    src = """\
        import multiprocessing
    """
    assert codes(src, file="src/repro/core/engine2.py") == ["TCQ601"]
    src = """\
        from multiprocessing.connection import wait
    """
    assert codes(src, file="src/repro/sched/pool.py") == ["TCQ601"]


def test_process_confinement_flags_fork_and_executor():
    src = """\
        import os
        pid = os.fork()
    """
    assert codes(src, file="src/repro/net/service.py") == ["TCQ601"]
    src = """\
        from concurrent.futures import ProcessPoolExecutor
    """
    assert codes(src, file="src/repro/query/planner.py") == ["TCQ601"]


def test_process_confinement_has_no_path_exemption():
    # procs.py is no longer special-cased by path: the real module
    # carries inline ``# tcq: allow[TCQ601]`` comments instead, so a
    # *new* unannotated primitive there is flagged like anywhere else.
    src = """\
        import multiprocessing
    """
    assert codes(src, file="src/repro/flux/procs.py") == ["TCQ601"]
    annotated = """\
        import multiprocessing  # tcq: allow[TCQ601] confinement module
    """
    assert codes(annotated, file="src/repro/flux/procs.py") == []


def test_process_confinement_allows_tests():
    src = """\
        import multiprocessing
        pid = os.fork()
    """
    assert codes(src, file="tests/test_flux_procs.py") == []


def test_process_confinement_allows_threads_and_subprocess():
    src = """\
        import threading
        import subprocess
    """
    assert codes(src, file="src/repro/net/service.py") == []


def test_process_confinement_exemption_comment():
    src = """\
        import multiprocessing  # tcqcheck: allow-process
    """
    assert codes(src, file="src/repro/core/engine2.py") == []


# -- unified # tcq: allow[...] suppression syntax ------------------------------

def test_bracket_allow_works_for_lint_rules():
    src = "import time\nt = time.time()  # tcq: allow[TCQ303] bench-only timing\n"
    assert codes(src) == []


def test_bracket_allow_multiple_codes():
    src = ("import time\n"
           "t = time.time()  # tcq: allow[TCQ303, TCQ501] cold diagnostic path\n")
    assert codes(src) == []


def test_bracket_allow_requires_reason():
    src = "import time\nt = time.time()  # tcq: allow[TCQ303]\n"
    assert codes(src) == ["TCQ303"]


def test_bracket_allow_wrong_code_does_not_suppress():
    src = "import time\nt = time.time()  # tcq: allow[TCQ501] wrong code\n"
    assert codes(src) == ["TCQ303"]


def test_process_confinement_shipped_tree_is_clean():
    """procs.py is the only module in the shipped tree touching process
    primitives (same check the ``--self`` gate runs, narrowed)."""
    diags = [d for d in lint_paths(["src/repro"]) if d.code == "TCQ601"]
    assert diags == []
