"""The unified telemetry layer: registry semantics, snapshot
stability, the six-subsystem acceptance sweep, both exporters, the CLI
STATS rendering, and the <15% overhead bound."""

import json
import time

import pytest

from repro.cli import TelegraphShell
from repro.core.eddy import Eddy, FilterOperator
from repro.core.routing import LotteryPolicy
from repro.core.stem import SteM
from repro.core.tuples import Schema
from repro.errors import TelemetryError
from repro.flux.cluster import Cluster, GroupCountState
from repro.flux.flux import Flux
from repro.ingress.generators import DriftingSelectivityGenerator
from repro.monitor.qos import LoadShedder
from repro.monitor.telemetry import (MetricRegistry, TelemetrySnapshot,
                                     get_registry, set_registry)
from repro.query.predicates import Comparison


# ---------------------------------------------------------------------------
# registry semantics
# ---------------------------------------------------------------------------

class TestRegistrySemantics:
    def test_counter_increments_and_rejects_negative(self):
        reg = MetricRegistry()
        c = reg.counter("tcq_test_events_total", "events").labels()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(TelemetryError):
            c.inc(-1)

    def test_gauge_moves_both_ways(self):
        reg = MetricRegistry()
        g = reg.gauge("tcq_test_depth", "depth").labels()
        g.set(10)
        g.dec(3)
        g.inc(1)
        assert g.value == 8.0

    def test_histogram_cumulative_buckets(self):
        reg = MetricRegistry()
        h = reg.histogram("tcq_test_latency", "latency",
                          buckets=(0.1, 1.0)).labels()
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(6.05)
        cumulative = h.cumulative_buckets()
        assert cumulative == [(0.1, 1), (1.0, 3), (float("inf"), 4)]

    def test_kind_clash_raises(self):
        reg = MetricRegistry()
        reg.counter("tcq_test_x", "x")
        with pytest.raises(TelemetryError):
            reg.gauge("tcq_test_x", "x")

    def test_label_schema_clash_raises(self):
        reg = MetricRegistry()
        reg.counter("tcq_test_y", "y", ("a",))
        with pytest.raises(TelemetryError):
            reg.counter("tcq_test_y", "y", ("a", "b"))

    def test_declaration_is_idempotent(self):
        reg = MetricRegistry()
        f1 = reg.counter("tcq_test_z", "z", ("op",))
        f2 = reg.counter("tcq_test_z", "z", ("op",))
        assert f1 is f2
        f1.labels("p").inc()
        assert f2.labels("p").value == 1.0

    def test_labels_by_keyword_and_position_agree(self):
        reg = MetricRegistry()
        fam = reg.gauge("tcq_test_lv", "lv", ("a", "b"))
        assert fam.labels("1", "2") is fam.labels(b="2", a="1")
        with pytest.raises(TelemetryError):
            fam.labels("only-one")

    def test_disabled_registry_absorbs_writes(self):
        reg = MetricRegistry()
        c = reg.counter("tcq_test_off_total", "off").labels()
        reg.disable()
        c.inc(5)
        assert c.value == 0.0
        reg.enable()
        c.inc(5)
        assert c.value == 5.0


class TestLabelCardinality:
    def test_cap_hands_back_noop_and_counts_drops(self):
        reg = MetricRegistry(max_series_per_family=3)
        fam = reg.counter("tcq_test_wide_total", "wide", ("k",))
        for i in range(10):
            fam.labels(str(i)).inc()
        assert len(fam.series()) == 3
        # Pin the assertion to this family: global collectors (e.g. the
        # fjords per-queue gauges) may legitimately overflow the tiny
        # cap of this private registry too.
        assert reg.dropped_by_family["tcq_test_wide_total"] == 7
        snap = reg.snapshot()
        assert snap.value("tcq_telemetry_dropped_series_total",
                          family="tcq_test_wide_total") == 7

    def test_noop_series_absorbs_every_operation(self):
        reg = MetricRegistry(max_series_per_family=1)
        fam = reg.gauge("tcq_test_gwide", "gw", ("k",))
        fam.labels("a").set(1)
        noop = fam.labels("b")
        noop.set(9)
        noop.inc()
        noop.observe(1.0)   # wrong kind, still silent
        snap = reg.snapshot()
        assert snap.get("tcq_test_gwide", k="b") is None


class TestTracing:
    def test_sampling_every_nth(self):
        reg = MetricRegistry(trace_sample_every=3)
        for i in range(9):
            with reg.trace("unit", n=i):
                pass
        spans = reg.recent_traces()
        assert len(spans) == 3
        assert all(s.duration is not None and s.duration >= 0
                   for s in spans)

    def test_disabled_sampling_records_nothing(self):
        reg = MetricRegistry(trace_sample_every=0)
        for _ in range(10):
            with reg.trace("unit"):
                pass
        assert reg.recent_traces() == []

    def test_ring_buffer_is_bounded(self):
        reg = MetricRegistry(trace_sample_every=1, trace_capacity=5)
        for i in range(20):
            with reg.trace("unit", n=i):
                pass
        spans = reg.recent_traces()
        assert len(spans) == 5
        assert spans[-1].labels["n"] == "19"


def test_set_registry_swaps_and_restores():
    fresh = MetricRegistry()
    previous = set_registry(fresh)
    try:
        assert get_registry() is fresh
    finally:
        restored = set_registry(previous)
        assert restored is fresh
    assert get_registry() is previous


# ---------------------------------------------------------------------------
# live instrumentation
# ---------------------------------------------------------------------------

PRED_A = Comparison("a", "==", 1)
PRED_B = Comparison("b", "==", 1)


def run_e1_eddy(n=600):
    rows = DriftingSelectivityGenerator(seed=3, flip_at=n // 4,
                                        low_pass=0.1,
                                        high_pass=0.9).take(n)
    ops = [FilterOperator(PRED_A, name="fa"),
           FilterOperator(PRED_B, name="fb")]
    eddy = Eddy(ops, output_sources={"drift"},
                policy=LotteryPolicy(seed=1))
    for t in rows:
        eddy.process(t, 0)
    return eddy


class TestSixSubsystemAcceptance:
    def test_snapshot_covers_the_engine(self):
        from repro.core.engine import TelegraphCQServer

        # eddy + routing: the E1 workload.
        eddy = run_e1_eddy()

        # stem: direct build/probe traffic.
        stem = SteM("s", name="probe-stem")
        schema = Schema.of("s", "k")
        other = Schema.of("r", "k")
        for i in range(5):
            stem.build(schema.make(i, timestamp=i))
        stem.probe(other.make(3, timestamp=99),
                   [Comparison("k", "==", 3)])

        # executor + server + fjords: a small standing-query session.
        server = TelegraphCQServer()
        server.create_stream(Schema.of("trades", "sym", "price"))
        cursor = server.submit("SELECT * FROM trades WHERE price > 10")
        for i in range(20):
            server.push("trades", "T", 5 + i)
        server.step()

        # qos: an E12-style overloaded shedder.
        shedder = LoadShedder(policy="random", seed=1)
        batch = [schema.make(i, timestamp=i) for i in range(50)]
        shedder.update(arrived=100, serviced=10)
        shedder.admit(batch)

        # flux: a tiny partitioned run.
        cluster = Cluster()
        for i in range(3):
            cluster.add_machine(f"m{i}", speed=50)
        flux = Flux(cluster, n_partitions=4, key_fn=lambda t: t["k"],
                    state_factory=lambda: GroupCountState("k"))
        flux.tick([schema.make(i, timestamp=i) for i in range(30)])
        flux.drain()

        snap = server.telemetry()
        subsystems = set(snap.subsystems())
        assert {"eddy", "stem", "executor", "fjords", "qos",
                "flux"} <= subsystems
        # and the ones that ride along
        assert {"server", "cacq", "telemetry"} <= subsystems

        # live values, not just presence:
        assert snap.value("tcq_eddy_tuples_routed_total",
                          eddy=eddy._telemetry_id) > 0
        assert snap.value("tcq_stem_probes_total",
                          stem=stem._telemetry_id) == 1
        assert snap.value("tcq_executor_steps_total") >= 1
        assert snap.value("tcq_fjords_enqueued_total") > 0
        assert snap.value("tcq_qos_dropped_total", policy="random") > 0
        assert snap.value("tcq_flux_routed_total",
                          flux=flux._telemetry_id) == 30
        assert snap.value("tcq_server_ingress_tuples_total",
                          stream="trades") == 20
        assert cursor.pending() >= 0

    def test_dead_components_prune_from_snapshots(self):
        eddy = run_e1_eddy(n=50)
        eddy_id = eddy._telemetry_id
        reg = get_registry()
        snap = reg.snapshot()
        assert snap.get("tcq_eddy_tuples_routed_total",
                        eddy=eddy_id) is not None
        del eddy
        snap = reg.snapshot()
        assert snap.get("tcq_eddy_tuples_routed_total",
                        eddy=eddy_id) is None


class TestSnapshotStability:
    def test_counters_monotonic_across_executor_rounds(self):
        from repro.core.engine import TelegraphCQServer

        server = TelegraphCQServer()
        server.create_stream(Schema.of("s", "v"))
        server.submit("SELECT * FROM s WHERE v > 0")
        last_steps = -1.0
        last_ingress = -1.0
        for round_no in range(5):
            server.push("s", round_no + 1)
            server.step()
            snap = server.telemetry()
            steps = snap.value("tcq_executor_steps_total")
            ingress = snap.value("tcq_server_ingress_tuples_total",
                                 stream="s")
            assert steps >= last_steps
            assert ingress == round_no + 1 > last_ingress
            last_steps, last_ingress = steps, ingress

    def test_identical_state_gives_identical_snapshots(self):
        from repro.core.engine import TelegraphCQServer

        server = TelegraphCQServer()
        server.create_stream(Schema.of("s", "v"))
        server.push("s", 1)
        a = server.telemetry()
        b = server.telemetry()
        # Only the registry's own snapshot counter may differ.
        va = {s.key(): s.value for s in a.samples
              if s.name != "tcq_telemetry_snapshots_total"}
        vb = {s.key(): s.value for s in b.samples
              if s.name != "tcq_telemetry_snapshots_total"}
        assert va == vb


# ---------------------------------------------------------------------------
# exporters
# ---------------------------------------------------------------------------

def build_rich_registry():
    reg = MetricRegistry()
    reg.counter("tcq_test_events_total", "events seen", ("op",)) \
        .labels("fa").inc(41)
    reg.counter("tcq_test_events_total", "events seen", ("op",)) \
        .labels("fb").inc(1)
    reg.gauge("tcq_test_depth", "queue depth").set(7.5)
    h = reg.histogram("tcq_test_lat", "latency", ("stage",),
                      buckets=(0.1, 1.0))
    for v in (0.05, 0.5, 3.0):
        h.labels("ingress").observe(v)
    g = reg.gauge("tcq_test_weird", 'help with "quotes" and \\slashes',
                  ("name",))
    g.labels('va"lue\\with\nnewline').set(1)
    return reg


class TestExporters:
    def test_json_round_trip(self):
        snap = build_rich_registry().snapshot()
        doc = snap.to_json(indent=2)
        json.loads(doc)  # valid JSON
        back = TelemetrySnapshot.from_json(doc)
        assert back == snap

    def test_prometheus_round_trip(self):
        snap = build_rich_registry().snapshot()
        text = snap.to_prometheus()
        assert "# TYPE tcq_test_events_total counter" in text
        assert 'tcq_test_events_total{op="fa"} 41.0' in text
        assert "tcq_test_lat_bucket" in text and "+Inf" in text
        back = TelemetrySnapshot.from_prometheus(text)
        assert {s.key() for s in back.samples} == \
            {s.key() for s in snap.samples}
        by_key = {s.key(): s for s in back.samples}
        for s in snap.samples:
            other = by_key[s.key()]
            assert other.value == s.value
            assert other.buckets == s.buckets
            assert other.count == s.count

    def test_prometheus_rejects_garbage(self):
        with pytest.raises(TelemetryError):
            TelemetrySnapshot.from_prometheus("!! not a metric line")

    def test_snapshot_queries(self):
        snap = build_rich_registry().snapshot()
        assert "tcq_test_depth" in snap.series_names()
        assert "test" in snap.subsystems()
        assert snap.value("tcq_test_depth") == 7.5
        assert snap.value("tcq_missing", default=-1.0) == -1.0
        assert all(s.subsystem == "test"
                   for s in snap.by_subsystem("test"))


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestCliStats:
    def test_stats_renders_telemetry_sections(self):
        shell = TelegraphShell()
        out = shell.run_script("""
            CREATE STREAM trades (sym, price);
            SELECT * FROM trades WHERE price > 10;
            PUSH trades 'MSFT', 20.5;
            PUSH trades 'IBM', 5.0;
            STATS;
        """)
        stats = out[-1]
        # Legacy header stays intact...
        assert "ingested tuples : 2" in stats
        # ...and the snapshot-backed sections appear.
        assert "telemetry (" in stats
        assert "[server]" in stats
        assert "[executor]" in stats
        assert "tcq_server_ingress_tuples_total{stream=trades} = 2" in stats


# ---------------------------------------------------------------------------
# overhead (tier-1 guard for the benchmark's claim)
# ---------------------------------------------------------------------------

def _timed_eddy_run(n=4000, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        rows = DriftingSelectivityGenerator(seed=3, flip_at=n // 4,
                                            low_pass=0.1,
                                            high_pass=0.9).take(n)
        ops = [FilterOperator(PRED_A, name="fa"),
               FilterOperator(PRED_B, name="fb")]
        eddy = Eddy(ops, output_sources={"drift"},
                    policy=LotteryPolicy(seed=1))
        start = time.perf_counter()
        for t in rows:
            eddy.process(t, 0)
        best = min(best, time.perf_counter() - start)
    return best


def test_telemetry_overhead_under_15_percent():
    reg = get_registry()
    reg.disable()
    try:
        t_off = _timed_eddy_run()
    finally:
        reg.enable()
    t_on = _timed_eddy_run()
    reg.snapshot()
    assert t_on < t_off * 1.15, (
        f"telemetry-on {t_on:.4f}s vs off {t_off:.4f}s "
        f"({t_on / t_off:.2%})")


class TestVectorizedCounters:
    def test_batch_counters_published_in_snapshot(self):
        """The vectorized pipeline's counters — eddy batches routed,
        predicate kernel evals, SteM batch probes — surface through the
        collector pattern like every other hot-path metric."""
        from repro.core.routing import BatchingDirective, FixedPolicy
        from repro.core.tuples import TupleBatch
        from repro.query.predicates import ColumnComparison

        S = Schema.of("S", "a", "k")
        T = Schema.of("T", "b", "k")
        join = ColumnComparison("S.k", "==", "T.k")
        stem_t = SteM("T", index_columns=("T.k",))
        from repro.core.eddy import SteMOperator
        ops = [SteMOperator(SteM("S", index_columns=("S.k",)), [join],
                            name="vs"),
               SteMOperator(stem_t, [join], name="vt"),
               FilterOperator(Comparison("a", ">", 0), name="vf")]
        eddy = Eddy(ops, output_sources={"S", "T"},
                    policy=FixedPolicy(["vs", "vt", "vf"]),
                    batching=BatchingDirective(4, vectorize=True))
        s_rows = [S.make(i % 3, i % 5, timestamp=i) for i in range(12)]
        t_rows = [T.make(i % 3, i % 5, timestamp=12 + i) for i in range(12)]
        for group in (s_rows, t_rows):
            for i in range(0, len(group), 4):
                eddy.process_batch(TupleBatch.from_tuples(group[i:i + 4]), 0)

        snap = get_registry().snapshot()
        assert snap.value("tcq_eddy_batches_routed_total",
                          eddy=eddy._telemetry_id) == 6
        # 3 S-batches probed stem[T]; 3 T-batches probed stem[S].
        assert snap.value("tcq_stem_batch_probes_total",
                          stem=stem_t._telemetry_id) == 3
        assert snap.value("tcq_stem_batch_probes_total",
                          stem=ops[0].stem._telemetry_id) == 3
        assert snap.value("tcq_predicate_kernel_evals_total") > 0
        assert snap.value("tcq_predicate_kernel_rows_total") > 0
        assert eddy.stats()["batches_routed"] == 6
