"""Tests for the command-line shell."""

import pytest

from repro.cli import TelegraphShell, _format_rows, _parse_value
from repro.core.tuples import Schema


class TestHelpers:
    def test_parse_value_types(self):
        assert _parse_value("42") == 42
        assert _parse_value("4.5") == 4.5
        assert _parse_value("'MSFT'") == "MSFT"
        assert _parse_value('"IBM"') == "IBM"
        assert _parse_value("bare") == "bare"

    def test_format_rows(self):
        s = Schema.of("s", "a", "b")
        out = _format_rows([s.make(1, "xx"), s.make(22, "y")])
        lines = out.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert "22" in lines[2]

    def test_format_empty(self):
        assert _format_rows([]) == "(no rows)"

    def test_format_truncates(self):
        s = Schema.of("s", "a")
        out = _format_rows([s.make(i) for i in range(60)])
        assert "more" in out.splitlines()[-1]


class TestShellStatements:
    def test_full_session(self):
        shell = TelegraphShell()
        responses = shell.run_script("""
            CREATE STREAM trades (sym, price);
            SELECT * FROM trades WHERE price > 10;
            PUSH trades 'MSFT', 20.5;
            PUSH trades 'IBM', 5.0;
            FETCH 1;
            STATS;
        """)
        assert responses[0].startswith("stream trades")
        assert "cursor 1 open" in responses[1]
        assert responses[2] == responses[3] == "pushed"
        assert "MSFT" in responses[4]
        assert "IBM" not in responses[4]
        assert "ingested tuples : 2" in responses[5]

    def test_snapshot_prints_immediately(self):
        shell = TelegraphShell()
        out = shell.run_script("""
            CREATE TABLE emps (name, salary);
            INSERT INTO emps VALUES ('ada', 100);
            INSERT INTO emps VALUES ('bob', 50);
            SELECT name FROM emps WHERE salary > 70;
        """)
        assert out[1] == out[2] == "1 row"
        assert "ada" in out[3] and "bob" not in out[3]

    def test_windowed_query_fetch(self):
        shell = TelegraphShell()
        out = shell.run_script("""
            CREATE STREAM s (v);
            SELECT * FROM s for (t = 1; t <= 2; t++) {
                WindowIs(s, t, t);
            };
        """)
        # NB: the for-loop contains no ';' splitting hazards beyond
        # WindowIs' own — run_script splits on ';', so feed statements
        # individually when they embed semicolons:
        shell2 = TelegraphShell()
        shell2.execute("CREATE STREAM s (v);")
        resp = shell2.execute(
            "SELECT * FROM s for (t = 1; t <= 2; t++) "
            "{ WindowIs(s, t, t); }")
        assert "cursor 1 open" in resp
        shell2.execute("PUSH s 10 @ 1")
        shell2.execute("PUSH s 20 @ 2")
        shell2.execute("CLOSE STREAM s")
        shell2.execute("RUN")
        fetched = shell2.execute("FETCH 1")
        assert "window t=1" in fetched and "window t=2" in fetched

    def test_cancel(self):
        shell = TelegraphShell()
        shell.execute("CREATE STREAM s (v);")
        shell.execute("SELECT * FROM s WHERE v > 0;")
        assert "cancelled" in shell.execute("CANCEL 1;")
        assert "error" in shell.execute("CANCEL 9;")

    def test_insert_into_stream_rejected(self):
        shell = TelegraphShell()
        shell.execute("CREATE STREAM s (v);")
        assert "use PUSH" in shell.execute("INSERT INTO s VALUES (1);")

    def test_push_to_table_rejected(self):
        shell = TelegraphShell()
        shell.execute("CREATE TABLE t (v);")
        assert "error" in shell.execute("PUSH t 1;")

    def test_errors_are_messages_not_exceptions(self):
        shell = TelegraphShell()
        assert shell.execute("SELECT * FROM ghost;").startswith("error")
        assert shell.execute("FROB;").startswith("error")
        assert shell.execute("CREATE STREAM broken;").startswith("error")

    def test_step_and_run(self):
        shell = TelegraphShell()
        assert shell.execute("STEP 3;") == "stepped 3"
        assert "quiescent" in shell.execute("RUN;")

    def test_quit(self):
        shell = TelegraphShell()
        assert shell.execute("QUIT;") == "bye"
        assert shell.done

    def test_help(self):
        assert "FETCH" in TelegraphShell().execute("HELP;")
