"""Tests for the query-aware sensor proxy and TAG in-network
aggregation."""

import pytest

from repro.errors import ExecutionError
from repro.ingress.sensor_proxy import (HEARTBEAT_PERIOD, SensorProxy,
                                        SimulatedMote)
from repro.ingress.tag import (CentralizedAggregator, RoutingTree,
                               TagAggregator)


class TestSensorProxy:
    def test_idle_field_heartbeats(self):
        proxy = SensorProxy(n_motes=4)
        readings = proxy.run(HEARTBEAT_PERIOD)
        # each mote samples exactly once per heartbeat period
        assert len(readings) == 4

    def test_interest_raises_rate(self):
        proxy = SensorProxy(n_motes=4)
        proxy.register_interest(motes=None, period=10)
        readings = proxy.run(100)
        assert len(readings) == 4 * 10

    def test_interest_scoped_to_motes(self):
        proxy = SensorProxy(n_motes=4)
        proxy.register_interest(motes=[0, 1], period=5)
        proxy.run(50)
        fast = [m.samples_taken for m in proxy.motes[:2]]
        slow = [m.samples_taken for m in proxy.motes[2:]]
        assert min(fast) >= 10
        assert max(slow) <= 1

    def test_tightest_interest_wins(self):
        proxy = SensorProxy(n_motes=2)
        proxy.register_interest(motes=[0], period=20)
        proxy.register_interest(motes=[0], period=5)
        assert proxy.required_period(0) == 5

    def test_withdraw_relaxes_rate(self):
        proxy = SensorProxy(n_motes=2)
        interest = proxy.register_interest(motes=None, period=5)
        assert proxy.required_period(0) == 5
        proxy.withdraw(interest)
        assert proxy.required_period(0) == HEARTBEAT_PERIOD

    def test_withdraw_unknown_rejected(self):
        proxy = SensorProxy(n_motes=2)
        interest = proxy.register_interest(motes=None, period=5)
        proxy.withdraw(interest)
        with pytest.raises(ExecutionError):
            proxy.withdraw(interest)

    def test_control_messages_counted(self):
        proxy = SensorProxy(n_motes=3)
        proxy.register_interest(motes=None, period=5)
        proxy.register_interest(motes=None, period=2)
        # two retunes: heartbeat->5, 5->2, on all three motes
        assert proxy.total_control_messages() == 6

    def test_power_saving_vs_always_fast(self):
        """The [MF02] claim: query-driven rates sample far less than a
        field pinned at the fastest rate."""
        demand_driven = SensorProxy(n_motes=4)
        interest = demand_driven.register_interest(motes=None, period=4)
        demand_driven.run(100)
        demand_driven.withdraw(interest)       # query finishes
        demand_driven.run(400)
        always_fast = SensorProxy(n_motes=4)
        always_fast.register_interest(motes=None, period=4)
        always_fast.run(500)
        assert demand_driven.total_samples() < \
            0.4 * always_fast.total_samples()

    def test_validation(self):
        with pytest.raises(ExecutionError):
            SensorProxy(n_motes=0)
        proxy = SensorProxy(n_motes=2)
        with pytest.raises(ExecutionError):
            proxy.register_interest(motes=[9], period=5)
        with pytest.raises(ExecutionError):
            proxy.register_interest(motes=None, period=0)

    def test_readings_are_tuples_with_timestamps(self):
        proxy = SensorProxy(n_motes=1)
        proxy.register_interest(motes=None, period=1)
        (reading,) = proxy.step()
        assert reading.timestamp == 1
        assert reading["sensor_id"] == 0

    def test_mote_determinism(self):
        a = SimulatedMote(3, seed=7)
        b = SimulatedMote(3, seed=7)
        a.set_period(1)
        b.set_period(1)
        assert [a.tick(i) for i in range(1, 10)] == \
            [b.tick(i) for i in range(1, 10)]


class TestRoutingTree:
    def test_every_mote_attached(self):
        tree = RoutingTree(40, radio=4, seed=1)
        assert set(tree.parent) == set(range(40))
        assert tree.parent[0] is None
        for m in range(1, 40):
            assert tree.parent[m] is not None

    def test_levels_consistent_with_parents(self):
        tree = RoutingTree(30, radio=3, seed=2)
        for m in range(1, 30):
            parent = tree.parent[m]
            assert tree.level[m] >= tree.level[parent] + 1 or \
                parent == 0       # unreachable fallback charges distance

    def test_deterministic_under_seed(self):
        a = RoutingTree(25, seed=5)
        b = RoutingTree(25, seed=5)
        assert a.parent == b.parent


class TestTagAggregation:
    @pytest.mark.parametrize("fn", ["COUNT", "SUM", "MIN", "MAX", "AVG"])
    def test_lossless_tag_equals_centralized(self, fn):
        tree = RoutingTree(30, radio=4, seed=3)
        tag = TagAggregator(tree, fn=fn)
        central = CentralizedAggregator(tree, fn=fn)
        for _ in range(5):
            t_val = tag.run_epoch()["value"]
            c_val = central.run_epoch()["value"]
            assert t_val == pytest.approx(c_val)

    def test_message_savings(self):
        """TAG's headline: one message per mote per epoch, vs one per
        hop per reading centralized."""
        tree = RoutingTree(60, radio=3, seed=4)
        tag = TagAggregator(tree, fn="AVG")
        central = CentralizedAggregator(tree, fn="AVG")
        tag.run(10)
        central.run(10)
        assert tag.messages_sent == 10 * (tree.n - 1)
        assert central.messages_sent > 2 * tag.messages_sent

    def test_loss_degrades_but_does_not_crash(self):
        tree = RoutingTree(30, radio=4, seed=3)
        lossy = TagAggregator(tree, fn="COUNT", loss_rate=0.3, seed=9)
        results = lossy.run(10)
        assert lossy.messages_lost > 0
        # counts are underestimates under loss, never overestimates
        assert all(r["value"] <= tree.n for r in results)

    def test_unsupported_aggregate_rejected(self):
        tree = RoutingTree(5)
        with pytest.raises(ExecutionError):
            TagAggregator(tree, fn="MEDIAN")

    def test_custom_read_function(self):
        tree = RoutingTree(10, radio=10, seed=0)
        tag = TagAggregator(tree, fn="SUM",
                            read=lambda mote, epoch: float(mote))
        result = tag.run_epoch()
        assert result["value"] == sum(range(10))
