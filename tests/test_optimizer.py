"""Tests for the catalog and the optimizer's plan classification and
windowed evaluation pipeline."""

import pytest

from repro.core.tuples import Schema
from repro.core.windows import HistoricalStore
from repro.errors import QueryError
from repro.query.catalog import Catalog
from repro.query.optimizer import compile_query
from repro.query.parser import parse

TRADES = Schema.of("trades", "sym", "price")
REF = Schema.of("refdata", "sym", "sector")


def fresh_catalog():
    catalog = Catalog()
    catalog.create_stream(TRADES)
    catalog.create_table(REF)
    return catalog


class TestCatalog:
    def test_create_and_lookup(self):
        catalog = fresh_catalog()
        assert catalog.lookup("trades").is_stream
        assert not catalog.lookup("refdata").is_stream

    def test_duplicate_rejected(self):
        catalog = fresh_catalog()
        with pytest.raises(QueryError, match="already exists"):
            catalog.create_stream(TRADES)

    def test_unknown_lookup(self):
        with pytest.raises(QueryError, match="unknown"):
            fresh_catalog().lookup("nope")

    def test_drop(self):
        catalog = fresh_catalog()
        catalog.drop("trades")
        assert not catalog.exists("trades")
        with pytest.raises(QueryError):
            catalog.drop("trades")

    def test_streams_tables_listing(self):
        catalog = fresh_catalog()
        assert catalog.streams() == ["trades"]
        assert catalog.tables() == ["refdata"]

    def test_resolve_unqualified(self):
        catalog = fresh_catalog()
        assert catalog.resolve_column(
            "price", [("trades", "trades")]) == "trades.price"

    def test_resolve_ambiguous_rejected(self):
        catalog = fresh_catalog()
        with pytest.raises(QueryError, match="ambiguous"):
            catalog.resolve_column(
                "sym", [("trades", "trades"), ("refdata", "refdata")])

    def test_resolve_unknown_binding(self):
        catalog = fresh_catalog()
        with pytest.raises(QueryError, match="unknown binding"):
            catalog.resolve_column("zzz.a", [("trades", "trades")])

    def test_alias_schema(self):
        catalog = fresh_catalog()
        aliased = catalog.alias_schema("trades", "t2")
        assert aliased.sources == frozenset({"t2"})
        assert aliased.column_names() == ["sym", "price"]


class TestClassification:
    def test_snapshot_over_table(self):
        compiled = compile_query(parse("SELECT * FROM refdata"),
                                 fresh_catalog())
        assert compiled.kind == "snapshot"

    def test_continuous_over_stream(self):
        compiled = compile_query(
            parse("SELECT * FROM trades WHERE price > 1"), fresh_catalog())
        assert compiled.kind == "continuous"

    def test_windowed_when_for_loop_present(self):
        compiled = compile_query(parse(
            """SELECT * FROM trades
               for (t = 1; t < 5; t++) { WindowIs(trades, 1, t); }"""),
            fresh_catalog())
        assert compiled.kind == "windowed"
        assert compiled.window_plan is not None

    def test_stream_aggregate_without_window_rejected(self):
        with pytest.raises(QueryError, match="for-loop window"):
            compile_query(parse("SELECT AVG(price) FROM trades"),
                          fresh_catalog())

    def test_unknown_source_rejected(self):
        with pytest.raises(QueryError):
            compile_query(parse("SELECT * FROM nope"), fresh_catalog())

    def test_duplicate_binding_rejected(self):
        with pytest.raises(QueryError, match="duplicate FROM binding"):
            compile_query(parse("SELECT * FROM trades, trades"),
                          fresh_catalog())

    def test_predicate_columns_qualified(self):
        compiled = compile_query(
            parse("SELECT * FROM trades WHERE price > 1"), fresh_catalog())
        assert "trades.price" in repr(compiled.predicate)

    def test_windowis_must_name_from_binding(self):
        with pytest.raises(QueryError, match="not in FROM"):
            compile_query(parse(
                """SELECT * FROM trades
                   for (t = 1; t < 5; t++) { WindowIs(other, 1, t); }"""),
                fresh_catalog())

    def test_footprint(self):
        compiled = compile_query(
            parse("SELECT * FROM trades AS a, trades AS b "
                  "WHERE a.sym = b.sym "
                  "for (t=1; t<2; t++) { WindowIs(a,1,t); WindowIs(b,1,t); }"),
            fresh_catalog())
        assert compiled.footprint == frozenset({"a", "b"})


class TestWindowedPlanEvaluation:
    def _compiled(self, sql):
        return compile_query(parse(sql), fresh_catalog())

    def test_filters_applied_per_binding(self):
        compiled = self._compiled(
            """SELECT * FROM trades WHERE price > 10
               for (t = 1; t < 3; t++) { WindowIs(trades, 1, t); }""")
        rows = [TRADES.make("A", 5, timestamp=1),
                TRADES.make("B", 20, timestamp=2)]
        out = compiled.window_plan.evaluate({"trades": rows})
        assert [t["price"] for t in out] == [20]

    def test_projection(self):
        compiled = self._compiled(
            """SELECT sym FROM trades
               for (t = 1; t < 3; t++) { WindowIs(trades, 1, t); }""")
        out = compiled.window_plan.evaluate(
            {"trades": [TRADES.make("A", 5, timestamp=1)]})
        assert out[0].schema.column_names() == ["sym"]

    def test_aggregate_no_groups(self):
        compiled = self._compiled(
            """SELECT AVG(price) FROM trades
               for (t = 1; t < 3; t++) { WindowIs(trades, 1, t); }""")
        out = compiled.window_plan.evaluate(
            {"trades": [TRADES.make("A", 10, timestamp=1),
                        TRADES.make("B", 20, timestamp=2)]})
        assert out[0]["avg_price"] == 15.0

    def test_aggregate_empty_window_count_zero(self):
        compiled = self._compiled(
            """SELECT COUNT(*) FROM trades
               for (t = 1; t < 3; t++) { WindowIs(trades, 1, t); }""")
        out = compiled.window_plan.evaluate({"trades": []})
        assert out[0]["count"] == 0

    def test_group_by_aggregate(self):
        compiled = self._compiled(
            """SELECT sym, COUNT(*) FROM trades GROUP BY sym
               for (t = 1; t < 3; t++) { WindowIs(trades, 1, t); }""")
        out = compiled.window_plan.evaluate(
            {"trades": [TRADES.make("A", 1, timestamp=1),
                        TRADES.make("A", 2, timestamp=2),
                        TRADES.make("B", 3, timestamp=3)]})
        counts = {t["sym"]: t["count"] for t in out}
        assert counts == {"A": 2, "B": 1}

    def test_distinct(self):
        compiled = self._compiled(
            """SELECT DISTINCT sym FROM trades
               for (t = 1; t < 3; t++) { WindowIs(trades, 1, t); }""")
        out = compiled.window_plan.evaluate(
            {"trades": [TRADES.make("A", 1, timestamp=1),
                        TRADES.make("A", 2, timestamp=2)]})
        assert len(out) == 1

    def test_order_by(self):
        compiled = self._compiled(
            """SELECT sym, price FROM trades ORDER BY price DESC
               for (t = 1; t < 3; t++) { WindowIs(trades, 1, t); }""")
        out = compiled.window_plan.evaluate(
            {"trades": [TRADES.make("A", 1, timestamp=1),
                        TRADES.make("B", 9, timestamp=2)]})
        assert [t["price"] for t in out] == [9, 1]

    def test_self_join_hash_path_and_nested_loop_agree(self):
        compiled = compile_query(parse(
            """SELECT * FROM trades AS a, trades AS b
               WHERE a.sym = b.sym
               for (t=1; t<2; t++) { WindowIs(a,1,t); WindowIs(b,1,t); }"""),
            fresh_catalog())
        a_schema = Schema(TRADES.columns, name="a")
        b_schema = Schema(TRADES.columns, name="b")
        small = {
            "a": [a_schema.make(s, i, timestamp=1)
                  for i, s in enumerate("xyx")],
            "b": [b_schema.make(s, i, timestamp=1)
                  for i, s in enumerate("xy")],
        }
        big = {
            "a": small["a"],
            "b": [b_schema.make(s, i, timestamp=1)
                  for i, s in enumerate("xyxyx")],
        }
        # len(b)=2 takes the nested-loop path; len(b)=5 the hash path.
        small_out = compiled.window_plan.evaluate(small)
        big_out = compiled.window_plan.evaluate(big)
        assert len(small_out) == 3        # x-x (2 a's * 1 b) + y-y
        assert len(big_out) == 8          # 2 a-x * 3 b-x + 1 a-y * 2 b-y
