"""The unified client API: one surface, two transports.

Every scenario here runs twice — once over :class:`LocalConnection`
(in-process engine) and once over :class:`NetworkConnection` (real
loopback socket to a TelegraphCQService) — and must behave identically:
same rows, same cursor surface, same error taxonomy, same rendered
diagnostics.
"""

import pytest

from repro.errors import (ParseError, PlanCheckError, ProtocolError,
                          QueryError)
from repro.client import LocalConnection, NetworkConnection, connect
from repro.net.service import TelegraphCQService


@pytest.fixture(params=["local", "network"])
def conn(request):
    if request.param == "local":
        with LocalConnection(client="t") as c:
            yield c
        return
    service = TelegraphCQService(admin_port=None)
    service.run_in_thread()
    try:
        with connect(f"tcp://127.0.0.1:{service.port}", client="t") as c:
            yield c
    finally:
        service.close()


# ---------------------------------------------------------------------------
# connect() dispatch
# ---------------------------------------------------------------------------

def test_connect_default_is_local():
    c = connect()
    assert isinstance(c, LocalConnection)
    c.close()


def test_connect_local_keyword():
    c = connect("local")
    assert isinstance(c, LocalConnection)
    c.close()


def test_connect_tcp_address_is_network():
    service = TelegraphCQService(admin_port=None)
    service.run_in_thread()
    try:
        c = connect(f"tcp://127.0.0.1:{service.port}")
        assert isinstance(c, NetworkConnection)
        assert c.session is not None
        c.close()
    finally:
        service.close()


def test_connect_rejects_bad_address():
    with pytest.raises(ProtocolError):
        connect("tcp://nowhere")          # no port


# ---------------------------------------------------------------------------
# symmetric behavior over both transports
# ---------------------------------------------------------------------------

def test_continuous_query_same_rows(conn):
    conn.create_stream("trades", "sym", "price")
    cur = conn.submit("SELECT * FROM trades WHERE price > 100")
    assert cur.kind == "continuous"
    for sym, p in [("MSFT", 95.0), ("IBM", 120.0), ("ORCL", 101.5)]:
        conn.push("trades", sym, p)
    rows = cur.fetchall()
    assert [(r["sym"], r["price"]) for r in rows] == \
        [("IBM", 120.0), ("ORCL", 101.5)]
    assert all(hasattr(r, "timestamp") for r in rows)


def test_iteration_matches_fetch(conn):
    conn.create_stream("s", "a")
    cur = conn.submit("SELECT * FROM s WHERE a > 0")
    conn.push_rows("s", [[v] for v in range(1, 6)])
    assert [r["a"] for r in cur] == [1, 2, 3, 4, 5]
    assert cur.fetch() == []              # iteration drained everything


def test_windowed_query_same_windows(conn):
    conn.create_stream("s", "v")
    cur = conn.submit("""
        SELECT AVG(v) FROM s
        for (t = 2; t <= 4; t += 2) { WindowIs(s, t - 1, t); }""")
    assert cur.kind == "windowed"
    for i in range(1, 5):
        conn.push("s", float(i), timestamp=i)
    conn.close_stream("s")
    conn.run()
    windows = cur.fetch_windows()
    assert [(t, rows[0]["avg_v"]) for t, rows in windows] == \
        [(2, 1.5), (4, 3.5)]


def test_snapshot_query_over_table(conn):
    conn.create_table("emps", "name", "dept",
                      rows=[("ann", "eng"), ("bob", "ops"),
                            ("cat", "eng")])
    cur = conn.submit("SELECT name FROM emps WHERE dept = 'eng'")
    assert sorted(r["name"] for r in cur.fetchall()) == ["ann", "cat"]


def test_insert_into_stream_is_rejected(conn):
    conn.create_stream("s", "a")
    with pytest.raises(QueryError, match="use PUSH"):
        conn.insert("s", 1)


def test_explain_shape_is_identical(conn):
    conn.create_stream("s", "a")
    cur = conn.submit("SELECT * FROM s WHERE a > 3")
    plan = cur.explain()
    assert plan["kind"] == "continuous"
    assert isinstance(plan["operators"], list) and plan["operators"]


def test_cancel_then_push_delivers_nothing(conn):
    conn.create_stream("s", "a")
    cur = conn.submit("SELECT * FROM s")
    conn.push("s", 1)
    cur.cancel()
    conn.push("s", 2)
    # Cursor is closed; both transports treat further reads as local
    # drains of what was already buffered.
    assert len(conn.open_cursors()) == 0 if hasattr(conn, "open_cursors") \
        else True


def test_check_renders_identically_to_local(conn):
    conn.create_stream("trades", "sym", "price")
    report = conn.check(
        "SELECT * FROM trades WHERE price > 5 AND price < 3")
    local = LocalConnection()
    local.create_stream("trades", "sym", "price")
    want = local.check("SELECT * FROM trades WHERE price > 5 AND price < 3")
    assert report.render() == want.render()
    assert report.codes() == want.codes() == ["TCQ101"]
    local.close()


# ---------------------------------------------------------------------------
# the error taxonomy crosses the wire intact
# ---------------------------------------------------------------------------

QUERY_WITH_CONTRADICTION = \
    "SELECT * FROM trades WHERE price > 5 AND price < 3"


def test_plan_check_error_spans_survive_round_trip(conn):
    conn.create_stream("trades", "sym", "price")
    with pytest.raises(PlanCheckError) as exc:
        conn.submit(QUERY_WITH_CONTRADICTION)
    diag = exc.value.diagnostics[0]
    assert diag.code == "TCQ101"
    start, end = diag.span
    assert QUERY_WITH_CONTRADICTION[start:end] == "price < 3"
    # The caret rendering — file, line, source slice — is identical to
    # what the in-process engine produces.
    local = LocalConnection()
    local.create_stream("trades", "sym", "price")
    with pytest.raises(PlanCheckError) as local_exc:
        local.submit(QUERY_WITH_CONTRADICTION)
    assert [d.render() for d in exc.value.diagnostics] == \
        [d.render() for d in local_exc.value.diagnostics]
    local.close()


def test_parse_error_round_trip(conn):
    with pytest.raises(ParseError) as exc:
        conn.submit("SELEKT nope")
    local = LocalConnection()
    with pytest.raises(ParseError) as local_exc:
        local.submit("SELEKT nope")
    assert str(exc.value) == str(local_exc.value)
    local.close()


def test_query_error_round_trip(conn):
    with pytest.raises(QueryError, match="unknown"):
        conn.submit("SELECT * FROM no_such_stream")


def test_allow_unsafe_bypasses_plan_check(conn):
    conn.create_stream("trades", "sym", "price")
    cur = conn.submit(QUERY_WITH_CONTRADICTION, allow_unsafe=True)
    assert [d.code for d in cur.diagnostics] == ["TCQ101"]


def test_on_result_is_in_process_only():
    service = TelegraphCQService(admin_port=None)
    service.run_in_thread()
    try:
        conn = connect(f"tcp://127.0.0.1:{service.port}")
        conn.create_stream("s", "a")
        with pytest.raises(ProtocolError, match="in-process"):
            conn.submit("SELECT * FROM s", on_result=lambda t: None)
        conn.close()
    finally:
        service.close()
