"""Tests for PSoup: the symmetric data/query join, historical queries,
disconnected retrieval, and materialisation-vs-recompute equivalence."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.psoup import (DataSteM, OnDemandPSoup, PSoup, PSoupQuery,
                              QuerySteM, ResultsStructure)
from repro.core.tuples import Schema
from repro.errors import QueryError
from repro.query.predicates import And, ColumnComparison, Comparison, Or

READINGS = Schema.of("readings", "sensor", "temp")


def fresh():
    return PSoup(READINGS)


class TestSymmetry:
    """The paper's Figure 3 claim: new-query-over-old-data and
    new-data-over-old-query produce identical answers."""

    def test_query_first_then_data(self):
        ps = fresh()
        q = ps.register_query(Comparison("temp", ">", 20), window=100)
        for i in range(10):
            ps.push(i, 15 + i, timestamp=i + 1)
        assert len(ps.invoke(q)) == 4   # temps 21..24 at ts 7..10

    def test_data_first_then_query(self):
        ps = fresh()
        for i in range(10):
            ps.push(i, 15 + i, timestamp=i + 1)
        q = ps.register_query(Comparison("temp", ">", 20), window=100)
        assert len(ps.invoke(q)) == 4

    def test_interleaved_equals_either_order(self):
        def run(order):
            ps = fresh()
            q = None
            for action in order:
                if action == "q":
                    q = ps.register_query(Comparison("temp", ">", 0),
                                          window=100)
                else:
                    ps.push(0, action, timestamp=ps.clock + 1)
            return sorted(t["temp"] for t in ps.invoke(q))

        assert run([1, 2, "q", 3, 4]) == run([1, 2, 3, 4, "q"]) == \
            run(["q", 1, 2, 3, 4])


class TestWindows:
    def test_window_imposed_at_invoke(self):
        ps = fresh()
        q = ps.register_query(Comparison("temp", ">", 0), window=5)
        for ts in range(1, 21):
            ps.push(0, ts, timestamp=ts)
        result = ps.invoke(q)
        assert sorted(t.timestamp for t in result) == [16, 17, 18, 19, 20]

    def test_invoke_at_past_instant(self):
        ps = fresh()
        q = ps.register_query(Comparison("temp", ">", 0), window=3)
        for ts in range(1, 11):
            ps.push(0, ts, timestamp=ts)
        result = ps.invoke(q, now=5)
        assert sorted(t.timestamp for t in result) == [3, 4, 5]

    def test_different_windows_per_query(self):
        ps = fresh()
        q_small = ps.register_query(Comparison("temp", ">", 0), window=2)
        q_large = ps.register_query(Comparison("temp", ">", 0), window=8)
        for ts in range(1, 11):
            ps.push(0, ts, timestamp=ts)
        assert len(ps.invoke(q_small)) == 2
        assert len(ps.invoke(q_large)) == 8

    def test_bad_window_rejected(self):
        ps = fresh()
        with pytest.raises(QueryError):
            ps.register_query(Comparison("temp", ">", 0), window=0)


class TestDisconnectedOperation:
    def test_results_materialised_while_away(self):
        """Compute/delivery separation: answers accumulate while the
        client is disconnected and are ready at reconnect."""
        ps = fresh()
        q = ps.register_query(Comparison("temp", ">", 50), window=1000)
        # client "disconnects"; data keeps flowing
        for ts in range(1, 101):
            ps.push(0, ts, timestamp=ts)
        # client returns: one cheap retrieval
        assert len(ps.invoke(q)) == 50

    def test_multiple_invokes_idempotent(self):
        ps = fresh()
        q = ps.register_query(Comparison("temp", ">", 0), window=100)
        ps.push(0, 5, timestamp=1)
        assert ps.invoke(q) == ps.invoke(q)

    def test_remove_query(self):
        ps = fresh()
        q = ps.register_query(Comparison("temp", ">", 0), window=10)
        ps.remove_query(q)
        with pytest.raises(QueryError):
            ps.invoke(q)


class TestQuerySteM:
    def test_probe_returns_satisfied_queries(self):
        stem = QuerySteM()
        stem.insert(PSoupQuery(0, Comparison("temp", ">", 10), window=5))
        stem.insert(PSoupQuery(1, Comparison("temp", "<", 0), window=5))
        t = READINGS.make(0, 15, timestamp=1)
        assert stem.probe(t) == {0}

    def test_residual_or_predicate(self):
        stem = QuerySteM()
        stem.insert(PSoupQuery(0, Or(Comparison("temp", ">", 100),
                                     Comparison("sensor", "==", 7)),
                               window=5))
        assert stem.probe(READINGS.make(7, 0, timestamp=1)) == {0}
        assert stem.probe(READINGS.make(1, 0, timestamp=1)) == set()

    def test_join_queries_rejected(self):
        with pytest.raises(QueryError, match="single-stream"):
            PSoupQuery(0, ColumnComparison("a.x", "==", "b.y"), window=5)

    def test_remove(self):
        stem = QuerySteM()
        stem.insert(PSoupQuery(0, Comparison("temp", ">", 10), window=5))
        stem.remove(0)
        assert stem.probe(READINGS.make(0, 50, timestamp=1)) == set()
        assert len(stem) == 0

    def test_max_window(self):
        stem = QuerySteM()
        stem.insert(PSoupQuery(0, Comparison("temp", ">", 1), window=5))
        stem.insert(PSoupQuery(1, Comparison("temp", ">", 1), window=50))
        assert stem.max_window() == 50


class TestDataSteM:
    def test_ordering_enforced(self):
        stem = DataSteM()
        stem.insert(READINGS.make(0, 1, timestamp=5))
        with pytest.raises(QueryError, match="timestamp order"):
            stem.insert(READINGS.make(0, 1, timestamp=3))

    def test_timestamps_required(self):
        stem = DataSteM()
        with pytest.raises(QueryError):
            stem.insert(READINGS.make(0, 1))

    def test_evict_before(self):
        stem = DataSteM()
        for ts in range(1, 11):
            stem.insert(READINGS.make(0, ts, timestamp=ts))
        assert stem.evict_before(6) == 5
        assert len(stem) == 5


class TestVacuum:
    def test_vacuum_respects_max_window(self):
        ps = fresh()
        ps.register_query(Comparison("temp", ">", 0), window=5)
        for ts in range(1, 101):
            ps.push(0, ts, timestamp=ts)
        dropped = ps.vacuum()
        assert dropped["data"] == 95
        assert len(ps.data_stem) == 5

    def test_vacuum_prunes_results(self):
        ps = fresh()
        q = ps.register_query(Comparison("temp", ">", 0), window=5)
        for ts in range(1, 101):
            ps.push(0, ts, timestamp=ts)
        before = ps.results.size(q.qid)
        ps.vacuum()
        assert ps.results.size(q.qid) == 5 < before
        # invoke still correct after vacuum
        assert len(ps.invoke(q)) == 5


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(-20, 80), min_size=1, max_size=60),
       st.integers(1, 30),
       st.sampled_from([">", "<", ">=", "=="]),
       st.integers(0, 50))
def test_materialised_equals_on_demand(temps, window, op, threshold):
    """Property: PSoup's materialised invoke() and the recompute-on-
    demand baseline return identical answers."""
    pred = Comparison("temp", op, threshold)
    ps = PSoup(READINGS)
    od = OnDemandPSoup(READINGS)
    q_ps = ps.register_query(pred, window=window)
    q_od = od.register_query(pred, window=window)
    for i, temp in enumerate(temps):
        ps.push(i % 4, temp, timestamp=i + 1)
        od.push(i % 4, temp, timestamp=i + 1)
    got = sorted((t.timestamp, t["temp"]) for t in ps.invoke(q_ps))
    want = sorted((t.timestamp, t["temp"]) for t in od.invoke(q_od))
    assert got == want
