"""Unit tests for SteMs: build/probe/evict, indexes, cache and
rendezvous variants, and the duplicate-suppression rule."""

import pytest

from repro.core.stem import CacheSteM, RendezvousBuffer, SteM
from repro.core.tuples import Schema
from repro.errors import PlanError
from repro.query.predicates import ColumnComparison

S = Schema.of("S", "k", "x")
T = Schema.of("T", "k", "y")
JOIN = ColumnComparison("S.k", "==", "T.k")


class TestBuildProbe:
    def test_build_wrong_source_rejected(self):
        stem = SteM("S")
        with pytest.raises(PlanError, match="home source"):
            stem.build(T.make(1, 2))

    def test_probe_returns_concatenated_matches(self):
        stem = SteM("S")
        s = S.make(1, 10)
        stem.build(s)
        t = T.make(1, 20)
        matches = stem.probe(t, [JOIN])
        assert len(matches) == 1
        assert matches[0].sources == frozenset({"S", "T"})
        assert matches[0]["S.x"] == 10
        assert matches[0]["T.y"] == 20

    def test_probe_respects_predicate(self):
        stem = SteM("S")
        stem.build(S.make(1, 10))
        assert stem.probe(T.make(2, 20), [JOIN]) == []

    def test_arrival_order_dedup(self):
        """Only earlier-arriving stored tuples match — the later tuple
        of a pair generates it, so each pair appears exactly once."""
        stem_s = SteM("S")
        stem_t = SteM("T")
        s = S.make(1, 0)
        t = T.make(1, 0)        # t arrives after s
        stem_s.build(s)
        stem_t.build(t)
        assert len(stem_s.probe(t, [JOIN])) == 1    # later probes earlier
        assert len(stem_t.probe(s, [JOIN])) == 0    # earlier can't re-pair

    def test_dedup_can_be_disabled(self):
        stem_s = SteM("S")
        s = S.make(1, 0)
        t = T.make(1, 0)
        stem_s.build(s)
        assert len(stem_s.probe(t, [JOIN], dedupe_by_arrival=False)) == 1
        # And symmetric probing without dedup would double-produce:
        stem_t = SteM("T")
        stem_t.build(t)
        assert len(stem_t.probe(s, [JOIN], dedupe_by_arrival=False)) == 1

    def test_dead_tuples_skipped(self):
        stem = SteM("S")
        s = S.make(1, 10)
        stem.build(s)
        s.dead = True
        assert stem.probe(T.make(1, 20), [JOIN]) == []

    def test_probe_stored_returns_stored_side(self):
        stem = SteM("S")
        s = S.make(1, 10)
        stem.build(s)
        stored = stem.probe_stored(T.make(1, 20), [JOIN])
        assert stored == [s]

    def test_counters(self):
        stem = SteM("S")
        stem.build(S.make(1, 0))
        stem.probe(T.make(1, 0), [JOIN])
        assert stem.builds == 1
        assert stem.probes == 1
        assert stem.matches_out == 1


class TestIndexes:
    def test_index_lookup_equivalent_to_scan(self):
        indexed = SteM("S", index_columns=["S.k"])
        plain = SteM("S")
        rows = [S.make(i % 5, i) for i in range(50)]
        for r in rows:
            indexed.build(S.make(*r.values))
            plain.build(S.make(*r.values))
        probe = T.make(3, 99)
        got_indexed = sorted(m.values for m in indexed.probe(probe, [JOIN]))
        got_plain = sorted(m.values for m in plain.probe(probe, [JOIN]))
        assert got_indexed == got_plain
        assert len(got_indexed) == 10

    def test_add_index_retrofits_existing_content(self):
        stem = SteM("S")
        stem.build(S.make(1, 10))
        stem.add_index("S.k")
        assert len(stem.probe(T.make(1, 0), [JOIN])) == 1

    def test_add_index_idempotent(self):
        stem = SteM("S", index_columns=["S.k"])
        stem.build(S.make(1, 10))
        stem.add_index("S.k")
        assert len(stem.probe(T.make(1, 0), [JOIN])) == 1


class TestEviction:
    def test_evict_before_timestamp(self):
        stem = SteM("S", index_columns=["S.k"])
        for ts in range(10):
            stem.build(S.make(ts % 2, ts, timestamp=ts))
        evicted = stem.evict_before(5)
        assert evicted == 5
        assert len(stem) == 5
        # Index consistency after eviction:
        matches = stem.probe(T.make(0, 0, timestamp=99), [JOIN])
        assert all(m["S.x"] >= 5 for m in matches)

    def test_evict_where(self):
        stem = SteM("S", index_columns=["S.k"])
        for i in range(6):
            stem.build(S.make(i, i, timestamp=i))
        evicted = stem.evict_where(lambda t: t["x"] % 2 == 0)
        assert evicted == 3
        assert len(stem) == 3

    def test_contents_snapshot(self):
        stem = SteM("S")
        s = S.make(1, 2)
        stem.build(s)
        assert stem.contents() == [s]
        assert stem.state_size() == 1


class TestCacheSteM:
    def test_lru_bounded(self):
        cache = CacheSteM("S", capacity=2, index_columns=["S.k"])
        for i in range(4):
            cache.build(S.make(i, i, timestamp=i))
        assert len(cache) == 2
        assert not cache.lookup("S.k", 0)     # evicted
        assert cache.lookup("S.k", 3)

    def test_hit_miss_counters(self):
        cache = CacheSteM("S", capacity=10, index_columns=["S.k"])
        cache.build(S.make(1, 1))
        cache.lookup("S.k", 1)
        cache.lookup("S.k", 2)
        assert cache.hits == 1
        assert cache.misses == 1

    def test_lookup_without_index_scans(self):
        cache = CacheSteM("S", capacity=10)
        cache.build(S.make(1, 7))
        assert cache.lookup("k", 1)


class TestRendezvousBuffer:
    def test_hold_and_settle(self):
        buf = RendezvousBuffer("S")
        s = S.make(1, 2)
        buf.hold(s)
        assert buf.pending_count() == 1
        buf.settle(s)
        assert buf.pending_count() == 0

    def test_settle_unknown_is_noop(self):
        buf = RendezvousBuffer("S")
        buf.settle(S.make(1, 2))
        assert buf.pending_count() == 0


class TestBatchBuildProbe:
    """build_batch / probe_batch must be drop-in vectorizations: same
    matches, same counters, one-pass key hashing with an index."""

    def _streams(self, n=20, key_mod=5):
        s_rows = [S.make(i % key_mod, i, timestamp=i) for i in range(n)]
        t_rows = [T.make(i % key_mod, i * 10, timestamp=n + i)
                  for i in range(n)]
        return s_rows, t_rows

    def test_build_batch_equals_per_tuple_builds(self):
        from repro.core.tuples import TupleBatch
        s_rows, _t = self._streams()
        one = SteM("S", index_columns=["S.k"])
        for t in s_rows:
            one.build(t)
        many = SteM("S", index_columns=["S.k"])
        many.build_batch(TupleBatch.from_tuples(s_rows))
        assert many.builds == one.builds == len(s_rows)
        assert many.contents() == one.contents() == s_rows

    def test_build_batch_wrong_source_rejected(self):
        from repro.core.tuples import TupleBatch
        _s, t_rows = self._streams()
        stem = SteM("S")
        with pytest.raises(PlanError, match="home source"):
            stem.build_batch(TupleBatch.from_tuples(t_rows))

    @pytest.mark.parametrize("indexed", [True, False])
    def test_probe_batch_matches_and_counters(self, indexed):
        from repro.core.tuples import TupleBatch
        s_rows, t_rows = self._streams()
        cols = ["S.k"] if indexed else []
        one = SteM("S", index_columns=cols)
        many = SteM("S", index_columns=cols)
        for t in s_rows:
            one.build(t)
            many.build(t)
        expected = []
        per_row_hits = []
        for t in t_rows:
            found = one.probe(t, [JOIN])
            expected.extend(found)
            per_row_hits.append(bool(found))
        matches, hits = many.probe_batch(
            TupleBatch.from_tuples(t_rows), [JOIN])
        key = lambda m: tuple(sorted(m.as_dict().items()))
        assert sorted(map(key, matches)) == sorted(map(key, expected))
        assert hits == per_row_hits
        assert many.probes == one.probes == len(t_rows)
        assert many.matches_out == one.matches_out
        assert many.batch_probes == 1

    def test_probe_batch_skips_dead_and_later_arrivals(self):
        from repro.core.tuples import TupleBatch
        s_rows, t_rows = self._streams(n=6, key_mod=2)
        stem = SteM("S", index_columns=["S.k"])
        for t in s_rows:
            stem.build(t)
        s_rows[0].dead = True
        reference = [len(stem.probe(t, [JOIN], dedupe_by_arrival=True))
                     for t in t_rows]
        stem2 = SteM("S", index_columns=["S.k"])
        s2, t2 = self._streams(n=6, key_mod=2)
        for t in s2:
            stem2.build(t)
        s2[0].dead = True
        matches, hits = stem2.probe_batch(TupleBatch.from_tuples(t2), [JOIN])
        assert len(matches) == sum(reference)
        assert hits == [n > 0 for n in reference]
