"""Unit tests for schemas, tuples, and lineage."""

import pytest
from hypothesis import given, strategies as st

from repro.core.tuples import Column, Punctuation, Schema, Tuple, is_eos
from repro.errors import SchemaError


class TestSchema:
    def test_of_constructor(self):
        s = Schema.of("S", "a", "b")
        assert s.column_names() == ["a", "b"]
        assert s.sources == frozenset({"S"})
        assert s.name == "S"

    def test_index_of(self):
        s = Schema.of("S", "a", "b")
        assert s.index_of("a") == 0
        assert s.index_of("b") == 1

    def test_index_of_unknown_raises(self):
        s = Schema.of("S", "a")
        with pytest.raises(SchemaError, match="no column"):
            s.index_of("zzz")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema([Column("a"), Column("a")])

    def test_qualified_fallback_single_source(self):
        s = Schema.of("S", "a", "b")
        assert s.has_column("S.a")
        assert s.index_of("S.a") == 0

    def test_qualified_fallback_wrong_source(self):
        s = Schema.of("S", "a")
        assert not s.has_column("T.a")

    def test_make_validates_arity(self):
        s = Schema.of("S", "a", "b")
        with pytest.raises(SchemaError, match="expected 2"):
            s.make(1)

    def test_make_validates_dtype(self):
        s = Schema([Column("a", int)], name="S")
        with pytest.raises(SchemaError, match="expects int"):
            s.make("not an int")

    def test_make_allows_none_regardless_of_dtype(self):
        s = Schema([Column("a", int)], name="S")
        assert s.make(None)["a"] is None

    def test_join_qualifies_all_columns(self):
        s = Schema.of("S", "a", "x")
        t = Schema.of("T", "a", "y")
        j = s.join(t)
        assert j.column_names() == ["S.a", "S.x", "T.a", "T.y"]
        assert j.sources == frozenset({"S", "T"})

    def test_join_unique_suffix_alias(self):
        s = Schema.of("S", "a", "x")
        t = Schema.of("T", "a", "y")
        j = s.join(t)
        # "x" and "y" are unambiguous suffixes; "a" is not.
        assert j.has_column("x")
        assert j.has_column("y")
        assert not j.has_column("a")

    def test_three_way_join(self):
        s = Schema.of("S", "k")
        t = Schema.of("T", "k")
        u = Schema.of("U", "k")
        j = s.join(t).join(u)
        assert j.sources == frozenset({"S", "T", "U"})
        assert j.column_names() == ["S.k", "T.k", "U.k"]

    def test_equality_and_hash(self):
        a = Schema.of("S", "a")
        b = Schema.of("S", "a")
        assert a == b
        assert hash(a) == hash(b)


class TestTuple:
    def test_getitem_and_get(self, simple_schema):
        t = simple_schema.make(1, 2)
        assert t["a"] == 1
        assert t.get("missing", 42) == 42

    def test_as_dict(self, simple_schema):
        assert simple_schema.make(1, 2).as_dict() == {"a": 1, "b": 2}

    def test_iter_len(self, simple_schema):
        t = simple_schema.make(1, 2)
        assert list(t) == [1, 2]
        assert len(t) == 2

    def test_value_equality_ignores_lineage(self, simple_schema):
        t1 = simple_schema.make(1, 2)
        t2 = simple_schema.make(1, 2)
        t1.done = 7
        assert t1 == t2
        assert hash(t1) == hash(t2)

    def test_tids_are_unique_and_increasing(self, simple_schema):
        a = simple_schema.make(1, 2)
        b = simple_schema.make(3, 4)
        assert b.tid > a.tid

    def test_mark_done_and_is_done(self, simple_schema):
        t = simple_schema.make(1, 2)
        t.mark_done(0b01)
        assert not t.is_done(0b11)
        t.mark_done(0b10)
        assert t.is_done(0b11)

    def test_kill_query_requires_initialised_lineage(self, simple_schema):
        t = simple_schema.make(1, 2)
        with pytest.raises(ValueError):
            t.kill_query(1)
        t.queries = 0b111
        t.kill_query(0b010)
        assert t.queries == 0b101

    def test_concat_values_and_sources(self):
        s = Schema.of("S", "a")
        u = Schema.of("T", "b")
        joined = s.make(1, timestamp=5).concat(u.make(2, timestamp=9))
        assert joined.values == (1, 2)
        assert joined.sources == frozenset({"S", "T"})
        assert joined.timestamp == 9

    def test_concat_unions_done_bits(self):
        s = Schema.of("S", "a")
        u = Schema.of("T", "b")
        a = s.make(1)
        b = u.make(2)
        a.done = 0b001
        b.done = 0b100
        assert a.concat(b).done == 0b101

    def test_concat_intersects_query_lineage(self):
        s = Schema.of("S", "a")
        u = Schema.of("T", "b")
        a = s.make(1)
        b = u.make(2)
        a.queries = 0b110
        b.queries = 0b011
        assert a.concat(b).queries == 0b010

    def test_concat_tracks_base_lineage(self):
        s = Schema.of("S", "a")
        u = Schema.of("T", "b")
        a = s.make(1)
        b = u.make(2)
        j = a.concat(b)
        assert j.base_id_set() == {a.tid, b.tid}
        assert j.max_base == max(a.tid, b.tid)

    def test_base_id_set_lazy_for_base_tuples(self, simple_schema):
        t = simple_schema.make(1, 2)
        assert t.base_ids is None
        assert t.base_id_set() == {t.tid}

    def test_qualified_access_on_base_tuple(self):
        s = Schema.of("S", "a")
        assert s.make(7)["S.a"] == 7


class TestPunctuation:
    def test_eos(self):
        p = Punctuation.eos("src")
        assert is_eos(p)
        assert p.source == "src"

    def test_window_boundary_is_not_eos(self):
        assert not is_eos(Punctuation.window_boundary())

    def test_tuples_are_not_eos(self, simple_schema):
        assert not is_eos(simple_schema.make(1, 2))


@given(st.lists(st.integers(), min_size=1, max_size=8),
       st.lists(st.integers(), min_size=1, max_size=8))
def test_concat_is_value_concatenation(xs, ys):
    sa = Schema([Column(f"a{i}") for i in range(len(xs))], name="A")
    sb = Schema([Column(f"b{i}") for i in range(len(ys))], name="B")
    joined = sa.make(*xs).concat(sb.make(*ys))
    assert joined.values == tuple(xs) + tuple(ys)


class TestTupleBatch:
    def _rows(self, n=5):
        s = Schema.of("S", "a", "b")
        return s, [s.make(i, i * 10, timestamp=i) for i in range(n)]

    def test_from_tuples_roundtrip(self):
        from repro.core.tuples import TupleBatch
        s, rows = self._rows()
        batch = TupleBatch.from_tuples(rows)
        assert len(batch) == 5
        assert batch.schema is s
        assert batch.column("a") == [0, 1, 2, 3, 4]
        assert batch.column("b") == [0, 10, 20, 30, 40]
        assert batch.materialize() == rows       # row-backed: same objects

    def test_empty_needs_schema(self):
        from repro.core.tuples import TupleBatch
        s, _rows = self._rows()
        with pytest.raises(SchemaError):
            TupleBatch.from_tuples([])
        empty = TupleBatch.from_tuples([], schema=s)
        assert len(empty) == 0
        assert empty.materialize() == []

    def test_partition_splits_by_mask(self):
        from repro.core.tuples import TupleBatch
        _s, rows = self._rows()
        batch = TupleBatch.from_tuples(rows)
        passed, failed = batch.partition([True, False, True, False, True])
        assert passed.column("a") == [0, 2, 4]
        assert failed.column("a") == [1, 3]

    def test_partition_all_pass_returns_self(self):
        from repro.core.tuples import TupleBatch
        _s, rows = self._rows()
        batch = TupleBatch.from_tuples(rows)
        passed, failed = batch.partition([True] * 5)
        assert passed is batch
        assert len(failed) == 0

    def test_mark_done_propagates_to_rows(self):
        """Row-backed batches must keep their rows' lineage in sync:
        SteMs may hold aliases of those rows."""
        from repro.core.tuples import TupleBatch
        _s, rows = self._rows()
        batch = TupleBatch.from_tuples(rows)
        batch.mark_done(0b100)
        assert batch.done & 0b100
        assert all(t.done & 0b100 for t in rows)

    def test_mark_dead_propagates_to_rows(self):
        from repro.core.tuples import TupleBatch
        _s, rows = self._rows()
        batch = TupleBatch.from_tuples(rows)
        batch.mark_dead()
        assert all(t.dead for t in rows)

    def test_materialize_builds_rows_from_columns(self):
        """A columnar batch without backing rows materializes fresh
        tuples carrying the batch's shared lineage."""
        from repro.core.tuples import TupleBatch
        s, rows = self._rows(3)
        columnar = TupleBatch(schema=s,
                              columns=[[7, 8, 9], [70, 80, 90]],
                              timestamps=[1, 2, 3])
        columnar.mark_done(0b10)
        out = columnar.materialize()
        assert [t["a"] for t in out] == [7, 8, 9]
        assert [t.timestamp for t in out] == [1, 2, 3]
        assert all(t.done & 0b10 for t in out)

    def test_take_selects_indexes(self):
        from repro.core.tuples import TupleBatch
        _s, rows = self._rows()
        batch = TupleBatch.from_tuples(rows)
        taken = batch.take([4, 0])
        assert taken.column("a") == [4, 0]

    def test_representative_shares_lineage(self):
        from repro.core.tuples import TupleBatch
        _s, rows = self._rows()
        batch = TupleBatch.from_tuples(rows)
        rep = batch.representative()
        assert rep.sources == batch.sources
        assert rep.done == batch.done

    def test_mixed_lineage_rejected(self):
        from repro.core.tuples import TupleBatch
        _s, rows = self._rows()
        rows[2].mark_done(0b1)
        with pytest.raises(SchemaError):
            TupleBatch.from_tuples(rows)
