"""Tests for nested eddies — scoped adaptivity (§2.2)."""

import pytest

from repro.core.eddy import Eddy, FilterOperator, SteMOperator
from repro.core.nested_eddy import SubEddyOperator, nested_filter_scope
from repro.core.routing import LotteryPolicy, RandomPolicy
from repro.core.stem import SteM
from repro.core.tuples import Schema
from repro.errors import PlanError
from repro.fjords.fjord import Fjord
from repro.fjords.module import CollectingSink
from repro.query.predicates import ColumnComparison, Comparison
from tests.conftest import ListFeed, reference_join, values_of

S = Schema.of("S", "k", "x")
T = Schema.of("T", "k", "y")
JOIN = ColumnComparison("S.k", "==", "T.k")


def two_stream_rows(n=10, seed=2):
    import random
    rng = random.Random(seed)
    rows = []
    for i in range(n):
        rows.append(S.make(rng.randrange(3), i, timestamp=i))
        rows.append(T.make(rng.randrange(3), i * 10, timestamp=i))
    return rows


def run(ops, rows, output_sources, policy=None):
    eddy = Eddy(ops, output_sources=output_sources, policy=policy)
    f = Fjord()
    sink = CollectingSink()
    f.connect(ListFeed(rows), eddy)
    f.connect(eddy, sink)
    f.run_until_finished()
    return sink, eddy


class TestFilterSubEddy:
    def test_scoped_filters_match_flat_filters(self):
        preds = [Comparison("S.x", ">", 1), Comparison("S.x", "<", 8)]
        rows = [S.make(i % 3, i, timestamp=i) for i in range(20)]
        flat_sink, _ = run([FilterOperator(p, name=f"f{i}")
                            for i, p in enumerate(preds)],
                           [S.make(i % 3, i, timestamp=i)
                            for i in range(20)], {"S"})
        nested_sink, _ = run([nested_filter_scope(preds, "S")],
                             rows, {"S"})
        assert values_of(nested_sink.results) == values_of(flat_sink.results)

    def test_failed_tuple_killed_at_boundary(self):
        scope = nested_filter_scope([Comparison("S.x", ">", 100)], "S")
        sink, _ = run([scope], [S.make(1, 1, timestamp=1)], {"S"})
        assert sink.results == []

    def test_empty_scope_rejected(self):
        inner = Eddy([FilterOperator(Comparison("x", ">", 1))],
                     output_sources={"S"})
        with pytest.raises(PlanError, match="non-empty"):
            SubEddyOperator(inner, scope_sources=[])


class TestJoinUnderScopedFilters:
    def test_join_with_two_filter_scopes(self):
        """Outer eddy: SteM_S, SteM_T, and one filter sub-eddy per
        source — the paper's picture of scoped adaptivity."""
        rows = two_stream_rows()
        s_scope = nested_filter_scope([Comparison("S.x", ">", 1)], "S",
                                      policy=RandomPolicy(seed=1))
        t_scope = nested_filter_scope([Comparison("T.y", "<", 80)], "T",
                                      policy=RandomPolicy(seed=2))
        ops = [SteMOperator(SteM("S", ["S.k"]), [JOIN]),
               SteMOperator(SteM("T", ["T.k"]), [JOIN]),
               s_scope, t_scope]
        sink, _ = run(ops, rows, {"S", "T"},
                      policy=LotteryPolicy(seed=3))
        s_rows = [r for r in two_stream_rows() if "S" in r.sources]
        t_rows = [r for r in two_stream_rows() if "T" in r.sources]
        expected = reference_join(
            s_rows, t_rows, JOIN,
            extra=Comparison("S.x", ">", 1) & Comparison("T.y", "<", 80))
        assert values_of(sink.results) == expected

    def test_inner_join_sub_eddy(self):
        """A whole join as one sub-eddy under an outer filter."""
        rows = two_stream_rows()
        inner = Eddy([SteMOperator(SteM("S", ["S.k"]), [JOIN]),
                      SteMOperator(SteM("T", ["T.k"]), [JOIN])],
                     output_sources={"S", "T"},
                     policy=RandomPolicy(seed=4), name="join-scope")
        ops = [SubEddyOperator(inner, scope_sources={"S", "T"}),
               FilterOperator(Comparison("S.x", ">", 3))]
        sink, _ = run(ops, rows, {"S", "T"}, policy=LotteryPolicy(seed=5))
        s_rows = [r for r in two_stream_rows() if "S" in r.sources]
        t_rows = [r for r in two_stream_rows() if "T" in r.sources]
        expected = reference_join(s_rows, t_rows, JOIN,
                                  extra=Comparison("S.x", ">", 3))
        assert values_of(sink.results) == expected


class TestOverheadScoping:
    def test_outer_decisions_bounded_by_scope_count(self):
        """The paper's overhead claim: inner modules 'do not contribute'
        to the outer eddy's decision-making."""
        preds_s = [Comparison("S.x", ">", i) for i in range(-5, 0)]
        rows = [S.make(i % 3, i, timestamp=i) for i in range(500)]
        # flat: 5 operators in one eddy
        flat_ops = [FilterOperator(p, name=f"f{i}")
                    for i, p in enumerate(preds_s)]
        _sink, flat = run(flat_ops,
                          [S.make(i % 3, i, timestamp=i)
                           for i in range(500)],
                          {"S"}, policy=LotteryPolicy(seed=6))
        # nested: the same 5 filters inside one scope
        scope = nested_filter_scope(preds_s, "S",
                                    policy=LotteryPolicy(seed=6))
        _sink2, outer = run([scope], rows, {"S"},
                            policy=LotteryPolicy(seed=6))
        # the outer eddy has a single eligible operator per tuple: no
        # policy consultations at all
        assert outer.routing_decisions == 0
        assert flat.routing_decisions > 0
        # total adaptivity still happens, inside the scope
        assert scope.inner.routing_decisions > 0

    def test_sub_eddy_decision_count_exposed(self):
        scope = nested_filter_scope(
            [Comparison("S.x", ">", 0), Comparison("S.x", "<", 9)], "S")
        for i in range(10):
            scope.handle(S.make(1, i % 10, timestamp=i))
        assert scope.decision_count() == scope.inner.routing_decisions
