"""Tests for the three baselines: static iterator plans, per-query CQ
processing, and the NiagaraCQ-style grouped engine — including their
agreement with CACQ on answers (they differ in cost, never results)."""

import pytest

from repro.baselines.niagara import NiagaraEngine
from repro.baselines.per_query import PerQueryEngine
from repro.baselines.static_plan import (FilterIterator, HashJoinIterator,
                                         ProjectIterator, ScanIterator,
                                         StaticFilterPlan, best_static_work)
from repro.core.cacq import CACQEngine
from repro.core.tuples import Schema
from repro.errors import PlanError, QueryError
from repro.query.predicates import And, ColumnComparison, Comparison
from tests.conftest import values_of

TRADES = Schema.of("trades", "sym", "price")


def trades_rows(n=30):
    return [TRADES.make(["A", "B", "C"][i % 3], float(i), timestamp=i)
            for i in range(n)]


class TestIterators:
    def test_scan_filter_project(self):
        rows = trades_rows()
        plan = ProjectIterator(
            FilterIterator(ScanIterator(rows), Comparison("price", ">", 20)),
            ["sym"])
        out = list(plan)
        assert len(out) == 9
        assert out[0].schema.column_names() == ["sym"]

    def test_hash_join(self):
        ref = Schema.of("ref", "sym", "sector")
        ref_rows = [ref.make("A", "tech"), ref.make("B", "bank")]
        join = HashJoinIterator(ScanIterator(ref_rows),
                                ScanIterator(trades_rows(6)),
                                build_key="sym", probe_key="sym")
        out = list(join)
        assert len(out) == 4            # A and B trades match, C doesn't

    def test_hash_join_residual(self):
        ref = Schema.of("ref", "sym", "floor")
        join = HashJoinIterator(
            ScanIterator([ref.make("A", 10.0)]),
            ScanIterator(trades_rows(9)),
            build_key="sym", probe_key="sym",
            residual=ColumnComparison("trades.price", ">", "ref.floor"))
        assert all(t["trades.price"] > 10 for t in join)


class TestStaticFilterPlan:
    def test_orders_by_estimates(self):
        p_loose = Comparison("price", ">", -1)      # passes everything
        p_tight = Comparison("price", ">", 25)
        plan = StaticFilterPlan([p_loose, p_tight],
                                estimated_selectivities=[0.99, 0.1])
        assert plan.predicates[0] is p_tight

    def test_estimate_arity_checked(self):
        with pytest.raises(PlanError):
            StaticFilterPlan([Comparison("price", ">", 1)],
                             estimated_selectivities=[0.5, 0.5])

    def test_work_accounting_short_circuits(self):
        rows = trades_rows(10)
        tight_first = StaticFilterPlan([Comparison("price", ">", 100),
                                        Comparison("price", ">", -1)])
        tight_first.run(rows)
        loose_first = StaticFilterPlan([Comparison("price", ">", -1),
                                        Comparison("price", ">", 100)])
        loose_first.run(rows)
        assert tight_first.evaluations == 10       # second never runs
        assert loose_first.evaluations == 20

    def test_results_independent_of_order(self):
        rows = trades_rows(30)
        preds = [Comparison("price", ">", 5), Comparison("sym", "==", "A")]
        a = StaticFilterPlan(list(preds)).run(rows)
        b = StaticFilterPlan(list(reversed(preds))).run(rows)
        assert values_of(a) == values_of(b)

    def test_best_static_work_oracle(self):
        rows = trades_rows(20)
        preds = [Comparison("price", ">", 100),    # kills everything
                 Comparison("sym", "==", "A")]
        work, order = best_static_work(rows, preds)
        # best order runs the killer filter first: 20 + 0 evaluations
        assert work == 20
        assert order[0] == 0


class TestPerQueryEngine:
    def test_selection(self):
        engine = PerQueryEngine()
        engine.register_stream(TRADES)
        q = engine.add_query(["trades"], Comparison("price", ">", 10))
        for t in trades_rows(20):
            engine.push_tuple("trades", t)
        assert len(q.results) == 9

    def test_evaluation_cost_linear_in_queries(self):
        engine = PerQueryEngine()
        engine.register_stream(TRADES)
        for i in range(50):
            engine.add_query(["trades"], Comparison("price", ">", i))
        engine.push("trades", sym="A", price=100.0)
        assert engine.predicate_evaluations == 50    # no sharing

    def test_join(self):
        quotes = Schema.of("quotes", "sym", "bid")
        engine = PerQueryEngine()
        engine.register_stream(TRADES)
        engine.register_stream(quotes)
        q = engine.add_query(
            ["trades", "quotes"],
            ColumnComparison("trades.sym", "==", "quotes.sym"))
        engine.push("trades", sym="A", price=1.0, timestamp=1)
        engine.push("quotes", sym="A", bid=2.0, timestamp=2)
        assert len(q.results) == 1

    def test_three_stream_join_unsupported(self):
        engine = PerQueryEngine()
        for name in ("a", "b", "c"):
            engine.register_stream(Schema.of(name, "k"))
        q = engine.add_query(["a", "b", "c"], Comparison("k", ">", 0))
        with pytest.raises(QueryError):
            engine.push("a", k=1)


class TestNiagaraEngine:
    def test_equality_groups_hash(self):
        engine = NiagaraEngine()
        engine.register_stream(TRADES)
        qa = engine.add_query(["trades"], Comparison("sym", "==", "A"))
        qb = engine.add_query(["trades"], Comparison("sym", "==", "B"))
        engine.push("trades", sym="A", price=1.0)
        assert len(qa.results) == 1
        assert len(qb.results) == 0
        # equality groups never scan
        assert engine.stats()["range_scans"] == 0

    def test_range_groups_scan_linearly(self):
        engine = NiagaraEngine()
        engine.register_stream(TRADES)
        for i in range(20):
            engine.add_query(["trades"], Comparison("price", ">", i))
        engine.push("trades", sym="A", price=100.0)
        assert engine.stats()["range_scans"] == 20    # the published gap

    def test_multi_factor_query(self):
        engine = NiagaraEngine()
        engine.register_stream(TRADES)
        q = engine.add_query(["trades"],
                             And(Comparison("sym", "==", "A"),
                                 Comparison("price", ">", 10)))
        engine.push("trades", sym="A", price=20.0)
        engine.push("trades", sym="A", price=5.0)
        engine.push("trades", sym="B", price=20.0)
        assert len(q.results) == 1

    def test_join_queries_rejected(self):
        engine = NiagaraEngine()
        engine.register_stream(TRADES)
        with pytest.raises(QueryError):
            engine.add_query(["trades", "trades2"],
                             Comparison("price", ">", 0))

    def test_remove_query(self):
        engine = NiagaraEngine()
        engine.register_stream(TRADES)
        q = engine.add_query(["trades"], Comparison("price", ">", 0))
        engine.remove_query(q)
        engine.push("trades", sym="A", price=1.0)
        assert q.results == []

    def test_residual_only_query(self):
        from repro.query.predicates import Or
        engine = NiagaraEngine()
        engine.register_stream(TRADES)
        q = engine.add_query(["trades"],
                             Or(Comparison("sym", "==", "A"),
                                Comparison("price", ">", 90)))
        engine.push("trades", sym="B", price=95.0)
        engine.push("trades", sym="B", price=5.0)
        assert len(q.results) == 1


class TestThreeEnginesAgree:
    def test_same_selection_answers(self):
        predicates = [Comparison("price", ">", 10),
                      And(Comparison("sym", "==", "A"),
                          Comparison("price", "<", 25))]
        engines = []
        for cls in (CACQEngine, PerQueryEngine, NiagaraEngine):
            engine = cls()
            engine.register_stream(TRADES)
            queries = [engine.add_query(["trades"], p) for p in predicates]
            engines.append((engine, queries))
        for t in trades_rows(40):
            for engine, _qs in engines:
                engine.push_tuple("trades",
                                  TRADES.make(*t.values,
                                              timestamp=t.timestamp))
        reference = None
        for _engine, queries in engines:
            answer = [values_of(q.results) for q in queries]
            if reference is None:
                reference = answer
            assert answer == reference
