"""The static plan verifier: every diagnostic code, the admission gate
in ``submit``, and a property test over random predicate sets."""

import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.plan_check import (AdmissionContext, check_flow_graph,
                                       check_query, check_spec)
from repro.analysis.report import (Diagnostic, DiagnosticReport,
                                   PlanCheckWarning, severity_of)
from repro.core.engine import TelegraphCQServer
from repro.core.tuples import Schema
from repro.errors import PlanCheckError
from repro.query.parser import parse


def codes_of(query):
    return [d.code for d in check_spec(parse(query))]


# -- predicate satisfiability (TCQ101/102/201/202/203) -------------------------

def test_contradictory_range_is_tcq101():
    assert "TCQ101" in codes_of("SELECT * FROM s WHERE x > 5 AND x < 3")


def test_contradictory_equalities():
    assert "TCQ101" in codes_of("SELECT * FROM s WHERE x = 1 AND x = 2")


def test_equality_outside_range():
    assert "TCQ101" in codes_of("SELECT * FROM s WHERE x = 10 AND x < 5")


def test_eq_vs_neq():
    assert "TCQ101" in codes_of("SELECT * FROM s WHERE x != 3 AND x = 3")


def test_empty_point_range():
    assert "TCQ101" in codes_of("SELECT * FROM s WHERE x >= 5 AND x < 5")


def test_closed_point_range_is_fine():
    assert codes_of("SELECT * FROM s WHERE x >= 5 AND x <= 5") == []


def test_satisfiable_conjunction_is_clean():
    assert codes_of(
        "SELECT * FROM s WHERE x > 1 AND y < 9 AND z = 'a'") == []


def test_or_branches_are_not_analysed():
    # One impossible disjunct does not make the query impossible.
    assert codes_of(
        "SELECT * FROM s WHERE (x > 5 AND x < 3) OR x = 7") == []


def test_mixed_type_columns_skip_ordering():
    assert codes_of("SELECT * FROM s WHERE x > 5 AND x < 'zzz'") == []


def test_duplicate_factor_is_tcq201():
    report = check_spec(parse("SELECT * FROM s WHERE x > 5 AND x > 5"))
    assert [d.code for d in report] == ["TCQ201"]
    assert severity_of("TCQ201") == "warning"


def test_subsumed_factor_is_tcq202():
    assert "TCQ202" in codes_of("SELECT * FROM s WHERE x > 5 AND x > 2")


def test_equality_subsumes_bounds():
    assert "TCQ202" in codes_of("SELECT * FROM s WHERE x > 2 AND x = 5")


def test_self_comparison_trivial_and_impossible():
    assert "TCQ203" in codes_of("SELECT * FROM s WHERE s.x = s.x")
    assert "TCQ101" in codes_of("SELECT * FROM s WHERE s.x != s.x")


def test_impossible_equality_chain_is_tcq102():
    q = ("SELECT * FROM a, b WHERE a.x = b.y AND a.x = 1 AND b.y = 2")
    assert "TCQ102" in codes_of(q)


def test_chain_pin_outside_remote_range():
    q = ("SELECT * FROM a, b WHERE a.x = b.y AND a.x = 10 AND b.y < 5")
    assert "TCQ102" in codes_of(q)


def test_consistent_chain_is_clean():
    q = ("SELECT * FROM a, b WHERE a.x = b.y AND a.x = 1 AND b.y = 1")
    assert codes_of(q) == []


def test_span_points_into_query_text():
    query = "SELECT * FROM s WHERE x > 5 AND x < 3"
    diag = next(d for d in check_spec(parse(query)) if d.code == "TCQ101")
    start, end = diag.span
    assert query[start:end] == "x < 3"
    rendered = diag.render()
    assert "^" in rendered and "x < 3" in rendered


# -- window analysis (TCQ105/106/206) ------------------------------------------

def test_loop_never_entered():
    q = ("SELECT * FROM s for (t = 10; t < 5; t++) "
         "{ WindowIs(s, t - 5, t); }")
    assert codes_of(q) == ["TCQ105"]


def test_window_empty_every_iteration():
    q = ("SELECT * FROM s for (t = 1; t <= 50; t++) "
         "{ WindowIs(s, t, t - 2); }")
    assert codes_of(q) == ["TCQ105"]


def test_stuck_loop_is_tcq106():
    q = ("SELECT * FROM s for (t = 1; t <= 50; t += 0) "
         "{ WindowIs(s, t, t + 1); }")
    assert codes_of(q) == ["TCQ106"]


def test_slide_gap_is_tcq206_warning():
    q = ("SELECT * FROM s for (t = 1; t <= 100; t += 10) "
         "{ WindowIs(s, t, t + 2); }")
    assert codes_of(q) == ["TCQ206"]
    assert severity_of("TCQ206") == "warning"


def test_touching_hop_has_no_gap():
    q = ("SELECT * FROM s for (t = 1; t <= 100; t += 3) "
         "{ WindowIs(s, t, t + 2); }")
    assert codes_of(q) == []


def test_width_one_window_is_legal():
    q = "SELECT * FROM s for (t = 1; t <= 9; t++) { WindowIs(s, t, t); }"
    assert codes_of(q) == []


def test_decreasing_loop_is_legal():
    q = ("SELECT * FROM s for (t = 100; t >= 1; t--) "
         "{ WindowIs(s, t, t); }")
    assert codes_of(q) == []


def test_free_variable_judged_translation_invariant():
    q = ("SELECT * FROM s for (t = ST; t <= ST + 100; t++) "
         "{ WindowIs(s, t - 10, t); }")
    assert codes_of(q) == []


# -- join-graph connectivity (TCQ103) ------------------------------------------

@pytest.fixture
def server():
    s = TelegraphCQServer()
    s.create_stream(Schema.of("trades", "sym", "price"))
    s.create_stream(Schema.of("news", "sym", "urgency"))
    s.create_stream(Schema.of("quotes", "sym", "bid"))
    return s


def test_unpaired_join_rejected(server):
    with pytest.raises(PlanCheckError) as exc:
        server.submit(
            "SELECT trades.sym FROM trades, news WHERE trades.price > 5")
    assert [d.code for d in exc.value.diagnostics] == ["TCQ103"]
    diag = exc.value.diagnostics[0]
    start, end = diag.span
    assert diag.source[start:end] == "news"


def test_three_way_with_stranded_stream(server):
    report = check_query(
        "SELECT trades.sym FROM trades, news, quotes "
        "WHERE trades.sym = news.sym AND quotes.bid > 1",
        server.catalog)
    assert report.codes() == ["TCQ103"]
    assert "quotes" in report.errors[0].message


def test_connected_join_admitted(server):
    cursor = server.submit(
        "SELECT trades.sym FROM trades, news "
        "WHERE trades.sym = news.sym")
    assert cursor.diagnostics == []


def test_windowed_join_without_equijoin_is_not_tcq103(server):
    # Windowed queries evaluate nested-loop joins; no SteM pairing
    # applies, so a cross join over windows is legal.
    report = check_query(
        "SELECT trades.sym FROM trades, news WHERE trades.price > 5 "
        "for (t = 1; t <= 3; t++) { WindowIs(trades, t, t); "
        "WindowIs(news, t, t); }",
        server.catalog)
    assert report.codes() == []


# -- the admission gate in submit ----------------------------------------------

def test_submit_rejects_contradiction_with_span(server):
    query = "SELECT * FROM trades WHERE price > 5 AND price < 3"
    with pytest.raises(PlanCheckError) as exc:
        server.submit(query)
    diag = exc.value.diagnostics[0]
    assert diag.code == "TCQ101"
    start, end = diag.span
    assert query[start:end] == "price < 3"


def test_allow_unsafe_bypasses_errors(server):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        cursor = server.submit(
            "SELECT * FROM trades WHERE price > 5 AND price < 3",
            allow_unsafe=True)
    assert [d.code for d in cursor.diagnostics] == ["TCQ101"]
    assert any(issubclass(w.category, PlanCheckWarning) for w in caught)
    # The query runs (vacuously): pushes simply never match.
    server.push("trades", "A", 4.0)
    server.run_until_quiescent()
    assert cursor.fetch() == []


def test_warnings_surface_but_admit(server):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        cursor = server.submit(
            "SELECT * FROM trades WHERE price > 5 AND price > 5")
    assert [d.code for d in cursor.diagnostics] == ["TCQ201"]
    assert any(issubclass(w.category, PlanCheckWarning) for w in caught)
    server.push("trades", "A", 9.0)
    server.run_until_quiescent()
    assert len(cursor.fetch()) == 1


def test_footprint_bridge_warns_tcq204(server):
    server.submit("SELECT trades.sym FROM trades WHERE trades.price > 0")
    server.submit("SELECT news.sym FROM news WHERE news.urgency > 0")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        cursor = server.submit(
            "SELECT trades.sym FROM trades, news "
            "WHERE trades.sym = news.sym")
    assert "TCQ204" in [d.code for d in cursor.diagnostics]
    assert any("TCQ204" in str(w.message) for w in caught)


def test_lineage_capacity_warns_tcq205():
    context = AdmissionContext(
        footprint_classes=[frozenset({"s"})],
        class_query_counts=[64])
    server = TelegraphCQServer()
    server.create_stream(Schema.of("s", "x"))
    report = check_query("SELECT * FROM s WHERE x > 1", server.catalog,
                         context)
    assert "TCQ205" in report.codes()


def test_parse_failure_becomes_tcq100(server):
    report = check_query("SELEC nonsense", server.catalog)
    assert report.codes() == ["TCQ100"]
    assert report.errors


# -- dataflow reachability (TCQ104) --------------------------------------------

def test_flow_graph_unreachable_and_dead_end():
    diags = check_flow_graph(
        nodes=["src", "mid", "orphan", "sink"],
        edges=[("src", "mid"), ("mid", "sink")],
        ingresses=["src"], egresses=["sink"])
    assert [d.code for d in diags] == ["TCQ104"]
    assert "orphan" in diags[0].message


def test_fjord_check_flags_unwired_module():
    from repro.fjords.fjord import Fjord
    from repro.fjords.module import Module, SinkModule, SourceModule

    class Src(SourceModule):
        def generate(self, batch):
            self.exhausted = True
            return []

    class Pass(Module):
        def __init__(self, name):
            super().__init__(name=name, arity_in=1, arity_out=1)

        def process(self, item, port):
            return [item]

    wired = Fjord("wired")
    wired.connect(Src("s"), SinkModule("k"))
    assert wired.check().ok

    broken = Fjord("broken")
    broken.connect(Src("s"), SinkModule("k"))
    broken.add(Pass("orphan"))
    assert "TCQ104" in broken.check().codes()


# -- report plumbing -----------------------------------------------------------

def test_report_partitions_and_render():
    report = DiagnosticReport([
        Diagnostic("TCQ101", "a"), Diagnostic("TCQ201", "b"),
        Diagnostic("TCQ301", "c")])
    assert len(report.errors) == len(report.warnings) == \
        len(report.lints) == 1
    assert not report.ok
    text = report.render()
    assert "1 error, 1 warning, 1 lint" in text


# -- property test: satisfiable sets pass, contradictions are caught -----------

_COLS = ("a", "b", "c")


@st.composite
def satisfiable_predicates(draw):
    """Per column, an interval [lo, hi] with lo <= hi, expressed as a
    pair of non-strict bound factors — always satisfiable (x = lo)."""
    parts = []
    for col in draw(st.sets(st.sampled_from(_COLS), min_size=1)):
        lo = draw(st.integers(-50, 50))
        hi = draw(st.integers(lo, 51))
        parts.append(f"{col} >= {lo}")
        parts.append(f"{col} <= {hi}")
    return " AND ".join(parts)


@settings(max_examples=60, deadline=None)
@given(satisfiable_predicates())
def test_satisfiable_sets_carry_no_errors(clause):
    report = check_spec(parse(f"SELECT * FROM s WHERE {clause}"))
    assert not [d for d in report if d.is_error], clause


@settings(max_examples=60, deadline=None)
@given(satisfiable_predicates(),
       st.sampled_from(_COLS), st.integers(-50, 51))
def test_injected_contradiction_is_rejected(clause, col, pivot):
    # x < pivot AND x > pivot is unsatisfiable whatever else holds.
    poisoned = f"{clause} AND {col} < {pivot} AND {col} > {pivot}"
    diags = check_spec(parse(f"SELECT * FROM s WHERE {poisoned}"))
    errors = [d.code for d in diags if d.is_error]
    assert errors and set(errors) <= {"TCQ101", "TCQ102"}, poisoned


# -- CLI CHECK -----------------------------------------------------------------

def test_cli_check_renders_without_submitting():
    from repro.cli import TelegraphShell
    shell = TelegraphShell()
    shell.execute("CREATE STREAM s (x, y);")
    out = shell.execute("CHECK SELECT * FROM s WHERE x > 5 AND x < 3;")
    assert "TCQ101" in out and "^" in out
    assert shell.cursors == {}          # nothing was admitted
    assert shell.execute("CHECK SELECT * FROM s WHERE x > 5;") == \
        "ok: no diagnostics"


def test_shell_splits_windowed_statements_whole():
    # The for-loop's internal semicolons must not split the statement.
    from repro.cli import TelegraphShell
    shell = TelegraphShell()
    responses = shell.run_script(
        "CREATE STREAM s (x);\n"
        "CHECK SELECT * FROM s for (t = 10; t < 5; t++) "
        "{ WindowIs(s, t - 2, t); };\n"
        "SELECT count(*) FROM s for (t = 1; t <= 2; t++) "
        "{ WindowIs(s, t, t); };\n")
    assert "TCQ105" in responses[1]
    assert "cursor 1 open" in responses[2]
