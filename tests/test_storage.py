"""Tests for the storage manager: pages, the log-structured spill store,
buffer pool replacement (LRU and CLOCK), and spooled streams."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.tuples import Schema
from repro.errors import StorageError
from repro.storage.buffer_pool import BufferPool
from repro.storage.pages import Page
from repro.storage.spill import SpillStore
from repro.storage.spooled_stream import SpooledStream

S = Schema.of("s", "v")


class TestPage:
    def test_append_and_rematerialise(self):
        page = Page(0, "s", capacity=4)
        page.append(S.make(10, timestamp=1))
        page.append(S.make(20, timestamp=2))
        tuples = page.tuples(S)
        assert [t["v"] for t in tuples] == [10, 20]
        assert [t.timestamp for t in tuples] == [1, 2]

    def test_capacity_enforced(self):
        page = Page(0, "s", capacity=1)
        page.append(S.make(1, timestamp=1))
        with pytest.raises(StorageError, match="full"):
            page.append(S.make(2, timestamp=2))

    def test_timestamp_range_tracked(self):
        page = Page(0, "s", capacity=8)
        for ts in (3, 5, 9):
            page.append(S.make(ts, timestamp=ts))
        assert (page.min_ts, page.max_ts) == (3, 9)
        assert page.overlaps(1, 4)
        assert page.overlaps(9, 20)
        assert not page.overlaps(10, 20)

    def test_window_filter(self):
        page = Page(0, "s", capacity=8)
        for ts in range(1, 7):
            page.append(S.make(ts, timestamp=ts))
        got = page.tuples_in_window(S, 2, 4)
        assert [t.timestamp for t in got] == [2, 3, 4]

    def test_payload_roundtrip(self):
        page = Page(7, "s", capacity=4)
        page.append(S.make(1, timestamp=1))
        clone = Page.from_payload(page.to_payload())
        assert clone.page_id == 7
        assert clone.rows == page.rows
        assert not clone.dirty

    def test_timestamps_required(self):
        page = Page(0, "s", capacity=4)
        with pytest.raises(StorageError):
            page.append(S.make(1))


class TestSpillStore:
    def test_write_read_roundtrip(self):
        with SpillStore() as spill:
            page = Page(1, "s", capacity=4)
            page.append(S.make(42, timestamp=1))
            spill.write_page(page)
            back = spill.read_page(1)
            assert back.rows == page.rows

    def test_missing_page(self):
        with SpillStore() as spill:
            with pytest.raises(StorageError, match="not in the spill"):
                spill.read_page(99)

    def test_rewrite_appends_new_version(self):
        with SpillStore() as spill:
            page = Page(1, "s", capacity=4)
            page.append(S.make(1, timestamp=1))
            spill.write_page(page)
            page.append(S.make(2, timestamp=2))
            spill.write_page(page)
            assert len(spill.read_page(1)) == 2
            assert spill.writes == 2

    def test_vacuum_reclaims_dead_versions(self):
        with SpillStore() as spill:
            page = Page(1, "s", capacity=64)
            for ts in range(1, 33):
                page.append(S.make(ts, timestamp=ts))
            spill.write_page(page)
            spill.write_page(page)
            spill.write_page(page)
            reclaimed = spill.vacuum()
            assert reclaimed > 0
            assert len(spill.read_page(1)) == 32

    def test_drop_page(self):
        with SpillStore() as spill:
            page = Page(1, "s", capacity=4)
            page.append(S.make(1, timestamp=1))
            spill.write_page(page)
            spill.drop_page(1)
            assert not spill.contains(1)


class TestBufferPool:
    def fill_pages(self, pool, n, rows_per_page=2):
        pages = []
        ts = 1
        for _ in range(n):
            page = pool.new_page("s", capacity=rows_per_page)
            for _ in range(rows_per_page):
                page.append(S.make(ts, timestamp=ts))
                ts += 1
            pages.append(page)
        return pages

    @pytest.mark.parametrize("policy", ["lru", "clock"])
    def test_eviction_and_refetch(self, policy):
        pool = BufferPool(n_frames=2, policy=policy)
        pages = self.fill_pages(pool, 5)
        assert pool.resident == 2
        assert pool.evictions == 3
        # every page is still reachable, through the spill log
        for page in pages:
            back = pool.get_page(page.page_id)
            assert back.rows == page.rows

    def test_pinned_pages_survive(self):
        pool = BufferPool(n_frames=2)
        keeper = pool.new_page("s", capacity=2)
        keeper.append(S.make(1, timestamp=1))
        pool.pin(keeper)
        self.fill_pages(pool, 4)
        assert keeper.page_id in [p for p in
                                  (pg.page_id for pg in
                                   pool._frames.values())]
        pool.unpin(keeper)

    def test_all_pinned_exhausts_pool(self):
        pool = BufferPool(n_frames=1)
        page = pool.new_page("s", capacity=2)
        pool.pin(page)
        with pytest.raises(StorageError, match="pinned"):
            pool.new_page("s", capacity=2)

    def test_unpin_without_pin_rejected(self):
        pool = BufferPool(n_frames=2)
        page = pool.new_page("s", capacity=2)
        with pytest.raises(StorageError):
            pool.unpin(page)

    def test_hit_rate_tracking(self):
        pool = BufferPool(n_frames=4)
        page = pool.new_page("s", capacity=2)
        pool.get_page(page.page_id)
        assert pool.hits == 1
        assert pool.hit_rate() == 1.0

    def test_lru_keeps_hot_page(self):
        pool = BufferPool(n_frames=2, policy="lru")
        hot = pool.new_page("s", capacity=2)
        hot.append(S.make(1, timestamp=1))
        cold = pool.new_page("s", capacity=2)
        cold.append(S.make(2, timestamp=2))
        pool.get_page(hot.page_id)            # touch hot
        pool.new_page("s", capacity=2)        # forces one eviction
        resident = set(pool._frames)
        assert hot.page_id in resident
        assert cold.page_id not in resident

    def test_bad_policy_rejected(self):
        with pytest.raises(StorageError):
            BufferPool(4, policy="fifo")

    def test_flush_all(self):
        pool = BufferPool(n_frames=4)
        page = pool.new_page("s", capacity=2)
        page.append(S.make(1, timestamp=1))
        assert pool.flush_all() == 1
        assert not page.dirty

    def test_discard_page(self):
        pool = BufferPool(n_frames=4)
        page = pool.new_page("s", capacity=2)
        pool.discard_page(page.page_id)
        assert page.page_id not in pool._frames

    def test_stats_shape(self):
        pool = BufferPool(n_frames=4)
        stats = pool.stats()
        assert stats["frames"] == 4


class TestSpooledStream:
    def test_scan_spans_memory_and_disk(self):
        pool = BufferPool(n_frames=2)
        stream = SpooledStream(S, pool, page_capacity=4)
        for ts in range(1, 41):
            stream.append(S.make(ts, timestamp=ts))
        assert pool.evictions > 0        # definitely spilled
        got = stream.scan_window(10, 20)
        assert [t.timestamp for t in got] == list(range(10, 21))

    def test_open_page_included_in_scans(self):
        pool = BufferPool(n_frames=4)
        stream = SpooledStream(S, pool, page_capacity=100)
        stream.append(S.make(1, timestamp=1))
        assert len(stream.scan_window(0, 10)) == 1

    def test_truncate_drops_whole_pages(self):
        pool = BufferPool(n_frames=8)
        stream = SpooledStream(S, pool, page_capacity=5)
        for ts in range(1, 26):
            stream.append(S.make(ts, timestamp=ts))
        stream.seal()
        dropped = stream.truncate_before(11)
        assert dropped == 2              # pages [1..5], [6..10]
        assert stream.scan_window(1, 10) == []
        assert len(stream.scan_window(11, 25)) == 15

    def test_schema_must_be_named(self):
        anon = Schema([c for c in S.columns])
        with pytest.raises(StorageError):
            SpooledStream(anon, BufferPool(2))

    def test_single_frame_pool_rejected(self):
        with pytest.raises(StorageError, match=">= 2 frames"):
            SpooledStream(S, BufferPool(1))


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(0, 1000), min_size=1, max_size=120),
       st.integers(1, 10), st.integers(2, 6),
       st.sampled_from(["lru", "clock"]),
       st.tuples(st.integers(0, 500), st.integers(0, 500)))
def test_spooled_scan_equals_in_memory(values, page_cap, frames, policy,
                                       window):
    """Property: a window scan over a spooled stream (any page size,
    any pool size, either policy) equals the plain in-memory scan."""
    lo, hi = min(window), max(window)
    pool = BufferPool(n_frames=frames, policy=policy)
    stream = SpooledStream(S, pool, page_capacity=page_cap)
    reference = []
    for i, v in enumerate(sorted(values)):
        t = S.make(v, timestamp=i)
        stream.append(S.make(v, timestamp=i))
        reference.append(t)
    got = [(t.timestamp, t["v"]) for t in stream.scan_window(lo, hi)]
    want = [(t.timestamp, t["v"]) for t in reference if lo <= t.timestamp <= hi]
    assert got == want
