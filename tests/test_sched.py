"""Tests for repro.sched: the unified scheduler core — the Schedulable
protocol, the four shipped policies, the quiescence/stall protocol, the
§4.3 adaptive quantum controller, and a hypothesis fairness property
(no ready unit starves beyond a policy-derived bound)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExecutionError, PlanError
from repro.sched import (AdaptiveQuantumController, BusyFirstPolicy,
                         DeficitRoundRobinPolicy, FunctionUnit, POLICIES,
                         PressureAwarePolicy, QuiescenceDetector,
                         RoundRobinPolicy, Scheduler, SchedulerStall,
                         StepResult, coerce_step_result, drive, make_policy)


class Worker:
    """A fully instrumented schedulable test double."""

    def __init__(self, name, work=3, ready=True, pressure=0.0):
        self.name = name
        self.work_left = work
        self._ready = ready
        self._pressure = pressure
        self.runs = 0
        self.quanta_seen = []

    @property
    def finished(self):
        return self.work_left <= 0

    def ready(self):
        return self._ready and not self.finished

    def pressure(self):
        return self._pressure

    def run_once(self, quantum=None):
        self.runs += 1
        self.quanta_seen.append(quantum)
        if self.finished:
            return StepResult.DONE
        self.work_left -= 1
        return StepResult.DONE if self.finished else StepResult.BUSY


class TestStepProtocol:
    def test_coerce(self):
        assert coerce_step_result(True) is StepResult.BUSY
        assert coerce_step_result(False) is StepResult.IDLE
        assert coerce_step_result(None) is StepResult.IDLE
        busy = StepResult(True)
        assert coerce_step_result(busy) is busy

    def test_truthiness_is_worked(self):
        assert StepResult.BUSY and StepResult.DONE
        assert not StepResult.IDLE
        assert not StepResult(False, finished=True)

    def test_function_unit_forces_finished(self):
        state = {"left": 1}

        def step(_q):
            state["left"] -= 1
            return True

        unit = FunctionUnit("u", step,
                            is_finished=lambda: state["left"] <= 0)
        result = unit.run_once()
        assert result.worked and result.finished
        assert unit.run_once() is StepResult.DONE   # no step after finish
        assert state["left"] == 0

    def test_quiescence_detector(self):
        det = QuiescenceDetector(idle_limit=2)
        assert not det.observe(StepResult.BUSY)
        assert not det.observe(StepResult.IDLE)
        assert det.observe(StepResult.IDLE)
        det.reset()
        assert not det.observe(StepResult.IDLE)

    def test_detector_rejects_bad_limit(self):
        with pytest.raises(ExecutionError):
            QuiescenceDetector(idle_limit=0)

    def test_drive_counts_final_idle_pass(self):
        state = {"left": 3}

        def step():
            if state["left"]:
                state["left"] -= 1
                return True
            return False

        assert drive(step) == 4      # 3 working passes + the idle one


class TestScheduler:
    def test_run_until_finished(self):
        sched = Scheduler(telemetry=False)
        a, b = Worker("a", work=2), Worker("b", work=5)
        sched.add(a)
        sched.add(b)
        passes = sched.run_until_finished()
        assert passes == 5
        assert a.finished and b.finished
        assert a.runs == 2           # finished units are never re-run

    def test_run_until_quiescent_counts_idle_pass(self):
        sched = Scheduler(telemetry=False)
        sched.add(FunctionUnit("never-done", lambda q: False))
        assert sched.run_until_quiescent() == 1
        state = {"left": 2}

        def step(_q):
            if state["left"]:
                state["left"] -= 1
                return True
            return False

        sched2 = Scheduler(telemetry=False)
        sched2.add(FunctionUnit("worker", step))
        assert sched2.run_until_quiescent() == 3

    def test_stall_raises_with_stuck_names(self):
        sched = Scheduler(name="test", telemetry=False)
        sched.add(FunctionUnit("stuck", lambda q: True))
        with pytest.raises(SchedulerStall) as exc:
            sched.run_until_finished(max_passes=7)
        assert exc.value.stuck == ["stuck"]
        assert "did not finish within 7 passes" in str(exc.value)

    def test_duplicate_names_rejected(self):
        sched = Scheduler(telemetry=False)
        sched.add(Worker("a"))
        with pytest.raises(ExecutionError):
            sched.add(Worker("a"))

    def test_remove_clears_policy_state(self):
        policy = DeficitRoundRobinPolicy()
        sched = Scheduler(policy=policy, telemetry=False)
        sched.add(Worker("a", work=100), weight=0.5)
        sched.pass_once()
        assert "a" in policy._credit
        sched.remove("a")
        assert "a" not in policy._credit
        assert "a" not in sched

    def test_unknown_policy(self):
        with pytest.raises(ExecutionError):
            make_policy("lottery")

    def test_stats_shape(self):
        sched = Scheduler(telemetry=False)
        sched.add(Worker("a", work=1))
        sched.run_until_finished()
        stats = sched.stats()
        assert stats["policy"] == "round_robin"
        assert stats["per_unit"]["a"]["runs"] == 1
        assert stats["decisions"]["run"] == 1


class TestPolicies:
    def test_round_robin_ignores_ready(self):
        """Bit-compat: round_robin polls idle units exactly as the
        historical loops did."""
        sched = Scheduler(policy="round_robin", telemetry=False)
        lazy = Worker("lazy", work=5, ready=False)
        sched.add(lazy)
        sched.pass_once()
        assert lazy.runs == 1

    def test_busy_first_orders_by_last_progress(self):
        order = []

        def unit(name, works):
            def step(_q):
                order.append(name)
                return works
            return FunctionUnit(name, step)

        sched = Scheduler(policy="busy_first", telemetry=False)
        sched.add(unit("idler", False))
        sched.add(unit("worker", True))
        sched.pass_once()
        assert order == ["idler", "worker"]   # never-run counts as busy
        order.clear()
        sched.pass_once()
        assert order == ["worker", "idler"]

    def test_drr_half_weight_runs_every_other_pass(self):
        sched = Scheduler(policy="deficit_round_robin", telemetry=False)
        full = Worker("full", work=100)
        half = Worker("half", work=100)
        sched.add(full, weight=1.0)
        sched.add(half, weight=0.5)
        for _ in range(8):
            sched.pass_once()
        assert full.runs == 8
        assert half.runs == 4

    def test_drr_heavy_weight_boosts_quantum(self):
        sched = Scheduler(policy="deficit_round_robin", telemetry=False)
        heavy = Worker("heavy", work=100)
        sched.add(heavy, weight=2.0)
        sched.pass_once(quantum=10)
        assert heavy.quanta_seen == [20]

    def test_drr_idle_forfeits_credit(self):
        policy = DeficitRoundRobinPolicy()
        sched = Scheduler(policy=policy, telemetry=False)
        sched.add(FunctionUnit("idler", lambda q: False), weight=0.5)
        sched.pass_once()            # credit 0.5, not selected
        sched.pass_once()            # credit 1.0 -> runs, idles, zeroed
        assert policy._credit["idler"] == 0.0

    def test_pressure_aware_skips_not_ready(self):
        sched = Scheduler(policy="pressure_aware", telemetry=False)
        lazy = Worker("lazy", work=5, ready=False)
        eager = Worker("eager", work=5)
        sched.add(lazy)
        sched.add(eager)
        sched.pass_once()
        assert eager.runs == 1 and lazy.runs == 0
        assert sched.decisions["skip_not_ready"] == 1

    def test_pressure_aware_skips_backpressured(self):
        sched = Scheduler(policy="pressure_aware", telemetry=False)
        blocked = Worker("blocked", work=5, pressure=1.0)
        sched.add(blocked)
        sched.pass_once()
        assert blocked.runs == 0
        assert sched.decisions["skip_backpressure"] == 1

    def test_pressure_aware_starvation_guard(self):
        policy = PressureAwarePolicy(starvation_limit=3)
        sched = Scheduler(policy=policy, telemetry=False)
        lazy = Worker("lazy", work=100, ready=False)
        sched.add(lazy)
        for _ in range(10):
            sched.pass_once()
        # Skipped at most starvation_limit passes, then forced; the
        # idle forced run backs the personal limit off to 2x base.
        assert lazy.runs >= 2
        assert sched.worst_starvation() <= 2 * 3
        assert sched.decisions["starvation_override"] >= 2

    def test_pressure_aware_guard_backoff_and_reset(self):
        """An idle forced run doubles the unit's guard limit (capped);
        the first productive run snaps it back to the base."""
        policy = PressureAwarePolicy(starvation_limit=2)
        sched = Scheduler(policy=policy, telemetry=False)

        class Quiet:
            name = "quiet"
            finished = False

            def __init__(self):
                self.runs = 0
                self.has_work = False

            def ready(self):
                return False        # hint always says no

            def run_once(self, quantum=None):
                self.runs += 1
                if self.has_work:
                    self.has_work = False
                    return StepResult.BUSY
                return StepResult.IDLE

        quiet = Quiet()
        sched.add(quiet)
        for _ in range(3):
            sched.pass_once()
        assert policy._guard_limit["quiet"] == 4       # 2 -> 4 after idle
        for _ in range(6):
            sched.pass_once()
        assert policy._guard_limit["quiet"] == 8
        quiet.has_work = True
        for _ in range(20):
            sched.pass_once()
            if "quiet" not in policy._guard_limit:
                break
        assert "quiet" not in policy._guard_limit      # reset on work
        assert policy._guard_limit.get("quiet",
                                       policy.starvation_limit) == 2

    def test_pressure_aware_override_cap_rotates(self):
        """The starvation guard trickles through a large quiet
        population oldest-first instead of forcing everyone in one
        synchronized pass."""
        policy = PressureAwarePolicy(starvation_limit=3,
                                     max_overrides_per_pass=2)
        sched = Scheduler(policy=policy, telemetry=False)
        units = [Worker(f"quiet{i}", work=100, ready=False)
                 for i in range(6)]
        for u in units:
            sched.add(u)
        per_pass = []
        for _ in range(12):
            before = sched.decisions.get("starvation_override", 0)
            sched.pass_once()
            per_pass.append(
                sched.decisions.get("starvation_override", 0) - before)
        assert max(per_pass) <= 2
        assert all(u.runs >= 2 for u in units)     # rotation reaches all
        # Graceful degradation: the backed-off limit (2x base after one
        # idle force) plus the rotation delay.
        assert sched.worst_starvation() <= 2 * 3

    def test_pressure_aware_qos_callable_throttles(self):
        policy = PressureAwarePolicy(qos=lambda cls: 0.5
                                     if cls == "bulk" else 0.0)
        sched = Scheduler(policy=policy, telemetry=False)
        bulk = Worker("bulk", work=100)
        vip = Worker("vip", work=100)
        sched.add(bulk, query_class="bulk")
        sched.add(vip, query_class="vip")
        for _ in range(8):
            sched.pass_once()
        assert vip.runs == 8
        assert bulk.runs == 4        # ratio 0.5 drops every second quantum
        assert sched.decisions["skip_qos_throttle"] == 4

    def test_pressure_aware_load_shedder_duck(self):
        class Shedder:
            drop_rate = 1.0
            preferences = {"vip": 1.0}

        policy = PressureAwarePolicy(starvation_limit=4, qos=Shedder())
        sched = Scheduler(policy=policy, telemetry=False)
        bulk = Worker("bulk", work=100)
        vip = Worker("vip", work=100)
        sched.add(bulk, query_class="bulk")
        sched.add(vip, query_class="vip")
        for _ in range(8):
            sched.pass_once()
        assert vip.runs == 8         # preferred classes are never throttled
        assert bulk.runs <= 2        # only the starvation guard runs it

    def test_policy_registry(self):
        assert POLICIES == ("round_robin", "busy_first",
                            "deficit_round_robin", "pressure_aware")
        for name in POLICIES:
            assert make_policy(name).name == name
        rr = RoundRobinPolicy()
        assert make_policy(rr) is rr


class TestAdaptiveQuantumController:
    def test_grow_when_stable(self):
        ctrl = AdaptiveQuantumController(start_quantum=16, check_every=1)
        assert ctrl.quantum_for("u") == 16
        ctrl.after_run("u", {"op": 0.5})          # first sample: no drift yet
        new = ctrl.after_run("u", {"op": 0.5})    # zero drift -> grow
        assert new == 32
        assert ctrl.quantum_for("u") == 32

    def test_shrink_on_drift(self):
        ctrl = AdaptiveQuantumController(start_quantum=64, check_every=1,
                                         drift_threshold=0.15)
        ctrl.after_run("u", {"op": 0.1})
        new = ctrl.after_run("u", {"op": 0.9})    # drift 0.8 -> shrink
        assert new == 32

    def test_dead_band_holds(self):
        ctrl = AdaptiveQuantumController(start_quantum=64, check_every=1,
                                         drift_threshold=0.2)
        ctrl.after_run("u", {"op": 0.5})
        # drift 0.15 lies between 0.2*0.5 and 0.2: hold.
        assert ctrl.after_run("u", {"op": 0.65}) is None
        assert ctrl.quantum_for("u") == 64

    def test_clamped_to_bounds(self):
        ctrl = AdaptiveQuantumController(start_quantum=2, min_quantum=2,
                                         max_quantum=4, check_every=1)
        ctrl.after_run("u", {"op": 0.5})
        assert ctrl.after_run("u", {"op": 0.5}) == 4
        assert ctrl.after_run("u", {"op": 0.5}) is None    # at max: hold
        assert ctrl.quantum_for("u") == 4

    def test_check_every_batches_checks(self):
        ctrl = AdaptiveQuantumController(check_every=3)
        ctrl.quantum_for("u")
        assert ctrl.after_run("u", {"op": 0.5}) is None
        assert ctrl.after_run("u", {"op": 0.5}) is None
        ctrl.after_run("u", {"op": 0.5})
        assert ctrl.checks == 1

    def test_rejects_bad_config(self):
        with pytest.raises(PlanError):
            AdaptiveQuantumController(min_quantum=0)
        with pytest.raises(PlanError):
            AdaptiveQuantumController(start_quantum=1024)
        with pytest.raises(PlanError):
            AdaptiveQuantumController(grow_factor=1)

    def test_scheduler_pushes_quantum_into_unit(self):
        class AdaptiveWorker(Worker):
            def __init__(self):
                super().__init__("adaptive", work=1000)
                self.applied = []

            def selectivity_sample(self):
                return {"op": 0.5}

            def apply_quantum(self, n):
                self.applied.append(n)

        ctrl = AdaptiveQuantumController(start_quantum=8, check_every=2)
        sched = Scheduler(quantum_controller=ctrl, telemetry=False)
        unit = AdaptiveWorker()
        sched.add(unit)
        for _ in range(6):
            sched.pass_once()
        # Stable selectivities: the quantum doubled twice and each new
        # value was pushed into the unit and used on the next run.
        assert unit.applied == [16, 32]
        assert 16 in unit.quanta_seen
        sched.pass_once()
        assert unit.quanta_seen[-1] == 32
        assert ctrl.trajectory("adaptive")


WEIGHTS = (0.25, 0.5, 1.0, 2.0)


@settings(max_examples=60, deadline=None)
@given(
    policy=st.sampled_from(POLICIES),
    units=st.lists(
        st.tuples(st.sampled_from(WEIGHTS),
                  st.lists(st.booleans(), min_size=30, max_size=30)),
        min_size=1, max_size=5),
)
def test_no_ready_unit_starves(policy, units):
    """Fairness property: under every shipped policy, a live unit that
    always reports ready work runs at least every K passes, where K is
    the policy's own bound — the DRR weight period or the pressure-aware
    starvation limit, whichever is larger."""
    sched = Scheduler(policy=policy, telemetry=False)
    for i, (weight, pattern) in enumerate(units):
        it = iter(pattern)
        sched.add(FunctionUnit(f"u{i}",
                               lambda q, it=it: next(it, False)),
                  weight=weight, query_class=f"c{i}")
    for _ in range(30):
        sched.pass_once()
    min_weight = min(w for w, _p in units)
    bound = max(8, math.ceil(1.0 / min_weight))
    assert sched.worst_starvation() <= bound
    for age in sched.starvation_ages().values():
        assert age <= bound
