"""Tests for Juggle: online reordering quality, live preference changes,
bounded buffering, and drain-on-EOS."""

import pytest

from repro.core.tuples import Schema
from repro.errors import PlanError
from repro.fjords.fjord import Fjord
from repro.fjords.module import CollectingSink
from repro.juggle.juggle import Juggle, prefix_quality
from tests.conftest import ListFeed

S = Schema.of("S", "region", "v")


def rows(regions):
    return [S.make(r, i, timestamp=i) for i, r in enumerate(regions)]


def run_juggle(juggle, items):
    f = Fjord()
    sink = CollectingSink()
    f.connect(ListFeed(items, chunk=4), juggle)
    f.connect(juggle, sink)
    f.run_until_finished()
    return sink.results


class TestReordering:
    def test_preferred_class_delivered_first(self):
        # 50 boring then 10 interesting, admitted much faster than the
        # consumer drains (emit_quota=1): the buffered interesting
        # tuples jump the queue.  FIFO on the same prefix scores ~0.
        items = rows(["b"] * 50 + ["a"] * 10)
        juggle = Juggle(classify=lambda t: t["region"],
                        preferences={"a": 10.0}, buffer_capacity=100,
                        emit_quota=1)
        f = Fjord()
        sink = CollectingSink()
        f.connect(ListFeed(items, chunk=64), juggle)
        f.connect(juggle, sink)
        f.run_until_finished()
        delivered = sink.results
        assert len(delivered) == 60
        quality = prefix_quality(delivered, 15,
                                 lambda t: t["region"] == "a")
        fifo_quality = prefix_quality(items, 15,
                                      lambda t: t["region"] == "a")
        assert fifo_quality == 0.0
        assert quality > 0.5

    def test_fifo_within_same_priority(self):
        items = rows(["x", "x", "x"])
        juggle = Juggle(classify=lambda t: t["region"], emit_quota=100)
        delivered = run_juggle(juggle, items)
        assert [t["v"] for t in delivered] == [0, 1, 2]

    def test_all_tuples_eventually_delivered(self):
        items = rows(["a", "b"] * 100)
        juggle = Juggle(classify=lambda t: t["region"],
                        preferences={"a": 1.0}, buffer_capacity=16,
                        emit_quota=1)
        delivered = run_juggle(juggle, items)
        assert sorted(t["v"] for t in delivered) == list(range(200))

    def test_bounded_buffer_never_exceeded(self):
        juggle = Juggle(classify=lambda t: t["region"], buffer_capacity=8,
                        emit_quota=1)
        f = Fjord()
        sink = CollectingSink()
        f.connect(ListFeed(rows(["x"] * 50), chunk=16), juggle)
        f.connect(juggle, sink)
        for _ in range(200):
            f.step()
            assert len(juggle._heap) <= 8
            if all(m.finished for m in f.modules):
                break
        assert len(sink.results) == 50

    def test_bad_capacity_rejected(self):
        with pytest.raises(PlanError):
            Juggle(classify=lambda t: 0, buffer_capacity=0)


class TestOnlinePreferenceChange:
    def test_set_preference_rekeys_buffered(self):
        juggle = Juggle(classify=lambda t: t["region"],
                        preferences={"a": 10.0}, buffer_capacity=100,
                        emit_quota=0)
        # buffer some tuples without emitting
        from repro.fjords.queues import PushQueue
        q_in, q_out = PushQueue(), PushQueue()
        juggle.bind_input(0, q_in)
        juggle.bind_output(0, q_out)
        for t in rows(["a", "b", "b"]):
            q_in.push(t)
        juggle.run_once()
        # flip preferences mid-flight
        juggle.set_preference("b", 99.0)
        juggle.emit_quota = 1
        juggle.run_once()
        first = q_out.pop()
        assert first["region"] == "b"
        assert juggle.reorders == 1

    def test_prefix_quality_helper(self):
        items = rows(["a", "a", "b", "b"])
        assert prefix_quality(items, 2, lambda t: t["region"] == "a") == 1.0
        assert prefix_quality(items, 4, lambda t: t["region"] == "a") == 0.5
        assert prefix_quality([], 5, lambda t: True) == 0.0
