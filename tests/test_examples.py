"""Smoke tests: every shipped example must run cleanly end to end.

Run as subprocesses so each example is exercised exactly the way a user
would run it (fresh interpreter, no shared state)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples")
    .glob("*.py"))


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_cleanly(example):
    result = subprocess.run(
        [sys.executable, str(example)], capture_output=True, text=True,
        timeout=180)
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "examples must print their findings"


def test_every_example_is_covered():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 7
