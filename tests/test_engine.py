"""End-to-end tests of the TelegraphCQ server (Figure 5): DDL, ingress,
all three query kinds, cursors/proxies, dynamic add/remove, and the
paper's §4.1 examples through the full SQL path."""

import pytest

from repro.core.engine import TelegraphCQServer
from repro.core.tuples import Schema
from repro.errors import ExecutionError, QueryError
from repro.ingress.generators import CLOSING_STOCK_PRICES

TRADES = Schema.of("trades", "sym", "price")


def stock_server(days=20, symbols=("MSFT", "IBM")):
    """Server + deterministic stock data: MSFT=45+day, IBM=50."""
    srv = TelegraphCQServer()
    srv.create_stream(CLOSING_STOCK_PRICES)
    for day in range(1, days + 1):
        for sym in symbols:
            price = 45.0 + day if sym == "MSFT" else 50.0
            srv.push("ClosingStockPrices", day, sym, price, timestamp=day)
            srv.step()
    return srv


class TestDDLAndIngress:
    def test_create_and_push(self):
        srv = TelegraphCQServer()
        srv.create_stream(TRADES)
        srv.push("trades", "A", 10.0)
        assert srv.stats()["ingested"] == 1

    def test_push_to_table_rejected(self):
        srv = TelegraphCQServer()
        srv.create_table(TRADES, [("A", 1.0)])
        with pytest.raises(QueryError, match="is a table"):
            srv.push("trades", "B", 2.0)

    def test_push_to_closed_stream_rejected(self):
        srv = TelegraphCQServer()
        srv.create_stream(TRADES)
        srv.close_stream("trades")
        with pytest.raises(ExecutionError, match="closed"):
            srv.push("trades", "A", 1.0)

    def test_auto_timestamps_monotone(self):
        srv = TelegraphCQServer()
        srv.create_stream(TRADES)
        srv.push("trades", "A", 1.0)
        srv.push("trades", "B", 2.0)
        store = srv.stores["trades"]
        assert [t.timestamp for t in store.scan(0, 100)] == [1, 2]


class TestContinuousQueries:
    def test_selection_cq(self):
        srv = TelegraphCQServer()
        srv.create_stream(TRADES)
        cur = srv.submit("SELECT * FROM trades WHERE price > 10")
        srv.push("trades", "A", 20.0)
        srv.push("trades", "B", 5.0)
        assert len(cur.fetch()) == 1

    def test_join_cq(self):
        srv = TelegraphCQServer()
        srv.create_stream(TRADES)
        srv.create_stream(Schema.of("quotes", "sym", "bid"))
        cur = srv.submit(
            "SELECT * FROM trades, quotes WHERE trades.sym = quotes.sym")
        srv.push("trades", "A", 20.0)
        srv.push("quotes", "A", 19.0)
        results = cur.fetch()
        assert len(results) == 1
        assert results[0].sources == frozenset({"trades", "quotes"})

    def test_push_mode_callback(self):
        srv = TelegraphCQServer()
        srv.create_stream(TRADES)
        got = []
        srv.submit("SELECT * FROM trades WHERE price > 0",
                   on_result=got.append)
        srv.push("trades", "A", 1.0)
        assert len(got) == 1

    def test_cancel_stops_delivery(self):
        srv = TelegraphCQServer()
        srv.create_stream(TRADES)
        cur = srv.submit("SELECT * FROM trades WHERE price > 0")
        srv.push("trades", "A", 1.0)
        srv.cancel(cur)
        srv.push("trades", "A", 2.0)
        assert len(cur.fetch()) == 1
        assert cur.closed

    def test_hundred_queries_share_engine(self):
        srv = TelegraphCQServer()
        srv.create_stream(TRADES)
        cursors = [srv.submit(f"SELECT * FROM trades WHERE price > {i}")
                   for i in range(100)]
        srv.push("trades", "A", 1000.0)
        assert all(len(c.fetch()) == 1 for c in cursors)
        assert srv.stats()["cacq_engines"] == 1

    def test_disjoint_streams_disjoint_engines(self):
        srv = TelegraphCQServer()
        srv.create_stream(TRADES)
        srv.create_stream(Schema.of("sensors", "sid", "temp"))
        srv.submit("SELECT * FROM trades WHERE price > 0")
        srv.submit("SELECT * FROM sensors WHERE temp > 0")
        assert srv.stats()["cacq_engines"] == 2

    def test_bridging_join_merges_engines_and_keeps_queries_live(self):
        srv = TelegraphCQServer()
        srv.create_stream(TRADES)
        srv.create_stream(Schema.of("quotes", "sym", "bid"))
        c1 = srv.submit("SELECT * FROM trades WHERE price > 0")
        c2 = srv.submit("SELECT * FROM quotes WHERE bid > 0")
        assert srv.stats()["cacq_engines"] == 2
        c3 = srv.submit(
            "SELECT * FROM trades, quotes WHERE trades.sym = quotes.sym")
        assert srv.stats()["cacq_engines"] == 1
        srv.push("trades", "A", 1.0)
        srv.push("quotes", "A", 2.0)
        assert len(c1.fetch()) == 1
        assert len(c2.fetch()) == 1
        assert len(c3.fetch()) == 1

    def test_cancel_after_class_merge(self):
        """A cursor whose query was rebound into a merged engine must
        still cancel cleanly: delivery stops for it alone while the
        other queries in the merged class keep running."""
        srv = TelegraphCQServer()
        srv.create_stream(TRADES)
        srv.create_stream(Schema.of("quotes", "sym", "bid"))
        c1 = srv.submit("SELECT * FROM trades WHERE price > 0")
        c2 = srv.submit("SELECT * FROM quotes WHERE bid > 0")
        c3 = srv.submit(
            "SELECT * FROM trades, quotes WHERE trades.sym = quotes.sym")
        assert srv.stats()["cacq_engines"] == 1
        srv.cancel(c1)
        assert c1.closed and c1.continuous_query is None
        srv.push("trades", "A", 1.0)
        srv.push("quotes", "A", 2.0)
        assert c1.fetch() == []
        assert len(c2.fetch()) == 1
        assert len(c3.fetch()) == 1

    def test_resubmit_after_cancel_across_merge(self):
        """Cancel/resubmit across a class merge: the resubmitted query
        lands in the surviving merged engine and sees new data."""
        srv = TelegraphCQServer()
        srv.create_stream(TRADES)
        srv.create_stream(Schema.of("quotes", "sym", "bid"))
        c1 = srv.submit("SELECT * FROM trades WHERE price > 0")
        srv.submit(
            "SELECT * FROM trades, quotes WHERE trades.sym = quotes.sym")
        srv.cancel(c1)
        c1b = srv.submit("SELECT * FROM trades WHERE price > 0")
        assert srv.stats()["cacq_engines"] == 1
        srv.push("trades", "A", 3.0)
        assert c1.fetch() == []
        assert len(c1b.fetch()) == 1

    def test_continuous_aggregate_rejected(self):
        srv = TelegraphCQServer()
        srv.create_stream(TRADES)
        with pytest.raises(QueryError, match="for-loop"):
            srv.submit("SELECT AVG(price) FROM trades")


class TestSnapshotQueries:
    def test_table_scan_filter_project(self):
        srv = TelegraphCQServer()
        srv.create_table(Schema.of("emps", "name", "salary"),
                         [("a", 10), ("b", 30)])
        cur = srv.submit("SELECT name FROM emps WHERE salary > 20")
        rows = cur.fetch()
        assert [r["name"] for r in rows] == ["b"]
        assert cur.closed

    def test_snapshot_join_two_tables(self):
        srv = TelegraphCQServer()
        srv.create_table(Schema.of("emps", "name", "dept"),
                         [("a", "x"), ("b", "y")])
        srv.create_table(Schema.of("depts", "dept", "floor"),
                         [("x", 1), ("y", 2)])
        cur = srv.submit("SELECT * FROM emps, depts "
                         "WHERE emps.dept = depts.dept")
        assert len(cur.fetch()) == 2


class TestWindowedQueries:
    def test_landmark_paper_example(self):
        srv = stock_server(days=20)
        cur = srv.submit("""
            SELECT closingPrice, timestamp
            FROM ClosingStockPrices
            WHERE stockSymbol = 'MSFT' and closingPrice > 50.00
            for (t = 5; t <= 15; t++) {
                WindowIs(ClosingStockPrices, 5, t);
            }""")
        srv.run_until_quiescent()
        windows = cur.fetch_windows()
        assert len(windows) == 11
        sizes = [len(rows) for _t, rows in windows]
        assert sizes == sorted(sizes)

    def test_sliding_avg_with_st_binding(self):
        srv = stock_server(days=20, symbols=("MSFT",))
        cur = srv.submit("""
            Select AVG(closingPrice)
            From ClosingStockPrices
            Where stockSymbol = 'MSFT'
            for (t = ST; t < ST + 10; t += 5) {
                WindowIs(ClosingStockPrices, t - 4, t);
            }""", env={"ST": 5})
        srv.run_until_quiescent()
        windows = cur.fetch_windows()
        assert [rows[0]["avg_closingPrice"] for _t, rows in windows] == \
            [48.0, 53.0]

    def test_windows_wait_for_data(self):
        """A window fires only when its right end is strictly in the
        past (or the stream closed)."""
        srv = TelegraphCQServer()
        srv.create_stream(CLOSING_STOCK_PRICES)
        cur = srv.submit("""
            SELECT * FROM ClosingStockPrices
            for (t = 1; t <= 3; t++) {
                WindowIs(ClosingStockPrices, t, t);
            }""")
        srv.push("ClosingStockPrices", 1, "MSFT", 1.0, timestamp=1)
        srv.run_until_quiescent()
        assert cur.fetch_windows() == []           # clock == 1, not past
        srv.push("ClosingStockPrices", 2, "MSFT", 1.0, timestamp=2)
        srv.run_until_quiescent()
        assert len(cur.fetch_windows()) == 1       # window t=1 fired
        srv.close_stream("ClosingStockPrices")
        srv.run_until_quiescent()
        assert len(cur.fetch_windows()) == 2       # the rest fired

    def test_band_join_self_aliases(self):
        srv = stock_server(days=10)
        cur = srv.submit("""
            Select c2.*
            FROM ClosingStockPrices as c1, ClosingStockPrices as c2
            WHERE c1.stockSymbol = 'MSFT' and c2.stockSymbol != 'MSFT'
              and c2.closingPrice > c1.closingPrice
              and c2.timestamp = c1.timestamp
            for (t = 5; t < 8; t++) {
                WindowIs(c1, t - 4, t);
                WindowIs(c2, t - 4, t);
            }""")
        srv.close_stream("ClosingStockPrices")
        srv.run_until_quiescent()
        windows = cur.fetch_windows()
        # IBM (50) beats MSFT (45+day) only while day < 5.
        assert [len(rows) for _t, rows in windows] == [4, 3, 2]

    def test_backward_window(self):
        srv = stock_server(days=10, symbols=("MSFT",))
        cur = srv.submit("""
            SELECT timestamp FROM ClosingStockPrices
            for (t = 9; t > 5; t--) {
                WindowIs(ClosingStockPrices, t - 1, t);
            }""")
        srv.run_until_quiescent()
        windows = cur.fetch_windows()
        assert [sorted(r["timestamp"] for r in rows)
                for _t, rows in windows] == [[8, 9], [7, 8], [6, 7], [5, 6]]


class TestCursorsAndProxies:
    def test_fetch_limit(self):
        srv = TelegraphCQServer()
        srv.create_stream(TRADES)
        cur = srv.submit("SELECT * FROM trades WHERE price > 0")
        for i in range(5):
            srv.push("trades", "A", float(i + 1))
        assert len(cur.fetch(limit=2)) == 2
        assert len(cur.fetch()) == 3

    def test_proxy_overflow_opens_new_proxy(self):
        srv = TelegraphCQServer(max_cursors_per_proxy=2)
        srv.create_stream(TRADES)
        for i in range(5):
            srv.submit("SELECT * FROM trades WHERE price > 0",
                       client="alice")
        assert srv.stats()["proxies"]["alice"] == 3

    def test_clients_have_separate_proxies(self):
        srv = TelegraphCQServer()
        srv.create_stream(TRADES)
        srv.submit("SELECT * FROM trades WHERE price > 0", client="a")
        srv.submit("SELECT * FROM trades WHERE price > 0", client="b")
        assert set(srv.stats()["proxies"]) == {"a", "b"}

    def test_pending_counts(self):
        srv = TelegraphCQServer()
        srv.create_stream(TRADES)
        cur = srv.submit("SELECT * FROM trades WHERE price > 0")
        srv.push("trades", "A", 1.0)
        assert cur.pending() == 1
        cur.fetch()
        assert cur.pending() == 0


class TestStreamTableWindowedJoin:
    """Section 4.1.1: 'an input without a corresponding WindowIs
    statement is assumed to be a static table by default'."""

    def test_stream_windowed_against_static_table(self):
        srv = TelegraphCQServer()
        srv.create_stream(CLOSING_STOCK_PRICES)
        srv.create_table(Schema.of("sectors", "stockSymbol", "sector"),
                         [("MSFT", "tech"), ("IBM", "tech")])
        cur = srv.submit("""
            SELECT * FROM ClosingStockPrices, sectors
            WHERE ClosingStockPrices.stockSymbol = sectors.stockSymbol
            for (t = 2; t <= 4; t++) {
                WindowIs(ClosingStockPrices, t, t);
            }""")
        for day in range(1, 6):
            for sym in ("MSFT", "IBM", "XOM"):
                srv.push("ClosingStockPrices", day, sym, 50.0,
                         timestamp=day)
            srv.step()
        srv.close_stream("ClosingStockPrices")
        srv.run_until_quiescent()
        windows = cur.fetch_windows()
        # each single-day window joins its 3 rows against the 2-row
        # table on symbol: MSFT and IBM match, XOM does not
        assert [len(rows) for _t, rows in windows] == [2, 2, 2]
        assert all(r["sector"] == "tech"
                   for _t, rows in windows for r in rows)

    def test_stream_without_windowis_rejected(self):
        srv = TelegraphCQServer()
        srv.create_stream(CLOSING_STOCK_PRICES)
        srv.create_stream(Schema.of("other", "stockSymbol", "v"))
        with pytest.raises(QueryError, match="without a WindowIs"):
            srv.submit("""
                SELECT * FROM ClosingStockPrices, other
                WHERE ClosingStockPrices.stockSymbol = other.stockSymbol
                for (t = 1; t <= 3; t++) {
                    WindowIs(ClosingStockPrices, t, t);
                }""")
