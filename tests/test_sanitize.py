"""REPRO_SANITIZE=1: the runtime half of the guard.

Tier-1 covers the primitives and the simulated-backend wiring (no
processes, no sockets); a net-marked test drives the service watchdog
end to end.
"""

import pickle

import pytest

from repro.analysis.sanitize import (LoopWatchdog, SanitizeError,
                                     assert_picklable, enabled)
from repro.flux.backend import SimulatedBackend
from repro.flux.cluster import Cluster


@pytest.fixture
def sanitizing(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")


def test_disabled_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    assert not enabled()
    # no-op: even an unpicklable object passes through untouched
    obj = lambda: 1  # noqa: E731
    assert assert_picklable(obj) is obj


def test_zero_means_disabled(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "0")
    assert not enabled()


def test_round_trip_pass_and_fail(sanitizing):
    assert enabled()
    payload = {"rows": [1, 2, 3]}
    assert assert_picklable(payload, "payload") is payload
    with pytest.raises(SanitizeError, match="state factory"):
        assert_picklable(lambda: 1, "state factory")


def test_catches_pickle_but_not_unpickle(sanitizing):
    """The loads() half matters: this object pickles fine but cannot be
    rebuilt, which is exactly what breaks a failover snapshot."""

    class Evil:
        def __reduce__(self):
            return (eval, ("__import__('nonexistent_module_xyz')",))

    pickle.dumps(Evil())  # dumps alone is happy
    with pytest.raises(SanitizeError):
        assert_picklable(Evil(), "snapshot")


def test_watchdog_counts_stalls():
    wd = LoopWatchdog(budget_s=0.0, name="test")
    with wd:
        sum(range(1000))
    with wd:
        pass
    assert wd.passes == 2
    assert wd.stall_count >= 1
    assert all(dur >= 0 for dur, _at in wd.stalls)


def test_watchdog_ring_is_bounded():
    wd = LoopWatchdog(budget_s=-1.0, name="test", keep=4)
    for _ in range(10):
        with wd:
            pass
    assert len(wd.stalls) == 4
    assert wd.stall_count == 10


# -- Flux boundary wiring ------------------------------------------------------

def _sim_backend():
    cluster = Cluster()
    cluster.add_machine("w0")
    return SimulatedBackend(cluster)


def test_simulated_backend_rejects_unpicklable_factory(sanitizing):
    backend = _sim_backend()
    with pytest.raises(SanitizeError, match="state factory"):
        backend.configure(lambda: None)


def test_simulated_backend_accepts_module_level_factory(sanitizing):
    from repro.flux.cluster import PartitionState
    backend = _sim_backend()
    backend.configure(PartitionState)  # module-level class: picklable


def test_backend_unchecked_when_disabled(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    backend = _sim_backend()
    backend.configure(lambda: None)  # sails through, as before


# -- service watchdog wiring ---------------------------------------------------

def test_service_watchdog_absent_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    from repro.net.service import TelegraphCQService
    service = TelegraphCQService()
    assert service.watchdog is None


@pytest.mark.net
def test_service_watchdog_times_loop_passes(sanitizing):
    from repro.client import connect
    from repro.net.service import TelegraphCQService
    service = TelegraphCQService(admin_port=None)
    assert service.watchdog is not None
    service.run_in_thread()
    try:
        conn = connect(f"tcp://127.0.0.1:{service.port}", client="wd")
        conn.create_stream("s", "a")
        cur = conn.submit("SELECT * FROM s WHERE a > 1")
        conn.push_rows("s", [[1], [2], [3]])
        rows = cur.fetch()
        assert rows
        conn.close()
    finally:
        service.close()
    # the loop did real work and every pass was timed
    assert service.watchdog.passes > 0
    # a healthy engine stays under the 100ms budget
    assert service.watchdog.stall_count == 0
