"""Tests for egress modules: push/pull delivery, mobile-client replay,
transcoding, and fan-out batching."""

import pytest

from repro.core.tuples import Schema
from repro.egress.egress import (FanoutEgress, PullEgress, PushEgress,
                                 TranscodingEgress)
from repro.errors import ExecutionError
from repro.fjords.fjord import Fjord
from repro.fjords.module import CollectingSink
from tests.conftest import ListFeed

S = Schema.of("S", "v")


def rows(n):
    return [S.make(i, timestamp=i) for i in range(n)]


def run_through(module, items):
    f = Fjord()
    f.connect(ListFeed(items), module)
    f.run_until_finished()
    return module


class TestPushEgress:
    def test_streams_to_all_clients(self):
        egress = PushEgress()
        got_a, got_b = [], []
        egress.subscribe("a", got_a.append)
        egress.subscribe("b", got_b.append)
        run_through(egress, rows(5))
        assert len(got_a) == len(got_b) == 5

    def test_duplicate_subscription_rejected(self):
        egress = PushEgress()
        egress.subscribe("a", lambda t: None)
        with pytest.raises(ExecutionError):
            egress.subscribe("a", lambda t: None)

    def test_slow_client_buffers_then_drops(self):
        egress = PushEgress(per_client_buffer=3)
        got = []
        gate = {"open": False}
        egress.subscribe("slow", got.append, ready=lambda: gate["open"])
        run_through(egress, rows(10))
        stats = egress.client_stats("slow")
        assert stats["dropped"] == 7          # only 3 buffered
        assert got == []
        gate["open"] = True
        egress.flush()
        assert len(got) == 3

    def test_failing_callback_does_not_break_dataflow(self):
        egress = PushEgress()
        calls = {"n": 0}

        def flaky(t):
            calls["n"] += 1
            if calls["n"] == 2:
                raise RuntimeError("client crashed")

        egress.subscribe("flaky", flaky)
        run_through(egress, rows(4))
        stats = egress.client_stats("flaky")
        assert stats["delivered"] == 3
        assert stats["dropped"] == 1

    def test_unsubscribe(self):
        egress = PushEgress()
        got = []
        egress.subscribe("a", got.append)
        egress.unsubscribe("a")
        run_through(egress, rows(3))
        assert got == []

    def test_unknown_client_stats(self):
        with pytest.raises(ExecutionError):
            PushEgress().client_stats("ghost")


class TestPullEgress:
    def test_fetch_since_last_ack(self):
        egress = PullEgress()
        egress.register_client("phone")
        run_through(egress, rows(5))
        batch, missed = egress.fetch("phone")
        assert missed == 0
        assert [t["v"] for _seq, t in batch] == [0, 1, 2, 3, 4]

    def test_reconnect_replays_unacked(self):
        """The connection drops after a fetch whose response was lost:
        the same results come again."""
        egress = PullEgress()
        egress.register_client("phone")
        run_through(egress, rows(3))
        first, _ = egress.fetch("phone")
        again, _ = egress.fetch("phone")       # no ack in between
        assert [seq for seq, _t in first] == [seq for seq, _t in again]
        egress.acknowledge("phone", first[-1][0])
        after, _ = egress.fetch("phone")
        assert after == []

    def test_retention_reports_missed(self):
        egress = PullEgress(retention=3)
        egress.register_client("phone")
        run_through(egress, rows(10))
        batch, missed = egress.fetch("phone")
        assert len(batch) == 3
        assert missed == 7

    def test_independent_clients(self):
        egress = PullEgress()
        egress.register_client("a")
        egress.register_client("b")
        run_through(egress, rows(4))
        batch_a, _ = egress.fetch("a")
        egress.acknowledge("a", batch_a[-1][0])
        assert egress.fetch("a")[0] == []
        assert len(egress.fetch("b")[0]) == 4

    def test_fetch_limit(self):
        egress = PullEgress()
        egress.register_client("a")
        run_through(egress, rows(10))
        batch, _ = egress.fetch("a", limit=4)
        assert len(batch) == 4

    def test_unregistered_client_rejected(self):
        egress = PullEgress()
        with pytest.raises(ExecutionError):
            egress.fetch("ghost")
        with pytest.raises(ExecutionError):
            egress.acknowledge("ghost", 1)


class TestTranscodingEgress:
    def test_transcodes(self):
        got = []
        egress = TranscodingEgress(
            transcode=lambda t: f"v={t['v']}", sink=got.append)
        run_through(egress, rows(3))
        assert got == ["v=0", "v=1", "v=2"]

    def test_rejections_counted(self):
        got = []
        egress = TranscodingEgress(
            transcode=lambda t: t["v"] if t["v"] % 2 == 0 else None,
            sink=got.append)
        run_through(egress, rows(6))
        assert got == [0, 2, 4]
        assert egress.rejected == 3


class TestFanoutEgress:
    def test_batches_per_subscriber(self):
        egress = FanoutEgress(batch_size=4)
        batches_a, batches_b = [], []
        egress.subscribe("a", batches_a.append)
        egress.subscribe("b", batches_b.append,
                         fmt=lambda t: t["v"] * 10)
        run_through(egress, rows(10))       # EOS flushes the remainder
        assert [len(b) for b in batches_a] == [4, 4, 2]
        assert batches_b[0] == [0, 10, 20, 30]

    def test_shared_upstream_handling(self):
        egress = FanoutEgress(batch_size=2)
        for i in range(50):
            egress.subscribe(f"c{i}", lambda b: None)
        run_through(egress, rows(8))
        assert egress.tuples_seen == 8        # once, not 8*50

    def test_batches_shipped_counter(self):
        egress = FanoutEgress(batch_size=2)
        egress.subscribe("a", lambda b: None)
        run_through(egress, rows(5))
        assert egress.batches_shipped("a") == 3

    def test_duplicate_subscriber_rejected(self):
        egress = FanoutEgress()
        egress.subscribe("a", lambda b: None)
        with pytest.raises(ExecutionError):
            egress.subscribe("a", lambda b: None)
