"""Tests for routing policies: the lottery learns selectivities, fixed
stays fixed, and the adaptivity claims of E1 hold in miniature."""

import pytest

from repro.core.eddy import Eddy, FilterOperator
from repro.core.routing import (BatchingDirective, FixedPolicy,
                                GreedySelectivityPolicy, LotteryPolicy,
                                RandomPolicy, RankPolicy, PER_TUPLE)
from repro.core.tuples import Schema
from repro.fjords.fjord import Fjord
from repro.fjords.module import CollectingSink
from repro.query.predicates import Comparison
from tests.conftest import ListFeed

S = Schema.of("S", "a", "b")


def drive(policy, rows, f1_sel, f2_sel):
    """Run two filters with the given policy; returns per-filter seen
    counts (how many tuples the policy sent to each filter first)."""
    ops = [FilterOperator(Comparison("a", "<", f1_sel), name="f1"),
           FilterOperator(Comparison("b", "<", f2_sel), name="f2")]
    eddy = Eddy(ops, output_sources={"S"}, policy=policy)
    f = Fjord()
    sink = CollectingSink()
    f.connect(ListFeed(rows), eddy)
    f.connect(eddy, sink)
    f.run_until_finished()
    return {op.name: op.seen for op in ops}


class TestFixedPolicy:
    def test_respects_order(self):
        rows = [S.make(i % 100, i % 100, timestamp=i) for i in range(200)]
        seen = drive(FixedPolicy(["f2", "f1"]), rows, f1_sel=50, f2_sel=50)
        # f2 first on every tuple; f1 only sees survivors of f2.
        assert seen["f2"] == 200
        assert seen["f1"] < 200

    def test_unknown_names_sort_last(self):
        policy = FixedPolicy(["known"])
        class Dummy:
            def __init__(self, name):
                self.name = name
        known, other = Dummy("known"), Dummy("other")
        assert policy.choose(None, [other, known]) is known

    def test_describe(self):
        assert "f1 -> f2" in FixedPolicy(["f1", "f2"]).describe()


class TestLotteryPolicy:
    def test_learns_to_route_to_selective_filter_first(self):
        # f1 drops 90%, f2 drops 10%: tickets should steer most tuples
        # through f1 first, so f2 sees far fewer than all tuples.
        rows = [S.make(i % 100, i % 100, timestamp=i) for i in range(3000)]
        seen = drive(LotteryPolicy(seed=1, explore=0.05), rows,
                     f1_sel=10, f2_sel=90)
        assert seen["f1"] > seen["f2"]

    def test_tickets_credit_and_debit(self):
        policy = LotteryPolicy()
        op = FilterOperator(Comparison("a", ">", 1), name="f")
        policy.on_route(op)
        policy.on_route(op)
        assert policy.tickets(op) == 2.0
        policy.on_return(op, 1)
        assert policy.tickets(op) == 1.0

    def test_tickets_never_negative(self):
        policy = LotteryPolicy()
        op = FilterOperator(Comparison("a", ">", 1), name="f")
        policy.on_return(op, 5)
        assert policy.tickets(op) == 0.0

    def test_decay(self):
        policy = LotteryPolicy(decay=0.5, decay_every=1, explore=0.0)
        op = FilterOperator(Comparison("a", ">", 1), name="f")
        policy.on_route(op)     # 1 ticket, then decayed to 0.5
        assert policy.tickets(op) == 0.5

    def test_single_candidate_short_circuits(self):
        policy = LotteryPolicy()
        op = FilterOperator(Comparison("a", ">", 1), name="f")
        assert policy.choose(None, [op]) is op

    def test_deterministic_under_seed(self):
        def rows():
            # fresh tuples per run: lineage bits are single-use
            return [S.make(i % 10, i % 7, timestamp=i) for i in range(500)]
        a = drive(LotteryPolicy(seed=42), rows(), 5, 3)
        b = drive(LotteryPolicy(seed=42), rows(), 5, 3)
        assert a == b


class TestGreedyPolicy:
    def test_routes_to_lowest_selectivity(self):
        policy = GreedySelectivityPolicy()
        low = FilterOperator(Comparison("a", ">", 1), name="low")
        high = FilterOperator(Comparison("a", ">", 1), name="high")
        low._ewma_selectivity = 0.1
        high._ewma_selectivity = 0.9
        assert policy.choose(None, [high, low]) is low

    def test_tie_breaks_by_name(self):
        policy = GreedySelectivityPolicy()
        a = FilterOperator(Comparison("a", ">", 1), name="aaa")
        b = FilterOperator(Comparison("a", ">", 1), name="bbb")
        assert policy.choose(None, [b, a]) is a


class TestRankPolicy:
    def test_prefers_cheap_selective_operator(self):
        policy = RankPolicy()
        cheap_selective = FilterOperator(Comparison("a", ">", 1),
                                         name="cheap")
        pricey_selective = FilterOperator(Comparison("a", ">", 1),
                                          name="pricey", cost=100)
        cheap_selective._ewma_selectivity = 0.2
        pricey_selective._ewma_selectivity = 0.2
        chosen = policy.choose(None, [pricey_selective, cheap_selective])
        assert chosen is cheap_selective

    def test_expensive_but_very_selective_can_win(self):
        policy = RankPolicy()
        cheap_loose = FilterOperator(Comparison("a", ">", 1), name="loose")
        pricey_tight = FilterOperator(Comparison("a", ">", 1),
                                      name="tight", cost=3)
        cheap_loose._ewma_selectivity = 0.99    # rank = 1/0.01 = 100
        pricey_tight._ewma_selectivity = 0.01   # rank = 4/0.99 ~ 4
        assert policy.choose(None, [cheap_loose, pricey_tight]) \
            is pricey_tight

    def test_pass_everything_operator_ranked_last(self):
        policy = RankPolicy()
        useless = FilterOperator(Comparison("a", ">", 1), name="useless")
        useful = FilterOperator(Comparison("a", ">", 1), name="useful")
        useless._ewma_selectivity = 1.0         # never drops: rank inf
        useful._ewma_selectivity = 0.5
        assert policy.choose(None, [useless, useful]) is useful

    def test_end_to_end_correctness(self):
        rows = [S.make(i % 2, i % 10, timestamp=i) for i in range(2000)]
        ops_seen = drive(RankPolicy(), rows, f1_sel=1, f2_sel=1)
        # every tuple passed through at least one filter; the rank
        # order is deterministic so reruns agree
        assert ops_seen["f1"] + ops_seen["f2"] >= 2000
        again = drive(RankPolicy(),
                      [S.make(i % 2, i % 10, timestamp=i)
                       for i in range(2000)], 1, 1)
        assert again == ops_seen


class TestRandomPolicy:
    def test_covers_all_options(self):
        policy = RandomPolicy(seed=0)
        ops = [FilterOperator(Comparison("a", ">", i), name=f"f{i}")
               for i in range(3)]
        chosen = {policy.choose(None, ops).name for _ in range(100)}
        assert chosen == {"f0", "f1", "f2"}


class TestBatchingDirective:
    def test_per_tuple_constant(self):
        assert PER_TUPLE.batch_size == 1
        assert not PER_TUPLE.fix_sequence

    def test_repr(self):
        assert "batch=8" in repr(BatchingDirective(8))
