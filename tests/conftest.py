"""Shared test fixtures and reference implementations.

The reference implementations here (nested-loop join, brute-force
predicate evaluation) are deliberately dumb: tests compare every clever
structure in the library against them.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import pytest

from repro.core.tuples import Schema, Tuple
from repro.fjords.module import SourceModule
from repro.query.predicates import Predicate


class ListFeed(SourceModule):
    """A Fjord source that replays a list then signals EOS."""

    def __init__(self, rows: Sequence, name: str = "feed", chunk: int = 8):
        super().__init__(name)
        self.rows = list(rows)
        self.chunk = chunk
        self._i = 0

    def generate(self, batch: int):
        out = []
        take = min(batch, self.chunk)
        for _ in range(take):
            if self._i >= len(self.rows):
                self.exhausted = True
                break
            out.append(self.rows[self._i])
            self._i += 1
        if self._i >= len(self.rows):
            self.exhausted = True
        return out


def canonical(t: Tuple) -> tuple:
    """A column-order-insensitive key for a tuple: its (name, value)
    pairs sorted by column name.  Join results can legitimately differ
    in column order depending on which side probed."""
    return tuple(sorted(t.as_dict().items()))


def reference_join(left: Iterable[Tuple], right: Iterable[Tuple],
                   predicate: Predicate,
                   extra: Optional[Predicate] = None) -> List[tuple]:
    """Nested-loop ground truth: the multiset of joined rows in
    canonical form."""
    out = []
    for a in left:
        for b in right:
            joined = a.concat(b)
            if predicate.matches(joined) and (
                    extra is None or extra.matches(joined)):
                out.append(canonical(joined))
    return sorted(out)


def values_of(tuples: Iterable[Tuple]) -> List[tuple]:
    """Order-insensitive comparison key for result sets."""
    return sorted(canonical(t) for t in tuples)


@pytest.fixture
def stock_schema():
    from repro.ingress.generators import CLOSING_STOCK_PRICES
    return CLOSING_STOCK_PRICES


@pytest.fixture
def simple_schema():
    return Schema.of("S", "a", "b")
