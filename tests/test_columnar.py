"""Columnar execution layer: promotion rules, the lineage-aliasing
audit, kernel equivalence, fused predicate chains, and the plan
freezer's freeze/thaw state machine."""

import os
import subprocess
import sys

import pytest

from repro.core import columnar
from repro.core.columnar import (ColumnStore, as_array, ewma_update,
                                 have_numpy, mask_compress, mask_to_list,
                                 numpy_disabled)
from repro.core.eddy import Eddy, FilterOperator
from repro.core.routing import BatchingDirective, FixedPolicy
from repro.core.tuples import Schema, TupleBatch
from repro.monitor import introspect
from repro.monitor.introspect import explain_eddy, render_explain
from repro.monitor.stats import StabilityCounter
from repro.query.predicates import (And, Comparison, Not, Or,
                                    compile_fused)

needs_numpy = pytest.mark.skipif(not have_numpy(),
                                 reason="numpy fast paths inactive")

S = Schema.of("s", "a", "b", "c")


def batch_of(rows):
    return TupleBatch.from_tuples(
        [S.make(*r, timestamp=i) for i, r in enumerate(rows)])


# ------------------------------------------------------- promotion rules

@needs_numpy
class TestPromotion:
    def test_homogeneous_numerics_promote(self):
        for values in ([1, 2, 3], [1.5, 2.5], [True, False],
                       [1, 2.5, True]):
            arr = as_array(values)
            assert arr is not None
            assert arr.tolist() == values

    def test_all_str_promotes_but_mixes_do_not(self):
        assert as_array(["x", "y"]) is not None
        assert as_array(["x", 1]) is None
        assert as_array([1, "x"]) is None

    def test_none_and_nonscalar_block_promotion(self):
        assert as_array([1, None, 3]) is None
        assert as_array([(1, 2), (3, 4)]) is None
        assert as_array([{"k": 1}]) is None
        assert as_array([]) is None

    def test_huge_ints_stay_lists(self):
        assert as_array([1, 2 ** 200]) is None

    def test_promoted_arrays_are_read_only(self):
        arr = as_array([1, 2, 3])
        import numpy as np
        with pytest.raises(ValueError):
            arr[0] = 99
        assert isinstance(arr, np.ndarray)

    def test_numpy_disabled_forces_fallback(self):
        with numpy_disabled():
            assert not have_numpy()
            assert as_array([1, 2, 3]) is None
        assert have_numpy()


# --------------------------------------------------------- column store

class TestColumnStore:
    def test_values_returns_python_scalars(self):
        store = ColumnStore([[1, 2], [0.5, 1.5]])
        arr = store.array(0)
        if have_numpy():
            assert arr is not None
        for v in store.values(0):
            assert type(v) is int
        r = store.row(1)
        assert r == (2, 1.5)
        assert type(r[0]) is int and type(r[1]) is float

    def test_unpromotable_column_cached_as_false(self):
        store = ColumnStore([[1, None]])
        assert store.array(0) is None
        assert store.array(0) is None     # cached miss, no re-promotion
        assert store.values(0) == [1, None]

    def test_take_select_slice_agree(self):
        store = ColumnStore([[1, 2, 3, 4], ["w", "x", "y", "z"],
                             [None, 1, None, 2]])
        taken = store.take([1, 3])
        assert taken.as_lists() == [[2, 4], ["x", "z"], [1, 2]]
        selected = store.select([False, True, False, True])
        assert selected.as_lists() == taken.as_lists()
        sliced = store.slice(1, 3)
        assert sliced.as_lists() == [[2, 3], ["x", "y"], [1, None]]


# ------------------------------------------------- lineage-aliasing audit

class TestAliasingAudit:
    """slice/take/partition hand out views that may share buffers with
    the parent; nothing reachable from a child may write through to a
    sibling."""

    @needs_numpy
    def test_slices_share_buffers_read_only(self):
        import numpy as np
        batch = batch_of([(i, i * 2, i * 3) for i in range(8)])
        arr = batch.column_array("a")
        left, right = batch.slice(0, 4), batch.slice(2, 8)
        larr, rarr = left.column_array("a"), right.column_array("a")
        # Zero-copy: the slices view the parent's buffer...
        assert np.shares_memory(larr, arr)
        assert np.shares_memory(larr, rarr)
        # ...and numpy itself refuses writes through any of them.
        for a in (arr, larr, rarr):
            with pytest.raises(ValueError):
                a[0] = 99

    def test_materializing_a_slice_leaves_siblings_intact(self):
        # Column-backed batch (no row backing): slices share column
        # buffers but must materialize INDEPENDENT row objects.
        # (Row-backed batches share rows on purpose — that is lineage.)
        batch = TupleBatch(S, [[i for i in range(8)],
                               [i * 2 for i in range(8)],
                               [i * 3 for i in range(8)]],
                           timestamps=list(range(8)))
        left, right = batch.slice(0, 4), batch.slice(2, 8)
        rows = left.materialize()
        rows[2].done = 0xFF
        rows[2].dead = True
        # The sibling slice materializes its own rows from the shared
        # columns; the mutated row must not leak across.
        sib = right.materialize()
        assert sib[0].done == 0
        assert not sib[0].dead
        assert sib[0].values == (2, 4, 6)

    def test_row_backed_subsets_alias_the_same_tuples(self):
        """The flip side: when the batch IS row-backed (SteM lineage),
        subsets must keep pointing at the SAME Tuple objects so
        mark_done/mark_dead stay visible everywhere."""
        rows = [S.make(i, i, i, timestamp=i) for i in range(6)]
        batch = TupleBatch.from_tuples(rows)
        sub = batch.take([1, 4])
        assert sub.materialize()[0] is rows[1]
        sub.mark_done(0b100)
        assert rows[1].done == 0b100 and rows[4].done == 0b100
        # but NOT rows outside the subset
        assert rows[0].done == 0

    def test_partition_kills_only_the_failed_side(self):
        rows = [S.make(i, 0, 0, timestamp=i) for i in range(6)]
        batch = TupleBatch.from_tuples(rows)
        passed, failed = batch.partition(
            [r.values[0] % 2 == 0 for r in rows])
        failed.mark_dead()
        assert all(r.dead for r in failed.materialize())
        assert not any(r.dead for r in passed.materialize())

    def test_from_tuples_retain_rows_false_is_column_backed(self):
        """Ingress mode: values are copied out, the source row objects
        are dropped, and lineage updates no longer reach them."""
        rows = [S.make(i, i, i, timestamp=i) for i in range(4)]
        batch = TupleBatch.from_tuples(rows, retain_rows=False)
        assert batch._rows is None
        batch.mark_done(0b10)
        assert all(r.done == 0 for r in rows)       # no aliasing back
        fresh = batch.materialize()
        assert all(f is not r for f, r in zip(fresh, rows))
        assert [f.values for f in fresh] == [r.values for r in rows]
        assert all(f.done == 0b10 for f in fresh)

    @needs_numpy
    def test_partition_array_fast_path_matches_row_backed(self):
        """Column-backed + array mask takes the no-index fast path; it
        must agree with the row-backed split on values, timestamps, and
        lineage."""
        import numpy as np
        rows = [S.make(i, i * 2, i * 3, timestamp=i + 100)
                for i in range(9)]
        mask = np.asarray([i % 3 == 0 for i in range(9)])
        col = TupleBatch.from_tuples(rows, retain_rows=False)
        col.done, col.queries = 0b11, 0b1
        ref = TupleBatch.from_tuples(rows)
        ref.done, ref.queries = 0b11, 0b1
        for got, want in zip(col.partition(mask), ref.partition(mask)):
            assert got._rows is None
            assert [t.values for t in got.materialize()] == \
                [t.values for t in want.materialize()]
            assert got.timestamps == want.timestamps
            assert (got.done, got.queries) == (want.done, want.queries)


# ----------------------------------------------------- columnar ingress

class TestColumnarIngress:
    def _gen(self, **kw):
        from repro.ingress.generators import DriftingSelectivityGenerator
        return DriftingSelectivityGenerator(
            seed=17, flip_at=48, low_pass=0.1, high_pass=0.9, **kw)

    def test_take_batches_matches_take(self):
        rows = self._gen().take(100)
        batches = self._gen().take_batches(100, 32)
        assert [len(b) for b in batches] == [32, 32, 32, 4]
        flat = [(b.column("a")[i], b.column("b")[i])
                for b in batches for i in range(len(b))]
        assert flat == [t.values for t in rows]
        assert [ts for b in batches for ts in b.timestamps] == \
            [t.timestamp for t in rows]

    @needs_numpy
    def test_take_batches_columns_are_zero_copy_array_views(self):
        import numpy as np
        batches = self._gen().take_batches(100, 32)
        arrs = [b.column_array("a") for b in batches]
        assert all(a is not None for a in arrs)
        # Consecutive batches view one promoted parent column.
        assert np.shares_memory(arrs[0].base, arrs[1].base)

    def test_take_batches_without_numpy_carries_lists(self):
        with numpy_disabled():
            batches = self._gen().take_batches(100, 32)
            assert all(b.column_array("a") is None for b in batches)
            assert isinstance(batches[0].column("a"), list)


# --------------------------------------------------- kernel equivalence

MIXED_ROWS = [(1, "x", None), (2, "y", 3), (0, "x", 1.5),
              (2 ** 60, "z", None), (-1, "y", 2)]


class TestKernelEquivalence:
    @pytest.mark.parametrize("pred", [
        Comparison("a", "==", 2),
        Comparison("a", ">", 0),
        Comparison("b", "==", "y"),
        Comparison("a", "<=", 1.5),          # int col vs float literal
        And(Comparison("a", ">", 0), Comparison("b", "!=", "z")),
        Or(Comparison("a", "<", 0), Comparison("b", "==", "x")),
        Not(Comparison("a", ">=", 2)),
    ])
    def test_kernel_matches_per_tuple_with_and_without_numpy(self, pred):
        batch = batch_of(MIXED_ROWS)
        expected = [pred.matches(t) for t in batch.materialize()]
        assert mask_to_list(pred.compile()(batch)) == expected
        with numpy_disabled():
            fb = batch_of(MIXED_ROWS)
            assert mask_to_list(pred.compile()(fb)) == expected

    def test_none_bearing_column_takes_fallback(self):
        batch = batch_of(MIXED_ROWS)
        assert batch.column_array("c") is None or not have_numpy()
        pred = Comparison("c", "==", 3)
        got = mask_to_list(pred.compile()(batch))
        assert got == [pred.matches(t) for t in batch.materialize()]


# ----------------------------------------------------------- fused chains

class TestFusedChain:
    def test_fused_equals_sequential(self):
        preds = [Comparison("a", ">", 0), Comparison("b", "==", "y"),
                 Comparison("a", "<", 100)]
        batch = batch_of(MIXED_ROWS)
        alive, masks = compile_fused(preds)(batch)
        expected_alive = [all(p.matches(t) for p in preds)
                          for t in batch.materialize()]
        assert mask_to_list(alive) == expected_alive
        assert len(masks) == 3
        for p, m in zip(preds, masks):
            assert mask_to_list(m) == [p.matches(t)
                                       for t in batch.materialize()]

    def test_stagewise_outcomes_match_unfused_counters(self):
        """mask_compress(prior, m) is exactly the outcome sequence the
        unfused path would observe at that stage."""
        preds = [Comparison("a", ">", 0), Comparison("a", "<", 2)]
        batch = batch_of([(i % 3, "x", 0) for i in range(9)])
        _alive, masks = compile_fused(preds)(batch)
        stage0 = mask_to_list(masks[0])
        stage1 = mask_to_list(mask_compress(masks[0], masks[1]))
        # Unfused: stage 1 only sees stage-0 survivors.
        rows = [t for t in batch.materialize() if preds[0].matches(t)]
        assert stage1 == [preds[1].matches(t) for t in rows]
        assert len(stage1) == sum(stage0)

    def test_empty_chain_passes_everything(self):
        batch = batch_of(MIXED_ROWS)
        alive, masks = compile_fused([])(batch)
        assert mask_to_list(alive) == [True] * len(batch)
        assert masks == []


# ------------------------------------------------------------ ewma_update

class TestEwmaUpdate:
    @pytest.mark.parametrize("outcomes", [
        [], [True], [False, True, True, False] * 8,
    ])
    def test_closed_form_matches_sequential(self, outcomes):
        alpha, e0 = 0.02, 0.7
        seq = e0
        for b in outcomes:
            seq += alpha * ((1.0 if b else 0.0) - seq)
        assert ewma_update(e0, alpha, list(outcomes)) == pytest.approx(
            seq, abs=1e-12)
        if have_numpy():
            import numpy as np
            arr = np.asarray(outcomes, dtype=bool)
            assert ewma_update(e0, alpha, arr) == pytest.approx(
                seq, abs=1e-12)

    def test_stability_counter_streaks(self):
        c = StabilityCounter()
        assert c.observe(("fa", "fb")) == 1
        assert c.observe(("fa", "fb")) == 2
        assert c.observe(("fb", "fa")) == 1
        c.reset()
        assert c.observe(("fb", "fa")) == 1


# ------------------------------------------------------------ plan freezer

D = Schema.of("d", "a", "b")


def _freezer_rig(stable_routes=3, **kw):
    ops = [FilterOperator(Comparison("a", "==", 1), name="fa"),
           FilterOperator(Comparison("b", "==", 1), name="fb")]
    eddy = Eddy(ops, output_sources={"d"},
                policy=FixedPolicy(["fa", "fb"]),
                batching=BatchingDirective(8, vectorize=True))
    freezer = eddy.enable_freezing(stable_routes=stable_routes, **kw)
    return eddy, ops, freezer


def _push(eddy, rows):
    out = 0
    batch = TupleBatch.from_tuples(
        [D.make(*r, timestamp=i) for i, r in enumerate(rows)])
    for item in eddy.process_batch(batch, 0):
        out += len(item) if isinstance(item, TupleBatch) else 1
    return out


class TestPlanFreezer:
    def test_freezes_after_stable_streak_and_runs_frozen(self):
        eddy, ops, fz = _freezer_rig(stable_routes=3, check_every=10_000)
        for _ in range(3):
            _push(eddy, [(1, 1)] * 8)
        assert fz.freezes == 1 and fz.frozen
        assert fz.frozen_batches == 0
        before = eddy.routing_decisions
        out = _push(eddy, [(1, 1)] * 8)
        assert out == 8
        assert fz.frozen_batches == 1 and fz.frozen_rows == 8
        # The frozen fast path bypasses the policy entirely.
        assert eddy.routing_decisions == before

    def test_incomplete_routes_never_freeze(self):
        """A batch that dies mid-route saw a truncated operator list;
        it must not count toward the freeze streak."""
        eddy, ops, fz = _freezer_rig(stable_routes=2)
        for _ in range(10):
            _push(eddy, [(0, 0)] * 8)     # every row dies at fa
        assert fz.freezes == 0 and not fz.frozen

    def test_thaws_on_selectivity_drift(self):
        eddy, ops, fz = _freezer_rig(stable_routes=2, check_every=64,
                                     drift_threshold=0.15)
        for _ in range(4):
            _push(eddy, [(1, 1)] * 8)
        assert fz.frozen
        # Flip the distribution: fa's pass rate collapses; the frozen
        # path keeps observing, so drift crosses the threshold.
        for _ in range(80):
            if not fz.frozen:
                break
            _push(eddy, [(0, 1)] * 8)
        assert fz.thaws == 1 and not fz.frozen
        assert "drift" in fz.thaw_log[0]["reason"]
        # Streak evidence restarts from scratch after a thaw.
        assert fz._streaks[(0, frozenset({"d"}))].streak == 0

    def test_thaws_on_flight_recorder_route_change(self):
        eddy, ops, fz = _freezer_rig(stable_routes=2, check_every=8,
                                     drift_threshold=10.0)
        for _ in range(2):
            _push(eddy, [(1, 1)] * 8)
        key = (0, frozenset({"d"}))
        assert key in fz.frozen
        rec = introspect.RECORDER
        rec.configure(enabled=True)
        try:
            # A recorded decision contradicting the pinned order: the
            # policy now picks fb where the frozen route runs fa first.
            rec.record(eddy._telemetry_id, eddy.policy, ops[1], ops)
            _push(eddy, [(1, 1)] * 8)
        finally:
            rec.configure(enabled=False)
            rec.clear()
        assert not fz.frozen and fz.thaws == 1
        assert "route-change" in fz.thaw_log[0]["reason"]

    def test_frozen_results_and_counters_match_adaptive(self):
        rows = ([(1, 1)] * 5 + [(0, 1)] * 2 + [(1, 0)] * 1) * 12
        ref_eddy, ref_ops, _ref_fz = _freezer_rig(stable_routes=10 ** 6)
        ref_out = sum(_push(ref_eddy, rows[i:i + 8])
                      for i in range(0, len(rows), 8))
        eddy, ops, fz = _freezer_rig(stable_routes=2, check_every=10 ** 6)
        out = sum(_push(eddy, rows[i:i + 8])
                  for i in range(0, len(rows), 8))
        assert fz.frozen_batches > 0
        assert out == ref_out
        for a, b in zip(ref_ops, ops):
            assert (a.seen, a.passed_count) == (b.seen, b.passed_count)
            assert a._ewma_selectivity == pytest.approx(
                b._ewma_selectivity, abs=1e-9)

    def test_explain_reports_frozen_and_reverts_after_thaw(self):
        eddy, ops, fz = _freezer_rig(stable_routes=2, check_every=10 ** 6)
        for _ in range(3):
            _push(eddy, [(1, 1)] * 8)
        report = explain_eddy(eddy)
        assert report["ordering_source"] == "frozen"
        assert report["orderings"][0]["order"] == ["fa", "fb"]
        assert report["freeze"]["active"] == 1
        text = render_explain(report)
        assert "source=frozen" in text and "plan freezer" in text
        assert "fused: fa+fb" in text
        fz.thaw_all(reason="test")
        after = explain_eddy(eddy)
        assert after["ordering_source"] != "frozen"
        assert after["freeze"]["active"] == 0
        assert "thawed fa -> fb" in render_explain(after)

    def test_freeze_telemetry_counters_published(self):
        from repro.monitor.telemetry import get_registry
        eddy, ops, fz = _freezer_rig(stable_routes=2, check_every=10 ** 6)
        for _ in range(4):
            _push(eddy, [(1, 1)] * 8)
        snap = get_registry().snapshot()
        fzid = fz._telemetry_id
        assert snap.value("tcq_freeze_engaged_total", freezer=fzid) == 1
        assert snap.value("tcq_freeze_thaws_total", freezer=fzid) == 0
        assert snap.value("tcq_freeze_frozen_batches_total",
                          freezer=fzid) >= 1
        assert snap.value("tcq_freeze_frozen_rows_total",
                          freezer=fzid) >= 8
        assert snap.value("tcq_freeze_active", freezer=fzid) == 1

    def test_disable_freezing_thaws_everything(self):
        eddy, ops, fz = _freezer_rig(stable_routes=2, check_every=10 ** 6)
        for _ in range(3):
            _push(eddy, [(1, 1)] * 8)
        assert fz.frozen
        eddy.disable_freezing()
        assert eddy.freezer is None and not fz.frozen
        # And the eddy keeps running adaptively.
        assert _push(eddy, [(1, 1)] * 8) == 8


# ------------------------------------------------- the no-numpy CI leg

def test_engine_runs_with_numpy_forced_off():
    """REPRO_NO_NUMPY=1 must flip the whole engine to the pure-python
    fallback at import time; a representative tier-1 subset runs in a
    subprocess under that gate."""
    env = dict(os.environ, REPRO_NO_NUMPY="1",
               PYTHONPATH=os.pathsep.join(
                   filter(None, ["src", os.environ.get("PYTHONPATH", "")])))
    probe = subprocess.run(
        [sys.executable, "-c",
         "from repro.core import columnar; "
         "assert not columnar.have_numpy(); "
         "assert columnar.as_array([1, 2, 3]) is None; print('ok')"],
        capture_output=True, text=True, env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    assert probe.returncode == 0 and "ok" in probe.stdout, probe.stderr
    gate = subprocess.run(
        [sys.executable, "-m", "pytest", "-x", "-q", "-p", "no:cacheprovider",
         "tests/test_tuples.py", "tests/test_predicates.py",
         "tests/test_eddy.py"],
        capture_output=True, text=True, env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    assert gate.returncode == 0, gate.stdout + gate.stderr
