"""System-level property tests: randomized workloads and failure
injection against whole-subsystem invariants.

These complement the per-module property tests: hypothesis drives the
*composition* — random queries through the full server against a
reference evaluator, random crash points against Flux's exactly-once
ledger, random scripts against the windowed runner.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.columnar import numpy_disabled
from repro.core.eddy import Eddy, FilterOperator, SteMOperator
from repro.core.engine import TelegraphCQServer
from repro.core.routing import BatchingDirective, FixedPolicy
from repro.core.stem import SteM
from repro.core.tuples import Schema, TupleBatch
from repro.flux.cluster import Cluster, GroupCountState
from repro.flux.flux import Flux
from repro.query.predicates import ColumnComparison, Comparison

from tests.conftest import values_of

TRADES = Schema.of("trades", "sym", "price")


# ---------------------------------------------------------------- server

@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.sampled_from("ABC"), st.integers(0, 100)),
                min_size=1, max_size=40),
       st.lists(st.tuples(st.sampled_from([">", "<", ">=", "<=", "=="]),
                          st.integers(0, 100)),
                min_size=1, max_size=8))
def test_server_cq_results_match_reference(data, predicates):
    """Property: for any stream content and any set of selection CQs,
    the full server delivers exactly the brute-force answer."""
    srv = TelegraphCQServer()
    srv.create_stream(TRADES)
    cursors = [
        (srv.submit(f"SELECT * FROM trades WHERE price {op} {value}"),
         op, value)
        for op, value in predicates]
    for i, (sym, price) in enumerate(data):
        srv.push("trades", sym, price, timestamp=i + 1)
    from repro.query.predicates import OPS
    for cursor, op, value in cursors:
        fn = OPS["==" if op == "=" else op]
        expected = sorted((sym, price) for sym, price in data
                          if fn(price, value))
        got = sorted((t["sym"], t["price"]) for t in cursor.fetch())
        assert got == expected


@settings(max_examples=15, deadline=None)
@given(st.integers(1, 30), st.integers(1, 10), st.integers(1, 10),
       st.integers(0, 5))
def test_windowed_count_matches_closed_form(n_days, width, hop, start_off):
    """Property: a COUNT(*) over any sliding window spec equals the
    window's true size, for every fired window."""
    srv = TelegraphCQServer()
    srv.create_stream(TRADES)
    start = width + start_off
    cursor = srv.submit(f"""
        SELECT COUNT(*) FROM trades
        for (t = {start}; t <= {max(start, n_days)}; t += {hop}) {{
            WindowIs(trades, t - {width - 1}, t);
        }}""")
    for day in range(1, n_days + 1):
        srv.push("trades", "A", float(day), timestamp=day)
        srv.step()
    srv.close_stream("trades")
    srv.run_until_quiescent()
    for t, rows in cursor.fetch_windows():
        lo, hi = t - width + 1, t
        true_size = max(0, min(hi, n_days) - max(lo, 1) + 1)
        assert rows[0]["count"] == true_size


# ------------------------------------------------- vectorized pipeline

_VS = Schema.of("S", "a", "k")
_VT = Schema.of("T", "b", "k")
_V_OPS = [">", "<", ">=", "<=", "==", "!="]


def _build_pipeline(filter_specs, with_join):
    """Fresh operators for one run (eddies and SteMs hold state)."""
    ops = []
    if with_join:
        join = ColumnComparison("S.k", "==", "T.k")
        ops.append(SteMOperator(SteM("S", index_columns=("S.k",)), [join],
                                name="stem_s"))
        ops.append(SteMOperator(SteM("T", index_columns=("T.k",)), [join],
                                name="stem_t"))
    for i, (column, op, value) in enumerate(filter_specs):
        ops.append(FilterOperator(Comparison(column, op, value),
                                  name=f"f{i}"))
    footprint = {"S", "T"} if with_join else {"S"}
    order = [op.name for op in ops]
    return ops, footprint, order


def _make_rows(s_data, t_data, with_join):
    """All of S before all of T, so the arrival-order join dedupe sees
    the same tid order no matter how rows are later grouped into
    batches."""
    rows = [_VS.make(a, k, timestamp=i)
            for i, (a, k) in enumerate(s_data)]
    if with_join:
        rows += [_VT.make(b, k, timestamp=len(s_data) + i)
                 for i, (b, k) in enumerate(t_data)]
    return rows


def _flatten(results):
    out = []
    for item in results:
        if isinstance(item, TupleBatch):
            out.extend(item.materialize())
        else:
            out.append(item)
    return out


def _data_plane_counters(eddy, ops):
    """The counters both execution paths must agree on exactly.  Control
    plane (routing_decisions, lottery state) legitimately differs — the
    batch path consults the policy once per batch."""
    counters = {
        "eddy.tuples_routed": eddy.tuples_routed,
        "eddy.outputs_emitted": eddy.outputs_emitted,
    }
    for op in ops:
        counters[f"{op.name}.seen"] = op.seen
        counters[f"{op.name}.passed"] = op.passed_count
        if isinstance(op, SteMOperator):
            counters[f"{op.name}.builds"] = op.stem.builds
            counters[f"{op.name}.probes"] = op.stem.probes
            counters[f"{op.name}.matches"] = op.stem.matches_out
    return counters


def _run_pipeline(s_data, t_data, filter_specs, with_join, batch_size,
                  vectorized):
    ops, footprint, order = _build_pipeline(filter_specs, with_join)
    eddy = Eddy(ops, output_sources=footprint, policy=FixedPolicy(order),
                batching=BatchingDirective(batch_size,
                                           vectorize=vectorized))
    rows = _make_rows(s_data, t_data, with_join)
    results = []
    if vectorized:
        # Batches never mix schemas; S rows precede T rows in ``rows``
        # so slicing by schema keeps the arrival order intact.
        for schema in (_VS, _VT):
            group = [t for t in rows if t.schema is schema]
            for i in range(0, len(group), batch_size):
                batch = TupleBatch.from_tuples(group[i:i + batch_size])
                results.extend(eddy.process_batch(batch, 0))
    else:
        for t in rows:
            results.extend(eddy.process(t, 0))
    return _flatten(results), _data_plane_counters(eddy, ops)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 8)),
                max_size=30),
       st.lists(st.tuples(st.integers(0, 5), st.integers(0, 8)),
                max_size=30),
       st.lists(st.tuples(st.sampled_from(["a", "b"]),
                          st.sampled_from(_V_OPS), st.integers(0, 5)),
                min_size=1, max_size=4),
       st.booleans(),
       st.sampled_from([1, 3, 16, 64]))
def test_vectorized_pipeline_equals_per_tuple(s_data, t_data, filter_specs,
                                              with_join, batch_size):
    """Property: for any random filter/join pipeline, the vectorized
    batch path produces exactly the per-tuple path's result multiset AND
    identical data-plane telemetry (operator seen/passed, SteM
    builds/probes/matches, eddy routed/emitted)."""
    if not with_join:
        # Without T in the plan, filters on "b" would never apply.
        filter_specs = [(("a",) + spec[1:]) for spec in filter_specs]
    per_tuple, counters_pt = _run_pipeline(
        s_data, t_data, filter_specs, with_join, batch_size,
        vectorized=False)
    vectorized, counters_vec = _run_pipeline(
        s_data, t_data, filter_specs, with_join, batch_size,
        vectorized=True)
    assert values_of(vectorized) == values_of(per_tuple)
    assert counters_vec == counters_pt


def _run_pipeline_frozen(s_data, t_data, filter_specs, with_join,
                         batch_size):
    """The vectorized path with plan freezing on aggressive settings
    (freeze after 2 stable batches), force-thawed halfway through so a
    single run exercises adaptive -> frozen -> thawed -> re-frozen."""
    ops, footprint, order = _build_pipeline(filter_specs, with_join)
    eddy = Eddy(ops, output_sources=footprint, policy=FixedPolicy(order),
                batching=BatchingDirective(batch_size, vectorize=True))
    freezer = eddy.enable_freezing(stable_routes=2, check_every=100_000)
    rows = _make_rows(s_data, t_data, with_join)
    batches = []
    for schema in (_VS, _VT):
        group = [t for t in rows if t.schema is schema]
        batches.extend(TupleBatch.from_tuples(group[i:i + batch_size])
                       for i in range(0, len(group), batch_size))
    results = []
    for i, batch in enumerate(batches):
        if i == len(batches) // 2:
            freezer.thaw_all(reason="mid-stream thaw (test)")
        results.extend(eddy.process_batch(batch, 0))
    return _flatten(results), _data_plane_counters(eddy, ops), freezer


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 8)),
                max_size=30),
       st.lists(st.tuples(st.integers(0, 5), st.integers(0, 8)),
                max_size=30),
       st.lists(st.tuples(st.sampled_from(["a", "b"]),
                          st.sampled_from(_V_OPS), st.integers(0, 5)),
                min_size=1, max_size=4),
       st.booleans(),
       st.sampled_from([1, 3, 16, 64]))
def test_columnar_fallback_and_frozen_paths_agree(s_data, t_data,
                                                  filter_specs, with_join,
                                                  batch_size):
    """Property: for any random filter/join pipeline, ALL execution
    paths — per-tuple, vectorized with numpy disabled (pure-python
    ColumnStore fallback), and vectorized with plan freezing engaging
    and thawing mid-stream — produce the identical result multiset and
    identical data-plane counters."""
    if not with_join:
        filter_specs = [(("a",) + spec[1:]) for spec in filter_specs]
    per_tuple, counters_pt = _run_pipeline(
        s_data, t_data, filter_specs, with_join, batch_size,
        vectorized=False)
    with numpy_disabled():
        fallback, counters_fb = _run_pipeline(
            s_data, t_data, filter_specs, with_join, batch_size,
            vectorized=True)
    frozen, counters_fz, freezer = _run_pipeline_frozen(
        s_data, t_data, filter_specs, with_join, batch_size)
    assert values_of(fallback) == values_of(per_tuple)
    assert counters_fb == counters_pt
    assert values_of(frozen) == values_of(per_tuple)
    assert counters_fz == counters_pt
    # The mid-stream thaw must leave no frozen residue unaccounted.
    assert freezer.freezes >= freezer.thaws


# Three-way join: SteM probes emit *composite* tuples that re-enter the
# routing loop, which in the batch path runs through the per-tuple
# composite fall-back inside ``process_batch``.  That fall-back must
# make fresh routing decisions (not reuse the batch-amortised route
# cache) for counters to match the per-tuple path exactly.

_VU = Schema.of("U", "c", "k")
_J3_ST = ColumnComparison("S.k", "==", "T.k")
_J3_TU = ColumnComparison("T.k", "==", "U.k")
_J3_SU = ColumnComparison("S.k", "==", "U.k")


def _build_three_way(filter_specs):
    stems = [SteM("S", index_columns=("S.k",)),
             SteM("T", index_columns=("T.k",)),
             SteM("U", index_columns=("U.k",))]
    ops = [SteMOperator(stems[0], [_J3_ST, _J3_SU], name="stem_s"),
           SteMOperator(stems[1], [_J3_ST, _J3_TU], name="stem_t"),
           SteMOperator(stems[2], [_J3_TU, _J3_SU], name="stem_u")]
    for i, (column, op, value) in enumerate(filter_specs):
        ops.append(FilterOperator(Comparison(column, op, value),
                                  name=f"f{i}"))
    return ops, [op.name for op in ops]


def _run_three_way(s_data, t_data, u_data, filter_specs, batch_size,
                   vectorized):
    ops, order = _build_three_way(filter_specs)
    eddy = Eddy(ops, output_sources={"S", "T", "U"},
                policy=FixedPolicy(order),
                batching=BatchingDirective(batch_size,
                                           vectorize=vectorized))
    rows = [_VS.make(a, k, timestamp=i)
            for i, (a, k) in enumerate(s_data)]
    rows += [_VT.make(b, k, timestamp=len(rows) + i)
             for i, (b, k) in enumerate(t_data)]
    rows += [_VU.make(c, k, timestamp=len(rows) + i)
             for i, (c, k) in enumerate(u_data)]
    results = []
    if vectorized:
        for schema in (_VS, _VT, _VU):
            group = [t for t in rows if t.schema is schema]
            for i in range(0, len(group), batch_size):
                batch = TupleBatch.from_tuples(group[i:i + batch_size])
                results.extend(eddy.process_batch(batch, 0))
    else:
        for t in rows:
            results.extend(eddy.process(t, 0))
    return _flatten(results), _data_plane_counters(eddy, ops)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 4), st.integers(0, 5)),
                max_size=16),
       st.lists(st.tuples(st.integers(0, 4), st.integers(0, 5)),
                max_size=16),
       st.lists(st.tuples(st.integers(0, 4), st.integers(0, 5)),
                max_size=16),
       st.lists(st.tuples(st.sampled_from(["a", "b", "c"]),
                          st.sampled_from(_V_OPS), st.integers(0, 4)),
                max_size=3),
       st.sampled_from([1, 2, 7, 32]))
def test_vectorized_three_way_composite_equals_per_tuple(
        s_data, t_data, u_data, filter_specs, batch_size):
    """Property: the batch path's composite fall-back (probe outputs
    re-routed per tuple inside process_batch) matches the per-tuple
    path's result multiset and data-plane counters on a 3-SteM/2-hop
    join plan with random filters."""
    per_tuple, counters_pt = _run_three_way(
        s_data, t_data, u_data, filter_specs, batch_size,
        vectorized=False)
    vectorized, counters_vec = _run_three_way(
        s_data, t_data, u_data, filter_specs, batch_size,
        vectorized=True)
    assert values_of(vectorized) == values_of(per_tuple)
    assert counters_vec == counters_pt


# ---------------------------------------------------------------- flux

def _run_flux_with_crash(data, fail_tick, victim_idx, replication,
                         speeds=(40, 40, 40, 40)):
    cluster = Cluster()
    for i, speed in enumerate(speeds):
        cluster.add_machine(f"m{i}", speed=speed)
    flux = Flux(cluster, n_partitions=6, key_fn=lambda t: t["sym"],
                state_factory=lambda: GroupCountState("sym"),
                replication=replication)
    victim = f"m{victim_idx}"
    i = 0
    tick = 0
    failed = False
    while i < len(data) or flux.unacked_total():
        batch = data[i:i + 60]
        i += len(batch)
        flux.tick(batch)
        tick += 1
        if not failed and tick == fail_tick:
            cluster.fail(victim)
            flux.on_machine_failure(victim)
            failed = True
        assert tick < 20_000
    return flux


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 500), st.integers(1, 30), st.integers(0, 3))
def test_flux_replicated_crash_is_exactly_once(seed, fail_tick,
                                               victim_idx):
    """Property: with process pairs, a crash at ANY point — before,
    during, or after the data — never loses or double-counts a tuple."""
    rng = random.Random(seed)
    data = [TRADES.make(rng.choice("ABCDEFGH"), float(i), timestamp=i)
            for i in range(rng.randrange(200, 1500))]
    truth = {}
    for t in data:
        truth[t["sym"]] = truth.get(t["sym"], 0) + 1
    flux = _run_flux_with_crash(list(data), fail_tick, victim_idx,
                                replication=1)
    assert flux.merged_counts() == truth
    assert flux.lost_tuples == 0


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 500), st.integers(1, 20), st.integers(0, 3))
def test_flux_unreplicated_loss_fully_accounted(seed, fail_tick,
                                                victim_idx):
    """Property: without replication, counted + lost == input, always —
    losses are measured, never silent."""
    rng = random.Random(seed)
    data = [TRADES.make(rng.choice("ABCD"), float(i), timestamp=i)
            for i in range(rng.randrange(200, 1000))]
    flux = _run_flux_with_crash(list(data), fail_tick, victim_idx,
                                replication=0)
    counted = sum(flux.merged_counts().values())
    assert counted + flux.lost_tuples == len(data)


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 300), st.lists(st.integers(1, 40), min_size=2,
                                     max_size=3, unique=True))
def test_flux_survives_multiple_sequential_crashes(seed, fail_ticks):
    """Property: process pairs survive any sequence of single-machine
    crashes as long as one machine remains."""
    rng = random.Random(seed)
    data = [TRADES.make(rng.choice("ABCDEF"), float(i), timestamp=i)
            for i in range(800)]
    truth = {}
    for t in data:
        truth[t["sym"]] = truth.get(t["sym"], 0) + 1
    cluster = Cluster()
    for i in range(4):
        cluster.add_machine(f"m{i}", speed=40)
    flux = Flux(cluster, n_partitions=6, key_fn=lambda t: t["sym"],
                state_factory=lambda: GroupCountState("sym"),
                replication=1)
    victims = iter(sorted(set(fail_ticks)))
    next_fail = next(victims, None)
    killed = 0
    i = 0
    tick = 0
    while i < len(data) or flux.unacked_total():
        batch = data[i:i + 60]
        i += len(batch)
        flux.tick(batch)
        tick += 1
        if next_fail is not None and tick == next_fail and killed < 2:
            victim = f"m{killed}"
            cluster.fail(victim)
            flux.on_machine_failure(victim)
            killed += 1
            next_fail = next(victims, None)
        assert tick < 30_000
    assert flux.merged_counts() == truth
    assert flux.lost_tuples == 0
