"""Tests for the lexer and parser — every §4.1 query verbatim, plus
error reporting."""

import pytest

from repro.errors import ParseError
from repro.query.ast import NumberExpr, VarExpr
from repro.query.lexer import Token, tokenize
from repro.query.parser import parse
from repro.query.predicates import (And, ColumnComparison, Comparison, Or)


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("SELECT select SeLeCt")
        assert all(t.is_keyword("select") for t in tokens[:3])

    def test_identifiers_preserve_case(self):
        (tok, _eof) = tokenize("ClosingStockPrices")
        assert tok.kind == "ident"
        assert tok.text == "ClosingStockPrices"

    def test_numbers(self):
        tokens = tokenize("42 50.00 .5")
        assert [t.text for t in tokens[:-1]] == ["42", "50.00", ".5"]

    def test_strings_both_quotes(self):
        tokens = tokenize("'MSFT' \"IBM\"")
        assert tokens[0].kind == "string" and tokens[0].text == "MSFT"
        assert tokens[1].text == "IBM"

    def test_unterminated_string(self):
        with pytest.raises(ParseError, match="unterminated"):
            tokenize("'oops")

    def test_multichar_operators_greedy(self):
        tokens = tokenize("<= >= != ++ += t--")
        ops = [t.text for t in tokens[:-1]]
        assert ops == ["<=", ">=", "!=", "++", "+=", "t", "--"]

    def test_comment_skipped(self):
        tokens = tokenize("select -- a comment\nx")
        assert tokens[0].is_keyword("select")
        assert tokens[1].text == "x"

    def test_decrement_after_ident_is_operator(self):
        tokens = tokenize("t--")
        assert tokens[1].is_op("--")

    def test_qualified_name_tokens(self):
        tokens = tokenize("c1.price")
        assert [t.text for t in tokens[:-1]] == ["c1", ".", "price"]

    def test_unexpected_character(self):
        with pytest.raises(ParseError, match="unexpected character"):
            tokenize("select @")


class TestParseBasics:
    def test_minimal_query(self):
        spec = parse("SELECT * FROM s")
        assert spec.select_items[0].is_star
        assert spec.sources[0].name == "s"

    def test_column_list_and_aliases(self):
        spec = parse("SELECT a, b AS beta FROM s")
        assert spec.select_items[0].column == "a"
        assert spec.select_items[1].alias == "beta"

    def test_from_alias_forms(self):
        spec = parse("SELECT * FROM s AS x, s y")
        assert spec.sources[0].binding == "x"
        assert spec.sources[1].binding == "y"

    def test_where_conjunction(self):
        spec = parse("SELECT * FROM s WHERE a > 1 AND b = 'z'")
        assert isinstance(spec.predicate, And)
        assert Comparison("a", ">", 1) in spec.predicate.parts

    def test_where_disjunction_precedence(self):
        spec = parse("SELECT * FROM s WHERE a > 1 OR b > 2 AND c > 3")
        # AND binds tighter than OR
        assert isinstance(spec.predicate, Or)

    def test_parenthesised_predicate(self):
        spec = parse("SELECT * FROM s WHERE (a > 1 OR b > 2) AND c > 3")
        assert isinstance(spec.predicate, And)

    def test_not(self):
        spec = parse("SELECT * FROM s WHERE NOT a > 1")
        assert spec.predicate == Comparison("a", "<=", 1)

    def test_column_comparison_becomes_join_factor(self):
        spec = parse("SELECT * FROM s, t WHERE s.k = t.k")
        assert spec.predicate == ColumnComparison("s.k", "==", "t.k")

    def test_literal_on_left_flips(self):
        spec = parse("SELECT * FROM s WHERE 5 < a")
        assert spec.predicate == Comparison("a", ">", 5)

    def test_negative_literal(self):
        spec = parse("SELECT * FROM s WHERE a > -3")
        assert spec.predicate == Comparison("a", ">", -3)

    def test_two_literals_rejected(self):
        with pytest.raises(ParseError, match="two literals"):
            parse("SELECT * FROM s WHERE 1 = 1")

    def test_aggregates(self):
        spec = parse("SELECT AVG(price), COUNT(*) FROM s")
        assert spec.select_items[0].aggregate == "AVG"
        assert spec.select_items[1].aggregate == "COUNT"
        assert spec.select_items[1].column is None
        assert spec.is_aggregate

    def test_distinct(self):
        assert parse("SELECT DISTINCT a FROM s").distinct

    def test_group_by(self):
        spec = parse("SELECT sym, COUNT(*) FROM s GROUP BY sym")
        assert spec.group_by == ("sym",)

    def test_order_by(self):
        spec = parse("SELECT a FROM s ORDER BY a DESC")
        assert spec.order_by == ("a", True)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError, match="trailing"):
            parse("SELECT * FROM s banana phone")

    def test_star_with_binding(self):
        spec = parse("SELECT c2.* FROM s AS c2")
        assert spec.select_items[0].is_star
        assert spec.select_items[0].alias == "c2"


class TestForLoopParsing:
    def test_paper_example_1_snapshot(self):
        spec = parse("""
            SELECT closingPrice, timestamp
            FROM ClosingStockPrices
            WHERE stockSymbol = 'MSFT'
            for (; t == 0; t = -1) {
                WindowIs(ClosingStockPrices, 1, 5);
            }
        """)
        fl = spec.for_loop
        assert fl is not None
        assert fl.variable == "t"
        assert fl.initial == NumberExpr(0)
        assert fl.update == ("=", NumberExpr(-1))
        assert fl.windows[0].stream == "ClosingStockPrices"

    def test_paper_example_2_landmark(self):
        spec = parse("""
            SELECT closingPrice, timestamp
            FROM ClosingStockPrices
            WHERE stockSymbol = 'MSFT' and closingPrice > 50.00
            for (t = 101; t <= 1000; t++) {
                WindowIs(ClosingStockPrices, 101, t);
            }
        """)
        fl = spec.for_loop
        assert fl.initial == NumberExpr(101)
        assert fl.update == ("+=", NumberExpr(1))
        assert fl.condition[1] == "<="

    def test_paper_example_3_sliding(self):
        spec = parse("""
            Select AVG(closingPrice)
            From ClosingStockPrices
            Where stockSymbol = 'MSFT'
            for (t = ST; t < ST + 50; t += 5) {
                WindowIs(ClosingStockPrices, t - 4, t);
            }
        """)
        fl = spec.for_loop
        assert fl.initial == VarExpr("ST")
        assert fl.update[0] == "+="
        # window left end is t-4
        env = {"t": 10}
        assert fl.windows[0].left.compile()(env) == 6

    def test_paper_example_4_band_join(self):
        spec = parse("""
            Select c2.*
            FROM ClosingStockPrices as c1, ClosingStockPrices as c2
            WHERE c1.stockSymbol = 'MSFT' and
                  c2.stockSymbol != 'MSFT' and
                  c2.closingPrice > c1.closingPrice and
                  c2.timestamp = c1.timestamp
            for (t = ST; t < ST + 20; t++) {
                WindowIs(c1, t - 4, t);
                WindowIs(c2, t - 4, t);
            }
        """)
        assert len(spec.for_loop.windows) == 2
        assert [s.binding for s in spec.sources] == ["c1", "c2"]
        factors = spec.predicate.conjuncts()
        assert ColumnComparison("c2.timestamp", "==", "c1.timestamp") in \
            factors

    def test_decrement_loop(self):
        spec = parse("""
            SELECT * FROM s
            for (t = 100; t > 0; t--) {
                WindowIs(s, t - 9, t);
            }
        """)
        assert spec.for_loop.update == ("-=", NumberExpr(1))

    def test_empty_forloop_body_rejected(self):
        with pytest.raises(ParseError, match="WindowIs"):
            parse("SELECT * FROM s for (t = 0; t < 5; t++) { }")

    def test_update_must_assign_loop_variable(self):
        with pytest.raises(ParseError, match="must assign"):
            parse("""SELECT * FROM s
                     for (t = 0; t < 5; x++) { WindowIs(s, 1, t); }""")

    def test_expression_arithmetic(self):
        spec = parse("""
            SELECT * FROM s
            for (t = 2 * (ST + 1); t < 100; t += 3 * 2) {
                WindowIs(s, t - 2 * 2, t);
            }
        """)
        env = {"ST": 4, "t": 0}
        assert spec.for_loop.initial.compile()(env) == 10
        assert spec.for_loop.update[1].compile()(env) == 6

    def test_division_is_integer_for_ints(self):
        spec = parse("""SELECT * FROM s
                        for (t = 7 / 2; t < 5; t++) { WindowIs(s, 1, t); }""")
        assert spec.for_loop.initial.compile()({}) == 3

    def test_unbound_variable_reported_at_compile(self):
        from repro.errors import QueryError
        spec = parse("""SELECT * FROM s
                        for (t = ST; t < 5; t++) { WindowIs(s, 1, t); }""")
        with pytest.raises(QueryError, match="unbound variable"):
            spec.for_loop.initial.compile()({})
