"""Tier-1 gate for the codebase invariant linter.

``python -m repro.analysis --self`` must exit 0 on the shipped tree
(the invariants hold), and must exit non-zero when a violation is
seeded — proving the gate actually bites.
"""

import pathlib
import subprocess
import sys
import textwrap

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = str(REPO_ROOT / "src")


def _run(*args, cwd=REPO_ROOT):
    env = {"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"}
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        cwd=cwd, env=env, capture_output=True, text=True)


def test_self_lint_is_clean():
    proc = _run("--self")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 findings" in proc.stdout


def test_seeded_clock_violation_fails(tmp_path):
    bad = tmp_path / "core"
    bad.mkdir()
    (bad / "offender.py").write_text(textwrap.dedent("""\
        import time

        def stamp():
            return time.time()
    """))
    proc = _run(str(bad))
    assert proc.returncode != 0
    assert "TCQ303" in proc.stdout


def test_codes_table_prints():
    proc = _run("--codes")
    assert proc.returncode == 0
    for code in ("TCQ101", "TCQ206", "TCQ305"):
        assert code in proc.stdout


def test_query_mode_flags_contradiction():
    proc = _run("--query", "SELECT * FROM s WHERE x > 5 AND x < 3")
    assert proc.returncode == 1
    assert "TCQ101" in proc.stdout
    assert "^" in proc.stdout          # caret rendering present
