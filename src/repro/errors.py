"""Exception hierarchy for the TelegraphCQ reproduction.

Every error raised by the library derives from :class:`TelegraphError` so
that callers can catch library failures with a single ``except`` clause
while still distinguishing configuration mistakes from runtime conditions.

The taxonomy is **wire-serializable**: :func:`error_to_wire` flattens any
library error into a JSON-safe dict and :func:`error_from_wire` rebuilds
the same exception class client-side, so a
:class:`~repro.client.NetworkConnection` raises exactly what a
:class:`~repro.client.LocalConnection` would.  Structured payloads
survive the round trip — :class:`PlanCheckError` carries its full
diagnostic list (spans included, so carets render identically on the
client), :class:`ParseError` its offset.
"""

from __future__ import annotations

from typing import Any, Dict


class TelegraphError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(TelegraphError):
    """A tuple, predicate, or query referenced a non-existent column or
    used a value of the wrong type for a declared column."""


class QueryError(TelegraphError):
    """A query was malformed: parse failure, unknown stream, unsupported
    construct, or an inconsistent window specification."""


class ParseError(QueryError):
    """The query text could not be parsed.

    Carries the offending position so clients can point at the error.
    """

    def __init__(self, message: str, position: int = -1, text: str = ""):
        self.position = position
        self.text = text
        if position >= 0 and text:
            snippet = text[max(0, position - 20):position + 20]
            message = f"{message} (at offset {position}, near {snippet!r})"
        super().__init__(message)


class PlanCheckError(QueryError):
    """The static plan verifier rejected the query at admission.

    Carries the full diagnostic list so clients can render carets into
    the query text; ``submit(..., allow_unsafe=True)`` bypasses.
    """

    def __init__(self, message: str, diagnostics=()):
        self.diagnostics = list(diagnostics)
        super().__init__(message)


class PlanError(TelegraphError):
    """A dataflow graph was assembled inconsistently: dangling ports,
    cycles where none are allowed, or modules wired to the wrong arity."""


class ExecutionError(TelegraphError):
    """The executor hit an unrecoverable condition while running a plan."""


class StorageError(TelegraphError):
    """The storage manager failed: buffer pool exhausted with all pages
    pinned, a spill file is corrupt, or a page id is unknown."""


class ClusterError(TelegraphError):
    """A simulated cluster operation failed: unknown machine, machine
    already dead, or an unrecoverable partition loss."""


class QosError(TelegraphError):
    """A quality-of-service contract could not be satisfied."""


class TelemetryError(TelegraphError):
    """A telemetry metric was misused: kind or label-schema clash,
    negative counter increment, or an unparseable exposition format."""


class ProtocolError(TelegraphError):
    """A wire-protocol violation: malformed frame, oversized frame,
    unknown operation, or a response that references no open request."""


class ConnectionClosedError(ProtocolError):
    """The peer closed the connection — either cleanly (BYE) or because
    the service evicted this client (idle / slow consumer)."""


#: Every class a wire error may deserialize to, keyed by its code (the
#: class name doubles as the stable wire code).
WIRE_ERRORS: Dict[str, type] = {
    cls.__name__: cls for cls in (
        TelegraphError, SchemaError, QueryError, ParseError,
        PlanCheckError, PlanError, ExecutionError, StorageError,
        ClusterError, QosError, TelemetryError, ProtocolError,
        ConnectionClosedError,
    )
}


def error_to_wire(exc: BaseException) -> Dict[str, Any]:
    """Flatten an exception into a JSON-safe dict.

    Non-library exceptions (engine bugs surfacing through the service)
    are reported as ``ExecutionError`` so clients never need to know
    arbitrary exception classes.
    """
    code = type(exc).__name__ if isinstance(exc, TelegraphError) \
        else "ExecutionError"
    payload: Dict[str, Any] = {"code": code, "message": str(exc)}
    if isinstance(exc, PlanCheckError):
        payload["diagnostics"] = [d.to_dict() for d in exc.diagnostics]
    if isinstance(exc, ParseError):
        payload["position"] = exc.position
        payload["text"] = exc.text
    return payload


def error_from_wire(payload: Dict[str, Any]) -> TelegraphError:
    """Rebuild the exception an :func:`error_to_wire` dict describes."""
    cls = WIRE_ERRORS.get(str(payload.get("code")), TelegraphError)
    message = str(payload.get("message", ""))
    if cls is PlanCheckError:
        # Deferred import: analysis.report is pure-dataclass, but going
        # through the package __init__ at module import time would cycle.
        from repro.analysis.report import Diagnostic
        return PlanCheckError(message, diagnostics=[
            Diagnostic.from_dict(d)
            for d in payload.get("diagnostics", ())])
    if cls is ParseError:
        # The message already carries the rendered "near ..." context;
        # rebuild with position=-1 so __init__ does not append it twice.
        exc = ParseError(message)
        exc.position = int(payload.get("position", -1))
        exc.text = str(payload.get("text", ""))
        return exc
    return cls(message)
