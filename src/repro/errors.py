"""Exception hierarchy for the TelegraphCQ reproduction.

Every error raised by the library derives from :class:`TelegraphError` so
that callers can catch library failures with a single ``except`` clause
while still distinguishing configuration mistakes from runtime conditions.
"""

from __future__ import annotations


class TelegraphError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(TelegraphError):
    """A tuple, predicate, or query referenced a non-existent column or
    used a value of the wrong type for a declared column."""


class QueryError(TelegraphError):
    """A query was malformed: parse failure, unknown stream, unsupported
    construct, or an inconsistent window specification."""


class ParseError(QueryError):
    """The query text could not be parsed.

    Carries the offending position so clients can point at the error.
    """

    def __init__(self, message: str, position: int = -1, text: str = ""):
        self.position = position
        self.text = text
        if position >= 0 and text:
            snippet = text[max(0, position - 20):position + 20]
            message = f"{message} (at offset {position}, near {snippet!r})"
        super().__init__(message)


class PlanCheckError(QueryError):
    """The static plan verifier rejected the query at admission.

    Carries the full diagnostic list so clients can render carets into
    the query text; ``submit(..., allow_unsafe=True)`` bypasses.
    """

    def __init__(self, message: str, diagnostics=()):
        self.diagnostics = list(diagnostics)
        super().__init__(message)


class PlanError(TelegraphError):
    """A dataflow graph was assembled inconsistently: dangling ports,
    cycles where none are allowed, or modules wired to the wrong arity."""


class ExecutionError(TelegraphError):
    """The executor hit an unrecoverable condition while running a plan."""


class StorageError(TelegraphError):
    """The storage manager failed: buffer pool exhausted with all pages
    pinned, a spill file is corrupt, or a page id is unknown."""


class ClusterError(TelegraphError):
    """A simulated cluster operation failed: unknown machine, machine
    already dead, or an unrecoverable partition loss."""


class QosError(TelegraphError):
    """A quality-of-service contract could not be satisfied."""


class TelemetryError(TelegraphError):
    """A telemetry metric was misused: kind or label-schema clash,
    negative counter increment, or an unparseable exposition format."""
