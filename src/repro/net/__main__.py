"""``python -m repro.net`` — serve an engine over the wire protocol."""

import sys

from repro.net.service import main

if __name__ == "__main__":
    sys.exit(main())
