"""The framed wire protocol: length-prefixed JSON frames.

Section 2 of the paper: "Client communication to Telegraph can be done
via TCP/IP sockets".  This module is the codec both ends share — the
asyncio :class:`~repro.net.service.TelegraphCQService` and the blocking
:class:`~repro.client.NetworkConnection` — so framing bugs cannot drift
between them.

Frame grammar (DESIGN.md §10)::

    frame    := header payload
    header   := uint32 big-endian payload length
    payload  := UTF-8 JSON object

Request frames carry ``op`` (HELLO, SUBMIT, FETCH, PUSH, CANCEL, STATS,
EXPLAIN, CHECK, DDL, CONTROL, CREDIT, METRICS, BYE) and a client-chosen
``id`` echoed on the response.  Response frames carry ``type``: RESULT
(success payload), ERROR (a wire-serialized
:mod:`repro.errors` taxonomy member), or STREAM-ROW (one pushed result
row for a streaming cursor — correlated by ``cursor``, not ``id``,
because it is unsolicited).

The decoder is incremental: feed it arbitrary byte slices (partial
headers, split payloads, many frames at once) and it yields complete
frames in order.  Oversized frames are rejected *from the header* —
before buffering the body — so a hostile or confused peer cannot balloon
memory.

Tuples cross the wire as ``{"c": columns, "v": values, "ts": timestamp,
"s": schema name}``; :func:`tuple_from_wire` rebuilds a real
:class:`~repro.core.tuples.Tuple` (schemas are interned per connection),
so local and network cursors hand back the same object kind.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, Iterable, List, Optional, Tuple as TypingTuple

from repro.core.tuples import Schema, Tuple
from repro.errors import ProtocolError

#: Wire-format revision; HELLO responses carry it.
PROTOCOL_VERSION = 1

#: Default ceiling on one frame's JSON payload (1 MiB).
MAX_FRAME = 1 << 20

_HEADER = struct.Struct(">I")
HEADER_SIZE = _HEADER.size

#: Request operations the service understands.
REQUEST_OPS = ("HELLO", "SUBMIT", "FETCH", "PUSH", "CANCEL", "STATS",
               "EXPLAIN", "CHECK", "DDL", "CONTROL", "CREDIT", "METRICS",
               "BYE")

#: Response frame types.
RESULT, ERROR, STREAM_ROW = "RESULT", "ERROR", "STREAM-ROW"


def encode_frame(frame: Dict[str, Any], max_frame: int = MAX_FRAME) -> bytes:
    """One frame as bytes: 4-byte big-endian length, then UTF-8 JSON."""
    try:
        payload = json.dumps(frame, separators=(",", ":"),
                             ensure_ascii=False).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"unserializable frame: {exc}") from None
    if len(payload) > max_frame:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{max_frame}-byte limit")
    return _HEADER.pack(len(payload)) + payload


class FrameDecoder:
    """Incremental frame reassembly over an arbitrary byte stream.

    Feed it whatever the transport produced — half a header, a payload
    split across reads, six frames in one read — and it returns every
    frame completed so far.  State between feeds is one buffer and the
    pending payload length.
    """

    def __init__(self, max_frame: int = MAX_FRAME):
        self.max_frame = max_frame
        self._buf = bytearray()
        self._need: Optional[int] = None    # payload bytes awaited
        self.frames_decoded = 0
        self.bytes_fed = 0

    def feed(self, data: bytes) -> List[Dict[str, Any]]:
        """Absorb ``data``; return the frames it completed (often [])."""
        self.bytes_fed += len(data)
        self._buf.extend(data)
        out: List[Dict[str, Any]] = []
        while True:
            if self._need is None:
                if len(self._buf) < HEADER_SIZE:
                    break
                (self._need,) = _HEADER.unpack(self._buf[:HEADER_SIZE])
                del self._buf[:HEADER_SIZE]
                if self._need > self.max_frame:
                    raise ProtocolError(
                        f"peer announced a {self._need}-byte frame; "
                        f"limit is {self.max_frame}")
            if len(self._buf) < self._need:
                break
            payload = bytes(self._buf[:self._need])
            del self._buf[:self._need]
            self._need = None
            try:
                frame = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, ValueError) as exc:
                raise ProtocolError(f"undecodable frame: {exc}") from None
            if not isinstance(frame, dict):
                raise ProtocolError(
                    f"frame must be a JSON object, got {type(frame).__name__}")
            self.frames_decoded += 1
            out.append(frame)
        return out

    @property
    def pending_bytes(self) -> int:
        return len(self._buf)


# -- tuple / window serialization ---------------------------------------------

def tuple_to_wire(t: Tuple) -> Dict[str, Any]:
    return {"s": t.schema.name, "c": list(t.schema.column_names()),
            "v": list(t.values), "ts": t.timestamp}


def tuple_from_wire(payload: Dict[str, Any],
                    schemas: Optional[Dict[Any, Schema]] = None) -> Tuple:
    """Rebuild a Tuple; ``schemas`` interns one Schema per (name,
    columns) so a million rows do not allocate a million schemas."""
    key = (payload.get("s", ""), tuple(payload["c"]))
    schema = None if schemas is None else schemas.get(key)
    if schema is None:
        schema = Schema.of(key[0], *key[1])
        if schemas is not None:
            schemas[key] = schema
    return Tuple(schema, tuple(payload["v"]), timestamp=payload.get("ts"))


def rows_to_wire(rows: Iterable[Tuple]) -> List[Dict[str, Any]]:
    return [tuple_to_wire(t) for t in rows]


def rows_from_wire(rows: Iterable[Dict[str, Any]],
                   schemas: Optional[Dict[Any, Schema]] = None
                   ) -> List[Tuple]:
    return [tuple_from_wire(r, schemas) for r in rows]


def windows_to_wire(windows: Iterable[TypingTuple[int, List[Tuple]]]
                    ) -> List[Dict[str, Any]]:
    return [{"t": t, "rows": rows_to_wire(rows)} for t, rows in windows]


def windows_from_wire(payload: Iterable[Dict[str, Any]],
                      schemas: Optional[Dict[Any, Schema]] = None
                      ) -> List[TypingTuple[int, List[Tuple]]]:
    return [(w["t"], rows_from_wire(w["rows"], schemas)) for w in payload]
