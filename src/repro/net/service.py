"""The network front door: an asyncio TelegraphCQ service (Figure 5).

The paper splits TelegraphCQ into a *FrontEnd* taking client connections
and a shared-memory *Executor*; this module is that FrontEnd made real.
:class:`TelegraphCQService` wraps one engine (obtained through the
unified door, :class:`repro.client.LocalConnection`) and serves the
framed wire protocol of :mod:`repro.net.frames` to many concurrent
connections, plus an HTTP admin plane (:mod:`repro.net.admin`).

**The network pump is just another scheduler citizen.**  All engine work
happens inside one :class:`repro.sched.Scheduler` hosting two units:

* ``engine`` — the wrapped :class:`~repro.core.engine.TelegraphCQServer`
  (already a Schedulable via ``step``);
* ``net-pump`` — a :class:`NetworkPump` that dispatches buffered request
  frames, streams cursor rows out under credit, and evicts idle or slow
  consumers.

The asyncio side only moves bytes: connection handlers decode frames
into the pump's inbox and wake the drive task.  Every engine mutation
happens on the event-loop thread inside a scheduler pass, so the engine
needs no locks.

**Credit-based backpressure** (the paper's §4.2 QoS ideas applied per
connection): a streaming cursor starts with the credit its SUBMIT frame
granted; each STREAM-ROW spends one credit and CREDIT frames replenish
it.  A consumer that stops granting credit stops receiving — results
buffer server-side in its cursor.  When that backlog exceeds
``max_backlog`` (or the socket's own write buffer exceeds
``max_write_buffer``) the consumer is *evicted*: its cursors are
cancelled, the connection closes, and the stranded backlog is reported
to the :class:`~repro.monitor.qos.LoadShedder` as arrived-but-never-
serviced load so PUSH admission tightens under overload.  Idle
connections (no frame for ``idle_timeout`` seconds) are evicted the same
way.  Both show up in ``tcq_net_evictions_total{reason=...}``.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import warnings
from collections import deque
from typing import Any, Dict, List, Optional

from repro.analysis import sanitize
from repro.analysis.plan_check import check_query
from repro.errors import (ExecutionError, ProtocolError, QueryError,
                          TelegraphError, error_to_wire)
from repro.core.tuples import Schema
from repro.ingress.ingress import IngressPoint
from repro.monitor.clock import now as _now
from repro.monitor.qos import LoadShedder
from repro.monitor.telemetry import get_registry
from repro.net.frames import (ERROR, MAX_FRAME, PROTOCOL_VERSION, RESULT,
                              STREAM_ROW, FrameDecoder, encode_frame,
                              rows_to_wire, windows_to_wire)
from repro.sched.protocol import FunctionUnit, StepResult
from repro.sched.scheduler import Scheduler

_SESSION_IDS = itertools.count(1)


class _Session:
    """One client connection: its cursors, stream credit, and liveness."""

    __slots__ = ("sid", "client", "writer", "decoder", "cursors",
                 "streaming", "credit", "last_active", "frames_in",
                 "frames_out", "rows_streamed", "closed")

    def __init__(self, sid: int, writer: asyncio.StreamWriter,
                 max_frame: int):
        self.sid = sid
        self.client = f"net#{sid}"
        self.writer = writer
        self.decoder = FrameDecoder(max_frame)
        self.cursors: Dict[int, Any] = {}       # cursor_id -> engine Cursor
        self.streaming: Dict[int, bool] = {}    # cursor_id -> stream mode
        self.credit: Dict[int, int] = {}        # cursor_id -> rows owed
        self.last_active = _now()
        self.frames_in = 0
        self.frames_out = 0
        self.rows_streamed = 0
        self.closed = False


class NetworkPump:
    """The scheduler unit that does all protocol work.

    ``run_once(quantum)`` dispatches up to ``quantum`` buffered request
    frames, then delivers streaming rows within each cursor's credit,
    then runs the eviction scan.  ``ready()`` is the cheap hint the
    pressure-aware policy needs: frames waiting, or a creditable cursor
    with buffered rows.
    """

    def __init__(self, service: "TelegraphCQService"):
        self.name = "net-pump"
        self.service = service
        self.finished = False
        self.inbox: deque = deque()             # (session, frame) pairs

    def ready(self) -> bool:
        if self.inbox:
            return True
        for session in self.service.sessions():
            for cid, credit in session.credit.items():
                if credit > 0:
                    cursor = session.cursors.get(cid)
                    if cursor is not None and cursor.pending():
                        return True
        return False

    def run_once(self, quantum: Optional[int] = None) -> StepResult:
        budget = 64 if quantum is None else max(1, quantum)
        worked = 0
        for _ in range(budget):
            if not self.inbox:
                break
            session, frame = self.inbox.popleft()
            self.service._dispatch(session, frame)
            worked += 1
        worked += self.service._deliver_streams()
        self.service._eviction_scan()
        return StepResult.BUSY if worked else StepResult.IDLE


class TelegraphCQService:
    """The asyncio front end over one engine.

    Construct, then either ``await service.start()`` inside a running
    loop, or :meth:`run_in_thread` to host the loop on a daemon thread
    (what the CLI and the blocking client tests use).  ``close()`` stops
    everything; the service is a context manager.
    """

    def __init__(self, connection: Optional[Any] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 admin_port: Optional[int] = 0,
                 max_frame: int = MAX_FRAME,
                 max_backlog: int = 256,
                 max_write_buffer: int = 1 << 20,
                 idle_timeout: Optional[float] = None,
                 idle_poll: float = 0.005,
                 policy: str = "round_robin",
                 shedder: Optional[LoadShedder] = None):
        # The unified client API is the only door to an engine; the
        # service fronts a LocalConnection rather than building its own
        # TelegraphCQServer (lint rule TCQ401).
        if connection is None:
            from repro.client import LocalConnection
            connection = LocalConnection()
        self.connection = connection
        self.server = connection.server
        self.host = host
        self.port = port
        self.admin_port = admin_port
        self.max_frame = max_frame
        self.max_backlog = max_backlog
        self.max_write_buffer = max_write_buffer
        self.idle_timeout = idle_timeout
        self.idle_poll = idle_poll
        # target_utilisation=1.0: pushes fold into the engine
        # synchronously, so arrival == service in every healthy epoch
        # and the only true pressure signal is stranded backlog at
        # eviction time.  A margin below 1.0 would shed a steady slice
        # of perfectly serviced traffic.
        self.shedder = shedder or LoadShedder(policy="random",
                                              target_utilisation=1.0)
        self.pump = NetworkPump(self)
        self.scheduler = Scheduler(policy=policy, name="net")
        self.scheduler.add(FunctionUnit(
            "engine", step=lambda q: self.server.step(16 if q is None else q)))
        self.scheduler.add(self.pump)
        self._sessions: Dict[int, _Session] = {}
        self._net_ingress: Dict[str, IngressPoint] = {}
        self._tcp_server: Optional[asyncio.AbstractServer] = None
        self._admin: Optional[Any] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._wake: Optional[asyncio.Event] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._drive_task: Optional[asyncio.Task] = None
        self._running = False
        # lifetime counters behind the tcq_net_* series
        self.sessions_total = 0
        self.frames_in_total = 0
        self.frames_out_total = 0
        self.rows_streamed_total = 0
        self.bytes_in_total = 0
        self.bytes_out_total = 0
        self.evictions: Dict[str, int] = {"idle": 0, "slow": 0}
        self._epoch_in = 0          # push rows received this shed epoch
        self._epoch_out = 0         # rows delivered this shed epoch
        self._telemetry = get_registry()
        self._telemetry.register_collector(self._publish_telemetry)
        # REPRO_SANITIZE=1: time every scheduler pass on the loop thread
        # so blocking regressions (TCQ701's runtime shadow) are counted.
        self.watchdog: Optional[sanitize.LoopWatchdog] = (
            sanitize.LoopWatchdog(budget_s=0.1, name="net")
            if sanitize.enabled() else None)
        self._handlers = {
            "HELLO": self._h_hello, "SUBMIT": self._h_submit,
            "FETCH": self._h_fetch, "PUSH": self._h_push,
            "CANCEL": self._h_cancel, "STATS": self._h_stats,
            "EXPLAIN": self._h_explain, "CHECK": self._h_check,
            "DDL": self._h_ddl, "CONTROL": self._h_control,
            "CREDIT": self._h_credit, "METRICS": self._h_metrics,
            "BYE": self._h_bye,
        }

    # -- lifecycle ---------------------------------------------------------
    @property
    def address(self) -> "tuple[str, int]":
        return (self.host, self.port)

    @property
    def admin_address(self) -> Optional["tuple[str, int]"]:
        return None if self._admin is None else self._admin.address

    def sessions(self) -> List[_Session]:
        return [s for s in self._sessions.values() if not s.closed]

    async def start(self) -> "TelegraphCQService":
        """Bind sockets and start the drive task in the running loop."""
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._stop_event = asyncio.Event()
        self._tcp_server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._tcp_server.sockets[0].getsockname()[1]
        if self.admin_port is not None:
            from repro.net.admin import AdminPlane
            self._admin = AdminPlane(self)
            await self._admin.start(self.host, self.admin_port)
            self.admin_port = self._admin.address[1]
        self._running = True
        self._drive_task = self._loop.create_task(self._drive())
        return self

    async def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        if self._wake is not None:
            self._wake.set()
        if self._drive_task is not None:
            await asyncio.gather(self._drive_task, return_exceptions=True)
        for session in list(self._sessions.values()):
            self._close_session(session)
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
        if self._admin is not None:
            await self._admin.stop()
        self.connection.close()

    def run_in_thread(self) -> "TelegraphCQService":
        """Host the event loop on a daemon thread; returns once the
        sockets are bound (so :attr:`address` is valid)."""
        ready = threading.Event()
        failure: List[BaseException] = []

        async def _serve() -> None:
            try:
                await self.start()
            except BaseException as exc:    # surface bind errors
                failure.append(exc)
                ready.set()
                return
            ready.set()
            await self._stop_event.wait()
            await self.stop()

        self._thread = threading.Thread(
            target=lambda: asyncio.run(_serve()), name="tcq-service",
            daemon=True)
        self._thread.start()
        if not ready.wait(timeout=10) or failure:
            raise ExecutionError(
                f"service failed to start: {failure or 'timeout'}")
        return self

    def close(self) -> None:
        """Stop the service from any thread.  Idempotent."""
        loop, thread = self._loop, self._thread
        if thread is not None and thread.is_alive():
            loop.call_soon_threadsafe(self._stop_event.set)
            thread.join(timeout=10)
        elif loop is not None and loop.is_running() and self._running:
            self._stop_event.set()

    def __enter__(self) -> "TelegraphCQService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- asyncio plumbing --------------------------------------------------
    async def _drive(self) -> None:
        """The scheduler loop: pass while there is work, park on the
        wake event (bounded by ``idle_poll`` so eviction scans run)
        while idle."""
        while self._running:
            if self.watchdog is not None:
                with self.watchdog:
                    result = self.scheduler.pass_once()
            else:
                result = self.scheduler.pass_once()
            if result.worked:
                await asyncio.sleep(0)      # yield to the transport
                continue
            self._wake.clear()
            if self.pump.ready():
                continue
            try:
                await asyncio.wait_for(self._wake.wait(), self.idle_poll)
            except asyncio.TimeoutError:
                pass

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        session = _Session(next(_SESSION_IDS), writer, self.max_frame)
        self._sessions[session.sid] = session
        self.sessions_total += 1
        try:
            while not session.closed:
                data = await reader.read(1 << 16)
                if not data:
                    break
                self.bytes_in_total += len(data)
                try:
                    frames = session.decoder.feed(data)
                except ProtocolError as exc:
                    self._send(session, {"type": ERROR, "id": None,
                                         "error": error_to_wire(exc)})
                    break
                for frame in frames:
                    session.last_active = _now()
                    session.frames_in += 1
                    self.frames_in_total += 1
                    self.pump.inbox.append((session, frame))
                if frames:
                    self._wake.set()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._close_session(session)

    def _send(self, session: _Session, frame: Dict[str, Any]) -> None:
        if session.closed:
            return
        try:
            data = encode_frame(frame, self.max_frame)
            session.writer.write(data)
        except (ProtocolError, ConnectionError, RuntimeError):
            self._close_session(session)
            return
        session.frames_out += 1
        self.frames_out_total += 1
        self.bytes_out_total += len(data)

    def _close_session(self, session: _Session) -> None:
        if session.closed:
            return
        session.closed = True
        for cursor in session.cursors.values():
            cursor.close()
        session.cursors.clear()
        session.credit.clear()
        self._sessions.pop(session.sid, None)
        try:
            session.writer.close()
        except RuntimeError:
            pass

    # -- pump phases -------------------------------------------------------
    def _dispatch(self, session: _Session, frame: Dict[str, Any]) -> None:
        op = str(frame.get("op", "")).upper()
        rid = frame.get("id")
        handler = self._handlers.get(op)
        if handler is None:
            self._send(session, {
                "type": ERROR, "id": rid,
                "error": error_to_wire(ProtocolError(
                    f"unknown operation {op or frame!r}"))})
            return
        try:
            payload = handler(session, frame)
        except TelegraphError as exc:
            self._send(session, {"type": ERROR, "id": rid,
                                 "error": error_to_wire(exc)})
            return
        except Exception as exc:        # engine bug: keep the wire alive
            self._send(session, {"type": ERROR, "id": rid,
                                 "error": error_to_wire(
                                     ExecutionError(repr(exc)))})
            return
        if payload is not None:
            self._send(session, {"type": RESULT, "id": rid, **payload})

    def _deliver_streams(self) -> int:
        """Push STREAM-ROW frames for every streaming cursor, spending
        its credit; returns rows delivered."""
        delivered = 0
        for session in self.sessions():
            for cid in list(session.streaming):
                credit = session.credit.get(cid, 0)
                if credit <= 0:
                    continue
                cursor = session.cursors.get(cid)
                if cursor is None:
                    continue
                rows = cursor.fetch(limit=credit)
                for row in rows:
                    self._send(session, {
                        "type": STREAM_ROW, "cursor": cid,
                        "row": rows_to_wire([row])[0]})
                if rows:
                    session.credit[cid] = credit - len(rows)
                    session.rows_streamed += len(rows)
                    self.rows_streamed_total += len(rows)
                    delivered += len(rows)
        if delivered:
            self._epoch_out += delivered
        return delivered

    def _eviction_scan(self) -> None:
        now = _now()
        for session in self.sessions():
            if self.idle_timeout is not None and \
                    now - session.last_active > self.idle_timeout:
                self._evict(session, "idle")
                continue
            backlog = sum(c.pending() for c in session.cursors.values()
                          if session.streaming.get(c.cursor_id))
            try:
                buffered = session.writer.transport.get_write_buffer_size()
            except (AttributeError, RuntimeError):
                buffered = 0
            if backlog > self.max_backlog or buffered > self.max_write_buffer:
                self._evict(session, "slow")
        if self._epoch_in or self._epoch_out:
            # Pushes fold into the engine synchronously, so in a healthy
            # epoch arrival == service regardless of how much clients
            # fetch back; genuine overload reaches the shedder via
            # _evict, which reports stranded rows as never-serviced
            # work, and these healthy epochs decay the drop rate again.
            self.shedder.update(self._epoch_in,
                                max(self._epoch_in, self._epoch_out))
            self._epoch_in = self._epoch_out = 0

    def _evict(self, session: _Session, reason: str) -> None:
        """Close a misbehaving consumer and report its stranded backlog
        to the load shedder as arrived-but-never-serviced work."""
        stranded = sum(c.pending() for c in session.cursors.values())
        self.evictions[reason] = self.evictions.get(reason, 0) + 1
        if stranded:
            self.shedder.update(arrived=stranded, serviced=0)
        self._send(session, {
            "type": ERROR, "id": None,
            "error": error_to_wire(ProtocolError(
                f"evicted: {reason} consumer "
                f"({stranded} rows stranded)"))})
        self._close_session(session)

    # -- request handlers --------------------------------------------------
    def _h_hello(self, session: _Session,
                 frame: Dict[str, Any]) -> Dict[str, Any]:
        client = frame.get("client")
        if client:
            session.client = str(client)
        return {"server": "telegraphcq", "protocol": PROTOCOL_VERSION,
                "session": session.sid}

    def _h_submit(self, session: _Session,
                  frame: Dict[str, Any]) -> Dict[str, Any]:
        query = frame.get("query")
        if not query:
            raise ProtocolError("SUBMIT needs a query")
        env = frame.get("env")
        with warnings.catch_warnings():
            # Plan-check warnings belong to the submitting client, not
            # the service's stderr; they travel as diagnostics instead.
            warnings.simplefilter("ignore")
            cursor = self.server.submit(
                query, client=session.client, env=env,
                allow_unsafe=bool(frame.get("allow_unsafe", False)))
        session.cursors[cursor.cursor_id] = cursor
        if frame.get("stream"):
            session.streaming[cursor.cursor_id] = True
            session.credit[cursor.cursor_id] = int(frame.get("credit", 0))
        return {"cursor": cursor.cursor_id, "kind": cursor.kind,
                "diagnostics": [d.to_dict() for d in cursor.diagnostics]}

    def _cursor_of(self, session: _Session, frame: Dict[str, Any]) -> Any:
        cid = frame.get("cursor")
        cursor = session.cursors.get(cid)
        if cursor is None:
            # Cursors are strictly per-session: another client's id is
            # indistinguishable from an unknown one (no leakage).
            raise QueryError(f"no cursor #{cid} on this connection")
        return cursor

    def _h_fetch(self, session: _Session,
                 frame: Dict[str, Any]) -> Dict[str, Any]:
        cursor = self._cursor_of(session, frame)
        if frame.get("windows"):
            return {"windows": windows_to_wire(cursor.fetch_windows())}
        rows = cursor.fetch(limit=int(frame.get("limit", 0)))
        self._epoch_out += len(rows)
        return {"rows": rows_to_wire(rows)}

    def _h_push(self, session: _Session,
                frame: Dict[str, Any]) -> Dict[str, Any]:
        stream = frame.get("stream")
        rows = frame.get("rows")
        if rows is None:
            rows = [frame.get("values", ())]
        entry = self.server.catalog.lookup(stream)
        if not entry.is_stream:
            raise QueryError(f"{stream!r} is a table; use DDL insert")
        timestamps = frame.get("timestamps")
        base_ts = frame.get("timestamp")
        clock = self.server._stream_clock.get(stream, 0)
        tuples = []
        for i, values in enumerate(rows):
            if timestamps is not None:
                ts = timestamps[i]
            elif base_ts is not None:
                ts = base_ts + i
            else:
                ts = clock + 1 + i
            tuples.append(entry.schema.make(*values, timestamp=ts))
        self._epoch_in += len(tuples)
        point = self._net_ingress.get(stream)
        if point is None:
            # The network edge is the fourth Ingress implementation:
            # shed at the door, then enter the server's own point.
            point = IngressPoint(
                f"net:{stream}", shedder=self.shedder,
                deliver=lambda t, s=stream: self.server.push_tuple(s, t))
            self._net_ingress[stream] = point
        pushed = point.admit(tuples)
        return {"pushed": pushed, "shed": len(tuples) - pushed}

    def _h_cancel(self, session: _Session,
                  frame: Dict[str, Any]) -> Dict[str, Any]:
        cursor = self._cursor_of(session, frame)
        cursor.close()
        session.streaming.pop(cursor.cursor_id, None)
        session.credit.pop(cursor.cursor_id, None)
        return {"cancelled": cursor.cursor_id}

    def _h_stats(self, session: _Session,
                 frame: Dict[str, Any]) -> Dict[str, Any]:
        return {"stats": self.server.stats(), "net": self.net_stats()}

    def _h_explain(self, session: _Session,
                   frame: Dict[str, Any]) -> Dict[str, Any]:
        cursor = self._cursor_of(session, frame)
        return {"explain": self.server.explain(
            cursor, analyze=bool(frame.get("analyze", False)))}

    def _h_check(self, session: _Session,
                 frame: Dict[str, Any]) -> Dict[str, Any]:
        query = frame.get("query")
        if not query:
            raise ProtocolError("CHECK needs a query")
        report = check_query(query, self.server.catalog,
                             self.server._admission_context())
        return {"diagnostics": [d.to_dict() for d in report.diagnostics]}

    def _h_ddl(self, session: _Session,
               frame: Dict[str, Any]) -> Dict[str, Any]:
        action = frame.get("action")
        name = frame.get("name")
        if action == "create_stream":
            self.server.create_stream(Schema.of(name, *frame["columns"]))
            return {"created": name}
        if action == "create_table":
            self.server.create_table(Schema.of(name, *frame["columns"]),
                                     rows=frame.get("rows", ()))
            return {"created": name}
        if action == "close_stream":
            self.server.close_stream(name)
            return {"closed": name}
        if action == "insert":
            entry = self.server.catalog.lookup(name)
            if entry.is_stream:
                raise QueryError(f"{name!r} is a stream; use PUSH instead")
            rows = self.server.tables[name]
            rows.append(entry.schema.make(*frame["values"],
                                          timestamp=len(rows)))
            return {"inserted": 1}
        raise ProtocolError(f"unknown DDL action {action!r}")

    def _h_control(self, session: _Session,
                   frame: Dict[str, Any]) -> Dict[str, Any]:
        action = frame.get("action")
        if action == "step":
            k = int(frame.get("k", 1))
            worked = 0
            for _ in range(max(1, k)):
                if self.server.step():
                    worked += 1
            return {"stepped": k, "worked": worked}
        if action == "run":
            return {"steps": self.server.run_until_quiescent()}
        raise ProtocolError(f"unknown CONTROL action {action!r}")

    def _h_credit(self, session: _Session,
                  frame: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        cursor = self._cursor_of(session, frame)
        grant = int(frame.get("n", 0))
        if grant > 0:
            session.credit[cursor.cursor_id] = \
                session.credit.get(cursor.cursor_id, 0) + grant
        if frame.get("id") is not None:
            return {"credit": session.credit.get(cursor.cursor_id, 0)}
        return None

    def _h_metrics(self, session: _Session,
                   frame: Dict[str, Any]) -> Dict[str, Any]:
        return {"prometheus": self._telemetry.snapshot().to_prometheus()}

    def _h_bye(self, session: _Session,
               frame: Dict[str, Any]) -> None:
        if frame.get("id") is not None:
            self._send(session, {"type": RESULT, "id": frame["id"],
                                 "bye": True})
        self._close_session(session)
        return None

    # -- observability -----------------------------------------------------
    def net_stats(self) -> Dict[str, Any]:
        return {
            "sessions_open": len(self.sessions()),
            "sessions_total": self.sessions_total,
            "frames_in": self.frames_in_total,
            "frames_out": self.frames_out_total,
            "rows_streamed": self.rows_streamed_total,
            "evictions": dict(self.evictions),
            "shed_drop_rate": self.shedder.drop_rate,
        }

    def _publish_telemetry(self) -> None:
        reg = self._telemetry
        reg.gauge("tcq_net_sessions_open", "Live client connections",
                  collected=True).set(len(self.sessions()))
        reg.counter("tcq_net_sessions_total",
                    "Connections accepted since start",
                    collected=True).set_total(self.sessions_total)
        frames_c = reg.counter("tcq_net_frames_total",
                               "Protocol frames moved", ("dir",),
                               collected=True)
        frames_c.labels("in").set_total(self.frames_in_total)
        frames_c.labels("out").set_total(self.frames_out_total)
        bytes_c = reg.counter("tcq_net_bytes_total", "Wire bytes moved",
                              ("dir",), collected=True)
        bytes_c.labels("in").set_total(self.bytes_in_total)
        bytes_c.labels("out").set_total(self.bytes_out_total)
        reg.counter("tcq_net_stream_rows_total",
                    "Rows delivered as STREAM-ROW frames",
                    collected=True).set_total(self.rows_streamed_total)
        evict = reg.counter("tcq_net_evictions_total",
                            "Connections evicted", ("reason",),
                            collected=True)
        for reason, n in self.evictions.items():
            evict.labels(reason).set_total(n)
        shed = sum(p.shed for p in self._net_ingress.values())
        reg.counter("tcq_net_push_shed_total",
                    "PUSH rows dropped by the load shedder",
                    collected=True).set_total(shed)
        reg.gauge("tcq_net_inbox_depth",
                  "Request frames awaiting the pump",
                  collected=True).set(len(self.pump.inbox))


def main(argv: Optional[List[str]] = None) -> int:    # pragma: no cover
    """``python -m repro.net [--host H] [--port P] [--admin-port A]``"""
    import argparse
    parser = argparse.ArgumentParser(
        prog="python -m repro.net",
        description="Serve a TelegraphCQ engine over the framed wire "
                    "protocol, with an HTTP admin plane")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7673)
    parser.add_argument("--admin-port", type=int, default=7674)
    parser.add_argument("--idle-timeout", type=float, default=None)
    args = parser.parse_args(argv)
    service = TelegraphCQService(host=args.host, port=args.port,
                                 admin_port=args.admin_port,
                                 idle_timeout=args.idle_timeout)

    async def _serve() -> None:
        await service.start()
        print(f"telegraphcq: wire protocol on {service.host}:{service.port}, "
              f"admin on http://{service.admin_address[0]}:"
              f"{service.admin_address[1]}/")
        await service._stop_event.wait()
        await service.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0
