"""repro.net — the network front door (paper §2: "client communication
to Telegraph can be done via TCP/IP sockets").

* :mod:`repro.net.frames` — the length-prefixed JSON frame codec both
  ends share;
* :mod:`repro.net.service` — the asyncio :class:`TelegraphCQService`
  (frame protocol + scheduler-driven :class:`NetworkPump`);
* :mod:`repro.net.admin` — the HTTP admin plane;
* :mod:`repro.net.aioclient` — a minimal asyncio frame client for tests
  and benchmarks (the blocking client lives in :mod:`repro.client`).
"""

from repro.net.frames import (ERROR, MAX_FRAME, PROTOCOL_VERSION,
                              REQUEST_OPS, RESULT, STREAM_ROW,
                              FrameDecoder, encode_frame)
from repro.net.service import NetworkPump, TelegraphCQService

__all__ = [
    "ERROR", "MAX_FRAME", "PROTOCOL_VERSION", "REQUEST_OPS", "RESULT",
    "STREAM_ROW", "FrameDecoder", "encode_frame", "NetworkPump",
    "TelegraphCQService",
]
