"""A minimal asyncio frame client.

The blocking :class:`repro.client.NetworkConnection` is the supported
application API; this module is the *driver-side* counterpart used where
hundreds of concurrent connections must live in one thread — the
multi-client leakage test and ``benchmarks/bench_net_throughput.py``.
It speaks exactly the :mod:`repro.net.frames` protocol: requests get
incrementing ids, responses are matched back by id, and unsolicited
STREAM-ROW frames accumulate per cursor.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, Dict, List, Optional

from repro.errors import ConnectionClosedError, error_from_wire
from repro.net.frames import (ERROR, MAX_FRAME, RESULT, STREAM_ROW,
                              FrameDecoder, encode_frame)


class AsyncFrameClient:
    """One async connection to a :class:`~repro.net.service.
    TelegraphCQService`.  ``request(op, **fields)`` returns the RESULT
    payload or raises the deserialized taxonomy error."""

    def __init__(self, host: str, port: int, max_frame: int = MAX_FRAME):
        self.host = host
        self.port = port
        self.max_frame = max_frame
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._decoder = FrameDecoder(max_frame)
        self._ids = itertools.count(1)
        self._waiters: Dict[int, asyncio.Future] = {}
        self._pump_task: Optional[asyncio.Task] = None
        #: cursor_id -> wire rows pushed by STREAM-ROW frames.
        self.stream_rows: Dict[int, List[Dict[str, Any]]] = {}
        self.evicted: Optional[Dict[str, Any]] = None

    async def connect(self, client: str = "aio") -> Dict[str, Any]:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port)
        self._pump_task = asyncio.get_running_loop().create_task(
            self._pump())
        return await self.request("HELLO", client=client)

    async def _pump(self) -> None:
        try:
            while True:
                data = await self._reader.read(1 << 16)
                if not data:
                    break
                for frame in self._decoder.feed(data):
                    self._on_frame(frame)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            closed = ConnectionClosedError("connection closed by peer")
            for fut in self._waiters.values():
                if not fut.done():
                    fut.set_exception(closed)
            self._waiters.clear()

    def _on_frame(self, frame: Dict[str, Any]) -> None:
        kind = frame.get("type")
        if kind == STREAM_ROW:
            self.stream_rows.setdefault(frame["cursor"], []).append(
                frame["row"])
            return
        rid = frame.get("id")
        fut = self._waiters.pop(rid, None)
        if fut is None or fut.done():
            if kind == ERROR and rid is None:
                # Unsolicited: the service evicted us.
                self.evicted = frame.get("error")
            return
        if kind == ERROR:
            fut.set_exception(error_from_wire(frame.get("error", {})))
        else:
            fut.set_result(frame)

    async def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        rid = next(self._ids)
        fut = asyncio.get_running_loop().create_future()
        self._waiters[rid] = fut
        self._writer.write(encode_frame({"op": op, "id": rid, **fields},
                                        self.max_frame))
        await self._writer.drain()
        return await fut

    def send(self, op: str, **fields: Any) -> None:
        """Fire-and-forget (CREDIT grants, BYE without waiting)."""
        self._writer.write(encode_frame({"op": op, **fields},
                                        self.max_frame))

    async def close(self) -> None:
        if self._writer is not None:
            try:
                self.send("BYE")
                await self._writer.drain()
            except (ConnectionError, RuntimeError):
                pass
            self._writer.close()
        if self._pump_task is not None:
            self._pump_task.cancel()
            await asyncio.gather(self._pump_task, return_exceptions=True)

    async def __aenter__(self) -> "AsyncFrameClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()
