"""The HTTP admin plane: operational REST next to the wire protocol.

A deliberately small asyncio HTTP/1.1 server (stdlib only — no web
framework) bound beside the frame port.  It serves the operator-facing
read/manage surface of a running :class:`~repro.net.service.
TelegraphCQService`:

====================================  =========================================
``GET /queries``                      open cursors across all clients
``POST /queries``                     submit ``{"query": ..., "client": ...,
                                      "env": ..., "allow_unsafe": ...}``
``DELETE /queries/{id}``              cancel a cursor
``GET /queries/{id}/explain``         the live plan (``?analyze=1`` adds
                                      latency percentiles)
``GET /stats``                        engine + network statistics
``GET /trace``                        the trace ring as JSONL
``GET /metrics``                      Prometheus exposition of the *same*
                                      process-global registry the in-process
                                      exporter serves
====================================  =========================================

Errors come back as JSON bodies in the :mod:`repro.errors` wire shape
(``{"error": {"code": ..., "message": ...}}``), so a script driving the
admin plane and a client speaking the frame protocol parse failures the
same way.

Handlers run on the event-loop thread and never await mid-request, so
each admin call observes (and mutates) the engine atomically with
respect to scheduler passes — the same single-writer discipline the
frame dispatcher enjoys.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple as TypingTuple
from urllib.parse import parse_qs, urlsplit

import repro.monitor.tracing as tracing
from repro.errors import (ProtocolError, QueryError, TelegraphError,
                          error_to_wire)

_REASONS = {200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 500: "Internal Server Error"}
_MAX_BODY = 1 << 20


class AdminPlane:
    """The HTTP side-door of one service."""

    def __init__(self, service: Any):
        self.service = service
        self._http: Optional[asyncio.AbstractServer] = None
        self.address: Optional[TypingTuple[str, int]] = None
        self.requests_served = 0

    async def start(self, host: str, port: int) -> None:
        self._http = await asyncio.start_server(self._handle, host, port)
        self.address = self._http.sockets[0].getsockname()[:2]

    async def stop(self) -> None:
        if self._http is not None:
            self._http.close()
            await self._http.wait_closed()

    # -- one request -------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            status, ctype, body = await self._respond(reader)
        except (ConnectionError, asyncio.LimitOverrunError):
            writer.close()
            return
        except Exception as exc:        # never let the plane die
            status, ctype, body = 500, "application/json", json.dumps(
                {"error": error_to_wire(exc)})
        payload = body.encode("utf-8")
        head = (f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
                f"Content-Type: {ctype}; charset=utf-8\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n\r\n")
        try:
            writer.write(head.encode("ascii") + payload)
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()
        self.requests_served += 1

    async def _respond(self, reader: asyncio.StreamReader
                       ) -> TypingTuple[int, str, str]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) != 3:
            return self._error(400, ProtocolError(
                f"malformed request line {request_line!r}"))
        method, target, _version = parts
        length = 0
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                length = min(int(value.strip() or 0), _MAX_BODY)
        body: Dict[str, Any] = {}
        if length:
            raw = await reader.readexactly(length)
            try:
                body = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, ValueError) as exc:
                return self._error(400, ProtocolError(
                    f"request body is not JSON: {exc}"))
        split = urlsplit(target)
        query = {k: v[-1] for k, v in parse_qs(split.query).items()}
        try:
            return self._route(method.upper(), split.path, query, body)
        except QueryError as exc:
            # Unknown cursor / unknown route reads as 404; a query the
            # engine *rejected* (parse, plan check) is the caller's 400.
            status = 404 if type(exc) is QueryError else 400
            return self._error(status, exc)
        except TelegraphError as exc:
            return self._error(400, exc)

    @staticmethod
    def _error(status: int, exc: BaseException
               ) -> TypingTuple[int, str, str]:
        return (status, "application/json",
                json.dumps({"error": error_to_wire(exc)}))

    @staticmethod
    def _json(payload: Any, status: int = 200
              ) -> TypingTuple[int, str, str]:
        return (status, "application/json",
                json.dumps(payload, default=str))

    # -- routing -----------------------------------------------------------
    def _route(self, method: str, path: str, query: Dict[str, str],
               body: Dict[str, Any]) -> TypingTuple[int, str, str]:
        server = self.service.server
        segments = [s for s in path.split("/") if s]

        if segments == ["metrics"] and method == "GET":
            return (200, "text/plain",
                    server.telemetry().to_prometheus())

        if segments == ["stats"] and method == "GET":
            return self._json({"engine": server.stats(),
                               "net": self.service.net_stats()})

        if segments == ["trace"] and method == "GET":
            return (200, "application/x-ndjson",
                    tracing.TRACER.export_jsonl())

        if segments == ["queries"]:
            if method == "GET":
                return self._json({"queries": [
                    {"cursor": c.cursor_id, "kind": c.kind,
                     "client": c.client, "pending": c.pending(),
                     "delivered": c.delivered}
                    for c in server.open_cursors()]})
            if method == "POST":
                if not body.get("query"):
                    raise ProtocolError('POST /queries needs {"query": ...}')
                cursor = server.submit(
                    body["query"],
                    client=str(body.get("client", "admin")),
                    env=body.get("env"),
                    allow_unsafe=bool(body.get("allow_unsafe", False)))
                return self._json(
                    {"cursor": cursor.cursor_id, "kind": cursor.kind,
                     "diagnostics": [d.to_dict()
                                     for d in cursor.diagnostics]},
                    status=201)
            return self._error(405, ProtocolError(
                f"{method} not allowed on /queries"))

        if len(segments) >= 2 and segments[0] == "queries":
            cursor = server.find_cursor(int(segments[1]))
            if len(segments) == 2 and method == "DELETE":
                cursor.close()
                return self._json({"cancelled": cursor.cursor_id})
            if len(segments) == 3 and segments[2] == "explain" \
                    and method == "GET":
                analyze = query.get("analyze") in ("1", "true", "yes")
                return self._json(server.explain(cursor, analyze=analyze))
            return self._error(405, ProtocolError(
                f"{method} not allowed on /{'/'.join(segments)}"))

        return self._error(404, QueryError(f"no route for {path!r}"))
