"""Broadcast-disk style page scheduling (Section 4.3, [AAFZ95]).

"A log-structured file system would enhance write performance, but for
windowed queries ... the read workload on the disk resembles that of
periodic data broadcasting systems, which require very different data
layout.  We are currently designing a storage subsystem that exploits
the sequential write workload, while also providing broadcast-disk
style read behavior."

This module is that subsystem's read side, simulated: pages are laid on
a cyclic broadcast schedule; a reader cannot seek — it waits for the
page to come around.  Hot pages (those many standing windows touch) are
placed on faster "disks" (repeated more often per major cycle), which is
the Broadcast Disks idea [AAFZ95]: expected wait for a page broadcast
with spacing s is s/2, so allocating frequency proportional to the
*square root* of access probability minimises mean wait.

Pieces:

* :class:`BroadcastSchedule` — builds the cyclic program from per-page
  access frequencies, either flat (every page once per cycle) or
  multi-disk with square-root frequency assignment;
* :class:`BroadcastReader` — a client at an arbitrary cycle position;
  ``wait_for(page_id)`` returns how many slots pass before the page
  airs (the latency the layout is tuned for);
* :func:`expected_wait` — analytic mean wait under a given access
  distribution, used by tests/benchmarks to verify the square-root rule
  beats flat layout on skewed workloads and ties on uniform ones.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.errors import StorageError


class BroadcastSchedule:
    """A cyclic page program.

    ``frequencies`` maps page id -> access probability weight (any
    positive scale).  ``n_disks=1`` produces the flat program; more
    disks bucket pages by weight and repeat hot buckets proportionally
    more often, interleaved the Broadcast Disks way (each minor cycle
    carries one chunk of every disk).
    """

    def __init__(self, frequencies: Dict[int, float], n_disks: int = 1):
        if not frequencies:
            raise StorageError("a broadcast schedule needs pages")
        if any(w < 0 for w in frequencies.values()):
            raise StorageError("access weights must be non-negative")
        if n_disks < 1:
            raise StorageError("need at least one broadcast disk")
        self.frequencies = dict(frequencies)
        self.n_disks = min(n_disks, len(frequencies))
        self.program: List[int] = self._build()
        #: slots at which each page airs, for wait computations.
        self.air_slots: Dict[int, List[int]] = {}
        for slot, page in enumerate(self.program):
            self.air_slots.setdefault(page, []).append(slot)

    def _build(self) -> List[int]:
        if self.n_disks == 1:
            return sorted(self.frequencies)
        # Square-root rule: relative broadcast frequency ~ sqrt(p).
        # Bucket pages into n_disks groups by sqrt-weight quantiles and
        # give disk i a relative speed equal to the rounded ratio of its
        # bucket's mean sqrt-weight to the coldest bucket's.
        pages = sorted(self.frequencies,
                       key=lambda p: -self.frequencies[p])
        buckets: List[List[int]] = [[] for _ in range(self.n_disks)]
        per_bucket = math.ceil(len(pages) / self.n_disks)
        for i, page in enumerate(pages):
            buckets[min(i // per_bucket, self.n_disks - 1)].append(page)
        buckets = [b for b in buckets if b]

        def mean_sqrt(bucket: List[int]) -> float:
            return sum(math.sqrt(self.frequencies[p])
                       for p in bucket) / len(bucket)

        coldest = mean_sqrt(buckets[-1]) or 1e-9
        speeds = [max(1, round(mean_sqrt(b) / coldest)) for b in buckets]
        # Interleave: the major cycle has lcm-free structure — we use
        # the classic chunking: disk i is split into (max_speed/speed_i)
        # chunks; each minor cycle takes the next chunk of every disk.
        max_speed = max(speeds)
        chunks: List[List[List[int]]] = []
        for bucket, speed in zip(buckets, speeds):
            n_chunks = max(1, max_speed // speed)
            size = math.ceil(len(bucket) / n_chunks)
            chunks.append([bucket[i:i + size]
                           for i in range(0, len(bucket), size)] or [[]])
        program: List[int] = []
        n_minor = max_speed
        for minor in range(n_minor):
            for disk_chunks in chunks:
                program.extend(disk_chunks[minor % len(disk_chunks)])
        return program

    @property
    def cycle_length(self) -> int:
        return len(self.program)

    def spacing(self, page_id: int) -> float:
        """Mean slot distance between consecutive airings of a page."""
        slots = self.air_slots.get(page_id)
        if not slots:
            raise StorageError(f"page {page_id} is not on the schedule")
        return self.cycle_length / len(slots)


class BroadcastReader:
    """A windowed-query reader tuned to the broadcast.

    ``wait_for`` returns the number of slots until the next airing of a
    page from the current position, then advances past it (reading is
    sequential, like listening to a broadcast).
    """

    def __init__(self, schedule: BroadcastSchedule, position: int = 0):
        self.schedule = schedule
        self.position = position % schedule.cycle_length
        self.total_wait = 0
        self.reads = 0

    def wait_for(self, page_id: int) -> int:
        slots = self.schedule.air_slots.get(page_id)
        if not slots:
            raise StorageError(f"page {page_id} is not on the schedule")
        n = self.schedule.cycle_length
        best = min((slot - self.position) % n for slot in slots)
        self.position = (self.position + best + 1) % n
        self.total_wait += best
        self.reads += 1
        return best

    def mean_wait(self) -> float:
        return self.total_wait / self.reads if self.reads else 0.0


def expected_wait(schedule: BroadcastSchedule,
                  access_probabilities: Dict[int, float]) -> float:
    """Analytic mean wait: sum over pages of p(page) * spacing/2."""
    total_p = sum(access_probabilities.values())
    if total_p <= 0:
        raise StorageError("access probabilities must sum > 0")
    wait = 0.0
    for page, p in access_probabilities.items():
        wait += (p / total_p) * schedule.spacing(page) / 2.0
    return wait
