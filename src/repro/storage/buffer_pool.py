"""The buffer pool: bounded page frames between streams and the spill log.

"The buffer pool manager must be tuned to both accept new bursty
streaming data, as well as service queries that access historical data"
(Section 4.3).  This pool supports the two replacement policies the E14
ablation compares:

* **LRU** — classic least-recently-used;
* **CLOCK** — second-chance approximation, cheaper bookkeeping.

Pages are pinned while in use; eviction only considers unpinned frames,
and dirty victims are written to the :class:`~repro.storage.spill.
SpillStore` first.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from typing import Dict, List, Optional

from repro.errors import StorageError
from repro.monitor.telemetry import get_registry
from repro.storage.pages import Page
from repro.storage.spill import SpillStore

_POOL_IDS = itertools.count()


class BufferPool:
    """A fixed number of page frames with pluggable replacement."""

    POLICIES = ("lru", "clock")

    def __init__(self, n_frames: int, spill: Optional[SpillStore] = None,
                 policy: str = "lru"):
        if n_frames < 1:
            raise StorageError("buffer pool needs at least one frame")
        if policy not in self.POLICIES:
            raise StorageError(f"unknown replacement policy {policy!r}")
        self.n_frames = n_frames
        self.policy = policy
        self.spill = spill if spill is not None else SpillStore()
        self._frames: "OrderedDict[int, Page]" = OrderedDict()
        self._ref_bits: Dict[int, bool] = {}
        self._clock_hand: List[int] = []
        self._hand_pos = 0
        self._next_page_id = itertools.count()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._telemetry = get_registry()
        self._telemetry_id = f"pool#{next(_POOL_IDS)}"
        self._telemetry.register_collector(self._publish_telemetry)

    # -- page lifecycle ------------------------------------------------------
    def new_page(self, stream: str, capacity: int) -> Page:
        """Allocate a fresh page, resident and unpinned."""
        page = Page(next(self._next_page_id), stream, capacity)
        self._admit(page)
        return page

    def get_page(self, page_id: int) -> Page:
        """Fetch a page, from a frame (hit) or the spill log (miss)."""
        page = self._frames.get(page_id)
        if page is not None:
            self.hits += 1
            self._touch(page_id)
            return page
        self.misses += 1
        page = self.spill.read_page(page_id)
        self._admit(page)
        return page

    def pin(self, page: Page) -> Page:
        page.pin_count += 1
        return page

    def unpin(self, page: Page) -> None:
        if page.pin_count <= 0:
            raise StorageError(f"page {page.page_id} is not pinned")
        page.pin_count -= 1

    def discard_page(self, page_id: int) -> None:
        """Drop a page everywhere (frame + spill) — used when stream
        truncation retires pages no window can reach."""
        page = self._frames.pop(page_id, None)
        if page is not None and page.pin_count:
            raise StorageError(
                f"cannot discard pinned page {page_id}")
        self._ref_bits.pop(page_id, None)
        if page_id in self._clock_hand:
            self._clock_hand.remove(page_id)
        self.spill.drop_page(page_id)

    def flush_all(self) -> int:
        """Write every dirty resident page to the spill log."""
        flushed = 0
        for page in self._frames.values():
            if page.dirty:
                self.spill.write_page(page)
                page.dirty = False
                flushed += 1
        return flushed

    # -- internals -------------------------------------------------------------
    def _admit(self, page: Page) -> None:
        while len(self._frames) >= self.n_frames:
            self._evict_one()
        self._frames[page.page_id] = page
        self._ref_bits[page.page_id] = True
        self._clock_hand.append(page.page_id)

    def _touch(self, page_id: int) -> None:
        if self.policy == "lru":
            self._frames.move_to_end(page_id)
        else:
            self._ref_bits[page_id] = True

    def _evict_one(self) -> None:
        victim = self._pick_victim()
        if victim is None:
            raise StorageError(
                "buffer pool exhausted: every frame is pinned")
        page = self._frames.pop(victim)
        self._ref_bits.pop(victim, None)
        if victim in self._clock_hand:
            self._clock_hand.remove(victim)
        if page.dirty or not self.spill.contains(page.page_id):
            self.spill.write_page(page)
            page.dirty = False
        self.evictions += 1

    def _pick_victim(self) -> Optional[int]:
        if self.policy == "lru":
            for page_id, page in self._frames.items():  # LRU order
                if page.pin_count == 0:
                    return page_id
            return None
        # CLOCK: sweep, clearing reference bits; evict the first page
        # with a clear bit and no pins.  Two sweeps guarantee progress.
        n = len(self._clock_hand)
        for _ in range(2 * n):
            if not self._clock_hand:
                return None
            self._hand_pos %= len(self._clock_hand)
            page_id = self._clock_hand[self._hand_pos]
            page = self._frames[page_id]
            if page.pin_count == 0 and not self._ref_bits.get(page_id):
                return page_id
            self._ref_bits[page_id] = False
            self._hand_pos += 1
        return None

    # -- telemetry ----------------------------------------------------------
    def _publish_telemetry(self) -> None:
        reg = self._telemetry
        pool = self._telemetry_id
        reg.counter("tcq_storage_pool_hits_total",
                    "Buffer-pool frame hits", ("pool",),
                    collected=True).labels(pool).set_total(self.hits)
        reg.counter("tcq_storage_pool_misses_total",
                    "Buffer-pool misses (spill reads)", ("pool",),
                    collected=True).labels(pool).set_total(self.misses)
        reg.counter("tcq_storage_pool_evictions_total",
                    "Frames evicted to the spill log", ("pool",),
                    collected=True).labels(pool).set_total(self.evictions)
        reg.gauge("tcq_storage_pool_resident",
                  "Pages currently resident", ("pool",),
                  collected=True).labels(pool).set(self.resident)
        reg.gauge("tcq_storage_pool_hit_rate",
                  "Lifetime hit rate of the pool", ("pool",),
                  collected=True).labels(pool).set(self.hit_rate())

    # -- introspection ------------------------------------------------------
    @property
    def resident(self) -> int:
        return len(self._frames)

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 1.0

    def stats(self) -> Dict[str, float]:
        return {
            "frames": self.n_frames,
            "resident": self.resident,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate(),
            "spill_writes": self.spill.writes,
            "spill_reads": self.spill.reads,
        }
