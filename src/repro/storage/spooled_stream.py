"""Out-of-core stream storage: append through the buffer pool, scan by
window descriptor.

This is the piece CACQ/PSoup lacked ("restricted their processing to
data that could fit in memory") and TelegraphCQ adds: streamed data is
"prepared for materialization in the buffer pool (and possibly to
disk)", and historical windows are read back through a scanner.

A :class:`SpooledStream` appends arriving tuples into pages allocated
from a shared :class:`~repro.storage.buffer_pool.BufferPool`; a page
directory (page id -> timestamp range) lets window scans fetch only
overlapping pages, wherever they currently live.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple as TypingTuple

from repro.core.tuples import Schema, Tuple
from repro.errors import StorageError
from repro.storage.buffer_pool import BufferPool
from repro.storage.pages import Page


class SpooledStream:
    """One stream's spooled history."""

    def __init__(self, schema: Schema, pool: BufferPool,
                 page_capacity: int = 128):
        if not schema.name:
            raise StorageError("spooled stream schema needs a name")
        if pool.n_frames < 2:
            # One frame is permanently busy with the open (pinned) page;
            # scans need at least one more to fault cold pages into.
            raise StorageError(
                "a spooled stream needs a buffer pool with >= 2 frames")
        self.schema = schema
        self.pool = pool
        self.page_capacity = page_capacity
        #: page directory: (page_id, min_ts, max_ts) in append order.
        self._directory: List[TypingTuple[int, int, int]] = []
        self._current: Optional[Page] = None
        self.appended = 0

    # -- write path -----------------------------------------------------------
    def append(self, t: Tuple) -> None:
        if self._current is None or self._current.is_full:
            self._seal_current()
            self._current = self.pool.new_page(self.schema.name,
                                               self.page_capacity)
            self.pool.pin(self._current)
        self._current.append(t)
        self.appended += 1

    def extend(self, tuples: Iterable[Tuple]) -> None:
        for t in tuples:
            self.append(t)

    def _seal_current(self) -> None:
        if self._current is not None and len(self._current):
            self._directory.append((self._current.page_id,
                                    self._current.min_ts,
                                    self._current.max_ts))
            self.pool.unpin(self._current)
            self._current = None

    def seal(self) -> None:
        """Finish the open page (e.g. at end of a burst)."""
        self._seal_current()

    # -- read path ------------------------------------------------------------
    def scan_window(self, left: int, right: int) -> List[Tuple]:
        """All tuples with ``left <= ts <= right``, fetching cold pages
        through the buffer pool."""
        out: List[Tuple] = []
        for page_id, min_ts, max_ts in self._directory:
            if max_ts < left or min_ts > right:
                continue
            page = self.pool.get_page(page_id)
            self.pool.pin(page)
            try:
                out.extend(page.tuples_in_window(self.schema, left, right))
            finally:
                self.pool.unpin(page)
        if self._current is not None:
            out.extend(self._current.tuples_in_window(self.schema,
                                                      left, right))
        return out

    def truncate_before(self, timestamp: int) -> int:
        """Drop whole pages whose every tuple precedes ``timestamp``."""
        dropped = 0
        kept: List[TypingTuple[int, int, int]] = []
        for page_id, min_ts, max_ts in self._directory:
            if max_ts < timestamp:
                self.pool.discard_page(page_id)
                dropped += 1
            else:
                kept.append((page_id, min_ts, max_ts))
        self._directory = kept
        return dropped

    @property
    def page_count(self) -> int:
        return len(self._directory) + (1 if self._current else 0)

    def __len__(self) -> int:
        return self.appended
