"""Log-structured spill store for pages evicted from the buffer pool.

Section 4.3 observes that streaming writes are sequential, so "a
log-structured file system would enhance write performance".  The spill
store is exactly that: evicted pages are pickled and *appended* to a
single log file; a page table maps page id to its latest (offset,
length).  Rewriting a page appends a new version and forgets the old
offset — reclaimed by :meth:`vacuum`, which compacts the log.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from typing import Dict, Optional, Tuple as TypingTuple

from repro.errors import StorageError
from repro.monitor import telemetry
from repro.storage.pages import Page


class _SpillTotals:
    """Process-wide spill I/O counters (stores come and go; totals
    survive them)."""

    __slots__ = ("writes", "reads", "bytes_written", "bytes_read",
                 "vacuums", "bytes_reclaimed")

    def __init__(self) -> None:
        self.writes = 0
        self.reads = 0
        self.bytes_written = 0
        self.bytes_read = 0
        self.vacuums = 0
        self.bytes_reclaimed = 0


TOTALS = _SpillTotals()


def _collect_spill_telemetry(reg: "telemetry.MetricRegistry") -> None:
    reg.counter("tcq_storage_spill_writes_total",
                "Pages appended to spill logs").set_total(TOTALS.writes)
    reg.counter("tcq_storage_spill_reads_total",
                "Pages read back from spill logs").set_total(TOTALS.reads)
    reg.counter("tcq_storage_spill_bytes_written_total",
                "Bytes appended to spill logs").set_total(
        TOTALS.bytes_written)
    reg.counter("tcq_storage_spill_bytes_read_total",
                "Bytes read back from spill logs").set_total(
        TOTALS.bytes_read)
    reg.counter("tcq_storage_spill_vacuums_total",
                "Spill log compactions").set_total(TOTALS.vacuums)
    reg.counter("tcq_storage_spill_bytes_reclaimed_total",
                "Bytes reclaimed by compaction").set_total(
        TOTALS.bytes_reclaimed)


telemetry.register_global_collector(_collect_spill_telemetry)


class SpillStore:
    """Append-only page log with an in-memory page table."""

    def __init__(self, path: Optional[str] = None):
        if path is None:
            fd, path = tempfile.mkstemp(prefix="telegraph-spill-",
                                        suffix=".log")
            os.close(fd)
            self._owns_file = True
        else:
            self._owns_file = False
        self.path = path
        self._offsets: Dict[int, TypingTuple[int, int]] = {}
        self._file = open(path, "a+b")
        self.writes = 0
        self.reads = 0
        self.bytes_written = 0

    def write_page(self, page: Page) -> None:
        """Append the page to the log (sequential write)."""
        blob = pickle.dumps(page.to_payload(),
                            protocol=pickle.HIGHEST_PROTOCOL)
        self._file.seek(0, os.SEEK_END)
        offset = self._file.tell()
        self._file.write(blob)
        self._file.flush()
        self._offsets[page.page_id] = (offset, len(blob))
        self.writes += 1
        self.bytes_written += len(blob)
        TOTALS.writes += 1
        TOTALS.bytes_written += len(blob)

    def read_page(self, page_id: int) -> Page:
        entry = self._offsets.get(page_id)
        if entry is None:
            raise StorageError(f"page {page_id} is not in the spill store")
        offset, length = entry
        self._file.seek(offset)
        blob = self._file.read(length)
        if len(blob) != length:
            raise StorageError(
                f"spill log truncated: page {page_id} at {offset}")
        self.reads += 1
        TOTALS.reads += 1
        TOTALS.bytes_read += length
        return Page.from_payload(pickle.loads(blob))

    def contains(self, page_id: int) -> bool:
        return page_id in self._offsets

    def drop_page(self, page_id: int) -> None:
        """Forget a page (its bytes are reclaimed at the next vacuum)."""
        self._offsets.pop(page_id, None)

    def vacuum(self) -> int:
        """Compact the log: rewrite only live page versions.

        Returns the number of bytes reclaimed.
        """
        live = {}
        for page_id in list(self._offsets):
            live[page_id] = self.read_page(page_id)
        old_size = self._file.seek(0, os.SEEK_END)
        self._file.close()
        self._file = open(self.path, "w+b")
        self._offsets.clear()
        for page in live.values():
            self.write_page(page)
        new_size = self._file.seek(0, os.SEEK_END)
        reclaimed = max(0, old_size - new_size)
        TOTALS.vacuums += 1
        TOTALS.bytes_reclaimed += reclaimed
        return reclaimed

    def size_bytes(self) -> int:
        return self._file.seek(0, os.SEEK_END)

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()
        if self._owns_file and os.path.exists(self.path):
            os.unlink(self.path)

    def __enter__(self) -> "SpillStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self._offsets)
