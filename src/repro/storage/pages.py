"""Fixed-capacity tuple pages — the unit of buffering and spilling.

The TelegraphCQ storage manager must "accept new bursty streaming data,
as well as service queries that access historical data" (Section 4.3).
Pages hold a bounded run of timestamp-ordered tuples from one stream and
remember their timestamp range, so a window scan can skip pages that
cannot intersect the window without fetching them.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple as TypingTuple

from repro.core.tuples import Schema, Tuple
from repro.errors import StorageError


class Page:
    """A bounded, append-only run of tuples from a single stream."""

    __slots__ = ("page_id", "stream", "capacity", "rows", "min_ts",
                 "max_ts", "pin_count", "dirty")

    def __init__(self, page_id: int, stream: str, capacity: int):
        if capacity < 1:
            raise StorageError("page capacity must be >= 1")
        self.page_id = page_id
        self.stream = stream
        self.capacity = capacity
        #: rows are stored as plain value tuples + timestamp; the schema
        #: lives with the stream, not in every page.
        self.rows: List[TypingTuple[Any, ...]] = []
        self.min_ts: Optional[int] = None
        self.max_ts: Optional[int] = None
        self.pin_count = 0
        self.dirty = False

    @property
    def is_full(self) -> bool:
        return len(self.rows) >= self.capacity

    def append(self, t: Tuple) -> None:
        if self.is_full:
            raise StorageError(f"page {self.page_id} is full")
        if t.timestamp is None:
            raise StorageError("spooled tuples need timestamps")
        self.rows.append((t.timestamp,) + t.values)
        if self.min_ts is None:
            self.min_ts = t.timestamp
        self.max_ts = t.timestamp
        self.dirty = True

    def tuples(self, schema: Schema) -> List[Tuple]:
        """Re-materialise the page's rows under the stream schema."""
        return [Tuple(schema, row[1:], timestamp=row[0])
                for row in self.rows]

    def tuples_in_window(self, schema: Schema, left: int,
                         right: int) -> List[Tuple]:
        return [Tuple(schema, row[1:], timestamp=row[0])
                for row in self.rows if left <= row[0] <= right]

    def overlaps(self, left: int, right: int) -> bool:
        if self.min_ts is None:
            return False
        return not (self.max_ts < left or self.min_ts > right)

    def to_payload(self) -> dict:
        """A picklable snapshot for the spill store."""
        return {
            "page_id": self.page_id,
            "stream": self.stream,
            "capacity": self.capacity,
            "rows": self.rows,
            "min_ts": self.min_ts,
            "max_ts": self.max_ts,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Page":
        page = cls(payload["page_id"], payload["stream"],
                   payload["capacity"])
        page.rows = payload["rows"]
        page.min_ts = payload["min_ts"]
        page.max_ts = payload["max_ts"]
        page.dirty = False
        return page

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return (f"Page({self.page_id}, {self.stream}, n={len(self.rows)}, "
                f"ts=[{self.min_ts},{self.max_ts}])")
