"""storage subpackage of the TelegraphCQ reproduction."""
