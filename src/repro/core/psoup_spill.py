"""Spilling Query SteMs to disk, with periodicity-driven prefetch
(Section 4.3, "Disk-based issues and QoS").

"In scenarios with huge numbers of queries with periodically active
windows, the Query SteMs (in addition to Data SteMs) may need to be
flushed to disk.  In this case, the periodic nature of the windows
provides knowledge that can be exploited for prefetching queries from
the disk."

Model:

* each standing query has a **periodic activation schedule**: it is
  active for ``active_for`` time units out of every ``period`` (a
  report that runs for the first minute of every hour, say);
* memory holds at most ``memory_capacity`` query entries; the rest are
  spilled (pickled into a :class:`~repro.storage.spill.SpillStore`);
* a tuple arriving while an *active* query is spilled causes a **query
  fault** — a synchronous load the arriving data must wait on;
* the **prefetcher** uses the schedules: queries activating within
  ``prefetch_horizon`` time units are loaded in the background, so the
  fault never happens.

Experiment X5 measures faults with and without prefetching; the paper's
expectation is that periodicity makes them almost entirely avoidable.
"""

from __future__ import annotations

import itertools
import pickle
from typing import Dict, List, Optional, Set, Tuple as TypingTuple

from repro.core.tuples import Tuple
from repro.errors import QueryError, StorageError
from repro.query.predicates import Predicate
from repro.storage.spill import SpillStore


class PeriodicQuery:
    """A standing query active for ``active_for`` of every ``period``."""

    __slots__ = ("qid", "predicate", "period", "active_for", "phase",
                 "matches")

    def __init__(self, qid: int, predicate: Predicate, period: int,
                 active_for: int, phase: int = 0):
        if period < 1 or not (0 < active_for <= period):
            raise QueryError(
                "need 0 < active_for <= period for a periodic query")
        self.qid = qid
        self.predicate = predicate
        self.period = period
        self.active_for = active_for
        self.phase = phase % period
        self.matches = 0

    def is_active(self, now: int) -> bool:
        return (now - self.phase) % self.period < self.active_for

    def next_activation(self, now: int) -> int:
        """The first instant >= now at which the query is active."""
        offset = (now - self.phase) % self.period
        if offset < self.active_for:
            return now
        return now + (self.period - offset)


class SpillingQueryStore:
    """The bounded-memory home of periodic queries.

    Entries move between a resident set and the spill log; the
    accounting separates synchronous faults (bad: data waited) from
    asynchronous prefetches (fine: hidden by the schedule).
    """

    def __init__(self, memory_capacity: int,
                 spill: Optional[SpillStore] = None,
                 prefetch_horizon: int = 0):
        if memory_capacity < 1:
            raise StorageError("memory capacity must be >= 1")
        self.memory_capacity = memory_capacity
        self.prefetch_horizon = prefetch_horizon
        self.spill = spill if spill is not None else SpillStore()
        self._resident: Dict[int, PeriodicQuery] = {}
        self._spilled: Set[int] = set()
        self._schedules: Dict[int, TypingTuple[int, int, int]] = {}
        self._next_qid = itertools.count()
        self.faults = 0
        self.prefetches = 0
        self.evictions = 0

    # -- registration ------------------------------------------------------
    def register(self, predicate: Predicate, period: int, active_for: int,
                 phase: int = 0) -> int:
        query = PeriodicQuery(next(self._next_qid), predicate, period,
                              active_for, phase)
        self._schedules[query.qid] = (period, active_for, query.phase)
        self._admit(query)
        return query.qid

    def _admit(self, query: PeriodicQuery) -> None:
        self._make_room(exclude=query.qid)
        self._resident[query.qid] = query
        self._spilled.discard(query.qid)

    def _make_room(self, exclude: int, now: int = 0) -> None:
        while len(self._resident) >= self.memory_capacity:
            victim_id = self._pick_victim(exclude, now)
            if victim_id is None:
                raise StorageError(
                    "query store cannot make room: memory_capacity too "
                    "small to hold even the working entry")
            self._spill_out(victim_id)

    def _pick_victim(self, exclude: int, now: int) -> Optional[int]:
        """Evict the resident query whose next activation is furthest
        away — the schedule-aware analogue of Belady's rule.  If every
        candidate is currently active the store thrashes (spills an
        active query) rather than failing: correctness is preserved at
        a fault cost, like any overcommitted cache."""
        best = None
        best_when = -1
        for qid, query in self._resident.items():
            if qid == exclude or query.is_active(now):
                continue
            when = query.next_activation(now + 1)
            if when > best_when:
                best_when = when
                best = qid
        if best is not None:
            return best
        for qid in self._resident:           # thrash mode
            if qid != exclude:
                return qid
        return None

    def _spill_out(self, qid: int) -> None:
        query = self._resident.pop(qid)
        blob = pickle.dumps(
            (query.predicate, query.period, query.active_for, query.phase,
             query.matches), protocol=pickle.HIGHEST_PROTOCOL)
        # reuse the page log as a blob store keyed by qid
        from repro.storage.pages import Page
        page = Page(qid, "querystem", capacity=1)
        page.rows = [(0, blob)]
        page.min_ts = page.max_ts = 0
        self.spill.write_page(page)
        self._spilled.add(qid)
        self.evictions += 1

    def _load(self, qid: int, now: int, prefetch: bool) -> PeriodicQuery:
        page = self.spill.read_page(qid)
        (_ts, blob) = page.rows[0]
        predicate, period, active_for, phase, matches = pickle.loads(blob)
        query = PeriodicQuery(qid, predicate, period, active_for, phase)
        query.matches = matches
        self._make_room(exclude=qid, now=now)
        self._resident[qid] = query
        self._spilled.discard(qid)
        if prefetch:
            self.prefetches += 1
        else:
            self.faults += 1
        return query

    # -- the data path -----------------------------------------------------
    def prefetch_for(self, now: int) -> int:
        """Background-load queries activating within the horizon."""
        if not self.prefetch_horizon:
            return 0
        loaded = 0
        for qid in list(self._spilled):
            period, active_for, phase = self._schedules[qid]
            # next activation computed from the schedule alone — the
            # spilled entry need not be touched to decide.
            offset = (now - phase) % period
            if offset < active_for:
                next_active = now
            else:
                next_active = now + (period - offset)
            if next_active - now <= self.prefetch_horizon:
                if len(self._resident) < self.memory_capacity or \
                        self._pick_victim(qid, now) is not None:
                    self._load(qid, now, prefetch=True)
                    loaded += 1
        return loaded

    def route(self, t: Tuple) -> List[int]:
        """Evaluate the tuple against every *active* query, faulting in
        any active query that was spilled.  Returns matching qids.

        Each active query is evaluated immediately after its residency
        is ensured, so the answer is exact even when the store thrashes
        (more simultaneously-active queries than memory capacity).
        """
        now = t.timestamp if t.timestamp is not None else 0
        self.prefetch_for(now)
        matched: List[int] = []
        for qid, (period, active_for, phase) in self._schedules.items():
            if (now - phase) % period >= active_for:
                continue
            query = self._resident.get(qid)
            if query is None:
                query = self._load(qid, now, prefetch=False)
            if query.predicate.matches(t):
                query.matches += 1
                matched.append(qid)
        return matched

    # -- introspection --------------------------------------------------------
    @property
    def resident_count(self) -> int:
        return len(self._resident)

    @property
    def spilled_count(self) -> int:
        return len(self._spilled)

    def total_matches(self) -> int:
        total = sum(q.matches for q in self._resident.values())
        for qid in self._spilled:
            page = self.spill.read_page(qid)
            total += pickle.loads(page.rows[0][1])[4]
        return total

    def stats(self) -> Dict[str, int]:
        return {
            "resident": self.resident_count,
            "spilled": self.spilled_count,
            "faults": self.faults,
            "prefetches": self.prefetches,
            "evictions": self.evictions,
        }
