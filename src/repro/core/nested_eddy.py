"""Nested eddies: scoped adaptivity (Section 2.2).

"It is important to note that any number and combination of modules can
be connected to an Eddy — including of course, other Eddies.  Each
individual Eddy provides a scope for adaptivity; modules at the input or
output of an Eddy are not considered in the Eddy's adaptive
decision-making, and thus, do not contribute to the overhead thereof."

:class:`SubEddyOperator` wraps an inner :class:`~repro.core.eddy.Eddy`
as a single operator of an outer eddy.  The outer routing policy sees
one black box (one done-bit, one selectivity estimate); the inner eddy
routes among its own operators with its own policy.  This bounds the
cost of adaptive decisions: an outer eddy with k sub-eddies of m
operators each makes decisions over k candidates, not k*m — the paper's
overhead-scoping argument, measured by experiment X6.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Sequence
from typing import Tuple as TypingTuple

from repro.core.eddy import Eddy, EddyOperator, HandleResult
from repro.core.tuples import Tuple, TupleBatch
from repro.errors import PlanError


class SubEddyOperator(EddyOperator):
    """An inner eddy packaged as one operator of an outer eddy.

    ``scope_sources`` declares which base sources the inner eddy is
    responsible for: the operator applies to tuples spanning any of
    them.  The inner eddy's ``output_sources`` decides what it emits
    back to the outer eddy (filtered tuples, or composite join results).

    Tuples crossing the boundary get a *fresh* done-bitmap scope: the
    outer bits are stashed and restored around the inner routing loop,
    so the two eddies' bitmaps can never collide even though both number
    their operators from bit 0.
    """

    def __init__(self, inner: Eddy, name: str = "",
                 scope_sources: Optional[Iterable[str]] = None):
        super().__init__(name or f"sub[{inner.name}]")
        self.inner = inner
        self.scope: FrozenSet[str] = frozenset(
            scope_sources if scope_sources is not None
            else inner.output_sources)
        if not self.scope:
            raise PlanError("a sub-eddy needs a non-empty source scope")

    def applies_to(self, t: Tuple) -> bool:
        return bool(self.scope & t.sources)

    def handle(self, t: Tuple) -> HandleResult:
        outer_done = t.done
        t.done = 0
        try:
            outputs = self.inner.process(t, 0)
        finally:
            t.done = outer_done
        # The inner eddy emits completed tuples.  The input itself
        # continues in the outer scope only if the inner eddy emitted
        # it; new tuples (join composites) enter the outer scope with a
        # fresh bitmap — the outer eddy fixes their SteM bits up.
        emitted_self = any(out is t for out in outputs)
        extra = [out for out in outputs if out is not t]
        for out in extra:
            out.done = 0
        self._observe(emitted_self or bool(extra))
        return HandleResult(outputs=extra, passed=emitted_self)

    def handle_batch(self, batch: TupleBatch) -> \
            "TypingTuple[Optional[TupleBatch], Sequence[Tuple]]":
        """Vectorized boundary crossing: the whole batch gets a fresh
        done-bitmap scope and rides the inner eddy's own batch router.

        Semantics match :meth:`handle` row by row: survivors are the
        input rows the inner eddy emitted; composites enter the outer
        scope with a cleared bitmap; selectivity observes one outcome
        per input row (emitted, or credited with a composite carrying
        its base ids)."""
        # Scope save/restore needs the aliased Tuple objects: the inner
        # eddy mutates their done bits in place.
        rows = batch.materialize()  # tcqcheck: allow-row-iteration
        outer_done = [t.done for t in rows]
        for t in rows:
            t.done = 0
        try:
            emitted = self.inner.process_batch(batch, 0)
        finally:
            for t, done in zip(rows, outer_done):
                t.done = done
        flat: List[Tuple] = []
        for item in emitted:
            if isinstance(item, TupleBatch):
                # Identity bookkeeping below compares Tuple objects.
                flat.extend(
                    item.materialize())  # tcqcheck: allow-row-iteration
            else:
                flat.append(item)
        row_ids = {id(t) for t in rows}
        emitted_ids = {id(t) for t in flat}
        extra = [out for out in flat if id(out) not in row_ids]
        for out in extra:
            out.done = 0
        extra_bases = [out.base_id_set() for out in extra]
        mask = []
        for t in rows:
            passed = id(t) in emitted_ids
            if not passed and extra_bases:
                base = t.base_id_set()
                passed = any(base <= b for b in extra_bases)
            mask.append(passed)
        self._observe_batch(mask)
        survivors = [t for t in rows if id(t) in emitted_ids]
        if len(survivors) == len(rows):
            return batch, extra
        if not survivors:
            return None, extra
        return TupleBatch.from_tuples(survivors, schema=batch.schema), extra

    def decision_count(self) -> int:
        return self.inner.routing_decisions


def nested_filter_scope(predicates: Sequence, source: str,
                        policy=None, name: str = "") -> SubEddyOperator:
    """Convenience: bundle a set of same-source filters into one scoped
    sub-eddy (the common case: per-source filter groups under an outer
    join eddy)."""
    from repro.core.eddy import FilterOperator
    ops = [FilterOperator(p, name=f"{source}-f{i}")
           for i, p in enumerate(predicates)]
    inner = Eddy(ops, output_sources={source}, policy=policy,
                 name=name or f"inner[{source}]")
    return SubEddyOperator(inner, scope_sources={source})
