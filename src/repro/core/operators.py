"""Pipelined, non-blocking relational operators (Section 2.1).

These are the "Query Processing" modules of Figure 1: joins, selections,
projections, grouping and aggregation, duplicate elimination, sort, and
transitive closure.  All are Fjord modules — they consume and produce
records via the queue API and never block: operators that are blocking by
nature (sort, aggregation over a whole input) buffer internally and flush
either on end-of-stream or at window boundaries, so that continuous
queries still "continuously return incremental results".
"""

from __future__ import annotations

from collections import OrderedDict, defaultdict
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple as TypingTuple

from repro.core.aggregates import IncrementalAggregate, make_aggregate
from repro.core.tuples import Column, Punctuation, Schema, Tuple, TupleBatch
from repro.fjords.module import Module
from repro.query.predicates import Predicate


class Select(Module):
    """Filter: passes tuples matching a predicate.

    Tracks selectivity observations (seen/passed) that routing policies
    and the monitor read.
    """

    def __init__(self, predicate: Predicate, name: str = "",
                 cost: int = 0):
        super().__init__(name=name or f"select[{predicate!r}]")
        self.predicate = predicate
        self.seen = 0
        self.passed = 0
        #: Artificial per-tuple work factor, used by benchmarks to model
        #: expensive predicates (e.g. remote lookups); the loop below
        #: burns deterministic CPU rather than sleeping.
        self.cost = cost
        self._kernel = None

    def process(self, item: Tuple, port: int) -> Iterable[Tuple]:
        self.seen += 1
        if self.cost:
            acc = 0
            for i in range(self.cost):
                acc += i
        if self.predicate.matches(item):
            self.passed += 1
            return (item,)
        return ()

    def process_batch(self, batch: "TupleBatch", port: int) -> Iterable:
        n = len(batch)
        self.seen += n
        if self.cost:
            acc = 0
            for i in range(self.cost * n):
                acc += i
        if self._kernel is None:
            self._kernel = self.predicate.compile()
        passed, _failed = batch.partition(self._kernel(batch))
        self.passed += len(passed)
        return (passed,) if len(passed) else ()

    @property
    def selectivity(self) -> float:
        """Observed pass fraction; 1.0 before any evidence."""
        return self.passed / self.seen if self.seen else 1.0


class Project(Module):
    """Projection with optional renaming: keeps the named columns.

    ``columns`` maps output name -> input column name; a plain sequence
    keeps names unchanged.
    """

    def __init__(self, columns, name: str = ""):
        super().__init__(name=name or "project")
        if isinstance(columns, dict):
            self.mapping: "OrderedDict[str, str]" = OrderedDict(columns)
        else:
            self.mapping = OrderedDict((c, c) for c in columns)
        self._schema_cache: Dict[Schema, Schema] = {}

    def _out_schema(self, in_schema: Schema) -> Schema:
        cached = self._schema_cache.get(in_schema)
        if cached is not None:
            return cached
        cols = [Column(out) for out in self.mapping]
        schema = Schema(cols, sources=in_schema.sources)
        self._schema_cache[in_schema] = schema
        return schema

    def process(self, item: Tuple, port: int) -> Iterable[Tuple]:
        schema = self._out_schema(item.schema)
        values = tuple(item[src] for src in self.mapping.values())
        out = Tuple(schema, values, timestamp=item.timestamp)
        out.queries = item.queries
        return (out,)


class Map(Module):
    """Apply an arbitrary row function: ``fn(tuple) -> values`` under an
    explicit output schema.  Covers computed SELECT expressions."""

    def __init__(self, fn: Callable[[Tuple], TypingTuple[Any, ...]],
                 out_schema: Schema, name: str = ""):
        super().__init__(name=name or "map")
        self.fn = fn
        self.out_schema = out_schema

    def process(self, item: Tuple, port: int) -> Iterable[Tuple]:
        out = Tuple(self.out_schema, tuple(self.fn(item)),
                    timestamp=item.timestamp)
        out.queries = item.queries
        return (out,)


class DupElim(Module):
    """Duplicate elimination on tuple values (streaming distinct)."""

    def __init__(self, name: str = ""):
        super().__init__(name=name or "dupelim")
        self._seen: Set[TypingTuple[Any, ...]] = set()

    def process(self, item: Tuple, port: int) -> Iterable[Tuple]:
        key = item.values
        if key in self._seen:
            return ()
        self._seen.add(key)
        return (item,)

    def on_punctuation(self, punctuation: Punctuation, port: int) -> None:
        # A window boundary resets the distinct set: each window is an
        # independent result set (Section 4.1.1).
        if punctuation.kind == Punctuation.WINDOW_BOUNDARY:
            self._seen.clear()
        self.emit(punctuation)


class Sort(Module):
    """Sort is blocking by nature; within a CQ it sorts each window.

    Buffers tuples and flushes, ordered by ``key`` (a column name or a
    callable), at every window boundary and at end-of-stream.
    """

    def __init__(self, key, descending: bool = False, name: str = ""):
        super().__init__(name=name or "sort")
        if callable(key):
            self._key = key
        else:
            column = key
            self._key = lambda t: t[column]
        self.descending = descending
        self._buffer: List[Tuple] = []

    def process(self, item: Tuple, port: int) -> Iterable[Tuple]:
        self._buffer.append(item)
        return ()

    def _flush(self) -> List[Tuple]:
        self._buffer.sort(key=self._key, reverse=self.descending)
        out, self._buffer = self._buffer, []
        return out

    def on_punctuation(self, punctuation: Punctuation, port: int) -> None:
        if punctuation.kind == Punctuation.WINDOW_BOUNDARY:
            self.emit_all(self._flush())
        self.emit(punctuation)

    def on_end_of_stream(self) -> Iterable[Tuple]:
        return self._flush()


class AggregateSpec:
    """One aggregate column of a GROUP BY: function name, input column
    (None for COUNT(*)), and output column name."""

    __slots__ = ("fn", "column", "alias")

    def __init__(self, fn: str, column: Optional[str], alias: str = ""):
        self.fn = fn.upper()
        self.column = column
        self.alias = alias or (
            f"{self.fn.lower()}_{column}" if column else self.fn.lower())

    def __repr__(self) -> str:
        return f"{self.fn}({self.column or '*'}) AS {self.alias}"


class GroupByAggregate(Module):
    """Grouped aggregation, flushed per window (or at EOS).

    Non-blocking in the Fjord sense: it absorbs tuples incrementally and
    emits one result tuple per group at each window boundary, so infinite
    streams yield an infinite sequence of finite result sets.
    """

    def __init__(self, group_by: Sequence[str], aggregates: Sequence[AggregateSpec],
                 name: str = "", emit_incremental: bool = False):
        super().__init__(name=name or "groupby")
        self.group_by = list(group_by)
        self.specs = list(aggregates)
        #: emit a refreshed result row for a group on every input tuple
        #: (early/partial results in the CONTROL spirit) instead of once
        #: per window.
        self.emit_incremental = emit_incremental
        self._groups: Dict[TypingTuple[Any, ...], List[IncrementalAggregate]] = {}
        self._out_schema: Optional[Schema] = None
        self._sources: frozenset = frozenset()

    def _schema(self) -> Schema:
        if self._out_schema is None:
            cols = [Column(g) for g in self.group_by]
            cols += [Column(s.alias) for s in self.specs]
            self._out_schema = Schema(cols, sources=self._sources or {"agg"})
        return self._out_schema

    def process(self, item: Tuple, port: int) -> Iterable[Tuple]:
        if not self._sources:
            self._sources = item.schema.sources
        key = tuple(item[g] for g in self.group_by)
        aggs = self._groups.get(key)
        if aggs is None:
            aggs = [make_aggregate(s.fn) for s in self.specs]
            self._groups[key] = aggs
        for spec, agg in zip(self.specs, aggs):
            agg.add(1 if spec.column is None else item[spec.column])
        if self.emit_incremental:
            return (self._row(key, aggs, item.timestamp),)
        return ()

    def _row(self, key: TypingTuple[Any, ...],
             aggs: List[IncrementalAggregate],
             timestamp: Optional[int] = None) -> Tuple:
        values = key + tuple(a.result() for a in aggs)
        return Tuple(self._schema(), values, timestamp=timestamp)

    def _flush(self) -> List[Tuple]:
        rows = [self._row(key, aggs) for key, aggs in self._groups.items()]
        self._groups.clear()
        return rows

    def on_punctuation(self, punctuation: Punctuation, port: int) -> None:
        if punctuation.kind == Punctuation.WINDOW_BOUNDARY and \
                not self.emit_incremental:
            self.emit_all(self._flush())
        self.emit(punctuation)

    def on_end_of_stream(self) -> Iterable[Tuple]:
        if self.emit_incremental:
            return ()
        return self._flush()


class SymmetricHashJoin(Module):
    """The classic two-input pipelined symmetric hash join [WA91].

    Used as the non-adaptive baseline against which the Eddy + two SteMs
    construction of Figure 2 is validated: both must produce identical
    result sets.
    """

    def __init__(self, left_key: str, right_key: str, name: str = "",
                 residual: Optional[Predicate] = None):
        super().__init__(name=name or "shj", arity_in=2, arity_out=1)
        self.left_key = left_key
        self.right_key = right_key
        self.residual = residual
        self._tables: List[Dict[Any, List[Tuple]]] = [defaultdict(list),
                                                      defaultdict(list)]
        self._keys = (left_key, right_key)
        self._join_schema: Optional[Schema] = None

    def process(self, item: Tuple, port: int) -> Iterable[Tuple]:
        key_col = self._keys[port]
        other = 1 - port
        key = item[key_col]
        self._tables[port][key].append(item)
        matches = self._tables[other].get(key, ())
        out: List[Tuple] = []
        for m in matches:
            left, right = (item, m) if port == 0 else (m, item)
            if self._join_schema is None:
                self._join_schema = left.schema.join(right.schema)
            joined = left.concat(right, schema=self._join_schema)
            if self.residual is None or self.residual.matches(joined):
                out.append(joined)
        return out

    def state_size(self) -> int:
        return sum(len(v) for table in self._tables for v in table.values())


class TransitiveClosure(Module):
    """Computes the transitive closure of an edge stream (a, b).

    A recursive, pipelined operator: each new edge is joined against the
    closure-so-far in both directions, and newly derived pairs are fed
    back internally until a fixpoint — the module listed in Figure 1's
    query-processing row.
    """

    def __init__(self, from_col: str = "src", to_col: str = "dst",
                 name: str = ""):
        super().__init__(name=name or "tclosure")
        self.from_col = from_col
        self.to_col = to_col
        self._forward: Dict[Any, Set[Any]] = defaultdict(set)
        self._backward: Dict[Any, Set[Any]] = defaultdict(set)
        self._pairs: Set[TypingTuple[Any, Any]] = set()
        self._out_schema: Optional[Schema] = None

    def process(self, item: Tuple, port: int) -> Iterable[Tuple]:
        if self._out_schema is None:
            self._out_schema = Schema(
                [Column(self.from_col), Column(self.to_col)],
                sources=item.schema.sources)
        a, b = item[self.from_col], item[self.to_col]
        new_pairs = self._insert(a, b)
        ts = item.timestamp
        return [Tuple(self._out_schema, pair, timestamp=ts)
                for pair in new_pairs]

    def _insert(self, a: Any, b: Any) -> List[TypingTuple[Any, Any]]:
        frontier = [(a, b)]
        derived: List[TypingTuple[Any, Any]] = []
        while frontier:
            x, y = frontier.pop()
            if x == y or (x, y) in self._pairs:
                continue
            self._pairs.add((x, y))
            self._forward[x].add(y)
            self._backward[y].add(x)
            derived.append((x, y))
            # predecessors of x reach y; y's successors are reached by x
            for p in list(self._backward[x]):
                frontier.append((p, y))
            for s in list(self._forward[y]):
                frontier.append((x, s))
        return derived

    def reachable(self, a: Any) -> Set[Any]:
        return set(self._forward.get(a, ()))


class Limit(Module):
    """Passes the first ``n`` tuples then swallows the rest (but still
    forwards punctuation so windows stay aligned)."""

    def __init__(self, n: int, name: str = ""):
        super().__init__(name=name or f"limit[{n}]")
        self.n = n
        self._passed = 0

    def process(self, item: Tuple, port: int) -> Iterable[Tuple]:
        if self._passed >= self.n:
            return ()
        self._passed += 1
        return (item,)


class Union(Module):
    """Merge two inputs into one output stream (bag union)."""

    def __init__(self, name: str = "", arity_in: int = 2):
        super().__init__(name=name or "union", arity_in=arity_in)

    def process(self, item: Tuple, port: int) -> Iterable[Tuple]:
        return (item,)
