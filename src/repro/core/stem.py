"""State Modules (SteMs) — Section 2.2 and [RDH02].

A SteM is "a temporary repository of tuples, essentially corresponding to
half of a traditional join operator".  It stores homogeneous tuples (all
spanning the same set of base sources) and supports:

* ``build(t)``   — insert a tuple whose sources match the SteM's home;
* ``probe(p)``   — return concatenated matches for a tuple from *other*
  sources, under the query's evaluable join predicates;
* ``evict(...)`` — optional deletion, used for window expiry.

SteMs can be augmented with hash indexes on join columns; a probe uses an
index when some equality predicate binds the indexed column, else falls
back to a scan.  Duplicate answers in a symmetric join are suppressed
with the classic arrival-order rule: a match is generated only by the
*later* arriving of the two tuples (we use the global tuple id as arrival
order), so the pair is produced exactly once no matter how the eddy
interleaves builds and probes.
"""

from __future__ import annotations

import itertools
from collections import defaultdict, deque
from typing import (Any, Callable, Deque, Dict, Iterable, List, Sequence, Set, Tuple as TypingTuple)

from repro.core import columnar
from repro.core.tuples import Schema, Tuple, TupleBatch
from repro.errors import PlanError
from repro.monitor.telemetry import get_registry
from repro.query.predicates import ColumnComparison, Predicate

_STEM_IDS = itertools.count()


class SteM:
    """A temporary repository of tuples for one (composite) source."""

    def __init__(self, source: str, index_columns: Sequence[str] = (),
                 name: str = ""):
        #: home source name: tuples with ``source in t.sources`` build here.
        self.source = source
        self.name = name or f"stem[{source}]"
        self._tuples: Deque[Tuple] = deque()
        self._indexes: Dict[str, Dict[Any, List[Tuple]]] = {
            col: defaultdict(list) for col in index_columns}
        self.builds = 0
        self.probes = 0
        self.probe_hits = 0
        self.matches_out = 0
        self.evictions = 0
        self.batch_probes = 0
        self._join_schemas: Dict[TypingTuple[frozenset, frozenset], Schema] = {}
        # Collector-based telemetry: build/probe stay pure int updates.
        self._telemetry = get_registry()
        self._telemetry_id = f"{self.name}#{next(_STEM_IDS)}"
        self._telemetry.register_collector(self._publish_telemetry)

    # -- maintenance -------------------------------------------------------
    def add_index(self, column: str) -> None:
        """Create a hash index on ``column``, indexing existing content."""
        if column in self._indexes:
            return
        index: Dict[Any, List[Tuple]] = defaultdict(list)
        for t in self._tuples:
            index[t[column]].append(t)
        self._indexes[column] = index

    def build(self, t: Tuple) -> None:
        """Insert a build tuple.  Raises if the tuple does not belong to
        this SteM's home source."""
        if self.source not in t.sources:
            raise PlanError(
                f"{self.name}: build tuple spans {set(t.sources)}, "
                f"not home source {self.source!r}")
        self._tuples.append(t)
        self.builds += 1
        tr = t.trace
        if tr is not None:
            tr.hop("stem", self._telemetry_id, "build")
        for col, index in self._indexes.items():
            index[t[col]].append(t)

    def build_batch(self, batch: TupleBatch) -> None:
        """Vectorized insert: one validation, one deque extend, and one
        pass per index column over the batch's value list (instead of a
        schema lookup per tuple per index)."""
        if self.source not in batch.sources:
            raise PlanError(
                f"{self.name}: build batch spans {set(batch.sources)}, "
                f"not home source {self.source!r}")
        # SteM storage is row-granular by design: stored Tuple objects
        # ARE the lineage (dead flags, max_base dedupe).
        rows = batch.materialize()  # tcqcheck: allow-row-iteration
        self._tuples.extend(rows)
        self.builds += len(rows)
        for tr in batch.traces:
            tr.hop("stem", self._telemetry_id, "build")
        for col, index in self._indexes.items():
            for value, t in zip(batch.column(col), rows):
                index[value].append(t)

    def evict_before(self, timestamp: int) -> int:
        """Window expiry: drop tuples with timestamp < ``timestamp``.

        Tuples arrive in timestamp order on a single stream, so expiry
        pops from the head.  Returns the eviction count.
        """
        evicted = 0
        while self._tuples and self._tuples[0].timestamp is not None \
                and self._tuples[0].timestamp < timestamp:
            old = self._tuples.popleft()
            evicted += 1
            self.evictions += 1
            for col, index in self._indexes.items():
                bucket = index.get(old[col])
                if bucket:
                    bucket.remove(old)
                    if not bucket:
                        del index[old[col]]
        return evicted

    def evict_where(self, condition: Callable[[Tuple], bool]) -> int:
        """General eviction; O(n).  Used for count-based windows."""
        keep = [t for t in self._tuples if not condition(t)]
        evicted = len(self._tuples) - len(keep)
        if evicted:
            self.evictions += evicted
            self._tuples = deque(keep)
            for col in self._indexes:
                index: Dict[Any, List[Tuple]] = defaultdict(list)
                for t in self._tuples:
                    index[t[col]].append(t)
                self._indexes[col] = index
        return evicted

    # -- probing ----------------------------------------------------------
    def probe(self, prober: Tuple, predicates: Sequence[Predicate],
              dedupe_by_arrival: bool = True) -> List[Tuple]:
        """Return ``prober ⋈ stored`` matches satisfying every predicate.

        ``predicates`` are the query's join factors evaluable over the
        prober's and this SteM's columns.  With ``dedupe_by_arrival``
        (the default), only stored tuples whose latest constituent
        arrived *before* the prober's latest constituent match — the
        symmetric-join suppression rule that guarantees each result is
        generated by the later-arriving side only (multi-path duplicates
        in >=3-way joins are removed at the eddy output by lineage).
        """
        self.probes += 1
        candidates = self._candidates(prober, predicates)
        out: List[Tuple] = []
        for stored in candidates:
            if stored.dead:
                continue
            if dedupe_by_arrival and stored.max_base >= prober.max_base:
                continue
            joined = self._concat(prober, stored)
            if all(p.matches(joined) for p in predicates):
                out.append(joined)
        self.matches_out += len(out)
        if out:
            self.probe_hits += 1
        tr = prober.trace
        if tr is not None:
            tr.hop("stem", self._telemetry_id, f"probe:{len(out)}")
        return out

    def probe_stored(self, prober: Tuple, predicates: Sequence[Predicate],
                     dedupe_by_arrival: bool = True) -> List[Tuple]:
        """Like :meth:`probe`, but returns the matching *stored* tuples
        instead of concatenated results — callers that manage their own
        lineage merging (CACQ) concatenate themselves."""
        self.probes += 1
        out: List[Tuple] = []
        for stored in self._candidates(prober, predicates):
            if stored.dead:
                continue
            if dedupe_by_arrival and stored.max_base >= prober.max_base:
                continue
            joined = self._concat(prober, stored)
            if all(p.matches(joined) for p in predicates):
                out.append(stored)
        self.matches_out += len(out)
        if out:
            self.probe_hits += 1
        tr = prober.trace
        if tr is not None:
            tr.hop("stem", self._telemetry_id, f"probe:{len(out)}")
        return out

    def probe_batch(self, batch: TupleBatch,
                    predicates: Sequence[Predicate],
                    dedupe_by_arrival: bool = True
                    ) -> "TypingTuple[List[Tuple], List[bool]]":
        """Vectorized probe: the whole batch probes in one call.

        The access path is chosen once for the batch; with an index the
        probe keys are read straight off the batch's column list (one
        pass, no per-tuple dict or schema lookup), and an array-backed
        key column is *factorized* first — each distinct key is hashed
        and looked up exactly once, then fanned back out to its rows.
        Returns the concatenated matches plus a per-prober hit vector
        (so callers can maintain the same selectivity observations as
        the per-tuple path).  Counter semantics are identical to calling
        :meth:`probe` once per row.
        """
        n = len(batch)
        self.probes += n
        self.batch_probes += 1
        # Match composition concatenates prober and stored Tuple
        # objects row by row.
        rows = batch.materialize()  # tcqcheck: allow-row-iteration
        hits = [False] * n
        out: List[Tuple] = []
        plan = self._index_probe_plan(predicates, batch.schema)
        preds = list(predicates)
        if plan is not None:
            index, theirs = plan
            index_get = index.get
            key_idx = batch.schema.index_of(theirs)
            key_arr = batch.store.array(key_idx)
            if key_arr is not None and n > 1:
                # One-pass vectorized key hashing: unique() factorizes
                # the key column in C; the dict is probed per DISTINCT
                # key, not per row.
                distinct, codes = columnar.distinct_codes(key_arr)
                per_key = [index_get(k, ()) for k in distinct]
                buckets: Iterable = [per_key[c] for c in codes]
            else:
                buckets = (index_get(key, ())
                           for key in batch.store.values(key_idx))
        else:
            stored_all = self._tuples
            buckets = (stored_all for _ in range(n))
        for i, (prober, bucket) in enumerate(zip(rows, buckets)):
            if not bucket:
                continue
            prober_max = prober.max_base
            for stored in bucket:
                if stored.dead:
                    continue
                if dedupe_by_arrival and stored.max_base >= prober_max:
                    continue
                joined = self._concat(prober, stored)
                if all(p.matches(joined) for p in preds):
                    out.append(joined)
                    hits[i] = True
        self.matches_out += len(out)
        self.probe_hits += sum(hits)
        if batch.traces:
            site = self._telemetry_id
            for prober, hit in zip(rows, hits):
                tr = prober.trace
                if tr is not None:
                    tr.hop("stem", site,
                           "probe:hit" if hit else "probe:0")
        return out, hits

    def _candidates(self, prober: Tuple,
                    predicates: Sequence[Predicate]) -> Iterable[Tuple]:
        """Choose an access path: an index lookup when some equality
        predicate binds an indexed column from the prober, else a scan."""
        plan = self._index_probe_plan(predicates, prober.schema)
        if plan is not None:
            index, theirs = plan
            return index.get(prober[theirs], ())
        return self._tuples

    def _index_probe_plan(self, predicates: Sequence[Predicate],
                          prober_schema: Schema):
        """(index, prober_column) when some equality predicate binds an
        indexed column from the prober's side, else None."""
        for pred in predicates:
            if not isinstance(pred, ColumnComparison) or pred.op != "==":
                continue
            for mine, theirs in ((pred.left, pred.right),
                                 (pred.right, pred.left)):
                if mine in self._indexes and prober_schema.has_column(theirs):
                    return self._indexes[mine], theirs
        return None

    def _concat(self, prober: Tuple, stored: Tuple) -> Tuple:
        key = (prober.schema.sources, stored.schema.sources)
        schema = self._join_schemas.get(key)
        if schema is None:
            schema = prober.schema.join(stored.schema)
            self._join_schemas[key] = schema
        return prober.concat(stored, schema=schema)

    # -- telemetry ----------------------------------------------------------
    def _publish_telemetry(self) -> None:
        reg = self._telemetry
        stem = self._telemetry_id
        reg.counter("tcq_stem_builds_total", "Tuples inserted into SteMs",
                    ("stem",), collected=True).labels(stem).set_total(
            self.builds)
        reg.counter("tcq_stem_probes_total", "Probe operations against SteMs",
                    ("stem",), collected=True).labels(stem).set_total(
            self.probes)
        reg.counter("tcq_stem_matches_total", "Join matches produced (hits)",
                    ("stem",), collected=True).labels(stem).set_total(
            self.matches_out)
        reg.counter("tcq_stem_probe_hits_total",
                    "Probes that found at least one match", ("stem",),
                    collected=True).labels(stem).set_total(self.probe_hits)
        reg.counter("tcq_stem_evictions_total",
                    "Tuples expired out of SteMs", ("stem",),
                    collected=True).labels(stem).set_total(self.evictions)
        reg.counter("tcq_stem_batch_probes_total",
                    "Vectorized probe_batch calls", ("stem",),
                    collected=True).labels(stem).set_total(self.batch_probes)
        reg.gauge("tcq_stem_size", "Tuples currently held", ("stem",),
                  collected=True).labels(stem).set(len(self._tuples))

    # -- introspection ------------------------------------------------------
    def observed_hit_rate(self) -> float:
        """Fraction of probes that found at least one match — the
        probe-side selectivity EXPLAIN reports for shared (CACQ) plans,
        where no EddyOperator wraps the SteM."""
        return self.probe_hits / self.probes if self.probes else 0.0

    def __len__(self) -> int:
        return len(self._tuples)

    def contents(self) -> List[Tuple]:
        return list(self._tuples)

    def state_size(self) -> int:
        return len(self._tuples)

    def __repr__(self) -> str:
        return f"SteM({self.source}, n={len(self._tuples)})"


class CacheSteM(SteM):
    """A SteM used as a cache of expensive lookups (Section 2.2's index
    join: "a SteM on T should also be built, as a cache of previous
    expensive T lookups, as in [HN96]").

    Bounded in size with LRU eviction on build; ``lookup_or_none``
    reports hit/miss so the hybrid-join benchmark can count saved remote
    accesses.
    """

    def __init__(self, source: str, capacity: int,
                 index_columns: Sequence[str] = (), name: str = ""):
        super().__init__(source, index_columns=index_columns,
                         name=name or f"cache-stem[{source}]")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0

    def build(self, t: Tuple) -> None:
        if self.capacity and len(self._tuples) >= self.capacity:
            victim = self._tuples.popleft()
            for col, index in self._indexes.items():
                bucket = index.get(victim[col])
                if bucket:
                    bucket.remove(victim)
        super().build(t)

    def lookup(self, column: str, value: Any) -> List[Tuple]:
        """Point lookup through the index (cache semantics): returns the
        cached tuples with ``column == value`` and counts hit/miss."""
        if column in self._indexes:
            found = list(self._indexes[column].get(value, ()))
        else:
            found = [t for t in self._tuples if t[column] == value]
        if found:
            self.hits += 1
        else:
            self.misses += 1
        return found


class RendezvousBuffer(SteM):
    """A SteM on the outer of an asynchronous index join (Section 2.2:
    "requiring a SteM on S (a rendezvous buffer) to hold S tuples pending
    matches from the index").

    Tracks which held tuples still await responses; ``settle`` removes a
    tuple once its lookup completed and all matches were emitted.
    """

    def __init__(self, source: str, index_columns: Sequence[str] = (),
                 name: str = ""):
        super().__init__(source, index_columns=index_columns,
                         name=name or f"rendezvous[{source}]")
        self._pending: Set[int] = set()

    def hold(self, t: Tuple) -> None:
        self.build(t)
        self._pending.add(t.tid)

    def settle(self, t: Tuple) -> None:
        self._pending.discard(t.tid)

    def pending_count(self) -> int:
        return len(self._pending)
