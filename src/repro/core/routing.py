"""Eddy routing policies (Section 2.2, Section 4.3, [AH00]).

The eddy consults a routing policy for every tuple (or batch — see
:class:`BatchingDirective`) to pick which eligible operator the tuple
visits next.  Policies implemented:

* :class:`FixedPolicy` — a static priority order: this is exactly what a
  conventional optimizer would freeze into a plan, and is the baseline
  an adaptive eddy is measured against (experiment E1);
* :class:`RandomPolicy` — the naive adaptive strawman;
* :class:`LotteryPolicy` — the ticket scheme of [AH00]: an operator is
  credited a ticket when a tuple is routed to it and debited when it
  returns tuples, so operators with low selectivity (big filters) win
  more lotteries and see tuples earlier.  Tickets decay over a sliding
  "banking window" so the policy keeps adapting when selectivities
  drift;
* :class:`GreedySelectivityPolicy` — deterministically routes to the
  lowest observed-selectivity operator; an ablation point between fixed
  and lottery.

"Adapting adaptivity" (Section 4.3) is exposed through
:class:`BatchingDirective`: the eddy can amortise one routing decision
over a batch of tuples and/or freeze a whole operator sequence,
trading adaptivity for per-tuple overhead (experiment E8).
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, Sequence, Tuple as TypingTuple, TYPE_CHECKING

from repro.core.tuples import Tuple
from repro.errors import PlanError
from repro.monitor.telemetry import get_registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.eddy import EddyOperator

_POLICY_IDS = itertools.count()


class RoutingPolicy:
    """Strategy interface consulted by the eddy."""

    def choose(self, t: Tuple,
               eligible: Sequence["EddyOperator"]) -> "EddyOperator":
        raise NotImplementedError

    def on_route(self, op: "EddyOperator") -> None:
        """Called when a tuple is handed to ``op``."""

    def on_return(self, op: "EddyOperator", n_outputs: int) -> None:
        """Called when ``op`` hands ``n_outputs`` tuples back."""

    def tickets_snapshot(self, eligible: Sequence["EddyOperator"]
                         ) -> "TypingTuple[float, ...]":
        """Per-candidate policy state at decision time, aligned with
        ``eligible`` — captured by the routing flight recorder so a
        recorded choice can be explained later.  Stateless policies
        return the empty tuple."""
        return ()

    def describe(self) -> str:
        return type(self).__name__


class FixedPolicy(RoutingPolicy):
    """Route in a frozen order — the static plan.

    ``order`` lists operator names, highest priority first.  Operators
    not named sort last in registration order.
    """

    def __init__(self, order: Sequence[str]):
        self._rank: Dict[str, int] = {name: i for i, name in enumerate(order)}

    def choose(self, t: Tuple,
               eligible: Sequence["EddyOperator"]) -> "EddyOperator":
        return min(eligible,
                   key=lambda op: self._rank.get(op.name, len(self._rank)))

    def describe(self) -> str:
        order = sorted(self._rank, key=self._rank.get)
        return f"FixedPolicy({' -> '.join(order)})"


class RandomPolicy(RoutingPolicy):
    """Uniform random choice among eligible operators."""

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)

    def choose(self, t: Tuple,
               eligible: Sequence["EddyOperator"]) -> "EddyOperator":
        return self._rng.choice(list(eligible))


class LotteryPolicy(RoutingPolicy):
    """The [AH00] ticket lottery.

    Each operator holds tickets; routing holds a lottery weighted by
    ticket count (plus one, so starved operators still get explored).
    Crediting on route and debiting on return makes tickets a running
    estimate of (1 - selectivity); decay keeps the estimate fresh — the
    banking-window idea that lets the eddy re-adapt after a selectivity
    drift.
    """

    def __init__(self, seed: int = 0, decay: float = 0.99,
                 decay_every: int = 100, explore: float = 0.05):
        self._rng = random.Random(seed)
        self._tickets: Dict[str, float] = {}
        self.decay = decay
        self.decay_every = decay_every
        self.explore = explore
        self._routed = 0
        # Ticket-update telemetry: cheap integers on the hot path, a
        # collector copies them (and current ticket levels) at snapshot.
        self.ticket_credits = 0
        self.ticket_debits = 0
        self._telemetry = get_registry()
        self._telemetry_id = f"lottery#{next(_POLICY_IDS)}"
        self._telemetry.register_collector(self._publish_telemetry)

    def tickets(self, op: "EddyOperator") -> float:
        return self._tickets.get(op.name, 0.0)

    def tickets_snapshot(self, eligible: Sequence["EddyOperator"]
                         ) -> "TypingTuple[float, ...]":
        return tuple(self._tickets.get(op.name, 0.0) for op in eligible)

    def choose(self, t: Tuple,
               eligible: Sequence["EddyOperator"]) -> "EddyOperator":
        ops = list(eligible)
        if len(ops) == 1:
            return ops[0]
        if self.explore and self._rng.random() < self.explore:
            return self._rng.choice(ops)
        weights = [self._tickets.get(op.name, 0.0) + 1.0 for op in ops]
        total = sum(weights)
        pick = self._rng.random() * total
        cumulative = 0.0
        for op, w in zip(ops, weights):
            cumulative += w
            if pick <= cumulative:
                return op
        return ops[-1]

    def on_route(self, op: "EddyOperator") -> None:
        self._tickets[op.name] = self._tickets.get(op.name, 0.0) + 1.0
        self.ticket_credits += 1
        self._routed += 1
        if self.decay_every and self._routed % self.decay_every == 0:
            for name in self._tickets:
                self._tickets[name] *= self.decay

    def on_return(self, op: "EddyOperator", n_outputs: int) -> None:
        if n_outputs:
            self._tickets[op.name] = max(
                0.0, self._tickets.get(op.name, 0.0) - float(n_outputs))
            self.ticket_debits += 1

    def _publish_telemetry(self) -> None:
        reg = self._telemetry
        pid = self._telemetry_id
        reg.counter("tcq_eddy_ticket_credits_total",
                    "Lottery tickets credited on route", ("policy",),
                    collected=True).labels(pid).set_total(
            self.ticket_credits)
        reg.counter("tcq_eddy_ticket_debits_total",
                    "Lottery ticket debits on return", ("policy",),
                    collected=True).labels(pid).set_total(
            self.ticket_debits)
        levels = reg.gauge("tcq_eddy_tickets",
                           "Current lottery ticket level per operator",
                           ("policy", "op"), collected=True)
        for name, tickets in self._tickets.items():
            levels.labels(pid, name).set(tickets)

    def describe(self) -> str:
        return (f"LotteryPolicy(decay={self.decay}, "
                f"explore={self.explore})")


class GreedySelectivityPolicy(RoutingPolicy):
    """Deterministically route to the operator with the lowest observed
    selectivity; ties broken by name for reproducibility.

    Pure exploitation: adapts to drift only through each operator's own
    windowed selectivity estimate, with none of the lottery's built-in
    exploration.  An ablation point for E1/E8.
    """

    def choose(self, t: Tuple,
               eligible: Sequence["EddyOperator"]) -> "EddyOperator":
        return min(eligible, key=lambda op: (op.observed_selectivity(),
                                             op.name))


class RankPolicy(RoutingPolicy):
    """Rank-based routing: the classic optimal filter ordering.

    For independent commutative filters the optimal order is ascending
    ``rank = cost / (1 - selectivity)`` — cheap, selective operators
    first.  The eddy version recomputes ranks from *observed* (windowed)
    selectivities and the operators' advertised per-tuple costs, so it
    both matches the textbook order in steady state and re-ranks under
    drift.  Compared to the lottery it has no exploration randomness;
    compared to GreedySelectivityPolicy it accounts for operator cost,
    which matters once expensive probes (remote indexes) join the mix.
    """

    def choose(self, t: Tuple,
               eligible: Sequence["EddyOperator"]) -> "EddyOperator":
        def rank(op: "EddyOperator") -> float:
            drop_rate = 1.0 - op.observed_selectivity()
            if drop_rate <= 0.0:
                return float("inf")
            return op.cost_estimate() / drop_rate

        return min(eligible, key=lambda op: (rank(op), op.name))


class BatchingDirective:
    """The §4.3 knobs as a single configuration object.

    * ``batch_size`` — how many consecutive tuples reuse one routing
      decision.  1 = per-tuple routing (maximum adaptivity, maximum
      overhead); larger batches amortise the policy call.
    * ``fix_sequence`` — when True, one policy consultation fixes the
      *entire remaining operator order* for the tuple (and, combined
      with batching, for the whole batch): the "fixing operators" knob.
    * ``vectorize`` — when True, batches become *first-class data*: the
      eddy groups tuples into :class:`~repro.core.tuples.TupleBatch`
      objects of ``batch_size`` rows and routes whole batches through
      operator kernels (``handle_batch``), so the per-tuple Python call
      chain — not just the routing decision — is amortised.
    """

    __slots__ = ("batch_size", "fix_sequence", "vectorize")

    def __init__(self, batch_size: int = 1, fix_sequence: bool = False,
                 vectorize: bool = False):
        if batch_size < 1:
            raise PlanError("batch_size must be >= 1")
        self.batch_size = batch_size
        self.fix_sequence = fix_sequence
        self.vectorize = vectorize

    def __repr__(self) -> str:
        return (f"BatchingDirective(batch={self.batch_size}, "
                f"fixed={self.fix_sequence}, "
                f"vectorized={self.vectorize})")


#: Per-tuple, fully adaptive — the default eddy configuration.
PER_TUPLE = BatchingDirective(1, fix_sequence=False)
