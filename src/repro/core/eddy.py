"""The Eddy: continuously adaptive tuple routing (Section 2.2, [AH00]).

An eddy sits between a set of commutative operators, intercepting every
tuple that flows into or out of them.  For each tuple it repeatedly picks
an eligible operator (one that applies and has not yet seen the tuple),
hands the tuple over, collects any generated tuples (join matches) for
further routing, and emits the tuple once every connected module has
successfully handled it.

The implementation notes map to the paper like so:

* tuple "done" bitmaps — :attr:`repro.core.tuples.Tuple.done`, one bit
  per connected operator, assigned at eddy construction;
* "bounce back" — an operator's :meth:`EddyOperator.handle` returns
  ``passed=False`` to reject the tuple (a failed filter), and returned
  match tuples re-enter the routing loop;
* shutdown — the eddy is a Fjord module; EOS on all inputs finishes it;
* routing policy & batching — pluggable (:mod:`repro.core.routing`),
  including the §4.3 "adapting adaptivity" knobs.
"""

from __future__ import annotations

import itertools
from typing import (Dict, Iterable, List, Optional, Sequence, Set, Tuple as TypingTuple)

from repro.core import columnar
from repro.core.routing import BatchingDirective, PER_TUPLE, RoutingPolicy, RandomPolicy
from repro.core.stem import SteM
from repro.core.tuples import Punctuation, Tuple, TupleBatch, is_eos
from repro.errors import ExecutionError, PlanError
from repro.fjords.module import Module, StepResult
from repro.fjords.queues import EMPTY
import repro.monitor.introspect as introspect
from repro.monitor.telemetry import get_registry
from repro.query.predicates import ColumnComparison, Predicate

_EDDY_IDS = itertools.count()


class HandleResult:
    """What an operator tells the eddy after handling one tuple."""

    __slots__ = ("outputs", "passed")

    def __init__(self, outputs: Sequence[Tuple] = (), passed: bool = True):
        self.outputs = outputs
        self.passed = passed


_PASS = HandleResult()
_FAIL = HandleResult(passed=False)


class EddyOperator:
    """A unit of work connected to an eddy.

    Unlike a Fjord module, an eddy operator is invoked synchronously by
    its eddy (the eddy *is* the Fjord module); this mirrors the paper's
    picture of operator inputs and outputs all being connected to the
    eddy.
    """

    def __init__(self, name: str):
        self.name = name
        self.bit = 0            # assigned by the owning eddy
        self.seen = 0
        self.passed_count = 0
        # Windowed selectivity estimate (EWMA) so drifting data changes
        # the estimate quickly; used by GreedySelectivityPolicy.
        self._ewma_selectivity = 1.0
        self._ewma_alpha = 0.02

    def applies_to(self, t: Tuple) -> bool:
        """Does this operator need to see ``t`` at all?"""
        raise NotImplementedError

    def must_run_first(self, t: Tuple) -> bool:
        """Routing constraint: True if this operator must handle ``t``
        before any unconstrained operator (SteM builds, so state is
        saved before the tuple goes probing)."""
        return False

    def handle(self, t: Tuple) -> HandleResult:
        raise NotImplementedError

    def observed_selectivity(self) -> float:
        return self._ewma_selectivity

    def cost_estimate(self) -> float:
        """Advertised per-tuple work, in arbitrary but consistent
        units; RankPolicy divides by drop rate."""
        return 1.0

    def handle_batch(self, batch: TupleBatch) -> \
            "TypingTuple[Optional[TupleBatch], Sequence[Tuple]]":
        """Vectorized handling: returns ``(survivors, outputs)`` where
        ``survivors`` is the sub-batch that passed (None or empty when
        everything was rejected) and ``outputs`` are generated tuples
        (join matches) that re-enter routing individually.

        The default loops over :meth:`handle`, so every operator is
        batch-capable (batch=1 per-tuple handling stays the degenerate
        case); filters and SteMs override with real kernels.
        """
        survivors: List[Tuple] = []
        outputs: List[Tuple] = []
        for t in batch.materialize():  # tcqcheck: allow-row-iteration
            result = self.handle(t)
            outputs.extend(result.outputs)
            if result.passed:
                survivors.append(t)
        if len(survivors) == len(batch):
            return batch, outputs
        if not survivors:
            return None, outputs
        return TupleBatch.from_tuples(survivors, schema=batch.schema), outputs

    def _observe(self, passed: bool) -> None:
        self.seen += 1
        if passed:
            self.passed_count += 1
        self._ewma_selectivity += self._ewma_alpha * (
            (1.0 if passed else 0.0) - self._ewma_selectivity)

    def _observe_batch(self, mask: Sequence[bool]) -> None:
        """Batched selectivity bookkeeping, equal to calling
        :meth:`_observe` once per element of ``mask`` in order (list
        masks fold sequentially; array masks use the closed form)."""
        self.seen += len(mask)
        self.passed_count += columnar.mask_count(mask)
        self._ewma_selectivity = columnar.ewma_update(
            self._ewma_selectivity, self._ewma_alpha, mask)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class FilterOperator(EddyOperator):
    """A selection connected to an eddy."""

    def __init__(self, predicate: Predicate, name: str = "", cost: int = 0):
        super().__init__(name or f"filter[{predicate!r}]")
        self.predicate = predicate
        self.cost = cost
        self._needed_sources = predicate.sources()
        self._kernel = None   # compiled lazily on first batch

    def cost_estimate(self) -> float:
        return 1.0 + self.cost

    def applies_to(self, t: Tuple) -> bool:
        # A filter applies once the tuple carries every source the
        # predicate mentions; unqualified predicates apply to any tuple
        # that has the column.
        if self._needed_sources:
            return self._needed_sources <= t.sources
        return all(t.schema.has_column(c) for c in self.predicate.columns())

    def handle(self, t: Tuple) -> HandleResult:
        if self.cost:
            acc = 0
            for i in range(self.cost):
                acc += i
        ok = self.predicate.matches(t)
        self._observe(ok)
        if not ok:
            # The tuple may already live inside a SteM; probes skip dead
            # tuples so no inconsistent matches appear later.
            t.dead = True
        return _PASS if ok else _FAIL

    def handle_batch(self, batch: TupleBatch) -> \
            "TypingTuple[Optional[TupleBatch], Sequence[Tuple]]":
        if self.cost:
            acc = 0
            for i in range(self.cost * len(batch)):
                acc += i
        if self._kernel is None:
            self._kernel = self.predicate.compile()
        mask = self._kernel(batch)
        self._observe_batch(mask)
        passed, failed = batch.partition(mask)
        # Rejected rows may already live inside a SteM (row-backed batch
        # after a build); mark them dead exactly as the per-tuple path.
        failed.mark_dead()
        return (passed if len(passed) else None), ()


class SteMOperator(EddyOperator):
    """A SteM connected to an eddy.

    Home-source base tuples build; everything else probes using the
    subset of the query's join predicates that connect the prober to
    this SteM's source.
    """

    def __init__(self, stem: SteM, join_predicates: Sequence[ColumnComparison],
                 name: str = "", probe_cost: int = 0):
        super().__init__(name or stem.name)
        self.stem = stem
        self.join_predicates = list(join_predicates)
        self.probe_cost = probe_cost
        self._home = stem.source

    def cost_estimate(self) -> float:
        return 1.0 + self.probe_cost

    def applies_to(self, t: Tuple) -> bool:
        if self._home in t.sources:
            return True          # build (or no-op for composites)
        return bool(self._applicable_predicates(t))

    def must_run_first(self, t: Tuple) -> bool:
        # Build before any probing so the state is durable.
        return t.sources == frozenset((self._home,))

    def _applicable_predicates(self, t: Tuple) -> List[ColumnComparison]:
        """Join factors with one side on the prober and the other on
        this SteM's home source."""
        out = []
        for pred in self.join_predicates:
            srcs = pred.sources()
            if self._home in srcs and (srcs - {self._home}) <= t.sources \
                    and len(srcs) > 1:
                out.append(pred)
        return out

    def handle(self, t: Tuple) -> HandleResult:
        if self._home in t.sources:
            if t.sources == frozenset((self._home,)):
                self.stem.build(t)
            self._observe(True)
            return _PASS
        if self.probe_cost:
            acc = 0
            for i in range(self.probe_cost):
                acc += i
        preds = self._applicable_predicates(t)
        matches = self.stem.probe(t, preds)
        self._observe(bool(matches))
        return HandleResult(outputs=matches, passed=True)

    def handle_batch(self, batch: TupleBatch) -> \
            "TypingTuple[Optional[TupleBatch], Sequence[Tuple]]":
        if self._home in batch.sources:
            if batch.sources == frozenset((self._home,)):
                self.stem.build_batch(batch)
            self._observe_batch([True] * len(batch))
            return batch, ()
        if self.probe_cost:
            acc = 0
            for i in range(self.probe_cost * len(batch)):
                acc += i
        preds = self._applicable_predicates(batch.representative())
        matches, hits = self.stem.probe_batch(batch, preds)
        self._observe_batch(hits)
        return batch, matches


class Eddy(Module):
    """The adaptive routing module, packaged as a Fjord module.

    ``output_sources`` is the query footprint: a tuple reaches the eddy
    output only when it spans all of them and every applicable operator
    has handled it.  A selection-only query over stream S has footprint
    {S}; a join over S and T has footprint {S, T}.
    """

    MAX_ROUTING_DEPTH = 10_000

    def __init__(self, operators: Sequence[EddyOperator],
                 output_sources: Iterable[str],
                 policy: Optional[RoutingPolicy] = None,
                 batching: BatchingDirective = PER_TUPLE,
                 arity_in: int = 1, name: str = "",
                 dedupe_output: Optional[bool] = None):
        super().__init__(name=name or "eddy", arity_in=arity_in)
        if not operators:
            raise PlanError("an eddy needs at least one operator")
        if len(operators) > 62:
            raise PlanError("at most 62 operators per eddy (bitmap width)")
        self.operators = list(operators)
        for i, op in enumerate(self.operators):
            op.bit = 1 << i
        self.output_sources = frozenset(output_sources)
        self.policy = policy if policy is not None else RandomPolicy()
        self.batching = batching
        n_stems = sum(1 for op in self.operators
                      if isinstance(op, SteMOperator))
        # Multi-path duplicates can only arise with 3+ SteMs.
        self.dedupe_output = (n_stems >= 3 if dedupe_output is None
                              else dedupe_output)
        self._emitted: Set[frozenset] = set()
        # Batching state: one cached decision per "routing situation"
        # (done bitmap + source set), reused batch_size times.
        self._route_cache: Dict[TypingTuple[int, frozenset], TypingTuple] = {}
        self.routing_decisions = 0
        self.tuples_routed = 0
        self.batches_routed = 0
        self.outputs_emitted = 0
        #: When True (and ``batching.vectorize``), surviving batches are
        #: pushed downstream as single queue items; consumers must be
        #: batch-aware Fjord modules.  Off by default so non-module
        #: consumers (cursors popping raw queues) keep seeing tuples.
        self.emit_batches = False
        # Telemetry is collector-based: the routing loop touches only the
        # plain integers above; the registry pulls them at snapshot time.
        self._telemetry = get_registry()
        self._telemetry_id = f"{self.name}#{next(_EDDY_IDS)}"
        self._telemetry.register_collector(self._publish_telemetry)
        # Routing flight recorder (disabled by default): consulted at
        # every policy.choose call site, one bool test when off.
        self._recorder = introspect.RECORDER
        #: Optional PlanFreezer (see :meth:`enable_freezing`); ``None``
        #: keeps the routing loop free of freeze bookkeeping.
        self.freezer = None

    # -- the routing loop ---------------------------------------------------
    def process(self, item: Tuple, port: int) -> Iterable[Tuple]:
        results: List[Tuple] = []
        self._route_worklist([item], results)
        return results

    def _route_worklist(self, worklist: List[Tuple],
                        results: List[Tuple],
                        fresh_decisions: bool = False) -> None:
        depth = 0
        while worklist:
            depth += 1
            if depth > self.MAX_ROUTING_DEPTH:
                raise ExecutionError(
                    f"{self.name}: routing loop exceeded "
                    f"{self.MAX_ROUTING_DEPTH} steps for one input tuple")
            t = worklist.pop()
            self.tuples_routed += 1
            alive = True
            while alive:
                eligible = self._eligible(t)
                if not eligible:
                    if self._should_emit(t):
                        tr = t.trace
                        if tr is not None:
                            tr.hop("emit", self._telemetry_id)
                        results.append(t)
                    break
                op = self._choose(t, eligible, fresh=fresh_decisions)
                t.mark_done(op.bit)
                tr = t.trace
                if tr is not None:
                    tr.hop("eddy", self._telemetry_id, op.name)
                self.policy.on_route(op)
                result = op.handle(t)
                self.policy.on_return(op, len(result.outputs))
                for out in result.outputs:
                    self._fix_composite_done(out)
                    # The producing operator has by definition handled
                    # its own output (a SteM's home bit is re-set by the
                    # fix-up; sub-eddies rely on this explicitly).
                    out.mark_done(op.bit)
                    worklist.append(out)
                if not result.passed:
                    alive = False

    def process_batch(self, batch: TupleBatch,
                      port: int = 0) -> List:
        """Route a whole batch: the vectorized counterpart of
        :meth:`process`.

        The batch stays uniform (one done bitmap, one source set), so
        eligibility and the routing decision are computed once per batch
        per hop instead of once per tuple; operators handle the batch
        through their kernels.  Join matches diverge per row and re-enter
        the classic per-tuple loop.  Returns a list of emitted items —
        surviving :class:`TupleBatch` objects plus individual composite
        tuples.
        """
        results: List = []
        n = len(batch)
        if not n:
            return results
        fz = self.freezer
        freeze_key = None
        if fz is not None:
            # Footprint-class key; captured before routing mutates the
            # batch's done bitmap.
            freeze_key = (batch.done, batch.sources)
            pipe = fz.frozen.get(freeze_key)
            if pipe is not None:
                self.tuples_routed += n
                self.batches_routed += 1
                pipe.run(self, batch, results)
                fz.after_frozen_batch(freeze_key, n)
                return results
        self.tuples_routed += n
        self.batches_routed += 1
        pending_rows: List[Tuple] = []
        applied: List[str] = []
        completed = False
        current: Optional[TupleBatch] = batch
        depth = 0
        while current is not None and len(current):
            depth += 1
            if depth > self.MAX_ROUTING_DEPTH:
                raise ExecutionError(
                    f"{self.name}: routing loop exceeded "
                    f"{self.MAX_ROUTING_DEPTH} steps for one input batch")
            rep = current.representative()
            eligible = self._eligible(rep)
            if not eligible:
                # Reaching emission eligibility is what makes the route
                # freeze-worthy: a batch that died mid-route observed a
                # truncated operator sequence.
                completed = True
                self._emit_batch(current, results)
                break
            # One fresh policy consultation per batch per hop: the batch
            # itself is the amortization unit, so the ``batch_size``-uses
            # route cache (which would stretch one decision over
            # batch_size whole batches) is deliberately bypassed.
            if len(eligible) == 1:
                op = eligible[0]
            else:
                self.routing_decisions += 1
                op = self.policy.choose(rep, eligible)
                rec = self._recorder
                if rec.enabled:
                    rec.record(self._telemetry_id, self.policy, op,
                               eligible, rows=len(current))
            if current.traces:
                for tr in current.traces:
                    tr.hop("eddy", self._telemetry_id, op.name)
            current.mark_done(op.bit)
            if fz is not None:
                applied.append(op.name)
            self.policy.on_route(op)
            current, outputs = op.handle_batch(current)
            self.policy.on_return(op, len(outputs))
            for out in outputs:
                self._fix_composite_done(out)
                out.mark_done(op.bit)
                pending_rows.append(out)
        if pending_rows:
            # Composite fall-back stays on the batch-path contract:
            # consult the policy fresh per hop instead of dipping into
            # the batch_size-amortized route cache, so these decisions
            # are counted and visible to the flight recorder like every
            # other vectorized-path decision.
            self._route_worklist(pending_rows, results,
                                 fresh_decisions=True)
        if fz is not None and applied:
            fz.observe_route(freeze_key, applied, completed)
        return results

    def _emit_batch(self, batch: TupleBatch, results: List) -> None:
        """Batch-granular emission: the whole surviving batch is one
        result object when no per-row checks are needed."""
        if not self.output_sources <= batch.sources:
            return
        if self.dedupe_output:
            # PSoup dedupe is a per-row membership test by contract.
            for t in batch.materialize():  # tcqcheck: allow-row-iteration
                if self._should_emit(t):
                    tr = t.trace
                    if tr is not None:
                        tr.hop("emit", self._telemetry_id)
                    results.append(t)
            return
        # Row-backed batches only: the aliased Tuple objects carry the
        # authoritative dead flags.
        rows = None
        if batch._rows is not None:  # tcqcheck: allow-row-iteration
            rows = batch.materialize()  # tcqcheck: allow-row-iteration
        if rows is not None and any(r.dead for r in rows):
            # Row-backed batches alias tuples that other paths may have
            # killed (SteM-stored rows); the per-tuple path's
            # _should_emit drops dead tuples, so the batch path must too.
            batch = batch.take([i for i, r in enumerate(rows)
                                if not r.dead])
            if not len(batch):
                return
        self.outputs_emitted += len(batch)
        for tr in batch.traces:
            tr.hop("emit", self._telemetry_id)
        results.append(batch)

    def _fix_composite_done(self, t: Tuple) -> None:
        """Recompute a join match's SteM done-bits.

        A match inherits its parents' *filter* bits (those predicates
        hold on the concatenation), but parent probe-bits must not carry
        over: an {S,T} composite still has to probe SteM_U even though
        both parents did — that was a different logical operation.  SteMs
        whose home source the match already spans are marked done (no
        build, no self-probe); all others are cleared so routing visits
        them.
        """
        for op in self.operators:
            if isinstance(op, SteMOperator):
                if op.stem.source in t.sources:
                    t.done |= op.bit
                else:
                    t.done &= ~op.bit

    def _eligible(self, t: Tuple) -> List[EddyOperator]:
        constrained: List[EddyOperator] = []
        unconstrained: List[EddyOperator] = []
        for op in self.operators:
            if t.done & op.bit:
                continue
            if not op.applies_to(t):
                continue
            if op.must_run_first(t):
                constrained.append(op)
            else:
                unconstrained.append(op)
        return constrained if constrained else unconstrained

    def _choose(self, t: Tuple, eligible: List[EddyOperator],
                fresh: bool = False) -> EddyOperator:
        if len(eligible) == 1:
            return eligible[0]
        if not fresh and (self.batching.batch_size > 1
                          or self.batching.fix_sequence):
            return self._choose_batched(t, eligible)
        self.routing_decisions += 1
        op = self.policy.choose(t, eligible)
        rec = self._recorder
        if rec.enabled:
            rec.record(self._telemetry_id, self.policy, op, eligible)
        return op

    def _choose_batched(self, t: Tuple,
                        eligible: List[EddyOperator]) -> EddyOperator:
        """Amortised routing: reuse a cached decision for tuples in the
        same routing situation, refreshing it every ``batch_size`` uses.

        With ``fix_sequence`` one policy consultation ranks the whole
        eligible set (by asking the policy repeatedly against shrinking
        candidate sets) and the stored order serves the batch.
        """
        key = (t.done, t.sources)
        cached = self._route_cache.get(key)
        if cached is not None:
            choice_by_name, uses_left = cached
            if uses_left > 0:
                chosen = next((op for op in eligible
                               if op.name in choice_by_name), None)
                if chosen is not None:
                    self._route_cache[key] = (choice_by_name, uses_left - 1)
                    return chosen
        self.routing_decisions += 1
        if self.batching.fix_sequence:
            # Rank the full eligible set once.
            remaining = list(eligible)
            order: List[str] = []
            while remaining:
                pick = self.policy.choose(t, remaining)
                order.append(pick.name)
                remaining.remove(pick)
            chosen_names: Set[str] = {order[0]}
            chosen = eligible[[op.name for op in eligible].index(order[0])]
        else:
            chosen = self.policy.choose(t, eligible)
            chosen_names = {chosen.name}
        rec = self._recorder
        if rec.enabled:
            rec.record(self._telemetry_id, self.policy, chosen, eligible)
        self._route_cache[key] = (chosen_names, self.batching.batch_size - 1)
        return chosen

    def _should_emit(self, t: Tuple) -> bool:
        if t.dead or not self.output_sources <= t.sources:
            return False
        if self.dedupe_output:
            key = t.base_id_set()
            if key in self._emitted:
                return False
            self._emitted.add(key)
        self.outputs_emitted += 1
        return True

    # -- vectorized scheduling ----------------------------------------------
    def run_once(self, batch: Optional[int] = None) -> StepResult:
        """With ``batching.vectorize``, drain input into
        :class:`TupleBatch` groups of up to ``batch_size`` rows and route
        whole batches; otherwise defer to the per-item Module loop."""
        if not (self.batching.vectorize and self.batching.batch_size > 1):
            return super().run_once(batch)
        if self.finished:
            return StepResult.DONE
        size = self.batching.batch_size
        budget = batch if batch is not None else max(self.DEFAULT_BATCH, size)
        worked = False
        pending: List[Tuple] = []

        def flush() -> None:
            if pending:
                self._emit_results(
                    self.process_batch(TupleBatch.from_tuples(pending), 0))
                del pending[:]

        for _ in range(budget):
            port, item = self._next_input()
            if item is EMPTY:
                break
            worked = True
            if is_eos(item):
                flush()
                self._eos_seen += 1
                if self._eos_seen >= len(self.inputs):
                    self._finish()
                    return StepResult.DONE
                continue
            if isinstance(item, Punctuation):
                flush()
                self.on_punctuation(item, port)
                continue
            if isinstance(item, TupleBatch):
                flush()
                self.tuples_in += len(item)
                self._emit_results(self.process_batch(item, port))
                continue
            # Group contiguous tuples sharing a schema object and lineage
            # into one columnar batch; any mismatch closes the group.
            if pending and (item.schema is not pending[0].schema
                            or item.done != pending[0].done
                            or item.queries != pending[0].queries):
                flush()
            self.tuples_in += 1
            pending.append(item)
            if len(pending) >= size:
                flush()
        flush()
        return StepResult.BUSY if worked else StepResult.IDLE

    def _emit_results(self, results: List) -> None:
        for item in results:
            if isinstance(item, TupleBatch) and not self.emit_batches:
                # Egress contract: non-batch consumers expect tuples.
                for t in item.materialize():  # tcqcheck: allow-row-iteration
                    self.emit(t)
            else:
                self.emit(item)

    # -- punctuation / windows ----------------------------------------------
    def on_punctuation(self, punctuation: Punctuation, port: int) -> None:
        if punctuation.kind == Punctuation.WINDOW_BOUNDARY:
            self._emitted.clear()
        self.emit(punctuation)

    # -- scheduler hooks -----------------------------------------------------
    def selectivity_sample(self) -> Dict[str, float]:
        """Per-operator windowed selectivities — the §4.3 drift signal
        consumed by the adaptive quantum controllers."""
        return {op.name: op.observed_selectivity()
                for op in self.operators}

    def apply_quantum(self, batch_size: int) -> None:
        """Adopt a scheduler-chosen batch size, preserving the other
        :class:`BatchingDirective` knobs, and drop cached routing
        decisions sized for the old batch."""
        self.batching = BatchingDirective(
            batch_size, fix_sequence=self.batching.fix_sequence,
            vectorize=self.batching.vectorize)
        self._route_cache.clear()

    def enable_freezing(self, **kwargs):
        """Attach a :class:`~repro.core.freeze.PlanFreezer` (§4.3
        "adapting adaptivity": stop paying per-hop routing overhead once
        a footprint class's route has provably settled).

        Keyword arguments are forwarded to the freezer constructor
        (``stable_routes``, ``drift_threshold``, ``check_every``).
        Idempotent only in the sense that calling it again replaces the
        freezer (and thereby thaws everything)."""
        # Imported here, not at module top: freeze.py imports operator
        # classes from this module.
        from repro.core.freeze import PlanFreezer
        self.freezer = PlanFreezer(self, **kwargs)
        return self.freezer

    def disable_freezing(self) -> None:
        """Drop the freezer; every class returns to adaptive routing."""
        if self.freezer is not None:
            self.freezer.thaw_all(reason="freezing disabled")
            self.freezer = None

    def evict_stems_before(self, timestamp: int) -> int:
        """Window expiry across every connected SteM."""
        evicted = 0
        for op in self.operators:
            if isinstance(op, SteMOperator):
                evicted += op.stem.evict_before(timestamp)
        return evicted

    # -- telemetry ----------------------------------------------------------
    def _publish_telemetry(self) -> None:
        reg = self._telemetry
        eddy = self._telemetry_id
        reg.counter("tcq_eddy_tuples_routed_total",
                    "Tuples entering the routing loop", ("eddy",),
                    collected=True).labels(eddy).set_total(
            self.tuples_routed)
        reg.counter("tcq_eddy_routing_decisions_total",
                    "Policy consultations", ("eddy",),
                    collected=True).labels(eddy).set_total(
            self.routing_decisions)
        reg.counter("tcq_eddy_batches_routed_total",
                    "TupleBatches entering the vectorized routing loop",
                    ("eddy",), collected=True).labels(eddy).set_total(
            self.batches_routed)
        reg.counter("tcq_eddy_outputs_total",
                    "Tuples emitted from the eddy", ("eddy",),
                    collected=True).labels(eddy).set_total(
            self.outputs_emitted)
        seen = reg.counter("tcq_eddy_operator_seen_total",
                           "Tuples handled per connected operator",
                           ("eddy", "op"), collected=True)
        sel = reg.gauge("tcq_eddy_operator_selectivity",
                        "EWMA observed selectivity per operator",
                        ("eddy", "op"), collected=True)
        for op in self.operators:
            seen.labels(eddy, op.name).set_total(op.seen)
            sel.labels(eddy, op.name).set(op.observed_selectivity())

    # -- introspection ------------------------------------------------------
    def operator(self, name: str) -> EddyOperator:
        for op in self.operators:
            if op.name == name:
                return op
        raise PlanError(f"{self.name}: no operator named {name!r}")

    def stats(self) -> Dict[str, object]:
        return {
            "tuples_routed": self.tuples_routed,
            "batches_routed": self.batches_routed,
            "routing_decisions": self.routing_decisions,
            "outputs": self.outputs_emitted,
            "policy": self.policy.describe(),
            "operators": {
                op.name: {
                    "seen": op.seen,
                    "selectivity": op.observed_selectivity(),
                } for op in self.operators
            },
        }
