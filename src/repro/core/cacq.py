"""CACQ: Continuously Adaptive Continuous Queries (Section 3.1, [MSHR02]).

CACQ modifies the eddy to execute *many* queries simultaneously: the eddy
runs a single "super-query" — the disjunction of all client queries — and
every tuple carries **lineage** (a query bitmap) recording which queries
are still interested in it.  The two sharing mechanisms are:

* **grouped filters** — one shared index per (stream, attribute) holds
  the single-variable boolean factors of every query, so one probe
  evaluates all of them (:mod:`repro.core.grouped_filter`);
* **shared SteMs** — one SteM per stream holds each base tuple once; all
  join queries over a stream pair probe the same state.

Query bitmaps are plain Python integers, so the engine supports an
unbounded number of simultaneous queries; queries can be added and
removed while data is flowing (the robustness requirement of Section
1.1).

The engine is deliberately independent of the Fjord scheduler so it can
be benchmarked head-to-head against the per-query and NiagaraCQ-style
baselines; :class:`CACQModule` packages it as a Fjord module for use
inside the full TelegraphCQ server.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple as TypingTuple

from repro.core.grouped_filter import GroupedFilter
from repro.core.routing import LotteryPolicy, RoutingPolicy
from repro.core.stem import SteM
from repro.core.tuples import Schema, Tuple
from repro.errors import QueryError
from repro.monitor.telemetry import get_registry

_CACQ_IDS = itertools.count()
from repro.query.predicates import (ALWAYS_TRUE, ColumnComparison, Comparison,
                                    Predicate, decompose)


class ContinuousQuery:
    """One registered client query.

    ``footprint`` is the set of streams the query reads (Section 4.2.2's
    query footprint); ``predicate`` its WHERE clause.  Results are
    appended to :attr:`results` or pushed through ``callback``.
    """

    def __init__(self, qid: int, footprint: FrozenSet[str],
                 predicate: Predicate,
                 callback: Optional[Callable[[Tuple], None]] = None,
                 name: str = ""):
        self.qid = qid
        self.bit = 1 << qid
        self.footprint = footprint
        self.predicate = predicate
        decomposed = decompose(predicate)
        self.single_factors = decomposed.single_variable
        self.join_factors = decomposed.equijoins
        self.residual = decomposed.residual_predicate()
        self.callback = callback
        self.name = name or f"q{qid}"
        self.results: List[Tuple] = []
        self.delivered = 0

    def deliver(self, t: Tuple) -> None:
        self.delivered += 1
        if self.callback is not None:
            self.callback(t)
        else:
            self.results.append(t)

    def __repr__(self) -> str:
        return (f"ContinuousQuery({self.name}, over="
                f"{'|'.join(sorted(self.footprint))}, {self.predicate!r})")


class CACQEngine:
    """The shared continuous-query processor.

    Typical use::

        engine = CACQEngine()
        engine.register_stream(Schema.of("trades", "sym", "price"))
        q = engine.add_query(["trades"], Comparison("price", ">", 50.0))
        engine.push("trades", sym="MSFT", price=55.0)
        assert q.results
    """

    def __init__(self, policy: Optional[RoutingPolicy] = None):
        self.policy = policy if policy is not None else LotteryPolicy()
        self.schemas: Dict[str, Schema] = {}
        self.queries: Dict[int, ContinuousQuery] = {}
        self._next_qid = itertools.count()
        # Shared state: grouped filters keyed by (stream, attribute);
        # one SteM per stream, created when a join query first needs it.
        self.filters: Dict[TypingTuple[str, str], GroupedFilter] = {}
        self.stems: Dict[str, SteM] = {}
        # Join registry: unordered stream pair -> [(query bit, predicate)].
        self._pair_factors: Dict[FrozenSet[str],
                                 List[TypingTuple[int, ColumnComparison]]] = \
            defaultdict(list)
        # Masks: which query bits read each stream / each footprint.
        self._source_mask: Dict[str, int] = defaultdict(int)
        self._footprint_mask: Dict[FrozenSet[str], int] = defaultdict(int)
        self.tuples_in = 0
        self.results_out = 0
        self.filter_probes = 0
        self.stem_probes = 0
        self._telemetry = get_registry()
        self._telemetry_id = f"cacq#{next(_CACQ_IDS)}"
        self._telemetry.register_collector(self._publish_telemetry)

    # -- telemetry -----------------------------------------------------------
    def _publish_telemetry(self) -> None:
        reg = self._telemetry
        engine = self._telemetry_id
        reg.counter("tcq_cacq_tuples_in_total",
                    "Tuples processed by the shared CACQ eddy", ("engine",),
                    collected=True).labels(engine).set_total(self.tuples_in)
        reg.counter("tcq_cacq_results_out_total",
                    "Query results delivered by CACQ", ("engine",),
                    collected=True).labels(engine).set_total(
            self.results_out)
        reg.counter("tcq_cacq_filter_probes_total",
                    "Grouped-filter probe operations", ("engine",),
                    collected=True).labels(engine).set_total(
            self.filter_probes)
        reg.counter("tcq_cacq_stem_probes_total",
                    "SteM probe operations issued by CACQ", ("engine",),
                    collected=True).labels(engine).set_total(
            self.stem_probes)
        reg.gauge("tcq_cacq_queries", "Standing continuous queries",
                  ("engine",), collected=True).labels(engine).set(
            len(self.queries))
        reg.gauge("tcq_cacq_stems", "Shared SteMs in the CACQ engine",
                  ("engine",), collected=True).labels(engine).set(
            len(self.stems))

    # -- catalog -------------------------------------------------------------
    def register_stream(self, schema: Schema) -> None:
        if not schema.name:
            raise QueryError("stream schema needs a name")
        self.schemas[schema.name] = schema

    # -- query management ------------------------------------------------------
    def add_query(self, streams: Sequence[str], predicate: Predicate,
                  callback: Optional[Callable[[Tuple], None]] = None,
                  name: str = "") -> ContinuousQuery:
        """Register a continuous query over ``streams`` and fold it into
        the running shared state — no pause, no replanning of other
        queries (the paper's on-the-fly sharing adaptivity)."""
        for s in streams:
            if s not in self.schemas:
                raise QueryError(f"unknown stream {s!r}; register it first")
        footprint = frozenset(streams)
        query = ContinuousQuery(next(self._next_qid), footprint, predicate,
                                callback=callback, name=name)
        self.queries[query.qid] = query
        self._footprint_mask[footprint] |= query.bit
        for s in footprint:
            self._source_mask[s] |= query.bit

        for factor in query.single_factors:
            stream = self._stream_of_column(factor.column, footprint)
            attr = factor.column.rsplit(".", 1)[-1]
            gf = self.filters.get((stream, attr))
            if gf is None:
                gf = GroupedFilter(attr)
                self.filters[(stream, attr)] = gf
            gf.add(Comparison(attr, factor.op, factor.value), query.qid)

        for factor in query.join_factors:
            pair = frozenset(factor.sources())
            if len(pair) != 2:
                raise QueryError(
                    f"join factor {factor!r} must span exactly two streams")
            self._pair_factors[pair].append((query.bit, factor))
            for s in pair:
                if s not in self.stems:
                    self.stems[s] = SteM(s)
                col = factor.left if factor.left.startswith(s + ".") \
                    else factor.right
                self.stems[s].add_index(col)
        return query

    def remove_query(self, query: ContinuousQuery) -> None:
        """Unregister a query; shared state used only by it is pruned."""
        if query.qid not in self.queries:
            raise QueryError(f"query {query.name} is not registered")
        del self.queries[query.qid]
        self._footprint_mask[query.footprint] &= ~query.bit
        for s in query.footprint:
            self._source_mask[s] &= ~query.bit
        for gf in self.filters.values():
            gf.remove_query(query.qid)
        for pair, factors in list(self._pair_factors.items()):
            kept = [(bit, f) for (bit, f) in factors if bit != query.bit]
            if kept:
                self._pair_factors[pair] = kept
            else:
                del self._pair_factors[pair]

    def _stream_of_column(self, column: str,
                          footprint: FrozenSet[str]) -> str:
        """Resolve which stream a factor's column belongs to."""
        if "." in column:
            stream = column.rsplit(".", 1)[0]
            if stream not in self.schemas:
                raise QueryError(f"column {column!r} names unknown stream")
            return stream
        owners = [s for s in footprint
                  if self.schemas[s].has_column(column)]
        if len(owners) != 1:
            raise QueryError(
                f"column {column!r} is ambiguous or unknown over "
                f"{sorted(footprint)}; qualify it")
        return owners[0]

    # -- data path ------------------------------------------------------------
    def push(self, stream: str, *, timestamp: Optional[int] = None,
             **values: Any) -> List[Tuple]:
        """Ingest one tuple (by column name) into ``stream``."""
        schema = self.schemas.get(stream)
        if schema is None:
            raise QueryError(f"unknown stream {stream!r}")
        row = tuple(values[c] for c in schema.column_names())
        return self.push_tuple(stream, schema.make(*row, timestamp=timestamp))

    def push_tuple(self, stream: str, t: Tuple) -> List[Tuple]:
        """Route one already-built tuple through the super-query.

        Returns the delivered result tuples (they are also handed to
        each query's callback / results list).
        """
        self.tuples_in += 1
        t.queries = self._source_mask.get(stream, 0)
        if not t.queries:
            return []
        delivered: List[Tuple] = []
        worklist: List[Tuple] = [t]
        while worklist:
            current = worklist.pop()
            produced = self._route(current, delivered)
            worklist.extend(produced)
        self.results_out += len(delivered)
        return delivered

    def _route(self, t: Tuple, delivered: List[Tuple]) -> List[Tuple]:
        """Drive one tuple through filters, its home build, and probes;
        returns newly generated join matches for further routing."""
        produced: List[Tuple] = []
        if len(t.sources) == 1:
            (stream,) = t.sources
            # 1. grouped filters for this stream: one probe per shared
            # index evaluates every registered query's factors at once.
            for (s, attr), gf in list(self.filters.items()):
                if s != stream:
                    continue
                registered = gf.registered_mask
                if not (t.queries & registered):
                    continue
                satisfied = self._mask(gf.matching(t[attr]))
                self.filter_probes += 1
                t.queries &= ~(registered & ~satisfied)
                alive = bool(t.queries)
                gf.observe(alive)
                tr = t.trace
                if tr is not None:
                    tr.hop("filter", f"gf[{s}.{attr}]",
                           "pass" if alive else "drop")
                if not alive:
                    return produced
            # 2. build into the home SteM so later arrivals find it.
            stem = self.stems.get(stream)
            if stem is not None:
                stem.build(t)
        # 3. deliver to selection-only (or completed-join) queries.
        self._deliver(t, delivered)
        # 4. probe the SteMs of partner streams.
        produced.extend(self._probe_partners(t))
        return produced

    def _probe_partners(self, t: Tuple) -> List[Tuple]:
        out: List[Tuple] = []
        for pair, factors in self._pair_factors.items():
            partners = pair - t.sources
            if len(partners) != 1:
                continue
            (partner,) = partners
            stem = self.stems.get(partner)
            if stem is None:
                continue
            pair_mask = 0
            for bit, _factor in factors:
                pair_mask |= bit
            if not (t.queries & pair_mask):
                continue
            matches = self._shared_probe(stem, t, factors, pair_mask)
            self.stem_probes += 1
            out.extend(matches)
        return out

    def _shared_probe(self, stem: SteM, prober: Tuple,
                      factors: Sequence[TypingTuple[int, ColumnComparison]],
                      pair_mask: int) -> List[Tuple]:
        """Probe a shared SteM on behalf of every join query at once.

        Candidates come from the union of per-predicate index lookups;
        each candidate pair is materialised once, and the match's query
        bitmap keeps only the queries whose join factor holds.
        """
        seen_ids: Set[int] = set()
        matches: List[Tuple] = []
        for bit, factor in factors:
            if not (prober.queries & bit):
                continue
            for stored in stem.probe_stored(prober, [factor]):
                if stored.tid in seen_ids:
                    continue
                seen_ids.add(stored.tid)
                joined = prober.concat(stored)
                alive = joined.queries
                # Re-check every pair factor on the materialised match:
                # queries joining on a different column must not survive.
                for other_bit, other_factor in factors:
                    if alive & other_bit and not other_factor.matches(joined):
                        alive &= ~other_bit
                # Queries not joining this pair at all cannot use a
                # composite tuple that spans it.
                alive &= pair_mask
                if alive:
                    joined.queries = alive
                    matches.append(joined)
        return matches

    def _deliver(self, t: Tuple, delivered: List[Tuple]) -> None:
        eligible = t.queries & self._footprint_mask.get(t.sources, 0)
        if not eligible:
            return
        for query in list(self.queries.values()):
            if not (eligible & query.bit):
                continue
            if query.residual is ALWAYS_TRUE or query.residual.matches(t):
                query.deliver(t)
                delivered.append(t)

    def _mask(self, qids: Iterable[int]) -> int:
        mask = 0
        for qid in qids:
            mask |= 1 << qid
        return mask

    # -- introspection ---------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        return {
            "queries": len(self.queries),
            "tuples_in": self.tuples_in,
            "results_out": self.results_out,
            "filter_probes": self.filter_probes,
            "stem_probes": self.stem_probes,
            "grouped_filters": len(self.filters),
            "stems": {s: len(st) for s, st in self.stems.items()},
        }
