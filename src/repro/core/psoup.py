"""PSoup: streaming queries over streaming data (Section 3.2, [CF02]).

PSoup treats **data and queries symmetrically**: query processing is a
join between a stream of data tuples and a stream of query
specifications.

* New query -> inserted into the **Query SteM**, then *probes the Data
  SteM* (applies the new query to previously arrived data — historical
  queries).
* New data  -> inserted into the **Data SteM**, then *probes the Query
  SteM* (applies new data to standing queries — continuous queries).

Matches land in the **Results Structure**, continuously materialised.
When a (possibly long-disconnected) client *invokes* a query, its
time-window is imposed on the materialised results — no recomputation —
which is what makes intermittent retrieval cheap (experiment E5).

:class:`OnDemandPSoup` is the ablation baseline: identical API but no
materialisation; every invoke rescans the data window.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Deque, Dict, Iterable, List, Optional, Set

from repro.core.grouped_filter import GroupedFilter
from repro.core.tuples import Schema, Tuple
from repro.errors import QueryError
from repro.query.predicates import ALWAYS_TRUE, Predicate, decompose


class PSoupQuery:
    """A registered SELECT-FROM-WHERE specification plus its standing
    time window (results are retrieved over ``[now - window + 1, now]``)."""

    __slots__ = ("qid", "predicate", "window", "name", "residual",
                 "single_factors", "registered_at")

    def __init__(self, qid: int, predicate: Predicate, window: int,
                 name: str = "", registered_at: int = 0):
        if window < 1:
            raise QueryError("query window must be >= 1 time unit")
        decomposed = decompose(predicate)
        if decomposed.equijoins:
            raise QueryError(
                "this PSoup reproduction covers single-stream queries; "
                "join factors are not supported in the Query SteM")
        self.qid = qid
        self.predicate = predicate
        self.window = window
        self.name = name or f"psoup-q{qid}"
        self.single_factors = decomposed.single_variable
        self.residual = decomposed.residual_predicate()
        self.registered_at = registered_at

    def matches(self, t: Tuple) -> bool:
        return self.predicate.matches(t)

    def __repr__(self) -> str:
        return f"PSoupQuery({self.name}, w={self.window}, {self.predicate!r})"


class QuerySteM:
    """The index of standing queries — "a generalization of the notion
    of a grouped filter".

    Single-variable factors are indexed in per-attribute grouped
    filters; residual predicates are evaluated per surviving query.
    ``probe(t)`` returns the set of query ids satisfied by tuple ``t``.
    """

    def __init__(self) -> None:
        self._queries: Dict[int, PSoupQuery] = {}
        self._filters: Dict[str, GroupedFilter] = {}
        #: queries with residual (non-indexable) predicate parts.
        self._residual_qids: Set[int] = set()
        self.probes = 0

    def insert(self, query: PSoupQuery) -> None:
        self._queries[query.qid] = query
        for factor in query.single_factors:
            gf = self._filters.get(factor.column)
            if gf is None:
                gf = GroupedFilter(factor.column)
                self._filters[factor.column] = gf
            gf.add(factor, query.qid)
        if query.residual is not ALWAYS_TRUE:
            self._residual_qids.add(query.qid)

    def remove(self, qid: int) -> None:
        self._queries.pop(qid, None)
        for gf in self._filters.values():
            gf.remove_query(qid)
        self._residual_qids.discard(qid)

    def probe(self, t: Tuple) -> Set[int]:
        """Which standing queries does this data tuple satisfy?"""
        self.probes += 1
        alive = set(self._queries)
        for attr, gf in self._filters.items():
            registered = gf.registered_queries & alive
            if not registered:
                continue
            if not t.schema.has_column(attr):
                alive -= registered
                continue
            satisfied = gf.matching(t[attr])
            alive -= (registered - satisfied)
            if not alive:
                return alive
        for qid in list(alive & self._residual_qids):
            if not self._queries[qid].residual.matches(t):
                alive.discard(qid)
        return alive

    def get(self, qid: int) -> PSoupQuery:
        try:
            return self._queries[qid]
        except KeyError:
            raise QueryError(f"unknown PSoup query id {qid}") from None

    def __len__(self) -> int:
        return len(self._queries)

    def max_window(self) -> int:
        return max((q.window for q in self._queries.values()), default=0)


class DataSteM:
    """The repository of previously-arrived data tuples, timestamp
    ordered, with head eviction once no query window can reach back."""

    def __init__(self) -> None:
        self._tuples: Deque[Tuple] = deque()
        self.inserted = 0
        self.evicted = 0

    def insert(self, t: Tuple) -> None:
        if t.timestamp is None:
            raise QueryError("PSoup data tuples need timestamps")
        if self._tuples and t.timestamp < self._tuples[-1].timestamp:
            raise QueryError("PSoup data must arrive in timestamp order")
        self._tuples.append(t)
        self.inserted += 1

    def probe(self, query: PSoupQuery) -> List[Tuple]:
        """Apply a *new* query to old data (historical execution)."""
        return [t for t in self._tuples if query.matches(t)]

    def scan(self, left: int, right: int) -> List[Tuple]:
        return [t for t in self._tuples if left <= t.timestamp <= right]

    def evict_before(self, timestamp: int) -> int:
        n = 0
        while self._tuples and self._tuples[0].timestamp < timestamp:
            self._tuples.popleft()
            n += 1
        self.evicted += n
        return n

    def __len__(self) -> int:
        return len(self._tuples)


class ResultsStructure:
    """Continuously materialised per-query results.

    For each query we keep the matching tuples in timestamp order;
    ``retrieve`` imposes the window, and ``prune`` drops entries that
    have aged out of every possible future window.
    """

    def __init__(self) -> None:
        self._results: Dict[int, Deque[Tuple]] = {}
        self.appends = 0

    def register(self, qid: int, initial: Iterable[Tuple] = ()) -> None:
        bucket: Deque[Tuple] = deque(initial)
        self.appends += len(bucket)
        self._results[qid] = bucket

    def unregister(self, qid: int) -> None:
        self._results.pop(qid, None)

    def append(self, qid: int, t: Tuple) -> None:
        self._results[qid].append(t)
        self.appends += 1

    def retrieve(self, qid: int, left: int, right: int) -> List[Tuple]:
        bucket = self._results.get(qid)
        if bucket is None:
            raise QueryError(f"no results registered for query {qid}")
        return [t for t in bucket if left <= t.timestamp <= right]

    def prune(self, qid: int, before: int) -> int:
        bucket = self._results.get(qid)
        if bucket is None:
            return 0
        n = 0
        while bucket and bucket[0].timestamp < before:
            bucket.popleft()
            n += 1
        return n

    def size(self, qid: int) -> int:
        return len(self._results.get(qid, ()))

    def total_size(self) -> int:
        return sum(len(b) for b in self._results.values())


class PSoup:
    """The engine of Figure 3: the symmetric data/query join.

    ``separate computation from delivery``: results are computed as data
    and queries arrive; :meth:`invoke` merely windows the materialised
    answer — supporting disconnected clients.
    """

    def __init__(self, schema: Schema):
        self.schema = schema
        self.query_stem = QuerySteM()
        self.data_stem = DataSteM()
        self.results = ResultsStructure()
        self._next_qid = itertools.count()
        self._clock = 0          # latest timestamp seen

    # -- the two symmetric arrival paths ---------------------------------
    def register_query(self, predicate: Predicate, window: int,
                       name: str = "") -> PSoupQuery:
        """New query: build into the Query SteM, then probe the Data
        SteM so the answer covers *previously arrived* data."""
        query = PSoupQuery(next(self._next_qid), predicate, window,
                           name=name, registered_at=self._clock)
        self.query_stem.insert(query)
        historical = self.data_stem.probe(query)
        self.results.register(query.qid, historical)
        return query

    def push(self, *values: Any, timestamp: Optional[int] = None) -> Set[int]:
        """New data: build into the Data SteM, then probe the Query SteM.

        Returns the ids of queries the tuple satisfied.
        """
        ts = timestamp if timestamp is not None else self._clock + 1
        t = self.schema.make(*values, timestamp=ts)
        return self.push_tuple(t)

    def push_tuple(self, t: Tuple) -> Set[int]:
        self.data_stem.insert(t)
        self._clock = max(self._clock, t.timestamp)
        matched = self.query_stem.probe(t)
        for qid in matched:
            self.results.append(qid, t)
        return matched

    # -- delivery ------------------------------------------------------------
    def invoke(self, query: PSoupQuery,
               now: Optional[int] = None) -> List[Tuple]:
        """Impose the query's window on the materialised results —
        the cheap retrieval path for intermittently connected clients."""
        at = self._clock if now is None else now
        return self.results.retrieve(query.qid, at - query.window + 1, at)

    def remove_query(self, query: PSoupQuery) -> None:
        self.query_stem.remove(query.qid)
        self.results.unregister(query.qid)

    def vacuum(self) -> Dict[str, int]:
        """Reclaim data and results that no window can reach any more."""
        horizon = self._clock - self.query_stem.max_window() + 1
        dropped_data = self.data_stem.evict_before(horizon)
        dropped_results = 0
        for qid in list(self.results._results):
            query = self.query_stem.get(qid)
            dropped_results += self.results.prune(
                qid, self._clock - query.window + 1)
        return {"data": dropped_data, "results": dropped_results}

    @property
    def clock(self) -> int:
        return self._clock


class OnDemandPSoup:
    """The no-materialisation baseline: push only stores; every invoke
    rescans the window and re-evaluates the predicate (what a system
    without the Results Structure must do)."""

    def __init__(self, schema: Schema):
        self.schema = schema
        self.data_stem = DataSteM()
        self._queries: Dict[int, PSoupQuery] = {}
        self._next_qid = itertools.count()
        self._clock = 0
        self.scan_cost = 0       # tuples examined across all invokes

    def register_query(self, predicate: Predicate, window: int,
                       name: str = "") -> PSoupQuery:
        query = PSoupQuery(next(self._next_qid), predicate, window,
                           name=name, registered_at=self._clock)
        self._queries[query.qid] = query
        return query

    def push(self, *values: Any, timestamp: Optional[int] = None) -> None:
        ts = timestamp if timestamp is not None else self._clock + 1
        t = self.schema.make(*values, timestamp=ts)
        self.data_stem.insert(t)
        self._clock = max(self._clock, t.timestamp)

    def invoke(self, query: PSoupQuery,
               now: Optional[int] = None) -> List[Tuple]:
        at = self._clock if now is None else now
        window = self.data_stem.scan(at - query.window + 1, at)
        self.scan_cost += len(window)
        return [t for t in window if query.matches(t)]

    @property
    def clock(self) -> int:
        return self._clock
