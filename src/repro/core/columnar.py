"""Columnar value storage: numpy-backed columns with a pure-python fallback.

The vectorized pipeline (PR 2) made batches first-class but still ran
python-object kernels over per-column *lists*.  This module supplies the
raw-speed layer underneath :class:`repro.core.tuples.TupleBatch`: each
column may be promoted to a read-only numpy array so predicate kernels,
selection-vector combination, and partitioning become C-speed array ops.

numpy is strictly optional (the ``perf`` extra in ``pyproject.toml``).
Everything here degrades to pure-python lists when it is absent, when the
``REPRO_NO_NUMPY=1`` environment variable forces the fallback (the CI leg
that proves the engine runs without it), or when a column's values are not
*promotable* — the engine is dynamically typed, so columns may mix types
or contain ``None``.

Promotion rules (see DESIGN.md §11):

* a column promotes only when every value is of a homogeneous numeric
  shape — all ``bool``, all ``int``, all ``float``, ``int``/``float``/
  ``bool`` mixes (promoted to the widest dtype), or all ``str``;
* any ``None``, any non-scalar, or a ``str``/numeric mix keeps the column
  a list and kernels take the per-element path;
* promoted arrays are **read-only** (``writeable=False``): columns are
  shared buffers once slices alias them, and the lineage-aliasing audit
  relies on numpy itself refusing writes.

All numpy usage in the engine goes through the helpers here; no other
module imports numpy directly.  That keeps the gate airtight and lets
:func:`numpy_disabled` flip the whole engine to the fallback in-process
for parity tests and benchmarks.
"""

from __future__ import annotations

import contextlib
import os
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

__all__ = [
    "ColumnStore", "as_array", "bisect_batch", "compare_array",
    "distinct_codes", "ewma_update", "have_numpy", "is_array", "mask_all",
    "mask_and", "mask_compress", "mask_count", "mask_invert", "mask_or",
    "mask_to_list", "numpy_disabled",
]

# The env gate is read once at import: REPRO_NO_NUMPY=1 forces the
# pure-python fallback even when numpy is importable, which is how the
# tier-1 "no numpy" leg runs without uninstalling anything.
if os.environ.get("REPRO_NO_NUMPY", "") not in ("", "0"):
    np = None
else:
    try:
        import numpy as np
    except ImportError:        # pragma: no cover - exercised via env gate
        np = None


def have_numpy() -> bool:
    """True when the array fast paths are active."""
    return np is not None


@contextlib.contextmanager
def numpy_disabled() -> Iterator[None]:
    """Force the pure-python fallback for the duration of the block.

    Used by parity tests and benchmarks to run the identical workload
    through both implementations in one process.  Only code that goes
    through this module's helpers is switched (which is all of it, by
    the module contract above).
    """
    global np
    saved, np = np, None
    try:
        yield
    finally:
        np = saved


def is_array(values: Any) -> bool:
    """True when ``values`` is a live numpy array (fallback-aware)."""
    return np is not None and isinstance(values, np.ndarray)


# Types a column may hold and still promote to an array.  ``str`` only
# promotes alone (a str/numeric mix would build an object array, which
# buys nothing over a list).
_NUMERIC = {bool, int, float}
_PROMOTABLE = _NUMERIC | {str}


def as_array(values: Any) -> Optional[Any]:
    """Promote a value list to a read-only 1-D array, or ``None``.

    ``None`` means "keep the list": numpy is off, the column is empty,
    holds ``None``/mixed/non-scalar values, or the conversion itself
    failed (e.g. ints beyond int64 raise ``OverflowError``).
    """
    if np is None:
        return None
    if is_array(values):
        return values
    if not isinstance(values, list) or not values:
        return None
    kinds = set(map(type, values))
    if not kinds <= _PROMOTABLE:
        return None
    if str in kinds and len(kinds) > 1:
        return None
    try:
        arr = np.asarray(values)
    except (ValueError, TypeError, OverflowError):
        return None
    if arr.ndim != 1 or arr.dtype == object:
        return None
    arr.setflags(write=False)
    return arr


class ColumnStore:
    """Per-column value storage for one :class:`TupleBatch`.

    Each column is held EITHER as a python list or as a read-only numpy
    array; promotion is lazy (first :meth:`array` call) and cached, and
    the list view of an array column is likewise cached (one C-speed
    ``tolist`` pass) so row materialization hands out python scalars,
    never numpy scalars.
    """

    __slots__ = ("cols", "_arrays", "_lists")

    def __init__(self, cols: Sequence[Any]):
        # Each entry: list | ndarray.
        self.cols: List[Any] = list(cols)
        self._arrays: Optional[List[Any]] = None   # per-column promo cache
        self._lists: Optional[List[Any]] = None    # per-column tolist cache

    def n_rows(self) -> int:
        if not self.cols:
            return 0
        return len(self.cols[0])

    def n_cols(self) -> int:
        return len(self.cols)

    # -- views -------------------------------------------------------------
    def array(self, i: int) -> Optional[Any]:
        """Column ``i`` as a read-only array, or ``None`` if unpromotable."""
        col = self.cols[i]
        if is_array(col):
            return col
        if self._arrays is None:
            self._arrays = [None] * len(self.cols)
        arr = self._arrays[i]
        if arr is None:
            arr = as_array(col)
            self._arrays[i] = arr if arr is not None else False
        return arr if arr is not False else None

    def values(self, i: int) -> List[Any]:
        """Column ``i`` as a python list (python scalars guaranteed)."""
        col = self.cols[i]
        if not is_array(col):
            return col
        if self._lists is None:
            self._lists = [None] * len(self.cols)
        lst = self._lists[i]
        if lst is None:
            lst = col.tolist()
            self._lists[i] = lst
        return lst

    def as_lists(self) -> List[List[Any]]:
        """All columns as python lists (the legacy ``batch.columns`` view)."""
        return [self.values(i) for i in range(len(self.cols))]

    def row(self, j: int) -> "tuple[Any, ...]":
        """Row ``j`` as a tuple of python scalars (no numpy leakage)."""
        out: List[Any] = []
        for col in self.cols:
            v = col[j]
            out.append(v.item() if is_array(col) else v)
        return tuple(out)

    # -- subsetting --------------------------------------------------------
    def _column_for_take(self, i: int) -> Any:
        """Prefer an already-promoted array for subsetting (array fancy
        indexing beats a python loop); never force a fresh promotion."""
        col = self.cols[i]
        if is_array(col):
            return col
        if self._arrays is not None:
            arr = self._arrays[i]
            if arr is not None and arr is not False:
                return arr
        return col

    def take(self, indexes: Sequence[int]) -> "ColumnStore":
        """Rows at ``indexes`` (in order) as a new store."""
        idx_arr = None
        out: List[Any] = []
        for i in range(len(self.cols)):
            col = self._column_for_take(i)
            if is_array(col):
                if idx_arr is None:
                    idx_arr = np.asarray(indexes, dtype=np.intp)
                sub = col[idx_arr]
                sub.setflags(write=False)
                out.append(sub)
            else:
                out.append([col[j] for j in indexes])
        return ColumnStore(out)

    def select(self, mask: Any) -> "ColumnStore":
        """Rows where ``mask`` is true, preserving order."""
        if is_array(mask):
            out: List[Any] = []
            idx_arr = None
            for i in range(len(self.cols)):
                col = self._column_for_take(i)
                if is_array(col):
                    sub = col[mask]
                    sub.setflags(write=False)
                    out.append(sub)
                else:
                    if idx_arr is None:
                        idx_arr = np.nonzero(mask)[0].tolist()
                    out.append([col[j] for j in idx_arr])
            return ColumnStore(out)
        return self.take([i for i, ok in enumerate(mask) if ok])

    def slice(self, start: int, stop: int) -> "ColumnStore":
        """Contiguous row range; zero-copy (a view) for array columns."""
        out: List[Any] = []
        for i in range(len(self.cols)):
            col = self._column_for_take(i)
            # Array slices are views over the parent buffer (zero-copy)
            # and inherit writeable=False, so aliasing stays read-only.
            out.append(col[start:stop])
        return ColumnStore(out)


# -- kernels ---------------------------------------------------------------

def _precision_unsafe(left: Any, right: Any) -> bool:
    """True when numpy would compare through float64 where python
    compares exactly — int64↔float casts lose precision past 2**53, so
    those comparisons stay on the per-element path."""
    kind = left.dtype.kind
    if is_array(right):
        rk = right.dtype.kind
        return (kind in "iu" and rk == "f") or (kind == "f" and rk in "iu")
    if isinstance(right, bool):
        return False
    if isinstance(right, float):
        return kind in "iu"
    if isinstance(right, int):
        return kind == "f" and abs(right) > 2 ** 53
    return False


def compare_array(fn: Callable[[Any, Any], Any], left: Any,
                  right: Any) -> Optional[Any]:
    """Apply comparison ``fn`` elementwise, returning a bool array.

    ``None`` means the array path cannot answer (cross-type comparison
    raised, numpy collapsed the comparison to a scalar, or exact python
    semantics would be lost) and the caller must fall back to the
    per-element kernel.
    """
    if _precision_unsafe(left, right):
        return None
    try:
        out = fn(left, right)
    except TypeError:
        return None
    if not is_array(out) or out.dtype != np.bool_ or out.shape != left.shape:
        return None
    return out


def distinct_codes(arr: Any) -> "tuple[List[Any], List[int]]":
    """One-pass key factorization: (distinct python values, per-row codes).

    ``codes[i]`` indexes into the distinct list; the SteM probe path hashes
    each *distinct* key once instead of once per row.
    """
    uniq, inverse = np.unique(arr, return_inverse=True)
    return uniq.tolist(), inverse.tolist()


def bisect_batch(thresholds: Sequence[Any], values: Any,
                 side: str) -> Optional[List[int]]:
    """Vectorized ``bisect``: positions of ``values`` in sorted
    ``thresholds`` (``side`` as in ``numpy.searchsorted``).

    Returns ``None`` when either side is unpromotable; cross-type
    comparisons raise ``TypeError`` exactly like python ``bisect`` does.
    """
    if np is None:
        return None
    th = thresholds if is_array(thresholds) else as_array(list(thresholds))
    if th is None:
        return None
    vals = values if is_array(values) else as_array(list(values))
    if vals is None:
        return None
    if th.dtype.kind in "OU" and vals.dtype.kind not in "OU":
        raise TypeError("'<' not supported between str thresholds and "
                        f"{vals.dtype} probe values")
    if vals.dtype.kind in "OU" and th.dtype.kind not in "OU":
        raise TypeError("'<' not supported between numeric thresholds and "
                        "str probe values")
    # int64↔float64 searchsorted casts through float and can misplace
    # huge ints; python bisect compares exactly, so stay on it.
    if (th.dtype.kind in "biu") != (vals.dtype.kind in "biu"):
        return None
    return np.searchsorted(th, vals, side=side).tolist()


# -- selection-vector helpers ----------------------------------------------
# Masks flowing through the engine are EITHER python bool lists (fallback,
# per-element kernels) or numpy bool arrays (ufunc kernels); these helpers
# are the only places that need to care which.

def mask_count(mask: Any) -> int:
    if is_array(mask):
        return int(mask.sum())
    return sum(1 for ok in mask if ok)


def mask_all(mask: Any) -> bool:
    if is_array(mask):
        return bool(mask.all())
    return all(mask)


def mask_and(a: Any, b: Any) -> Any:
    if is_array(a) and is_array(b):
        return a & b
    return [x and y for x, y in zip(mask_to_list(a), mask_to_list(b))]


def mask_or(a: Any, b: Any) -> Any:
    if is_array(a) and is_array(b):
        return a | b
    return [x or y for x, y in zip(mask_to_list(a), mask_to_list(b))]


def mask_invert(mask: Any) -> Any:
    if is_array(mask):
        return ~mask
    return [not ok for ok in mask]


def mask_to_list(mask: Any) -> List[bool]:
    if is_array(mask):
        return mask.tolist()
    return list(mask)


def mask_compress(alive: Any, mask: Any) -> Any:
    """The values of ``mask`` at positions where ``alive`` is true, in
    order — the outcome sequence a later chain stage observes."""
    if is_array(alive) and is_array(mask):
        return mask[alive]
    alive_l = mask_to_list(alive)
    return [m for m, a in zip(mask_to_list(mask), alive_l) if a]


#: Decay-weight vectors for the closed-form EWMA, keyed by (alpha, n).
#: Batch sizes repeat (the batching directive fixes them), so each
#: (alpha, n) pair is computed once; bounded by wholesale clearing.
_DECAY_CACHE: Dict[Any, Any] = {}


def _decay_weights(alpha: float, n: int) -> Any:
    key = (alpha, n)
    w = _DECAY_CACHE.get(key)
    if w is None:
        if len(_DECAY_CACHE) >= 512:
            _DECAY_CACHE.clear()
        w = (1.0 - alpha) ** np.arange(n - 1, -1, -1, dtype=np.float64)
        w.setflags(write=False)
        _DECAY_CACHE[key] = w
    return w


def ewma_update(ewma: float, alpha: float, outcomes: Any) -> float:
    """Fold a boolean outcome sequence into an EWMA.

    Closed form of the sequential update
    ``e <- e + alpha * (b - e)`` over the whole sequence:
    ``e_n = (1-a)^n e_0 + a * sum_j (1-a)^(n-1-j) b_j``.
    Used by the frozen fused-filter path so selectivity estimates — the
    thaw signal — stay live without a per-row python loop.
    """
    n = len(outcomes)
    if n == 0 or alpha <= 0.0:
        return ewma
    if is_array(outcomes):
        decay = _decay_weights(alpha, n)
        acc = float(np.dot(outcomes, decay))
        return decay[0] * (1.0 - alpha) * ewma + alpha * acc
    for b in outcomes:
        ewma += alpha * ((1.0 if b else 0.0) - ewma)
    return ewma
