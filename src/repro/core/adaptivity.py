"""Adapting adaptivity, automatically (Section 4.3).

"These adjustments constitute a pair of knobs that can be turned as
observations of rate of change and relative selectivity vary: when
change is slow, or selectivity constant, many tuples should be routed
to large, fixed sequences of operators; when change is fast, or
selectivities vary wildly, small groups of tuples should be routed to
individually scheduled operators. ... implementing them requires ...
policies for automatically turning knobs based on rates of change and
relative selectivity."

:class:`AdaptivityController` is that policy: it samples each eddy
operator's windowed selectivity every ``check_every`` tuples, measures
the drift since the previous sample, and turns the batching knob —
multiplicatively shrinking the batch (more adaptivity) when drift
exceeds ``drift_threshold``, and growing it (less overhead) while
things stay quiet.  The controller mutates the eddy's
:class:`~repro.core.routing.BatchingDirective` in place and invalidates
the cached routing decisions, so the change takes effect immediately.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple as TypingTuple

from repro.core.eddy import Eddy
from repro.errors import PlanError
from repro.monitor.stats import sample_drift


class AdaptivityController:
    """Automatic batching-knob control for one eddy."""

    #: grow only when drift falls below threshold * GROW_HYSTERESIS,
    #: so estimator noise near the threshold cannot make the knob
    #: oscillate every check interval.
    GROW_HYSTERESIS = 0.5

    def __init__(self, eddy: Eddy, min_batch: int = 1,
                 max_batch: int = 512, check_every: int = 200,
                 drift_threshold: float = 0.15,
                 grow_factor: int = 4):
        if min_batch < 1 or max_batch < min_batch:
            raise PlanError("need 1 <= min_batch <= max_batch")
        if grow_factor < 2:
            raise PlanError("grow_factor must be >= 2")
        self.eddy = eddy
        self.min_batch = min_batch
        self.max_batch = max_batch
        self.check_every = check_every
        self.drift_threshold = drift_threshold
        self.grow_factor = grow_factor
        self._since_check = 0
        self._last_sample: Optional[Dict[str, float]] = None
        self.adjustments: List[TypingTuple[int, int, float]] = []
        self.checks = 0

    # -- the control loop ---------------------------------------------------
    def after_tuple(self, n: int = 1) -> Optional[int]:
        """Tell the controller ``n`` more tuples were processed; returns
        the new batch size when an adjustment fires, else None."""
        self._since_check += n
        if self._since_check < self.check_every:
            return None
        self._since_check = 0
        return self._check()

    def _check(self) -> Optional[int]:
        self.checks += 1
        sample = self.eddy.selectivity_sample()
        drift = self._drift(sample)
        self._last_sample = sample
        if drift is None:
            return None
        freezer = getattr(self.eddy, "freezer", None)
        if freezer is not None:
            # The controller already computed the §4.3 drift signal on
            # its own cadence — push it to the freezer rather than
            # letting frozen classes wait for their next check window.
            freezer.note_drift(drift)
        current = self.eddy.batching.batch_size
        if drift > self.drift_threshold:
            target = max(self.min_batch, current // self.grow_factor)
        elif drift < self.drift_threshold * self.GROW_HYSTERESIS:
            target = min(self.max_batch, current * self.grow_factor)
        else:
            return None          # dead band: hold the current setting
        if target == current:
            return None
        self._apply(target)
        self.adjustments.append((self.eddy.tuples_routed, target, drift))
        return target

    def _drift(self, sample: Dict[str, float]) -> Optional[float]:
        if self._last_sample is None:
            return None
        return sample_drift(self._last_sample, sample)

    def _apply(self, batch_size: int) -> None:
        # apply_quantum preserves the other directive knobs and drops
        # cached routing decisions sized for the old batch.
        self.eddy.apply_quantum(batch_size)

    # -- introspection ------------------------------------------------------
    @property
    def current_batch(self) -> int:
        return self.eddy.batching.batch_size

    def stats(self) -> Dict[str, object]:
        return {
            "checks": self.checks,
            "adjustments": len(self.adjustments),
            "current_batch": self.current_batch,
            "history": list(self.adjustments),
        }


class ControlledEddy:
    """Convenience wrapper: an eddy plus its controller, driven like a
    plain eddy (``process`` keeps the controller informed)."""

    def __init__(self, eddy: Eddy, **controller_kwargs):
        self.eddy = eddy
        self.controller = AdaptivityController(eddy, **controller_kwargs)

    def process(self, t, port: int = 0):
        out = self.eddy.process(t, port)
        self.controller.after_tuple()
        return out

    def __getattr__(self, name):
        return getattr(self.eddy, name)
