"""The TelegraphCQ server (Figure 5): FrontEnd + Executor + Wrapper glue.

This is the facade a client uses.  The paper's three processes become
three cooperating components over in-memory queues standing in for the
shared-memory segments:

* the **FrontEnd** role — :meth:`TelegraphCQServer.submit`: parse,
  analyse, optimize into an adaptive plan, and place it on the query
  plan queue (QPQueue) for the executor to fold in dynamically;
* the **Executor** role — :class:`repro.core.executor.Executor` hosting
  Execution Objects by query footprint class; continuous selection/join
  queries run in the shared CACQ engine of their class, windowed queries
  run as incremental Dispatch Units;
* the **Wrapper** role — :meth:`push` / :class:`repro.ingress` feed
  streams; every arrival is materialised in the stream's historical
  store (so new queries can see old data) and routed to the live CQs.

Results land in per-client output queues drained through
:class:`Cursor` objects; a :class:`ClientProxy` multiplexes many cursors
onto one connection, spilling into extra proxies beyond the cursor cap —
matching the proxy service on the right of Figure 5.
"""

from __future__ import annotations

import itertools
import warnings
from typing import (Any, Callable, Dict, List, Optional, Sequence, Tuple as TypingTuple, Union)

from repro.analysis.plan_check import AdmissionContext, check_compiled
from repro.analysis.report import Diagnostic, PlanCheckWarning
from repro.core.cacq import CACQEngine, ContinuousQuery
from repro.core.executor import DispatchUnit, Executor
from repro.core.tuples import Schema, Tuple
from repro.core.windows import HistoricalStore
from repro.errors import ExecutionError, PlanCheckError, QueryError
from repro.fjords.queues import EMPTY, PushQueue
from repro.ingress.ingress import IngressPoint
from repro.monitor.telemetry import get_registry
import repro.monitor.tracing as tracing
from repro.sched.protocol import StepResult
from repro.query.ast import QuerySpec
from repro.query.catalog import Catalog
from repro.query.optimizer import CompiledQuery, WindowedPlan, compile_query
from repro.query.parser import parse
from repro.query.predicates import Predicate


class Cursor:
    """A client's handle on one submitted query.

    Result retrieval is unified across query kinds:

    * **pull** — :meth:`fetch` drains buffered results for *any* cursor
      (windowed cursors yield their window rows flattened, in window
      order);
    * **push** — pass ``on_result`` at :meth:`TelegraphCQServer.submit`
      time and results are delivered as they are produced;
    * **sequence of sets** — windowed cursors additionally expose
      :meth:`fetch_windows`, returning ``(loop_value, rows)`` pairs.

    :meth:`fetch` / :meth:`fetchall` / iteration are the *only* read
    surface — :class:`repro.client.NetworkCursor` exposes the identical
    one, so code written against a local cursor runs unchanged against
    the service.  Cursors are context managers; :meth:`close` (alias
    :meth:`cancel`) stops the underlying continuous query or windowed
    plan.
    """

    def __init__(self, cursor_id: int, kind: str, client: str,
                 on_result: Optional[Callable[[Tuple], None]] = None,
                 server: Optional["TelegraphCQServer"] = None):
        self.cursor_id = cursor_id
        self.kind = kind
        self.client = client
        self.on_result = on_result
        self._out: PushQueue = PushQueue(name=f"out[{cursor_id}]")
        self._windows: List[TypingTuple[int, List[Tuple]]] = []
        self.closed = False
        self.delivered = 0
        #: set for continuous cursors: the underlying CACQ query.
        self.continuous_query: Optional[ContinuousQuery] = None
        self.compiled: Optional[CompiledQuery] = None
        #: plan-verifier findings recorded at admission (warnings, or
        #: everything when admitted with allow_unsafe=True).
        self.diagnostics: List["Diagnostic"] = []
        self._server = server
        #: set for windowed cursors: the incremental execution state.
        self._windowed_state: Optional["_WindowedQueryState"] = None

    # -- engine side -------------------------------------------------------
    def _deliver(self, t: Tuple) -> None:
        self.delivered += 1
        tr = t.trace
        if tr is not None:
            query = f"cursor{self.cursor_id}"
            tr.hop("egress", query)
            tracing.TRACER.finish(tr, query)
        if self.on_result is not None:
            self.on_result(t)
        else:
            self._out.push(t)

    def _deliver_window(self, t: int, rows: List[Tuple]) -> None:
        self.delivered += len(rows)
        if tracing.TRACER.active:
            query = f"cursor{self.cursor_id}"
            for row in rows:
                tracing.finish_item(row, query)
        self._windows.append((t, rows))
        if self.on_result is not None:
            for row in rows:
                self.on_result(row)

    # -- client side -------------------------------------------------------
    def fetch(self, limit: int = 0) -> List[Tuple]:
        """Drain buffered results (all of them when ``limit`` is 0).

        Works for every cursor kind: windowed cursors flatten their
        computed windows into row order, so a client that does not care
        about window boundaries never needs :meth:`fetch_windows`.
        """
        if self.kind == "windowed":
            for _t, rows in self.fetch_windows():
                for row in rows:
                    self._out.push(row)
        out: List[Tuple] = []
        while not limit or len(out) < limit:
            item = self._out.pop()
            if item is EMPTY:
                break
            out.append(item)
        return out

    def fetchall(self) -> List[Tuple]:
        """Every buffered result (``fetch()`` with no limit)."""
        return self.fetch()

    def __iter__(self):
        """Drain buffered results in arrival order, chunked fetches
        under the hood; stops when the buffer is empty."""
        while True:
            rows = self.fetch(limit=256)
            if not rows:
                return
            for row in rows:
                yield row

    def fetch_windows(self) -> List[TypingTuple[int, List[Tuple]]]:
        """The windowed sequence-of-sets computed so far."""
        out, self._windows = self._windows, []
        return out

    def pending(self) -> int:
        return len(self._out) + sum(len(r) for _t, r in self._windows)

    def explain(self, analyze: bool = False) -> Dict[str, Any]:
        """The live plan behind this cursor (see
        :meth:`TelegraphCQServer.explain`)."""
        if self._server is None:
            raise QueryError(
                f"cursor #{self.cursor_id} is not attached to a server")
        return self._server.explain(self, analyze=analyze)

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Stop the query behind this cursor.  Idempotent.

        Continuous cursors are cancelled out of their shared engine;
        windowed cursors stop evaluating further windows.  Already
        buffered results remain fetchable.
        """
        if self.closed:
            return
        if self._windowed_state is not None:
            self._windowed_state.done = True
        if self.continuous_query is not None and self._server is not None:
            self._server.cancel(self)
        self.closed = True

    def cancel(self) -> None:
        """Alias of :meth:`close` (the client-facing verb)."""
        self.close()

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"Cursor(#{self.cursor_id}, {self.kind}, {self.client})"


class ClientProxy:
    """Multiplexes cursors for one client connection (Figure 5's proxy).

    A real connection caps open cursors; beyond ``max_cursors`` the
    engine transparently opens another proxy, as the paper describes.
    """

    def __init__(self, client: str, max_cursors: int = 16):
        self.client = client
        self.max_cursors = max_cursors
        self.cursors: List[Cursor] = []

    @property
    def has_room(self) -> bool:
        return len(self.cursors) < self.max_cursors


class _WindowedQueryState:
    """Incremental execution state for one windowed query DU.

    Satisfies the :class:`repro.sched.protocol.Schedulable` protocol
    (``run_once`` / ``ready`` / ``finished``) so the executor can host
    it directly inside a scheduler-controlled EO.
    """

    def __init__(self, plan: WindowedPlan, spec_iter, cursor: Cursor,
                 server: "TelegraphCQServer"):
        self.name = f"windowed-{cursor.cursor_id}"
        self.plan = plan
        self.iterator = spec_iter
        self.cursor = cursor
        self.server = server
        self.pending: Optional[TypingTuple[int, Dict[str, TypingTuple[int, int]]]] = None
        self.done = False
        self.windows_evaluated = 0

    @property
    def finished(self) -> bool:
        return self.done

    def ready(self) -> bool:
        """Cheap hint: the next pending window (if known) is evaluable
        only once every stream clock passed its right edge."""
        if self.done:
            return False
        if self.pending is None:
            return True                # must poll the spec iterator
        return self._ready(self.pending[1])

    def run_once(self, quantum: Optional[int] = None) -> "StepResult":
        worked = self.step(16 if quantum is None else quantum)
        if self.done:
            return StepResult(worked, finished=True)
        return StepResult.BUSY if worked else StepResult.IDLE

    def step(self, batch: int) -> bool:
        """Evaluate up to ``batch`` ready windows."""
        worked = False
        for _ in range(max(1, batch)):
            if self.done:
                return worked
            if self.pending is None:
                try:
                    instance = next(self.iterator)
                except StopIteration:
                    self.done = True
                    return worked
                self.pending = (instance.t, instance.bounds)
            t, bounds = self.pending
            if not self._ready(bounds):
                return worked
            window_data: Dict[str, List[Tuple]] = {}
            for binding, (lo, hi) in bounds.items():
                window_data[binding] = self.server._window_tuples(
                    self.plan.compiled, binding, lo, hi)
            # Inputs without a WindowIs are static tables (§4.1.1): the
            # whole table participates in every window.
            for binding in getattr(self.plan, "static_bindings", ()):
                obj = dict(self.plan.compiled.bindings)[binding]
                window_data[binding] = self.server._rebind(
                    self.server.tables.get(obj, []), binding, obj)
            rows = self.plan.evaluate(window_data)
            self.cursor._deliver_window(t, rows)
            self.windows_evaluated += 1
            self.pending = None
            worked = True
        return worked

    def _ready(self, bounds: Dict[str, TypingTuple[int, int]]) -> bool:
        """A window fires once no more data can arrive inside it: every
        stream's clock is strictly past the right end, or closed."""
        for binding, (_lo, hi) in bounds.items():
            obj = self.plan.compiled and dict(
                self.plan.compiled.bindings)[binding]
            if self.server._stream_closed.get(obj, False):
                continue
            clock = self.server._stream_clock.get(obj)
            if clock is None or clock <= hi:
                return False
        return True


class TelegraphCQServer:
    """The whole system, one object.

    The server is a context manager: ``with TelegraphCQServer() as srv``
    closes every stream and cursor on exit.  Live operational metrics
    for the whole process are returned by :meth:`telemetry`.
    """

    def __init__(self, max_cursors_per_proxy: int = 16):
        self.catalog = Catalog()
        self.executor = Executor()
        self.stores: Dict[str, HistoricalStore] = {}
        #: per-stream :class:`~repro.ingress.ingress.IngressPoint` doors
        #: (store + engine fan-out); composable with upstream points.
        self.ingress: Dict[str, IngressPoint] = {}
        self.tables: Dict[str, List[Tuple]] = {}
        self._stream_clock: Dict[str, int] = {}
        self._stream_closed: Dict[str, bool] = {}
        #: one shared CQ engine per footprint-class root.
        self._cacq: Dict[str, CACQEngine] = {}
        #: remembers (streams, predicate, cursor) so class merges can
        #: rebuild a combined engine.
        self._cq_registry: List[TypingTuple[TypingTuple[str, ...], Predicate,
                                            Cursor]] = []
        self._proxies: Dict[str, List[ClientProxy]] = {}
        self.max_cursors_per_proxy = max_cursors_per_proxy
        self._next_cursor = itertools.count(1)
        self.tuples_ingested = 0
        self._ingress_by_stream: Dict[str, int] = {}
        self.closed = False
        self._telemetry = get_registry()
        self._telemetry.register_collector(self._publish_telemetry)

    # -- DDL ----------------------------------------------------------------
    def create_stream(self, schema: Schema) -> None:
        self.catalog.create_stream(schema)
        self.stores[schema.name] = HistoricalStore(schema.name)
        self._stream_closed[schema.name] = False
        stream = schema.name
        self.ingress[stream] = IngressPoint(
            f"server:{stream}", store=self.stores[stream],
            deliver=lambda t, s=stream: self._fanout(s, t))

    def create_table(self, schema: Schema,
                     rows: Sequence[Sequence[Any]] = ()) -> None:
        self.catalog.create_table(schema)
        self.tables[schema.name] = [
            schema.make(*row, timestamp=i) for i, row in enumerate(rows)]

    # -- ingress (the Wrapper role) ------------------------------------------------
    def push(self, stream: str, *values: Any,
             timestamp: Optional[int] = None) -> None:
        entry = self.catalog.lookup(stream)
        if not entry.is_stream:
            raise QueryError(f"{stream!r} is a table; use create_table rows")
        ts = timestamp if timestamp is not None else \
            self._stream_clock.get(stream, 0) + 1
        t = entry.schema.make(*values, timestamp=ts)
        self.push_tuple(stream, t)

    def push_tuple(self, stream: str, t: Tuple) -> None:
        """One tuple through the stream's :class:`IngressPoint`: trace
        attachment + store materialisation there, clock advance and
        engine fan-out in :meth:`_fanout`."""
        if self._stream_closed.get(stream):
            raise ExecutionError(f"stream {stream!r} is closed")
        self.tuples_ingested += 1
        self._ingress_by_stream[stream] = \
            self._ingress_by_stream.get(stream, 0) + 1
        with self._telemetry.trace("ingress", stream=stream):
            self.ingress[stream].admit_one(t)

    def _fanout(self, stream: str, t: Tuple) -> None:
        self._stream_clock[stream] = t.timestamp
        for engine in self._engines_reading(stream):
            clone = Tuple(t.schema, t.values, timestamp=t.timestamp)
            if t.trace is not None:
                clone.trace = t.trace
            engine.push_tuple(stream, clone)

    def _engines_reading(self, stream: str) -> List[CACQEngine]:
        return [engine for engine in self._cacq.values()
                if stream in engine.schemas
                and engine._source_mask.get(stream, 0)]

    def close_stream(self, stream: str) -> None:
        """Declare end-of-stream: remaining windows become evaluable."""
        self.catalog.lookup(stream)
        self._stream_closed[stream] = True

    # -- the FrontEnd role ---------------------------------------------------------
    def submit(self, query: Union[str, QuerySpec], client: str = "default",
               on_result: Optional[Callable[[Tuple], None]] = None,
               env: Optional[Dict[str, int]] = None,
               allow_unsafe: bool = False) -> Cursor:
        """Parse, optimize, verify, and fold the query into the running
        system.

        ``env`` binds free window variables; ``ST`` defaults to the
        current global clock + 1 (the query's start time).

        The static plan verifier (:mod:`repro.analysis.plan_check`) runs
        before admission: errors (``TCQ1xx``) raise
        :class:`~repro.errors.PlanCheckError`, warnings (``TCQ2xx``) are
        issued as :class:`~repro.analysis.report.PlanCheckWarning` and
        kept on ``cursor.diagnostics``.  ``allow_unsafe=True`` admits
        the query anyway (diagnostics still reported via the warning).
        """
        spec = parse(query) if isinstance(query, str) else query
        compiled = compile_query(spec, self.catalog)
        report = check_compiled(compiled, self.catalog,
                                self._admission_context())
        if report.errors and not allow_unsafe:
            raise PlanCheckError(
                "; ".join(f"{d.code}: {d.message}" for d in report.errors),
                diagnostics=report.diagnostics)
        for diag in (report.diagnostics if allow_unsafe
                     else report.warnings):
            warnings.warn(f"{diag.code}: {diag.message}", PlanCheckWarning,
                          stacklevel=2)
        cursor = self._open_cursor(compiled.kind, client, on_result)
        cursor.compiled = compiled
        cursor.diagnostics = list(report.diagnostics)
        if compiled.kind == "snapshot":
            self._run_snapshot(compiled, cursor)
        elif compiled.kind == "continuous":
            self._register_continuous(compiled, cursor)
        else:
            self._register_windowed(compiled, cursor, env)
        return cursor

    def _admission_context(self) -> AdmissionContext:
        """Snapshot of the shared-engine landscape for the plan
        verifier's cross-query checks (TCQ204/TCQ205)."""
        classes = [frozenset(engine.schemas) for engine in
                   self._cacq.values()]
        counts = [len(engine.queries) for engine in self._cacq.values()]
        return AdmissionContext(footprint_classes=classes,
                                class_query_counts=counts)

    def _open_cursor(self, kind: str, client: str,
                     on_result: Optional[Callable[[Tuple], None]]) -> Cursor:
        cursor = Cursor(next(self._next_cursor), kind, client, on_result,
                        server=self)
        proxies = self._proxies.setdefault(client, [])
        proxy = next((p for p in proxies if p.has_room), None)
        if proxy is None:
            proxy = ClientProxy(client, self.max_cursors_per_proxy)
            proxies.append(proxy)
        proxy.cursors.append(cursor)
        return cursor

    # -- snapshot path (Figure 4) ---------------------------------------------------
    def _run_snapshot(self, compiled: CompiledQuery, cursor: Cursor) -> None:
        window_data: Dict[str, List[Tuple]] = {}
        for binding, obj in compiled.bindings:
            data = self.tables.get(obj, [])
            window_data[binding] = self._rebind(data, binding, obj)
        real_plan = _make_snapshot_plan(compiled, self.catalog)
        for row in real_plan.evaluate(window_data):
            cursor._deliver(row)
        cursor.closed = True

    # -- continuous path (CACQ) -------------------------------------------------------
    def _register_continuous(self, compiled: CompiledQuery,
                             cursor: Cursor) -> None:
        streams = tuple(b for b, _o in compiled.bindings)
        for binding, obj in compiled.bindings:
            if binding != obj:
                raise QueryError(
                    "continuous self-join aliases are not supported; "
                    "use a windowed for-loop query instead")
            if not self.catalog.lookup(obj).is_stream:
                raise QueryError(
                    "continuous queries must range over streams only")
        root = self.executor.footprints.class_of(streams)
        engine = self._engine_for_class(root, streams)
        cq = engine.add_query(list(streams), compiled.predicate,
                              callback=cursor._deliver,
                              name=f"cursor{cursor.cursor_id}")
        cursor.continuous_query = cq
        self._cq_registry.append((streams, compiled.predicate, cursor))
        # Ensure the class has an executor presence so stats show it.
        self.executor.eo_for(streams)

    def _engine_for_class(self, root: str,
                          streams: Sequence[str]) -> CACQEngine:
        """The class's shared engine; merges engines when a new query
        bridges previously-disjoint classes."""
        # Engines whose streams now belong to this root (class_of is a
        # pure lookup here since those streams were unioned before).
        absorbed = [
            r for r, eng in list(self._cacq.items())
            if self.executor.footprints.class_of(list(eng.schemas)) == root]
        if len(absorbed) > 1:
            engine = self._rebuild_merged_engine(root, absorbed)
        elif len(absorbed) == 1:
            engine = self._cacq.pop(absorbed[0])
            self._cacq[root] = engine
        else:
            engine = CACQEngine()
            self._cacq[root] = engine
        for s in streams:
            if s not in engine.schemas:
                engine.register_stream(self.catalog.lookup(s).schema)
        return engine

    def _rebuild_merged_engine(self, root: str,
                               absorbed: List[str]) -> CACQEngine:
        merged = CACQEngine()
        old_engines = [self._cacq.pop(r) for r in absorbed]
        seen_streams = set()
        for old in old_engines:
            for name, schema in old.schemas.items():
                if name not in seen_streams:
                    merged.register_stream(schema)
                    seen_streams.add(name)
        for streams, predicate, cursor in self._cq_registry:
            if cursor.continuous_query is None:
                continue
            if any(s in seen_streams for s in streams):
                for s in streams:
                    if s not in merged.schemas:
                        merged.register_stream(
                            self.catalog.lookup(s).schema)
                        seen_streams.add(s)
                cursor.continuous_query = merged.add_query(
                    list(streams), predicate, callback=cursor._deliver,
                    name=f"cursor{cursor.cursor_id}")
        self._cacq[root] = merged
        return merged

    def cancel(self, cursor: Cursor) -> None:
        """Remove a continuous query from the running system."""
        if cursor.continuous_query is None:
            cursor.closed = True
            return
        for engine in self._cacq.values():
            if cursor.continuous_query.qid in engine.queries:
                engine.remove_query(cursor.continuous_query)
                break
        self._cq_registry = [(s, p, c) for (s, p, c) in self._cq_registry
                             if c is not cursor]
        cursor.continuous_query = None
        cursor.closed = True

    # -- windowed path ------------------------------------------------------------------
    def _register_windowed(self, compiled: CompiledQuery, cursor: Cursor,
                           env: Optional[Dict[str, int]]) -> None:
        plan = compiled.window_plan
        assert plan is not None
        bound_env = dict(env or {})
        if "ST" not in bound_env:
            bound_env["ST"] = self._global_clock() + 1
        spec = plan.build_spec(bound_env)
        state = _WindowedQueryState(plan, iter(spec), cursor, self)
        cursor._windowed_state = state
        du = DispatchUnit(
            state.name, DispatchUnit.MODE_SINGLE_EDDY,
            step=state.run_once, is_finished=lambda: state.done,
            ready=state.ready, query_class=cursor.client)
        self.executor.enqueue_plan(compiled.footprint, du)

    def _window_tuples(self, compiled: CompiledQuery, binding: str,
                       lo: int, hi: int) -> List[Tuple]:
        obj = dict(compiled.bindings)[binding]
        if obj in self.stores:
            raw = self.stores[obj].scan(lo, hi)
        else:
            raw = [t for t in self.tables.get(obj, ())
                   if t.timestamp is not None and lo <= t.timestamp <= hi]
        return self._rebind(raw, binding, obj)

    def _rebind(self, tuples: List[Tuple], binding: str,
                obj: str) -> List[Tuple]:
        if binding == obj:
            return list(tuples)
        alias_schema = self.catalog.alias_schema(obj, binding)
        return [Tuple(alias_schema, t.values, timestamp=t.timestamp)
                for t in tuples]

    def _global_clock(self) -> int:
        return max(self._stream_clock.values(), default=0)

    # -- driving the executor -------------------------------------------------------
    def step(self, batch: int = 16) -> StepResult:
        """One scheduling round; returns the executor's
        :class:`~repro.sched.protocol.StepResult` (truthy iff progress
        was made, exactly like the historical bool)."""
        return self.executor.step(batch)

    def run_until_quiescent(self, max_steps: int = 100_000) -> int:
        return self.executor.run_until_quiescent(max_steps)

    # -- lifecycle ---------------------------------------------------------------
    def open_cursors(self) -> List[Cursor]:
        return [c for proxies in self._proxies.values()
                for proxy in proxies for c in proxy.cursors if not c.closed]

    def close(self) -> None:
        """Shut the server down: close every open cursor and declare
        end-of-stream on every stream.  Idempotent."""
        if self.closed:
            return
        for cursor in self.open_cursors():
            cursor.close()
        for stream in list(self._stream_closed):
            self._stream_closed[stream] = True
        self.closed = True

    def __enter__(self) -> "TelegraphCQServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- telemetry ---------------------------------------------------------------
    def telemetry(self):
        """A typed :class:`~repro.monitor.telemetry.TelemetrySnapshot`
        of every live metric series in the process — the eddy, SteM,
        executor, fjord, storage, QoS, Flux, and server subsystems."""
        return self._telemetry.snapshot()

    def _publish_telemetry(self) -> None:
        reg = self._telemetry
        ingress = reg.counter("tcq_server_ingress_tuples_total",
                              "Tuples ingested per stream", ("stream",),
                              collected=True)
        for stream, count in self._ingress_by_stream.items():
            ingress.labels(stream).set_total(count)
        store_size = reg.gauge("tcq_server_store_size",
                               "Tuples retained per historical store",
                               ("stream",), collected=True)
        for stream, store in self.stores.items():
            store_size.labels(stream).set(len(store))
        cursors = self.open_cursors()
        reg.gauge("tcq_server_open_cursors",
                  "Cursors open across all clients",
                  collected=True).set(len(cursors))
        reg.counter("tcq_server_egress_tuples_total",
                    "Results delivered through cursors",
                    collected=True).set_total(
            sum(c.delivered for proxies in self._proxies.values()
                for proxy in proxies for c in proxy.cursors))
        reg.gauge("tcq_server_continuous_queries",
                  "Standing continuous queries", collected=True).set(
            sum(len(e.queries) for e in self._cacq.values()))
        reg.gauge("tcq_server_proxies", "Client proxies open",
                  collected=True).set(
            sum(len(p) for p in self._proxies.values()))

    # -- introspection -----------------------------------------------------------
    def find_cursor(self, cursor_id: int) -> Cursor:
        for proxies in self._proxies.values():
            for proxy in proxies:
                for c in proxy.cursors:
                    if c.cursor_id == cursor_id:
                        return c
        raise QueryError(f"no cursor #{cursor_id}")

    def explain(self, cursor: Union[int, Cursor],
                analyze: bool = False) -> Dict[str, Any]:
        """Reconstruct the de-facto plan behind a cursor.

        Continuous cursors report the shared CACQ route: the engine's
        hardwired order (grouped filters, home SteM build, partner
        probes) carries one ordering per ingress stream weighted by that
        stream's share of arrivals, with per-operator selectivities from
        the shared structures' own observations.  ``analyze`` adds
        ingress→egress latency percentiles from the sampled tuple
        traces.  Render the dict with
        :func:`repro.monitor.introspect.render_explain`.
        """
        c = cursor if isinstance(cursor, Cursor) \
            else self.find_cursor(int(cursor))
        if c.kind == "continuous":
            return self._explain_continuous(c, analyze)
        return self._explain_plan(c, analyze)

    def _explain_continuous(self, cursor: Cursor,
                            analyze: bool) -> Dict[str, Any]:
        query = f"cursor{cursor.cursor_id}"
        cq = cursor.continuous_query
        engine = None
        if cq is not None:
            engine = next((e for e in self._cacq.values()
                           if cq.qid in e.queries), None)
        if cq is None or engine is None:
            return {"kind": "continuous", "target": query,
                    "operators": [], "orderings": [],
                    "ordering_source": "",
                    "notes": ["query is closed; no live plan"]}
        footprint = cq.footprint

        operators: List[Dict[str, Any]] = []
        filter_names: Dict[str, List[str]] = {s: [] for s in footprint}
        for (s, attr), gf in sorted(engine.filters.items()):
            if s not in footprint or not (gf.registered_mask & cq.bit):
                continue
            name = f"gf[{s}.{attr}]"
            filter_names[s].append(name)
            operators.append({
                "name": name, "kind": "GroupedFilter",
                "visits": gf.seen, "passed": gf.passed_count,
                "selectivity": gf.observed_selectivity(),
                "cost": float(gf.probe_cost_estimate()),
            })
        partners: Dict[str, List[str]] = {s: [] for s in footprint}
        probed: List[str] = []
        for pair, factors in engine._pair_factors.items():
            if not any(bit & cq.bit for bit, _f in factors):
                continue
            for s in pair:
                for partner in sorted(pair - {s}):
                    if partner not in partners[s]:
                        partners[s].append(partner)
                    if partner not in probed:
                        probed.append(partner)
        for s in sorted(probed):
            stem = engine.stems.get(s)
            if stem is None:
                continue
            operators.append({
                "name": f"stem[{s}]", "kind": "SteM",
                "visits": stem.probes, "passed": stem.probe_hits,
                "selectivity": stem.observed_hit_rate(),
                "cost": float(max(1, len(stem).bit_length())),
            })

        ingress = {s: self._ingress_by_stream.get(s, 0) for s in footprint}
        total = sum(ingress.values())
        orderings: List[Dict[str, Any]] = []
        for s in sorted(footprint, key=lambda s: (-ingress[s], s)):
            order = list(filter_names[s])
            if s in engine.stems:
                order.append(f"build[{s}]")
            order.extend(f"probe[stem[{p}]]" for p in sorted(partners[s]))
            share = ingress[s] / total if total else 1.0 / len(footprint)
            orderings.append({"order": order, "frequency": share,
                              "count": ingress[s]})

        report: Dict[str, Any] = {
            "kind": "continuous",
            "target": query,
            "telemetry_id": engine._telemetry_id,
            "policy": "CACQ shared route (hardwired: grouped filters -> "
                      "home build -> deliver -> partner probes)",
            "streams": {s: ingress[s] for s in sorted(footprint)},
            "queries_sharing": len(engine.queries),
            "operators": operators,
            "orderings": orderings,
            "ordering_source": "cacq-route (frequency = ingress share)",
            "notes": [f"predicate: {cq.predicate!r}"],
        }
        if analyze:
            report["latency"] = self._trace_latency(query)
        return report

    def _explain_plan(self, cursor: Cursor, analyze: bool) -> Dict[str, Any]:
        query = f"cursor{cursor.cursor_id}"
        notes: List[str] = []
        compiled = cursor.compiled
        if compiled is not None:
            notes.append("bindings: " + ", ".join(
                f"{b}={o}" for b, o in compiled.bindings))
            notes.append(f"predicate: {compiled.predicate!r}")
        state = cursor._windowed_state
        if state is not None:
            notes.append(f"windows evaluated: {state.windows_evaluated}"
                         f" (done={state.done})")
        report: Dict[str, Any] = {
            "kind": cursor.kind, "target": query,
            "operators": [], "orderings": [], "ordering_source": "",
            "notes": notes,
        }
        if analyze:
            report["latency"] = self._trace_latency(query)
        return report

    def _trace_latency(self, query: str) -> Dict[str, float]:
        lats = [tr.latency() for tr in tracing.TRACER.recent()
                if tr.query == query]
        if lats:
            pct = tracing.exact_percentiles(lats)
            return {"p50": pct[0.5], "p95": pct[0.95], "p99": pct[0.99],
                    "count": float(len(lats))}
        # No raw traces in the ring: fall back to the published
        # histogram watermarks (coarser, but survives ring eviction).
        return tracing.latency_by_query().get(
            query, {"p50": 0.0, "p95": 0.0, "p99": 0.0, "count": 0.0})

    def stats(self) -> Dict[str, Any]:
        return {
            "ingested": self.tuples_ingested,
            "streams": {s: len(store) for s, store in self.stores.items()},
            "continuous_queries": sum(
                len(e.queries) for e in self._cacq.values()),
            "cacq_engines": len(self._cacq),
            "executor": self.executor.stats(),
            "proxies": {client: len(proxies)
                        for client, proxies in self._proxies.items()},
        }


def _make_snapshot_plan(compiled: CompiledQuery,
                        catalog: Catalog) -> WindowedPlan:
    """A windowed plan with a degenerate all-of-the-table window; reuses
    the filters/join/aggregate pipeline for snapshot queries."""
    from repro.query.ast import ForLoopClause, NumberExpr, WindowClause
    clause = ForLoopClause(
        "t", NumberExpr(0), (NumberExpr(0), "==", NumberExpr(0)),
        ("=", NumberExpr(-1)),
        tuple(WindowClause(b, NumberExpr(0), NumberExpr(1 << 60))
              for b, _o in compiled.bindings))
    return WindowedPlan(compiled, clause, catalog)
