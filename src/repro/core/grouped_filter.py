"""Grouped filters: shared indexes over query predicates (Section 3.1).

"A grouped filter is an index for single-variable boolean factors over
the same attribute."  When a CACQ query arrives it is decomposed into
boolean factors; each single-variable factor ``attr op constant`` is
inserted into the grouped filter for ``attr``.  When a data tuple is
routed through the filter, one probe determines *which queries'* factors
it satisfies — O(log n + answers) instead of evaluating every query's
predicate separately (experiment E4 measures exactly this).

Index layout per attribute:

* equality      — hash map value -> query ids;
* inequality    — hash map value -> query ids (matches are "everyone
  except the ids registered at this exact value");
* ``>`` / ``>=`` — a sorted array of thresholds: the factors satisfied by
  tuple value v are a *prefix* (all thresholds below v), found by
  bisection;
* ``<`` / ``<=`` — symmetric, a suffix.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Any, Dict, List, Optional, Set, Tuple as TypingTuple

from repro.core import columnar
from repro.errors import QueryError
from repro.query.predicates import Comparison


class GroupedFilter:
    """One grouped filter indexes every registered single-variable factor
    over a single attribute.

    A query may register several factors on the same attribute (e.g.
    ``50 < price AND price < 60``); the query satisfies the filter only
    if *all* its factors match, which the probe handles by counting
    satisfied factors per query.
    """

    def __init__(self, attribute: str):
        self.attribute = attribute
        # op -> structure; see module docstring.
        self._eq: Dict[Any, Set[int]] = {}
        self._ne: Dict[Any, Set[int]] = {}
        #: distinct ``!=`` values registered per query; a probe credits
        #: all of them except (at most) the one equal to the value.
        self._ne_count: Dict[int, int] = {}
        self._gt: List[TypingTuple[Any, int]] = []   # sorted (threshold, qid)
        self._ge: List[TypingTuple[Any, int]] = []
        self._lt: List[TypingTuple[Any, int]] = []
        self._le: List[TypingTuple[Any, int]] = []
        #: factors registered per query on this attribute.
        self._factor_count: Dict[int, int] = {}
        #: bitmap of registered query ids, maintained incrementally so
        #: the CACQ hot path never rebuilds it.
        self.registered_mask = 0
        #: cached threshold-value arrays per range bank, rebuilt lazily
        #: after any registration change.  ``None`` = stale; ``False`` =
        #: some bank is unpromotable, stay on python bisect.
        self._bank_arrays: Any = None
        self.probes = 0
        #: pass/drop observation (EXPLAIN selectivity): a "pass" is a
        #: probed tuple that stayed alive for at least one query.
        self.seen = 0
        self.passed_count = 0

    # -- registration --------------------------------------------------------
    def add(self, factor: Comparison, query_id: int) -> None:
        """Insert one boolean factor belonging to ``query_id``."""
        if factor.column != self.attribute:
            raise QueryError(
                f"factor on {factor.column!r} inserted into grouped filter "
                f"for {self.attribute!r}")
        op, value = factor.op, factor.value
        if op == "==":
            ids = self._eq.setdefault(value, set())
            if query_id in ids:   # duplicate factor: logically idempotent
                return
            ids.add(query_id)
        elif op == "!=":
            ids = self._ne.setdefault(value, set())
            if query_id in ids:
                return
            ids.add(query_id)
            self._ne_count[query_id] = self._ne_count.get(query_id, 0) + 1
        elif op == ">":
            insort(self._gt, (value, query_id))
        elif op == ">=":
            insort(self._ge, (value, query_id))
        elif op == "<":
            insort(self._lt, (value, query_id))
        elif op == "<=":
            insort(self._le, (value, query_id))
        else:  # pragma: no cover - Comparison already validates ops
            raise QueryError(f"unsupported operator {op!r}")
        self._factor_count[query_id] = self._factor_count.get(query_id, 0) + 1
        self.registered_mask |= 1 << query_id
        self._bank_arrays = None

    def remove_query(self, query_id: int) -> None:
        """Drop every factor registered by ``query_id`` (query removal
        "on the fly", Section 1.1's shared-processing robustness)."""
        if query_id not in self._factor_count:
            return
        for mapping in (self._eq, self._ne):
            empty = []
            for value, ids in mapping.items():
                ids.discard(query_id)
                if not ids:
                    empty.append(value)
            for value in empty:
                del mapping[value]
        self._ne_count.pop(query_id, None)
        for attr in ("_gt", "_ge", "_lt", "_le"):
            entries = getattr(self, attr)
            setattr(self, attr,
                    [(v, q) for (v, q) in entries if q != query_id])
        del self._factor_count[query_id]
        self.registered_mask &= ~(1 << query_id)
        self._bank_arrays = None

    @property
    def registered_queries(self) -> Set[int]:
        return set(self._factor_count)

    def __len__(self) -> int:
        """Total number of registered factors."""
        return sum(self._factor_count.values())

    # -- probing -------------------------------------------------------------
    def matching(self, value: Any) -> Set[int]:
        """The ids of queries *all* of whose factors on this attribute
        are satisfied by ``value``."""
        self.probes += 1
        satisfied: Dict[int, int] = {}

        def credit(qid: int) -> None:
            satisfied[qid] = satisfied.get(qid, 0) + 1

        for qid in self._eq.get(value, ()):
            credit(qid)
        if self._ne_count:
            excluded = self._ne.get(value, set())
            for qid, n_ne in self._ne_count.items():
                held = n_ne - (1 if qid in excluded else 0)
                if held:
                    satisfied[qid] = satisfied.get(qid, 0) + held
        # value > threshold  <=>  threshold < value: prefix strictly below.
        idx = bisect_left(self._gt, (value, -1))
        for i in range(idx):
            credit(self._gt[i][1])
        # value >= threshold: prefix up to and including value.
        idx = bisect_right(self._ge, (value, float("inf")))
        for i in range(idx):
            credit(self._ge[i][1])
        # value < threshold: suffix strictly above.
        idx = bisect_right(self._lt, (value, float("inf")))
        for i in range(idx, len(self._lt)):
            credit(self._lt[i][1])
        # value <= threshold: suffix from value.
        idx = bisect_left(self._le, (value, -1))
        for i in range(idx, len(self._le)):
            credit(self._le[i][1])

        return {qid for qid, n in satisfied.items()
                if n == self._factor_count[qid]}

    def _threshold_arrays(self) -> Any:
        """Promoted threshold-value arrays per range bank, cached until
        registration changes.  ``False`` when some non-empty bank holds
        unpromotable values (stay on python bisect)."""
        if self._bank_arrays is None:
            arrs: Dict[str, Any] = {}
            for attr in ("_gt", "_ge", "_lt", "_le"):
                entries = getattr(self, attr)
                if not entries:
                    arrs[attr] = None
                    continue
                arr = columnar.as_array([v for v, _ in entries])
                if arr is None:
                    self._bank_arrays = False
                    return False
                arrs[attr] = arr
            self._bank_arrays = arrs
        return self._bank_arrays

    def _batch_positions(self, values: List[Any]) -> \
            Optional[Dict[str, Optional[List[int]]]]:
        """One searchsorted call per range bank for the whole probe
        column, or ``None`` to fall back to per-value bisect.

        Positions agree with the bisect sentinels used below:
        ``bisect_left(bank, (v, -1))`` == searchsorted 'left' on the
        threshold values (qids are >= 0 > -1), and
        ``bisect_right(bank, (v, inf))`` == searchsorted 'right'.
        """
        if not columnar.have_numpy():
            return None
        arrs = self._threshold_arrays()
        if arrs is False:
            return None
        out: Dict[str, Optional[List[int]]] = {}
        try:
            for attr, side in (("_gt", "left"), ("_ge", "right"),
                               ("_lt", "right"), ("_le", "left")):
                arr = arrs[attr]
                if arr is None:
                    out[attr] = None
                    continue
                pos = columnar.bisect_batch(arr, values, side)
                if pos is None:
                    return None
                out[attr] = pos
        except TypeError:
            # Cross-type probe: the bisect loop raises at the offending
            # row, preserving per-value semantics.
            return None
        return out

    def matching_batch(self, values: List[Any]) -> List[Set[int]]:
        """Vectorized probe: one call for a whole column of values.

        Index structures, dict accessors, and the per-op emptiness
        checks are hoisted out of the loop, and with numpy the four
        range banks are bisected for ALL probe values in one
        searchsorted call each.  Semantically equal to
        ``[self.matching(v) for v in values]`` (including the
        ``probes`` counter).
        """
        self.probes += len(values)
        eq_get = self._eq.get
        ne_get = self._ne.get
        ne_count = self._ne_count
        gt, ge, lt, le = self._gt, self._ge, self._lt, self._le
        factor_count = self._factor_count
        inf = float("inf")
        positions = self._batch_positions(values) \
            if (gt or ge or lt or le) else None
        gt_pos = positions["_gt"] if positions else None
        ge_pos = positions["_ge"] if positions else None
        lt_pos = positions["_lt"] if positions else None
        le_pos = positions["_le"] if positions else None
        out: List[Set[int]] = []
        for j, value in enumerate(values):
            satisfied: Dict[int, int] = {}
            for qid in eq_get(value, ()):
                satisfied[qid] = satisfied.get(qid, 0) + 1
            if ne_count:
                excluded = ne_get(value, set())
                for qid, n_ne in ne_count.items():
                    held = n_ne - (1 if qid in excluded else 0)
                    if held:
                        satisfied[qid] = satisfied.get(qid, 0) + held
            if gt:
                end = gt_pos[j] if gt_pos is not None \
                    else bisect_left(gt, (value, -1))
                for i in range(end):
                    qid = gt[i][1]
                    satisfied[qid] = satisfied.get(qid, 0) + 1
            if ge:
                end = ge_pos[j] if ge_pos is not None \
                    else bisect_right(ge, (value, inf))
                for i in range(end):
                    qid = ge[i][1]
                    satisfied[qid] = satisfied.get(qid, 0) + 1
            if lt:
                start = lt_pos[j] if lt_pos is not None \
                    else bisect_right(lt, (value, inf))
                for i in range(start, len(lt)):
                    qid = lt[i][1]
                    satisfied[qid] = satisfied.get(qid, 0) + 1
            if le:
                start = le_pos[j] if le_pos is not None \
                    else bisect_left(le, (value, -1))
                for i in range(start, len(le)):
                    qid = le[i][1]
                    satisfied[qid] = satisfied.get(qid, 0) + 1
            out.append({qid for qid, n in satisfied.items()
                        if n == factor_count[qid]})
        return out

    # -- introspection -------------------------------------------------------
    def observe(self, passed: bool, n: int = 1) -> None:
        """Record the outcome of ``n`` probes for the selectivity
        estimate (the CACQ route calls this right after the kill)."""
        self.seen += n
        if passed:
            self.passed_count += n

    def observed_selectivity(self) -> float:
        """Fraction of probed tuples that survived this filter for at
        least one registered query; 1.0 until any observation exists
        (optimistic prior, matching EddyOperator's convention)."""
        if not self.seen:
            return 1.0
        return self.passed_count / self.seen

    def probe_cost_estimate(self) -> int:
        """Rough comparisons per probe — logarithmic in factors plus
        matches; the naive alternative is len(self)."""
        import math
        n = len(self)
        return max(1, int(math.log2(n + 1)))


class NaiveFilterBank:
    """The unshared baseline: evaluate every query's factors one by one.

    Used by experiment E4 and the per-query baseline engine to quantify
    what grouped filters buy.
    """

    def __init__(self, attribute: str):
        self.attribute = attribute
        self._factors: Dict[int, List[Comparison]] = {}
        self.probes = 0
        self.comparisons = 0

    def add(self, factor: Comparison, query_id: int) -> None:
        if factor.column != self.attribute:
            raise QueryError(
                f"factor on {factor.column!r} inserted into bank for "
                f"{self.attribute!r}")
        self._factors.setdefault(query_id, []).append(factor)

    def remove_query(self, query_id: int) -> None:
        self._factors.pop(query_id, None)

    @property
    def registered_queries(self) -> Set[int]:
        return set(self._factors)

    def __len__(self) -> int:
        return sum(len(f) for f in self._factors.values())

    def matching(self, value: Any) -> Set[int]:
        self.probes += 1
        out: Set[int] = set()
        for qid, factors in self._factors.items():
            ok = True
            for f in factors:
                self.comparisons += 1
                if not f.evaluate(value):
                    ok = False
                    break
            if ok:
                out.add(qid)
        return out
