"""Window semantics for TelegraphCQ queries (Section 4.1).

TelegraphCQ declares the *sequence of windows* a query runs over with a
for-loop construct::

    for(t = initial; continue_condition(t); change(t)) {
        WindowIs(StreamA, left_end(t), right_end(t));
        ...
    }

For every value of the loop variable ``t`` the query executes over the
set of tuples inside each stream's window, and the client receives the
output as a *sequence of sets*, one per loop iteration.  This module
provides:

* :class:`WindowIs` — one stream's ``(left_end(t), right_end(t))``;
* :class:`ForLoopSpec` — the loop itself, iterable over
  :class:`WindowInstance` objects; constructors for the paper's query
  classes (snapshot, landmark, sliding/hopping, backward-moving, and
  band-join windows);
* :class:`HistoricalStore` — an ordered per-stream tuple log supporting
  efficient timestamp range scans (the "scanner driven by window
  descriptors" of Section 4.2.3);
* :class:`WindowedQueryRunner` — executes an arbitrary per-window
  evaluation function over the loop, yielding the sequence of sets.

Timestamps here are *logical* (tuple sequence numbers) by default, which
the paper notes makes window memory requirements knowable a priori;
physical-time streams work identically as long as tuples arrive in
timestamp order.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import (Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple as TypingTuple)

from repro.core.tuples import Tuple
from repro.errors import QueryError
from repro.monitor import telemetry


class _HistoryTotals:
    """Process-wide counters over every HistoricalStore (stores are
    per-stream and per-server; the totals outlive them all)."""

    __slots__ = ("appends", "scans", "tuples_scanned", "truncated")

    def __init__(self) -> None:
        self.appends = 0
        self.scans = 0
        self.tuples_scanned = 0
        self.truncated = 0


HISTORY_TOTALS = _HistoryTotals()


def _collect_history_telemetry(reg: "telemetry.MetricRegistry") -> None:
    reg.counter("tcq_storage_history_appends_total",
                "Tuples appended to historical stores").set_total(
        HISTORY_TOTALS.appends)
    reg.counter("tcq_storage_history_scans_total",
                "Window range scans over historical stores").set_total(
        HISTORY_TOTALS.scans)
    reg.counter("tcq_storage_history_tuples_scanned_total",
                "Tuples returned by historical range scans").set_total(
        HISTORY_TOTALS.tuples_scanned)
    reg.counter("tcq_storage_history_truncated_total",
                "Tuples discarded by store truncation").set_total(
        HISTORY_TOTALS.truncated)


telemetry.register_global_collector(_collect_history_telemetry)


class WindowIs:
    """``WindowIs(stream, left_end(t), right_end(t))`` — both ends are
    functions of the loop variable and both are inclusive, matching the
    paper's examples."""

    __slots__ = ("stream", "left_end", "right_end")

    def __init__(self, stream: str,
                 left_end: Callable[[int], int],
                 right_end: Callable[[int], int]):
        self.stream = stream
        self.left_end = left_end
        self.right_end = right_end

    def bounds(self, t: int) -> TypingTuple[int, int]:
        return self.left_end(t), self.right_end(t)

    def __repr__(self) -> str:
        return f"WindowIs({self.stream})"


class WindowInstance:
    """One iteration of the for-loop: the loop value and each stream's
    inclusive window bounds."""

    __slots__ = ("t", "bounds")

    def __init__(self, t: int, bounds: Dict[str, TypingTuple[int, int]]):
        self.t = t
        self.bounds = bounds

    def bounds_for(self, stream: str) -> TypingTuple[int, int]:
        try:
            return self.bounds[stream]
        except KeyError:
            raise QueryError(
                f"no WindowIs declared for stream {stream!r}") from None

    def __repr__(self) -> str:
        return f"WindowInstance(t={self.t}, {self.bounds})"


class ForLoopSpec:
    """The paper's low-level window mechanism.

    ``initial`` seeds the loop variable, ``condition`` keeps it running,
    ``change`` advances it, and ``windows`` holds one :class:`WindowIs`
    per stream.  Iterating the spec yields :class:`WindowInstance`s.

    ``max_iterations`` is a safety net for specs whose condition never
    fails (continuous standing queries): iteration stops there rather
    than spinning forever, and streaming executors re-enter where they
    left off.
    """

    def __init__(self, initial: int, condition: Callable[[int], bool],
                 change: Callable[[int], int],
                 windows: Sequence[WindowIs],
                 max_iterations: int = 1_000_000):
        if not windows:
            raise QueryError("a for-loop needs at least one WindowIs")
        seen = set()
        for w in windows:
            if w.stream in seen:
                raise QueryError(
                    f"duplicate WindowIs for stream {w.stream!r}")
            seen.add(w.stream)
        self.initial = initial
        self.condition = condition
        self.change = change
        self.windows = list(windows)
        self.max_iterations = max_iterations

    def __iter__(self) -> Iterator[WindowInstance]:
        t = self.initial
        iterations = 0
        while self.condition(t) and iterations < self.max_iterations:
            yield WindowInstance(
                t, {w.stream: w.bounds(t) for w in self.windows})
            t = self.change(t)
            iterations += 1

    def streams(self) -> List[str]:
        return [w.stream for w in self.windows]

    # -- constructors for the paper's window classes -------------------------

    @classmethod
    def snapshot(cls, stream: str, left: int, right: int) -> "ForLoopSpec":
        """Execute exactly once over one fixed window (paper example 1:
        ``for(; t==0; t=-1) WindowIs(S, 1, 5)``)."""
        return cls(initial=0, condition=lambda t: t == 0,
                   change=lambda t: -1,
                   windows=[WindowIs(stream, lambda t: left,
                                     lambda t: right)])

    @classmethod
    def landmark(cls, stream: str, anchor: int, start: int, stop: int,
                 step: int = 1) -> "ForLoopSpec":
        """Fixed left end at ``anchor``, right end sweeping ``start`` to
        ``stop`` inclusive (paper example 2)."""
        return cls(initial=start, condition=lambda t: t <= stop,
                   change=lambda t: t + step,
                   windows=[WindowIs(stream, lambda t: anchor,
                                     lambda t: t)])

    @classmethod
    def sliding(cls, stream: str, width: int, start: int, stop: int,
                hop: int = 1) -> "ForLoopSpec":
        """Both ends move forward together; ``hop`` > 1 gives the paper's
        hopping window (example 3 is width 5, hop 5)."""
        if width < 1:
            raise QueryError("window width must be >= 1")
        return cls(initial=start, condition=lambda t: t < stop,
                   change=lambda t: t + hop,
                   windows=[WindowIs(stream, lambda t: t - width + 1,
                                     lambda t: t)])

    @classmethod
    def backward(cls, stream: str, width: int, start: int, stop: int,
                 hop: int = 1) -> "ForLoopSpec":
        """Windows moving in the reverse-timestamp direction — the
        "browsing system" of Section 4.1.1 where a user walks backwards
        through history from the present."""
        return cls(initial=start, condition=lambda t: t >= stop,
                   change=lambda t: t - hop,
                   windows=[WindowIs(stream, lambda t: t - width + 1,
                                     lambda t: t)])

    @classmethod
    def band(cls, streams: Sequence[str], width: int, start: int,
             stop: int, hop: int = 1) -> "ForLoopSpec":
        """The temporal band-join shape (paper example 4): the same
        sliding window applied to several streams in unison."""
        return cls(initial=start, condition=lambda t: t < stop,
                   change=lambda t: t + hop,
                   windows=[WindowIs(s, lambda t: t - width + 1,
                                     lambda t: t) for s in streams])

    def hop_exceeds_width(self) -> bool:
        """True when consecutive windows leave gaps — Section 4.1.2 notes
        such queries never see parts of the stream.  Only meaningful for
        arithmetic-progression loops; detected by sampling."""
        it = iter(self)
        try:
            first = next(it)
            second = next(it)
        except StopIteration:
            return False
        for stream in self.streams():
            lo1, hi1 = first.bounds_for(stream)
            lo2, _hi2 = second.bounds_for(stream)
            if lo2 > hi1 + 1:
                return True
        return False


class HistoricalStore:
    """An append-only, timestamp-ordered tuple log for one stream.

    Backs windows over "the portion of the stream that has already
    arrived".  Appends must be non-decreasing in timestamp; range scans
    bisect on timestamps, so a scan is O(log n + answer).
    """

    def __init__(self, stream: str):
        self.stream = stream
        self._tuples: List[Tuple] = []
        self._timestamps: List[int] = []

    def append(self, t: Tuple) -> None:
        if t.timestamp is None:
            raise QueryError(
                f"stream {self.stream!r}: windowed tuples need timestamps")
        if self._timestamps and t.timestamp < self._timestamps[-1]:
            raise QueryError(
                f"stream {self.stream!r}: out-of-order timestamp "
                f"{t.timestamp} after {self._timestamps[-1]}")
        self._tuples.append(t)
        self._timestamps.append(t.timestamp)
        HISTORY_TOTALS.appends += 1

    def extend(self, tuples: Iterable[Tuple]) -> None:
        for t in tuples:
            self.append(t)

    def scan(self, left: int, right: int) -> List[Tuple]:
        """All tuples with ``left <= timestamp <= right``."""
        lo = bisect_left(self._timestamps, left)
        hi = bisect_right(self._timestamps, right)
        HISTORY_TOTALS.scans += 1
        HISTORY_TOTALS.tuples_scanned += hi - lo
        return self._tuples[lo:hi]

    def latest_timestamp(self) -> Optional[int]:
        return self._timestamps[-1] if self._timestamps else None

    def truncate_before(self, timestamp: int) -> int:
        """Discard tuples older than ``timestamp``; returns the count.

        The storage manager calls this once no standing window can reach
        that far back.
        """
        cut = bisect_left(self._timestamps, timestamp)
        if cut:
            del self._tuples[:cut]
            del self._timestamps[:cut]
            HISTORY_TOTALS.truncated += cut
        return cut

    def __len__(self) -> int:
        return len(self._tuples)


class WindowedQueryRunner:
    """Executes a query body over a for-loop's window sequence.

    ``evaluate`` receives ``{stream: [tuples in that stream's window]}``
    and returns the result rows for that window; the runner yields
    ``(loop_value, results)`` pairs — the paper's sequence of sets, each
    set tagged with its instant.
    """

    def __init__(self, spec: ForLoopSpec,
                 stores: Dict[str, HistoricalStore],
                 evaluate: Callable[[Dict[str, List[Tuple]]], List[Tuple]]):
        for stream in spec.streams():
            if stream not in stores:
                raise QueryError(
                    f"no historical store for stream {stream!r}")
        self.spec = spec
        self.stores = stores
        self.evaluate = evaluate

    def __iter__(self) -> Iterator[TypingTuple[int, List[Tuple]]]:
        for instance in self.spec:
            window_data = {
                stream: self.stores[stream].scan(*instance.bounds_for(stream))
                for stream in self.spec.streams()
            }
            yield instance.t, self.evaluate(window_data)

    def run(self) -> List[TypingTuple[int, List[Tuple]]]:
        return list(self)
