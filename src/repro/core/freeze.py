"""Adaptive plan freezing: §4.3 "adapting adaptivity" taken to its limit.

The eddy pays for adaptivity on every batch: a representative row, an
eligibility scan, and a policy consultation per hop.  The paper argues
that price should only be paid while selectivities *drift*; once a
footprint class (same ``done`` bitmap, same source set) keeps taking the
same operator route, that route can be compiled down to straight-line
batch code.

:class:`PlanFreezer` closes the loop:

* **detect** — per footprint class, a
  :class:`~repro.monitor.stats.StabilityCounter` tracks how many
  consecutive completed batches took the identical route; a streak of
  ``stable_routes`` proves the plan has settled;
* **freeze** — the route is compiled into a :class:`FrozenPipeline`:
  consecutive filters fuse into one
  :class:`~repro.query.predicates.FusedChain` kernel (one combined
  selection vector, ONE partition per segment instead of one per
  filter), SteM hops run their batch kernels in pinned order, and the
  per-hop representative/eligibility/policy machinery is bypassed
  entirely;
* **thaw** — selectivity EWMAs keep updating from the fused masks, so
  :func:`~repro.monitor.stats.sample_drift` against the freeze-time
  sample stays live; drift past ``drift_threshold`` (checked every
  ``check_every`` frozen rows, or pushed by the
  :class:`~repro.core.adaptivity.AdaptivityController`) thaws the class
  back to adaptive routing.  When the PR 4 flight recorder is on, a
  recorded decision that contradicts the frozen order (per-tuple path,
  composite re-routing) also thaws — observed route-change beats any
  drift estimate.

Counter parity: frozen execution updates exactly the same data-plane
counters (``seen``/``passed_count`` per operator, SteM build/probe
counters, eddy ``tuples_routed``/``outputs_emitted``) as the adaptive
vectorized path, by restricting each fused stage's full-width mask to
the rows still alive after earlier stages.  The EWMA selectivity uses
the closed-form update (:func:`repro.core.columnar.ewma_update`) over
the same outcome sequence — bit-identical inputs, float-identical up to
pow/accumulation rounding.  One deliberate divergence: rows failing a
fused segment collect the done-bits of *every* filter in the segment
(the adaptive path stops marking at the failing hop).  Those rows are
dead — never emitted, skipped by probes — so the extra bits are
unobservable.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Sequence, Tuple as TypingTuple

from repro.core import columnar
from repro.core.eddy import EddyOperator, FilterOperator
from repro.core.tuples import TupleBatch
from repro.errors import PlanError
import repro.monitor.introspect as introspect
from repro.monitor.stats import StabilityCounter, sample_drift
from repro.monitor.telemetry import get_registry
from repro.query.predicates import FusedChain

__all__ = ["FrozenPipeline", "PlanFreezer"]

_FREEZER_IDS = itertools.count()

#: A footprint-class key: (done bitmap, source set) — the same "routing
#: situation" key the eddy's amortized route cache uses.
FreezeKey = TypingTuple[int, frozenset]


class _FusedFilters:
    """A run of consecutive FilterOperators compiled into one kernel."""

    __slots__ = ("ops", "chain")

    def __init__(self, ops: Sequence[FilterOperator]):
        self.ops = list(ops)
        self.chain = FusedChain([op.predicate for op in self.ops])

    def apply(self, batch: TupleBatch) -> Optional[TupleBatch]:
        """Evaluate the whole chain, partition once, keep counters in
        lock-step with the unfused path."""
        alive, masks = self.chain(batch)
        prior: Any = None
        for op, mask in zip(self.ops, masks):
            outcomes = mask if prior is None \
                else columnar.mask_compress(prior, mask)
            n_seen = len(outcomes)
            if op.cost:
                # The synthetic work knob burns per surviving row, as in
                # FilterOperator.handle_batch.
                acc = 0
                for i in range(op.cost * n_seen):
                    acc += i
            op.seen += n_seen
            op.passed_count += columnar.mask_count(outcomes)
            op._ewma_selectivity = columnar.ewma_update(
                op._ewma_selectivity, op._ewma_alpha, outcomes)
            batch.mark_done(op.bit)
            prior = mask if prior is None else columnar.mask_and(prior, mask)
        if columnar.mask_all(alive):
            return batch
        passed, failed = batch.partition(alive)
        failed.mark_dead()
        return passed if len(passed) else None


class FrozenPipeline:
    """A footprint class's settled route, compiled for batch execution."""

    __slots__ = ("key", "order", "segments")

    def __init__(self, key: FreezeKey, ops: Sequence[EddyOperator]):
        self.key = key
        self.order: TypingTuple[str, ...] = tuple(op.name for op in ops)
        segments: List[Any] = []
        run: List[FilterOperator] = []
        for op in ops:
            if isinstance(op, FilterOperator):
                run.append(op)
            else:
                if run:
                    segments.append(_FusedFilters(run))
                    run = []
                segments.append(op)
        if run:
            segments.append(_FusedFilters(run))
        self.segments = segments

    def run(self, eddy: Any, batch: TupleBatch, results: List) -> None:
        """Execute the pinned route on ``batch``, appending emissions to
        ``results`` exactly as ``Eddy.process_batch`` would."""
        site = eddy._telemetry_id
        pending = []
        current: Optional[TupleBatch] = batch
        for seg in self.segments:
            if current is None or not len(current):
                break
            if isinstance(seg, _FusedFilters):
                if current.traces:
                    for op in seg.ops:
                        for tr in current.traces:
                            tr.hop("eddy", site, op.name)
                current = seg.apply(current)
            else:
                if current.traces:
                    for tr in current.traces:
                        tr.hop("eddy", site, seg.name)
                current.mark_done(seg.bit)
                current, outputs = seg.handle_batch(current)
                for out in outputs:
                    eddy._fix_composite_done(out)
                    out.mark_done(seg.bit)
                    pending.append(out)
        if current is not None and len(current):
            eddy._emit_batch(current, results)
        if pending:
            # Composites diverge per row; they re-enter the ADAPTIVE
            # loop (fresh decisions, visible to the flight recorder),
            # same as the vectorized path's fall-back.
            eddy._route_worklist(pending, results, fresh_decisions=True)

    def describe(self) -> Dict[str, Any]:
        done, sources = self.key
        return {
            "class": {"done": done, "sources": sorted(sources)},
            "order": list(self.order),
            "fused_segments": [
                [op.name for op in seg.ops]
                for seg in self.segments if isinstance(seg, _FusedFilters)],
        }


class PlanFreezer:
    """Freeze/thaw controller for one eddy.

    Created via :meth:`Eddy.enable_freezing`; the eddy consults
    :attr:`frozen` at the top of ``process_batch`` and reports every
    adaptively routed batch through :meth:`observe_route`.
    """

    #: cap on the thaw audit log.
    MAX_LOG = 64

    def __init__(self, eddy: Any, stable_routes: int = 4,
                 drift_threshold: float = 0.15, check_every: int = 512):
        self.eddy = eddy
        self.stable_routes = int(stable_routes)
        self.drift_threshold = float(drift_threshold)
        self.check_every = int(check_every)
        self.frozen: Dict[FreezeKey, FrozenPipeline] = {}
        self._streaks: Dict[FreezeKey, StabilityCounter] = {}
        #: selectivity sample captured at freeze time, per class.
        self._baseline: Dict[FreezeKey, Dict[str, float]] = {}
        self._rows_since_check: Dict[FreezeKey, int] = {}
        #: flight-recorder high-water mark at freeze time, per class.
        self._recorder_mark: Dict[FreezeKey, int] = {}
        self.freezes = 0
        self.thaws = 0
        self.frozen_batches = 0
        self.frozen_rows = 0
        self.thaw_log: List[Dict[str, Any]] = []
        self._telemetry = get_registry()
        self._telemetry_id = \
            f"{eddy._telemetry_id}/freezer#{next(_FREEZER_IDS)}"
        self._telemetry.register_collector(self._publish_telemetry)

    # -- freeze side -------------------------------------------------------
    def observe_route(self, key: FreezeKey, route: Sequence[str],
                      complete: bool) -> None:
        """One adaptively routed batch of class ``key`` took ``route``.

        Only *completed* batches (survivors reached emission
        eligibility) count toward a freeze: a batch that died mid-route
        observed a truncated route, and freezing it would let future
        survivors skip the unvisited operators.
        """
        if not complete or key in self.frozen:
            return
        streak = self._streaks.setdefault(key, StabilityCounter())
        if streak.observe(tuple(route)) >= self.stable_routes:
            self._freeze(key, tuple(route))

    def _freeze(self, key: FreezeKey, route: TypingTuple[str, ...]) -> None:
        try:
            ops = [self.eddy.operator(name) for name in route]
        except PlanError:      # pragma: no cover - route names come
            return             # from the eddy itself
        self.frozen[key] = FrozenPipeline(key, ops)
        self._baseline[key] = self.eddy.selectivity_sample()
        self._rows_since_check[key] = 0
        self._recorder_mark[key] = introspect.RECORDER.recorded
        self.freezes += 1

    # -- frozen execution --------------------------------------------------
    def after_frozen_batch(self, key: FreezeKey, n_rows: int) -> None:
        """Post-batch bookkeeping + periodic thaw check."""
        self.frozen_batches += 1
        self.frozen_rows += n_rows
        since = self._rows_since_check.get(key, 0) + n_rows
        if since < self.check_every:
            self._rows_since_check[key] = since
            return
        self._rows_since_check[key] = 0
        sample = self.eddy.selectivity_sample()
        drift = sample_drift(self._baseline.get(key, {}), sample)
        if drift > self.drift_threshold:
            self.thaw(key, reason=f"drift {drift:.3f}")
            return
        if self._route_change_observed(key):
            self.thaw(key, reason="route-change (flight recorder)")

    def _route_change_observed(self, key: FreezeKey) -> bool:
        """Flight-recorder evidence against the frozen order.

        Decisions recorded since the freeze come from the eddy's still
        adaptive paths (per-tuple routing, composite re-routing).  One
        whose ready set lies within the frozen route but whose choice
        contradicts the pinned relative order means the policy now
        prefers a different plan for the same evidence."""
        rec = introspect.RECORDER
        if not rec.enabled:
            return False
        mark = self._recorder_mark.get(key, rec.recorded)
        fresh = rec.recorded - mark
        if fresh <= 0:
            return False
        pipeline = self.frozen[key]
        route_ops = set(pipeline.order)
        site = self.eddy._telemetry_id
        for d in rec.recent(min(fresh, rec.capacity)):
            if d.eddy != site or not set(d.ready) <= route_ops:
                continue
            pinned_first = next((name for name in pipeline.order
                                 if name in d.ready), None)
            if pinned_first is not None and d.chosen != pinned_first:
                return True
        self._recorder_mark[key] = rec.recorded
        return False

    # -- thaw side ---------------------------------------------------------
    def thaw(self, key: FreezeKey, reason: str = "") -> bool:
        """Return ``key`` to adaptive routing; True if it was frozen."""
        pipeline = self.frozen.pop(key, None)
        if pipeline is None:
            return False
        self._baseline.pop(key, None)
        self._rows_since_check.pop(key, None)
        self._recorder_mark.pop(key, None)
        # A re-freeze needs a fresh streak of evidence.
        streak = self._streaks.get(key)
        if streak is not None:
            streak.reset()
        self.thaws += 1
        if len(self.thaw_log) < self.MAX_LOG:
            done, sources = key
            self.thaw_log.append({"done": done,
                                  "sources": sorted(sources),
                                  "order": list(pipeline.order),
                                  "reason": reason})
        return True

    def thaw_all(self, reason: str = "") -> int:
        count = 0
        for key in list(self.frozen):
            if self.thaw(key, reason=reason):
                count += 1
        return count

    def note_drift(self, drift: float) -> None:
        """Push-style drift feed (the AdaptivityController computes
        drift on its own cadence; no reason to wait for ours)."""
        if self.frozen and drift > self.drift_threshold:
            self.thaw_all(reason=f"controller drift {drift:.3f}")

    # -- introspection -----------------------------------------------------
    def describe(self) -> Dict[str, Any]:
        return {
            "active": len(self.frozen),
            "freezes": self.freezes,
            "thaws": self.thaws,
            "frozen_batches": self.frozen_batches,
            "frozen_rows": self.frozen_rows,
            "stable_routes": self.stable_routes,
            "drift_threshold": self.drift_threshold,
            "pipelines": [p.describe() for p in self.frozen.values()],
            "recent_thaws": list(self.thaw_log[-8:]),
        }

    def _publish_telemetry(self) -> None:
        reg = self._telemetry
        fz = self._telemetry_id
        reg.counter("tcq_freeze_engaged_total",
                    "Footprint-class routes frozen into compiled "
                    "pipelines", ("freezer",),
                    collected=True).labels(fz).set_total(self.freezes)
        reg.counter("tcq_freeze_thaws_total",
                    "Frozen routes returned to adaptive routing",
                    ("freezer",),
                    collected=True).labels(fz).set_total(self.thaws)
        reg.counter("tcq_freeze_frozen_batches_total",
                    "Batches executed by frozen pipelines", ("freezer",),
                    collected=True).labels(fz).set_total(
            self.frozen_batches)
        reg.counter("tcq_freeze_frozen_rows_total",
                    "Rows executed by frozen pipelines", ("freezer",),
                    collected=True).labels(fz).set_total(self.frozen_rows)
        reg.gauge("tcq_freeze_active",
                  "Footprint classes currently frozen", ("freezer",),
                  collected=True).labels(fz).set(len(self.frozen))
