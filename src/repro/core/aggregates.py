"""Incremental aggregate functions.

Section 4.1.2 of the paper observes that window type changes the state an
aggregate needs: a MAX over a *landmark* window can be maintained with
O(1) state ("simply comparing the current maximum to the newest element
as the window expands"), while a MAX over a *sliding* window "requires
the maintenance of the entire window".

We model this with two aggregate protocols:

* :class:`IncrementalAggregate` — insert-only, O(1) or O(distinct) state;
  correct for landmark / expanding windows.
* :class:`WindowAggregate` — supports retraction (``remove``); the
  MIN/MAX implementations keep a monotonic deque so sliding windows pay
  O(1) amortised per tuple but O(window) state, exactly the asymmetry
  the paper predicts.  Experiment E10 measures it.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple as TypingTuple

from repro.errors import QueryError


class IncrementalAggregate:
    """Insert-only aggregate: ``add`` values, read ``result`` any time."""

    name = "aggregate"

    def add(self, value: Any) -> None:
        raise NotImplementedError

    def result(self) -> Any:
        raise NotImplementedError

    def state_size(self) -> int:
        """Number of retained values — the paper's memory argument."""
        raise NotImplementedError

    def fresh(self) -> "IncrementalAggregate":
        """A new empty instance of the same aggregate."""
        return type(self)()


class CountAggregate(IncrementalAggregate):
    name = "COUNT"

    def __init__(self) -> None:
        self._n = 0

    def add(self, value: Any) -> None:
        self._n += 1

    def result(self) -> int:
        return self._n

    def state_size(self) -> int:
        return 1


class SumAggregate(IncrementalAggregate):
    name = "SUM"

    def __init__(self) -> None:
        self._sum = 0
        self._n = 0

    def add(self, value: Any) -> None:
        self._sum += value
        self._n += 1

    def result(self) -> Any:
        return self._sum if self._n else None

    def state_size(self) -> int:
        return 1


class AvgAggregate(IncrementalAggregate):
    name = "AVG"

    def __init__(self) -> None:
        self._sum = 0.0
        self._n = 0

    def add(self, value: Any) -> None:
        self._sum += value
        self._n += 1

    def result(self) -> Optional[float]:
        return self._sum / self._n if self._n else None

    def state_size(self) -> int:
        return 2


class MinAggregate(IncrementalAggregate):
    """Landmark MIN: O(1) state, insert-only."""

    name = "MIN"

    def __init__(self) -> None:
        self._min: Any = None

    def add(self, value: Any) -> None:
        if self._min is None or value < self._min:
            self._min = value

    def result(self) -> Any:
        return self._min

    def state_size(self) -> int:
        return 1


class MaxAggregate(IncrementalAggregate):
    """Landmark MAX: O(1) state, insert-only."""

    name = "MAX"

    def __init__(self) -> None:
        self._max: Any = None

    def add(self, value: Any) -> None:
        if self._max is None or value > self._max:
            self._max = value

    def result(self) -> Any:
        return self._max

    def state_size(self) -> int:
        return 1


class WindowAggregate(IncrementalAggregate):
    """Aggregates that also support removing the oldest value, for
    sliding windows.  ``remove`` must be called with values in the same
    order they were added (FIFO eviction), which is what a sliding
    window does."""

    def remove(self, value: Any) -> None:
        raise NotImplementedError


class SlidingCount(WindowAggregate):
    name = "COUNT"

    def __init__(self) -> None:
        self._n = 0

    def add(self, value: Any) -> None:
        self._n += 1

    def remove(self, value: Any) -> None:
        self._n -= 1

    def result(self) -> int:
        return self._n

    def state_size(self) -> int:
        return 1


class SlidingSum(WindowAggregate):
    name = "SUM"

    def __init__(self) -> None:
        self._sum = 0
        self._n = 0

    def add(self, value: Any) -> None:
        self._sum += value
        self._n += 1

    def remove(self, value: Any) -> None:
        self._sum -= value
        self._n -= 1

    def result(self) -> Any:
        return self._sum if self._n else None

    def state_size(self) -> int:
        return 1


class SlidingAvg(WindowAggregate):
    name = "AVG"

    def __init__(self) -> None:
        self._sum = 0.0
        self._n = 0

    def add(self, value: Any) -> None:
        self._sum += value
        self._n += 1

    def remove(self, value: Any) -> None:
        self._sum -= value
        self._n -= 1

    def result(self) -> Optional[float]:
        return self._sum / self._n if self._n else None

    def state_size(self) -> int:
        return 2


class _MonotonicExtreme(WindowAggregate):
    """Sliding MIN/MAX via a monotonic deque.  O(1) amortised
    add/remove, but state grows with the window content in the worst
    case — the entire window for sorted input.

    ``better`` must be STRICT (``>`` for max): equal values are kept as
    duplicates in the deque so removal-by-value stays correct when the
    extreme occurs more than once in the window.
    """

    def __init__(self, better: Callable[[Any, Any], bool]):
        self._better = better          # True if first argument wins
        self._deque: Deque[Any] = deque()
        self._pending: Deque[Any] = deque()   # FIFO of live values

    def add(self, value: Any) -> None:
        self._pending.append(value)
        while self._deque and self._better(value, self._deque[-1]):
            self._deque.pop()
        self._deque.append(value)

    def remove(self, value: Any) -> None:
        if not self._pending:
            raise QueryError("remove from empty sliding aggregate")
        expected = self._pending.popleft()
        if expected != value:
            raise QueryError(
                f"sliding aggregate removal out of order: expected "
                f"{expected!r}, got {value!r}")
        if self._deque and self._deque[0] == value:
            self._deque.popleft()

    def result(self) -> Any:
        return self._deque[0] if self._deque else None

    def state_size(self) -> int:
        # Both deques are genuine retained state.
        return len(self._deque) + len(self._pending)


class SlidingMin(_MonotonicExtreme):
    name = "MIN"

    def __init__(self) -> None:
        super().__init__(lambda a, b: a < b)


class SlidingMax(_MonotonicExtreme):
    name = "MAX"

    def __init__(self) -> None:
        super().__init__(lambda a, b: a > b)


class NaiveSlidingExtreme(WindowAggregate):
    """The strawman the paper describes: keep the whole window and rescan
    on demand.  Used by the E10 ablation as the upper bound on state."""

    def __init__(self, fn: Callable[[List[Any]], Any], name: str = "MAX"):
        self._values: Deque[Any] = deque()
        self._fn = fn
        self.name = name

    def add(self, value: Any) -> None:
        self._values.append(value)

    def remove(self, value: Any) -> None:
        head = self._values.popleft()
        if head != value:
            raise QueryError("out-of-order removal from naive window")

    def result(self) -> Any:
        return self._fn(self._values) if self._values else None

    def state_size(self) -> int:
        return len(self._values)

    def fresh(self) -> "NaiveSlidingExtreme":
        return NaiveSlidingExtreme(self._fn, self.name)


class StdDevAggregate(IncrementalAggregate):
    """Welford's online standard deviation — used by the network-monitor
    example for anomaly thresholds."""

    name = "STDDEV"

    def __init__(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, value: Any) -> None:
        self._n += 1
        delta = value - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (value - self._mean)

    def result(self) -> Optional[float]:
        if self._n < 2:
            return 0.0 if self._n == 1 else None
        return math.sqrt(self._m2 / (self._n - 1))

    def mean(self) -> Optional[float]:
        return self._mean if self._n else None

    def state_size(self) -> int:
        return 3


#: Registry used by the query compiler: name -> (landmark class,
#: sliding class).
AGGREGATES: Dict[str, TypingTuple[type, type]] = {
    "COUNT": (CountAggregate, SlidingCount),
    "SUM": (SumAggregate, SlidingSum),
    "AVG": (AvgAggregate, SlidingAvg),
    "MIN": (MinAggregate, SlidingMin),
    "MAX": (MaxAggregate, SlidingMax),
    "STDDEV": (StdDevAggregate, StdDevAggregate),
}


def make_aggregate(name: str, sliding: bool = False) -> IncrementalAggregate:
    """Instantiate an aggregate by SQL name.

    ``sliding=True`` returns the retraction-capable variant needed for
    sliding windows; landmark windows use the O(1)-state variant.
    """
    key = name.upper()
    if key not in AGGREGATES:
        raise QueryError(
            f"unknown aggregate {name!r}; known: {sorted(AGGREGATES)}")
    landmark_cls, sliding_cls = AGGREGATES[key]
    return sliding_cls() if sliding else landmark_cls()
