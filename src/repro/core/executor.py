"""The TelegraphCQ Executor: Execution Objects and Dispatch Units
(Section 4.2.2).

The executor maps "our shared continuous processing model onto a thread
structure that will allow for adaptivity while incurring minimal
overhead".  The design points reproduced here:

* **Execution Objects (EOs)** — the units the OS would schedule (one
  system thread each).  Here they are cooperatively scheduled by
  :class:`Executor.step`; each EO owns a scheduler over its DUs.
* **Dispatch Units (DUs)** — non-preemptive work abstractions following
  the Fjords model: ``run_once`` does a bounded quantum and returns.
  A DU can host (mode 1) a traditional one-shot plan, (mode 2) a
  single-eddy dataflow, or (mode 3) a shared continuous-query eddy —
  the three modes the paper lists.
* **Query classes by footprint** — queries over overlapping stream sets
  land in the same EO (so they can share SteMs and grouped filters);
  disjoint footprints get separate EOs.  Implemented with a union-find
  over stream names, maintained online as queries come and go.
"""

from __future__ import annotations

import itertools
from typing import (Callable, Dict, FrozenSet, Iterable, List, Set, Tuple as TypingTuple)

from repro.errors import ExecutionError
from repro.fjords.fjord import Fjord
from repro.monitor.telemetry import get_registry


class DispatchUnit:
    """A non-preemptive unit of work inside an EO."""

    #: paper's three DU modes.
    MODE_TRADITIONAL = 1
    MODE_SINGLE_EDDY = 2
    MODE_SHARED_CQ = 3

    def __init__(self, name: str, mode: int,
                 step: Callable[[int], bool],
                 is_finished: Callable[[], bool] = lambda: False):
        self.name = name
        self.mode = mode
        self._step = step
        self._is_finished = is_finished
        self.quanta = 0
        self.busy_quanta = 0

    def run_once(self, batch: int = 16) -> bool:
        """One quantum; returns True if progress was made."""
        self.quanta += 1
        worked = self._step(batch)
        if worked:
            self.busy_quanta += 1
        return worked

    @property
    def finished(self) -> bool:
        return self._is_finished()

    @classmethod
    def from_fjord(cls, fjord: Fjord, mode: int = MODE_SINGLE_EDDY,
                   name: str = "") -> "DispatchUnit":
        return cls(name or fjord.name, mode,
                   step=lambda batch: fjord.step(batch),
                   is_finished=lambda: all(m.finished for m in fjord.modules))

    def __repr__(self) -> str:
        return f"DispatchUnit({self.name}, mode={self.mode})"


class ExecutionObject:
    """One would-be system thread hosting DUs under a local scheduler.

    Scheduling policies: ``round_robin`` gives every DU one quantum per
    pass; ``busy_first`` favours DUs that made progress last time (a
    cheap approximation of demand-driven scheduling).
    """

    POLICIES = ("round_robin", "busy_first")

    def __init__(self, eo_id: int, policy: str = "round_robin"):
        if policy not in self.POLICIES:
            raise ExecutionError(f"unknown EO policy {policy!r}")
        self.eo_id = eo_id
        self.policy = policy
        self.dispatch_units: List[DispatchUnit] = []
        self._last_worked: Dict[str, bool] = {}
        self.passes = 0

    def add(self, du: DispatchUnit) -> None:
        self.dispatch_units.append(du)

    def remove(self, name: str) -> None:
        self.dispatch_units = [du for du in self.dispatch_units
                               if du.name != name]
        self._last_worked.pop(name, None)

    def step(self, batch: int = 16) -> bool:
        """One pass over the DUs; returns True if any progressed."""
        self.passes += 1
        order = list(self.dispatch_units)
        if self.policy == "busy_first":
            order.sort(key=lambda du: not self._last_worked.get(du.name,
                                                                True))
        worked = False
        for du in order:
            if du.finished:
                continue
            du_worked = du.run_once(batch)
            self._last_worked[du.name] = du_worked
            worked = worked or du_worked
        return worked

    @property
    def live_units(self) -> int:
        return sum(1 for du in self.dispatch_units if not du.finished)

    def __repr__(self) -> str:
        return f"ExecutionObject(#{self.eo_id}, {len(self.dispatch_units)} DUs)"


class FootprintClasses:
    """Online union-find over stream names.

    ``class_of(footprint)`` unions the footprint's streams and returns
    the representative — queries whose footprints transitively overlap
    share a class, disjoint ones do not (the paper's initial policy:
    "we create query classes for disjoint sets of footprints").
    """

    def __init__(self) -> None:
        self._parent: Dict[str, str] = {}
        self._rank: Dict[str, int] = {}

    def _find(self, stream: str) -> str:
        parent = self._parent.setdefault(stream, stream)
        self._rank.setdefault(stream, 0)
        if parent != stream:
            root = self._find(parent)
            self._parent[stream] = root
            return root
        return stream

    def _union(self, a: str, b: str) -> str:
        ra, rb = self._find(a), self._find(b)
        if ra == rb:
            return ra
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        return ra

    def class_of(self, footprint: Iterable[str]) -> str:
        streams = list(footprint)
        if not streams:
            raise ExecutionError("empty query footprint")
        root = self._find(streams[0])
        for s in streams[1:]:
            root = self._union(root, s)
        return root

    def peek(self, footprint: Iterable[str]) -> Set[str]:
        """The set of current class representatives the footprint's
        streams belong to, WITHOUT unioning (introspection)."""
        return {self._find(s) for s in footprint}


class Executor:
    """EO manager + the query-plan queue (Figure 5's QPQueue).

    New work arrives via :meth:`enqueue_plan` (from the FrontEnd) and is
    "dynamically folded into the running executor" at the start of the
    next step, as in the paper.
    """

    def __init__(self, eo_policy: str = "round_robin"):
        self.eo_policy = eo_policy
        self._eos: Dict[str, ExecutionObject] = {}
        self._next_eo_id = itertools.count()
        self.footprints = FootprintClasses()
        #: the QPQueue: (footprint, DU) pairs awaiting fold-in.
        self._plan_queue: List[TypingTuple[FrozenSet[str], DispatchUnit]] = []
        self.steps = 0
        self.plans_folded = 0
        self._telemetry = get_registry()
        self._telemetry.register_collector(self._publish_telemetry)

    # -- FrontEnd side ----------------------------------------------------------
    def enqueue_plan(self, footprint: Iterable[str],
                     du: DispatchUnit) -> None:
        self._plan_queue.append((frozenset(footprint), du))

    # -- executor side -----------------------------------------------------------
    def _fold_in_new_plans(self) -> int:
        folded = 0
        while self._plan_queue:
            footprint, du = self._plan_queue.pop(0)
            eo = self.eo_for(footprint)
            eo.add(du)
            folded += 1
        self.plans_folded += folded
        return folded

    def eo_for(self, footprint: Iterable[str]) -> ExecutionObject:
        """The EO responsible for a footprint's query class.

        Unioning may merge previously distinct classes (a new query
        spans two stream groups); their EOs are merged too.
        """
        before = self.footprints.peek(footprint)
        root = self.footprints.class_of(footprint)
        stale = [rep for rep in before if rep != root and rep in self._eos]
        if root not in self._eos:
            # Reuse a merged EO if one exists, else create fresh.
            if stale:
                self._eos[root] = self._eos.pop(stale.pop(0))
            else:
                self._eos[root] = ExecutionObject(next(self._next_eo_id),
                                                  policy=self.eo_policy)
        for rep in stale:
            merged = self._eos.pop(rep)
            for du in merged.dispatch_units:
                self._eos[root].add(du)
        return self._eos[root]

    def step(self, batch: int = 16) -> bool:
        """One scheduling round over every EO."""
        self.steps += 1
        self._fold_in_new_plans()
        worked = False
        for eo in self._eos.values():
            worked = eo.step(batch) or worked
        return worked

    def run_until_quiescent(self, max_steps: int = 1_000_000,
                            batch: int = 16) -> int:
        steps = 0
        while steps < max_steps:
            steps += 1
            if not self.step(batch):
                break
        return steps

    # -- telemetry -----------------------------------------------------------
    def _publish_telemetry(self) -> None:
        reg = self._telemetry
        reg.counter("tcq_executor_steps_total",
                    "Scheduling rounds over every EO",
                    collected=True).set_total(self.steps)
        reg.counter("tcq_executor_plans_folded_total",
                    "DUs folded in from the QPQueue",
                    collected=True).set_total(self.plans_folded)
        reg.gauge("tcq_executor_eos", "Live Execution Objects",
                  collected=True).set(len(self._eos))
        reg.gauge("tcq_executor_dus", "Dispatch Units across all EOs",
                  collected=True).set(
            sum(len(eo.dispatch_units) for eo in self._eos.values()))
        passes = reg.counter("tcq_executor_eo_passes_total",
                             "Scheduler passes per EO", ("eo",),
                             collected=True)
        quanta = reg.counter("tcq_executor_du_quanta_total",
                             "Quanta run per DU", ("eo", "du"),
                             collected=True)
        busy = reg.gauge("tcq_executor_du_busy_ratio",
                         "Fraction of a DU's quanta that made progress",
                         ("eo", "du"), collected=True)
        for root, eo in self._eos.items():
            passes.labels(str(root)).set_total(eo.passes)
            for du in eo.dispatch_units:
                quanta.labels(str(root), du.name).set_total(du.quanta)
                busy.labels(str(root), du.name).set(
                    du.busy_quanta / du.quanta if du.quanta else 0.0)

    # -- introspection -------------------------------------------------------
    @property
    def execution_objects(self) -> List[ExecutionObject]:
        return list(self._eos.values())

    def stats(self) -> Dict[str, object]:
        return {
            "eos": len(self._eos),
            "dus": sum(len(eo.dispatch_units) for eo in self._eos.values()),
            "steps": self.steps,
            "per_eo": {
                str(root): {
                    "dus": [du.name for du in eo.dispatch_units],
                    "passes": eo.passes,
                }
                for root, eo in self._eos.items()
            },
        }
